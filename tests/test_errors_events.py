"""Tests for the exception hierarchy and event/token dataclasses."""


from repro import errors
from repro.gm.events import EventType, GmEvent
from repro.gm.tokens import RecvToken, SendToken


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            if isinstance(cls, type) and issubclass(cls, Exception):
                assert issubclass(cls, errors.ReproError)

    def test_gm_errors_under_gm_error(self):
        for cls in (errors.GmSendError, errors.GmNoTokens,
                    errors.GmPortClosed):
            assert issubclass(cls, errors.GmError)

    def test_hardware_errors_under_hardware_error(self):
        for cls in (errors.BusError, errors.HostCrashed,
                    errors.LanaiTrap, errors.InvalidInstruction):
            assert issubclass(cls, errors.HardwareError)

    def test_bus_error_message(self):
        exc = errors.BusError(0x1234, 4, what="SRAM")
        assert "0x1234" in str(exc)
        assert "SRAM" in str(exc)
        assert exc.address == 0x1234

    def test_invalid_instruction_records_word_and_pc(self):
        exc = errors.InvalidInstruction(0xFC000000, 0x1000)
        assert exc.word == 0xFC000000
        assert exc.pc == 0x1000
        assert issubclass(errors.InvalidInstruction, errors.LanaiTrap)

    def test_mpi_fatal_under_mpi_error(self):
        assert issubclass(errors.MpiFatalError, errors.MpiError)


class TestGmEvent:
    def test_received_str_mentions_sender(self):
        event = GmEvent(EventType.RECEIVED, 2, sender_node=0,
                        sender_port=1, size=42)
        text = str(event)
        assert "received" in text
        assert "42" in text

    def test_internal_types_listed(self):
        assert EventType.FAULT_DETECTED in EventType.INTERNAL


class TestTokens:
    def test_send_token_fragment_count(self):
        token = SendToken(src_port=1, dest_node=1, dest_port=2,
                          region_id=1, host_addr=0, size=0)
        assert token.fragment_count(4096) == 1
        token.size = 4096
        assert token.fragment_count(4096) == 1
        token.size = 4097
        assert token.fragment_count(4096) == 2
        token.size = 3 * 4096
        assert token.fragment_count(4096) == 3

    def test_msg_ids_unique(self):
        a = SendToken(src_port=1, dest_node=1, dest_port=2,
                      region_id=1, host_addr=0, size=10)
        b = SendToken(src_port=1, dest_node=1, dest_port=2,
                      region_id=1, host_addr=0, size=10)
        assert a.msg_id != b.msg_id

    def test_recv_token_matching(self):
        token = RecvToken(port=1, region_id=1, host_addr=0, size=1024,
                          priority=1)
        assert token.matches(1024, 1)
        assert token.matches(10, 1)
        assert not token.matches(2048, 1)   # too big for the buffer
        assert not token.matches(10, 0)     # wrong priority
