"""Tests for the mini-MPI middleware, including the transparency story."""


import pytest

from repro.cluster import build_cluster
from repro.errors import MpiFatalError
from repro.middleware import mpi_world


def run_ranks(cluster, bodies, limit=120_000_000.0):
    """Spawn one app per rank; bodies get (mpi,) and must init first."""
    world = mpi_world(cluster)
    done = {}
    errors = {}

    def wrap(rank, body):
        mpi = world[rank]
        try:
            yield from mpi.init()
            result = yield from body(mpi)
            done[rank] = result
        except MpiFatalError as exc:
            errors[rank] = str(exc)

    for rank, body in enumerate(bodies):
        cluster[rank].host.spawn(wrap(rank, body), "mpi%d" % rank)
    sim = cluster.sim
    deadline = sim.now + limit
    while (len(done) + len(errors) < len(bodies)
           and sim.peek() <= deadline):
        sim.step()
    return done, errors


class TestPointToPoint:
    def test_send_recv(self):
        cluster = build_cluster(2, flavor="gm")

        def rank0(mpi):
            yield from mpi.send(1, b"hello rank 1", tag=7)
            return "sent"

        def rank1(mpi):
            src, tag, data = yield from mpi.recv(0, tag=7)
            return (src, tag, data)

        done, errors = run_ranks(cluster, [rank0, rank1])
        assert not errors
        assert done[1] == (0, 7, b"hello rank 1")

    def test_tag_matching_stashes_unexpected(self):
        cluster = build_cluster(2, flavor="gm")

        def rank0(mpi):
            yield from mpi.send(1, b"first", tag=1)
            yield from mpi.send(1, b"second", tag=2)
            return "ok"

        def rank1(mpi):
            # Receive tag 2 first although tag 1 arrives first.
            _, _, second = yield from mpi.recv(0, tag=2)
            _, _, first = yield from mpi.recv(0, tag=1)
            return (first, second)

        done, errors = run_ranks(cluster, [rank0, rank1])
        assert not errors
        assert done[1] == (b"first", b"second")

    def test_any_source(self):
        cluster = build_cluster(3, flavor="gm")

        def sender(mpi):
            yield from mpi.send(2, b"from-%d" % mpi.rank, tag=3)
            return "ok"

        def sink(mpi):
            got = []
            for _ in range(2):
                src, _, data = yield from mpi.recv(tag=3)
                got.append((src, data))
            return sorted(got)

        done, errors = run_ranks(cluster, [sender, sender, sink])
        assert not errors
        assert done[2] == [(0, b"from-0"), (1, b"from-1")]

    def test_sendrecv(self):
        cluster = build_cluster(2, flavor="gm")

        def rank(peer):
            def body(mpi):
                src, _, data = yield from mpi.sendrecv(
                    peer, b"ping-%d" % mpi.rank, peer, tag=5)
                return data
            return body

        done, errors = run_ranks(cluster, [rank(1), rank(0)])
        assert not errors
        assert done[0] == b"ping-1"
        assert done[1] == b"ping-0"


class TestCollectives:
    def test_barrier_synchronizes(self):
        cluster = build_cluster(3, flavor="gm")
        sim = cluster.sim
        after = {}

        def body(mpi):
            if mpi.rank == 2:
                yield sim.timeout(5_000.0)  # straggler
            yield from mpi.barrier()
            after[mpi.rank] = sim.now
            return "ok"

        done, errors = run_ranks(cluster, [body, body, body])
        assert not errors
        assert max(after.values()) - min(after.values()) < 1_000.0
        assert min(after.values()) >= 5_000.0

    def test_bcast(self):
        cluster = build_cluster(3, flavor="gm")

        def body(mpi):
            data = yield from mpi.bcast(
                b"the word" if mpi.rank == 0 else None, root=0)
            return data

        done, errors = run_ranks(cluster, [body] * 3)
        assert not errors
        assert all(done[r] == b"the word" for r in range(3))

    def test_allreduce_sum(self):
        cluster = build_cluster(3, flavor="gm")

        def body(mpi):
            total = yield from mpi.allreduce(float(mpi.rank + 1),
                                             lambda a, b: a + b)
            return total

        done, errors = run_ranks(cluster, [body] * 3)
        assert not errors
        assert all(done[r] == pytest.approx(6.0) for r in range(3))

    def test_gather(self):
        cluster = build_cluster(3, flavor="gm")

        def body(mpi):
            parts = yield from mpi.gather(b"r%d" % mpi.rank, root=0)
            return parts

        done, errors = run_ranks(cluster, [body] * 3)
        assert not errors
        assert done[0] == [b"r0", b"r1", b"r2"]
        assert done[1] is None


class TestTransparencyClaim:
    """The paper's motivation, end to end: identical MPI application
    code dies on plain GM when a NIC hangs, survives on FTGM."""

    def _job(self, cluster, rounds=40):
        sim = cluster.sim
        progress = {"rounds": 0}

        def worker(mpi):
            for i in range(rounds):
                if mpi.rank == 0:
                    yield from mpi.send(1, b"work-%03d" % i, tag=9)
                    yield from mpi.recv(1, tag=10)
                else:
                    _, _, data = yield from mpi.recv(0, tag=9)
                    yield from mpi.send(0, b"done" + data[-4:], tag=10)
                progress["rounds"] = max(progress["rounds"], i + 1)
                yield sim.timeout(30.0)
            return "finished"

        def crasher():
            yield sim.timeout(1_500.0)
            cluster[1].mcp.die("NIC hang during MPI job")

        sim.spawn(crasher())
        done, errors = run_ranks(cluster, [worker, worker])
        return done, errors, progress

    def test_plain_gm_mpi_job_dies(self):
        cluster = build_cluster(2, flavor="gm")
        done, errors, progress = self._job(cluster)
        # The job came to "a grinding halt": at least one rank aborted.
        assert errors
        assert any("GM send error" in message
                   for message in errors.values())

    def test_ftgm_mpi_job_survives_unchanged(self):
        cluster = build_cluster(2, flavor="ftgm")
        done, errors, progress = self._job(cluster)
        assert not errors
        assert done[0] == "finished" and done[1] == "finished"
        assert cluster[1].driver.ftd.recoveries
