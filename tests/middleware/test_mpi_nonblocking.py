"""Tests for nonblocking mini-MPI operations."""


from repro.cluster import build_cluster
from repro.errors import MpiFatalError
from repro.middleware import mpi_world


def run_ranks(cluster, bodies, limit=120_000_000.0):
    world = mpi_world(cluster)
    done = {}
    errors = {}

    def wrap(rank, body):
        mpi = world[rank]
        try:
            yield from mpi.init()
            result = yield from body(mpi)
            done[rank] = result
        except MpiFatalError as exc:
            errors[rank] = str(exc)

    for rank, body in enumerate(bodies):
        cluster[rank].host.spawn(wrap(rank, body), "mpi%d" % rank)
    sim = cluster.sim
    deadline = sim.now + limit
    while (len(done) + len(errors) < len(bodies)
           and sim.peek() <= deadline):
        sim.step()
    return done, errors


def test_isend_waitall_overlaps_sends():
    cluster = build_cluster(2, flavor="gm")

    def rank0(mpi):
        requests = []
        for i in range(6):
            req = yield from mpi.isend(1, b"bulk-%d" % i, tag=2)
            requests.append(req)
        # All six are in flight before we wait on any.
        assert any(not r["done"] for r in requests)
        yield from mpi.waitall(requests)
        assert all(r["done"] for r in requests)
        return "ok"

    def rank1(mpi):
        got = []
        for _ in range(6):
            _, _, data = yield from mpi.recv(0, tag=2)
            got.append(data)
        return got

    done, errors = run_ranks(cluster, [rank0, rank1])
    assert not errors
    assert done[0] == "ok"
    assert done[1] == [b"bulk-%d" % i for i in range(6)]


def test_wait_stashes_incoming_messages():
    """Messages arriving while waiting on a send must not be lost."""
    cluster = build_cluster(2, flavor="gm")

    def rank0(mpi):
        req = yield from mpi.isend(1, b"outbound", tag=1)
        yield from mpi.wait(req)   # rank 1's message may land meanwhile
        src, tag, data = yield from mpi.recv(1, tag=5)
        return data

    def rank1(mpi):
        yield from mpi.send(0, b"crossing", tag=5)
        _, _, data = yield from mpi.recv(0, tag=1)
        return data

    done, errors = run_ranks(cluster, [rank0, rank1])
    assert not errors
    assert done[0] == b"crossing"
    assert done[1] == b"outbound"


def test_isend_failure_surfaces_at_wait():
    cluster = build_cluster(2, flavor="gm")

    def rank0(mpi):
        cluster[1].mcp.die("peer gone")
        req = yield from mpi.isend(1, b"doomed", tag=1)
        yield from mpi.wait(req)
        return "unreachable"

    def rank1(mpi):
        # Blocks forever (its NIC is about to die); the driver loop ends
        # when rank 0 aborts.
        yield from mpi.recv(0, tag=99)
        return "unreachable"

    world = mpi_world(cluster)
    errors = {}

    def wrap(rank, body):
        mpi = world[rank]
        try:
            yield from mpi.init()
            yield from body(mpi)
        except MpiFatalError as exc:
            errors[rank] = str(exc)

    cluster[0].host.spawn(wrap(0, rank0), "r0")
    cluster[1].host.spawn(wrap(1, rank1), "r1")
    sim = cluster.sim
    deadline = sim.now + 120_000_000.0
    while not errors and sim.peek() <= deadline:
        sim.step()
    assert 0 in errors
    assert "GM send error" in errors[0]


def test_isend_rejects_non_bytes():
    cluster = build_cluster(2, flavor="gm")
    caught = []

    def rank0(mpi):
        try:
            yield from mpi.isend(1, 3.14, tag=0)
        except TypeError as exc:
            caught.append(str(exc))
        return "done"

    def rank1(mpi):
        return "idle"
        yield  # pragma: no cover

    done, errors = run_ranks(cluster, [rank0, rank1])
    assert caught
