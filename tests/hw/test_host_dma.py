"""Unit tests for the host machine and DMA engine."""

import pytest

from repro.errors import BusError, HostCrashed
from repro.hw import (
    PAGE_SIZE,
    USER_DMA_BASE,
    DmaEngine,
    Host,
    IsrBits,
    Nic,
    PciBus,
    StatusRegister,
)
from repro.payload import Payload
from repro.sim import Simulator


@pytest.fixture
def host():
    return Host(Simulator(), "host0")


class TestHostMemory:
    def test_alloc_registers_pages_in_hash_table(self, host):
        region = host.alloc_dma(2 * PAGE_SIZE, owner_port=3)
        assert region.addr >= USER_DMA_BASE
        page = region.addr // PAGE_SIZE
        assert host.page_hash_table.lookup(3, page) == region.addr
        assert host.page_hash_table.lookup(3, page + 1) == region.addr + PAGE_SIZE

    def test_alloc_distinct_addresses(self, host):
        a = host.alloc_dma(100, owner_port=0)
        b = host.alloc_dma(100, owner_port=0)
        assert a.addr != b.addr
        assert b.addr >= a.addr + PAGE_SIZE  # page-granular spacing

    def test_region_at_resolves_interior_addresses(self, host):
        region = host.alloc_dma(1000, owner_port=0)
        assert host.region_at(region.addr + 500, 100) is region

    def test_region_at_unmapped_raises(self, host):
        with pytest.raises(BusError):
            host.region_at(USER_DMA_BASE + 0x5000_0000)

    def test_free_unmaps(self, host):
        region = host.alloc_dma(100, owner_port=0)
        host.free_dma(region)
        with pytest.raises(BusError):
            host.region_at(region.addr)

    def test_kernel_address_predicate(self, host):
        assert host.is_kernel_address(0x1000)
        assert not host.is_kernel_address(USER_DMA_BASE)

    def test_alloc_invalid_size(self, host):
        with pytest.raises(ValueError):
            host.alloc_dma(0, owner_port=0)

    def test_page_hash_remove_port(self, host):
        host.alloc_dma(PAGE_SIZE, owner_port=1)
        host.alloc_dma(PAGE_SIZE, owner_port=2)
        host.page_hash_table.remove_port(1)
        assert len(host.page_hash_table) == 1


class TestHostCpu:
    def test_cpu_execute_accumulates_by_category(self, host):
        sim = host.sim

        def work():
            yield from host.cpu_execute(2.0, "send")
            yield from host.cpu_execute(3.0, "send")
            yield from host.cpu_execute(1.0, "recv")

        sim.spawn(work())
        sim.run()
        assert host.cpu_time["send"] == pytest.approx(5.0)
        assert host.cpu_time["recv"] == pytest.approx(1.0)

    def test_cpu_serializes_processes(self, host):
        sim = host.sim
        ends = []

        def work(tag):
            yield from host.cpu_execute(10.0, tag)
            ends.append((tag, sim.now))

        sim.spawn(work("a"))
        sim.spawn(work("b"))
        sim.run()
        assert ends == [("a", 10.0), ("b", 20.0)]


class TestHostCrash:
    def test_crash_interrupts_processes(self, host):
        sim = host.sim
        outcome = []

        def app():
            try:
                yield sim.timeout(1000.0)
                outcome.append("finished")
            except HostCrashed:
                outcome.append("killed")

        host.spawn(app(), "app")

        def trigger():
            yield sim.timeout(10.0)
            host.crash("test crash")

        sim.spawn(trigger())
        sim.run()
        assert outcome == ["killed"]
        assert host.crashed

    def test_crashed_host_rejects_new_work(self, host):
        host.crash("dead")
        with pytest.raises(HostCrashed):
            host.alloc_dma(100, owner_port=0)

    def test_crashed_host_ignores_irqs(self, host):
        calls = []
        host.register_irq_handler(9, calls.append)
        host.crash("dead")
        host.raise_irq(9, "cause")
        assert calls == []

    def test_irq_dispatch(self, host):
        calls = []
        host.register_irq_handler(9, calls.append)
        host.raise_irq(9, "hello")
        host.raise_irq(5, "nobody-listens")  # no handler: ignored
        assert calls == ["hello"]


class TestDmaEngine:
    def _engine(self):
        sim = Simulator()
        host = Host(sim, "h")
        status = StatusRegister()
        pci = PciBus(sim, bandwidth=100.0, setup=1.0)
        return sim, host, DmaEngine(sim, host, pci, status), status

    def test_read_from_host_returns_slice(self):
        sim, host, dma, status = self._engine()
        region = host.alloc_dma(1000, owner_port=0)
        region.payload = Payload.from_bytes(b"x" * 400 + b"y" * 600)
        results = []

        def run():
            result = yield from dma.read_from_host(region.addr + 400, 100)
            results.append(result)

        sim.spawn(run())
        sim.run()
        [result] = results
        assert result.ok
        assert result.payload.data == b"y" * 100
        assert status.test(IsrBits.HOST_DMA_DONE)
        assert sim.now == pytest.approx(1.0 + 100 / 100.0)

    def test_write_to_host_deposits_payload(self):
        sim, host, dma, _ = self._engine()
        region = host.alloc_dma(256, owner_port=0)
        payload = Payload.from_bytes(b"abc" * 10)

        def run():
            yield from dma.write_to_host(region.addr, payload)

        sim.spawn(run())
        sim.run()
        assert region.payload == payload

    def test_kernel_address_crashes_host(self):
        sim, host, dma, _ = self._engine()
        results = []

        def run():
            result = yield from dma.write_to_host(
                0x2000, Payload.phantom(64))
            results.append(result)

        sim.spawn(run())
        sim.run()
        assert host.crashed
        assert results[0].error == "host-crash"

    def test_unmapped_user_address_master_aborts(self):
        sim, host, dma, _ = self._engine()
        results = []

        def run():
            result = yield from dma.read_from_host(
                USER_DMA_BASE + 0x100_0000, 64)
            results.append(result)

        sim.spawn(run())
        sim.run()
        assert not host.crashed
        assert results[0].error == "master-abort"
        assert dma.errors == 1

    def test_disabled_engine_refuses(self):
        sim, host, dma, _ = self._engine()
        region = host.alloc_dma(64, owner_port=0)
        dma.enabled = False
        results = []

        def run():
            result = yield from dma.read_from_host(region.addr, 16)
            results.append(result)

        sim.spawn(run())
        sim.run()
        assert results[0].error == "dma-disabled"


class TestNic:
    def test_timer_expiry_sets_isr_bit(self):
        sim = Simulator()
        host = Host(sim, "h")
        nic = Nic(sim, host, node_id=0)
        nic.timers[1].set_us(100.0)
        sim.run()
        assert nic.status.test(IsrBits.IT1_EXPIRED)

    def test_unmasked_timer_interrupts_host(self):
        sim = Simulator()
        host = Host(sim, "h")
        nic = Nic(sim, host, node_id=0)
        irqs = []
        host.register_irq_handler(Nic.IRQ_LINE, irqs.append)
        nic.status.enable_interrupt(IsrBits.IT1_EXPIRED)
        nic.timers[1].set_us(100.0)
        sim.run()
        assert irqs == [IsrBits.IT1_EXPIRED]

    def test_masked_timer_does_not_interrupt(self):
        sim = Simulator()
        host = Host(sim, "h")
        nic = Nic(sim, host, node_id=0)
        irqs = []
        host.register_irq_handler(Nic.IRQ_LINE, irqs.append)
        nic.timers[1].set_us(100.0)
        sim.run()
        assert irqs == []

    def test_recv_ring_backpressure_drops(self):
        sim = Simulator()
        host = Host(sim, "h")
        nic = Nic(sim, host, node_id=0)
        from repro.hw import RECV_RING_SLOTS
        for i in range(RECV_RING_SLOTS):
            assert nic.deliver_packet(("pkt", i))
        assert not nic.deliver_packet(("pkt", "overflow"))
        assert nic.dropped_arrivals == 1

    def test_reset_clears_board_state(self):
        sim = Simulator()
        host = Host(sim, "h")
        nic = Nic(sim, host, node_id=0)
        nic.deliver_packet("pkt")
        nic.timers[0].set_us(50.0)
        nic.status.enable_interrupt(IsrBits.FATAL)
        nic.mcp = object()
        nic.reset()
        assert len(nic.recv_ring) == 0
        assert nic.status.imr == 0
        assert not nic.timers[0].armed
        assert nic.mcp is None
        assert nic.resets == 1

    def test_reset_preserves_sram(self):
        """Card reset does NOT clear SRAM; the FTD must do so explicitly."""
        sim = Simulator()
        host = Host(sim, "h")
        nic = Nic(sim, host, node_id=0)
        nic.sram.write_word(0x100, 0xCAFEBABE)
        nic.reset()
        assert nic.sram.read_word(0x100) == 0xCAFEBABE
