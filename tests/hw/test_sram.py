"""Unit tests for the LANai SRAM model."""

import pytest

from repro.errors import BusError
from repro.hw import Sram


def test_word_roundtrip_big_endian():
    sram = Sram(1024)
    sram.write_word(0, 0x01020304)
    assert sram.read_bytes(0, 4) == b"\x01\x02\x03\x04"
    assert sram.read_word(0) == 0x01020304


def test_word_truncates_to_32_bits():
    sram = Sram(1024)
    sram.write_word(4, 0x1_FFFF_FFFF)
    assert sram.read_word(4) == 0xFFFFFFFF


def test_bytes_roundtrip():
    sram = Sram(1024)
    sram.write_bytes(100, b"hello")
    assert sram.read_bytes(100, 5) == b"hello"


def test_words_roundtrip():
    sram = Sram(1024)
    sram.write_words(0, [1, 2, 3])
    assert sram.read_words(0, 3) == [1, 2, 3]


def test_out_of_bounds_read_raises_bus_error():
    sram = Sram(64)
    with pytest.raises(BusError):
        sram.read_word(64)
    with pytest.raises(BusError):
        sram.read_bytes(60, 8)


def test_negative_address_raises_bus_error():
    sram = Sram(64)
    with pytest.raises(BusError):
        sram.read_word(-4)


def test_out_of_bounds_write_raises_bus_error():
    sram = Sram(64)
    with pytest.raises(BusError):
        sram.write_bytes(62, b"abcd")


def test_clear_zeroes_everything():
    sram = Sram(128)
    sram.write_bytes(0, b"\xff" * 128)
    sram.clear()
    assert sram.read_bytes(0, 128) == b"\x00" * 128


def test_flip_bit_is_involutive():
    sram = Sram(64)
    sram.write_word(0, 0xAAAAAAAA)
    sram.flip_bit(5)
    assert sram.read_word(0) != 0xAAAAAAAA
    sram.flip_bit(5)
    assert sram.read_word(0) == 0xAAAAAAAA


def test_flip_bit_msb_first_convention():
    sram = Sram(64)
    sram.flip_bit(0)  # bit 0 == MSB of byte 0 == MSB of word 0
    assert sram.read_word(0) == 0x80000000


def test_flip_bit_out_of_range():
    sram = Sram(64)
    with pytest.raises(BusError):
        sram.flip_bit(64 * 8)


def test_snapshot_defaults_to_whole_memory():
    sram = Sram(64)
    sram.write_bytes(10, b"xyz")
    snap = sram.snapshot()
    assert len(snap) == 64
    assert snap[10:13] == b"xyz"


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        Sram(0)
    with pytest.raises(ValueError):
        Sram(1023)  # not a word multiple
