"""Unit tests for status registers and interval timers."""

import pytest

from repro.hw import IntervalTimer, IsrBits, StatusRegister, TIMER_TICK_US
from repro.sim import Simulator


class TestStatusRegister:
    def test_set_and_test_bits(self):
        reg = StatusRegister()
        reg.set_bits(IsrBits.SEND_POSTED)
        assert reg.test(IsrBits.SEND_POSTED)
        assert not reg.test(IsrBits.RECV_POSTED)

    def test_clear_bits(self):
        reg = StatusRegister()
        reg.set_bits(IsrBits.SEND_POSTED | IsrBits.RECV_POSTED)
        reg.clear_bits(IsrBits.SEND_POSTED)
        assert not reg.test(IsrBits.SEND_POSTED)
        assert reg.test(IsrBits.RECV_POSTED)

    def test_listener_fires_on_set(self):
        reg = StatusRegister()
        seen = []
        reg.add_listener(seen.append)
        reg.set_bits(IsrBits.IT1_EXPIRED)
        assert seen == [IsrBits.IT1_EXPIRED]

    def test_pending_interrupts_respects_mask(self):
        reg = StatusRegister()
        reg.set_bits(IsrBits.IT0_EXPIRED | IsrBits.IT1_EXPIRED)
        reg.enable_interrupt(IsrBits.IT1_EXPIRED)
        assert reg.pending_interrupts() == IsrBits.IT1_EXPIRED

    def test_disable_interrupt(self):
        reg = StatusRegister()
        reg.enable_interrupt(IsrBits.IT1_EXPIRED)
        reg.disable_interrupt(IsrBits.IT1_EXPIRED)
        reg.set_bits(IsrBits.IT1_EXPIRED)
        assert reg.pending_interrupts() == 0

    def test_reset_clears_isr_and_imr_but_keeps_listeners(self):
        reg = StatusRegister()
        seen = []
        reg.add_listener(seen.append)
        reg.set_bits(IsrBits.FATAL)
        reg.enable_interrupt(IsrBits.FATAL)
        reg.reset()
        assert reg.isr == 0 and reg.imr == 0
        reg.set_bits(IsrBits.SEND_POSTED)
        assert len(seen) == 2  # listener survived the reset

    def test_describe_bits(self):
        text = IsrBits.describe(IsrBits.IT0_EXPIRED | IsrBits.FATAL)
        assert "IT0_EXPIRED" in text and "FATAL" in text
        assert IsrBits.describe(0) == "0"


class TestIntervalTimer:
    def test_expires_after_interval(self):
        sim = Simulator()
        timer = IntervalTimer(sim, 0)
        fired = []
        timer.on_expire = lambda t: fired.append(sim.now)
        timer.set_us(100.0)
        sim.run()
        assert fired == [100.0]

    def test_count_ticks_are_half_microseconds(self):
        sim = Simulator()
        timer = IntervalTimer(sim, 1)
        fired = []
        timer.on_expire = lambda t: fired.append(sim.now)
        timer.set_count(1600)  # 1600 * 0.5us = 800us
        sim.run()
        assert fired == [pytest.approx(1600 * TIMER_TICK_US)]

    def test_rearm_cancels_previous_expiry(self):
        sim = Simulator()
        timer = IntervalTimer(sim, 1)
        fired = []
        timer.on_expire = lambda t: fired.append(sim.now)
        timer.set_us(100.0)

        def rearm():
            yield sim.timeout(50.0)
            timer.set_us(100.0)  # push deadline to t=150

        sim.spawn(rearm())
        sim.run()
        assert fired == [150.0]

    def test_periodic_rearm_never_fires(self):
        """A healthy L_timer() resetting IT1 keeps the watchdog silent."""
        sim = Simulator()
        timer = IntervalTimer(sim, 1)
        fired = []
        timer.on_expire = lambda t: fired.append(sim.now)
        timer.set_us(1000.0)

        def healthy_firmware():
            for _ in range(20):
                yield sim.timeout(800.0)
                timer.set_us(1000.0)

        sim.spawn(healthy_firmware())
        sim.run(until=16000.0)
        assert fired == []
        # Once the firmware "hangs" (stops re-arming), the timer fires.
        sim.run()
        assert len(fired) == 1

    def test_stop_disarms(self):
        sim = Simulator()
        timer = IntervalTimer(sim, 2)
        fired = []
        timer.on_expire = lambda t: fired.append(sim.now)
        timer.set_us(10.0)
        timer.stop()
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_deadline_visibility(self):
        sim = Simulator()
        timer = IntervalTimer(sim, 0)
        assert timer.deadline is None
        timer.set_us(42.0)
        assert timer.deadline == 42.0

    def test_invalid_intervals_rejected(self):
        sim = Simulator()
        timer = IntervalTimer(sim, 0)
        with pytest.raises(ValueError):
            timer.set_us(0)
        with pytest.raises(ValueError):
            timer.set_count(0)
        with pytest.raises(ValueError):
            timer.set_count(IntervalTimer.MAX_COUNT + 1)
