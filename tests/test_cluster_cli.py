"""Tests for the cluster facade, the top-level API and the CLI."""

import pytest

import repro
from repro.cluster import build_cluster
from repro.gm.driver import GmDriver
from repro.ftgm.driver import FtgmDriver


class TestBuildCluster:
    def test_gm_flavor(self):
        cluster = build_cluster(2, flavor="gm")
        assert len(cluster) == 2
        assert isinstance(cluster[0].driver, GmDriver)
        assert not isinstance(cluster[0].driver, FtgmDriver)

    def test_ftgm_flavor_starts_ftds(self):
        cluster = build_cluster(2, flavor="ftgm")
        assert isinstance(cluster[0].driver, FtgmDriver)
        assert all(node.driver.ftd.running for node in cluster.nodes)
        assert len(cluster.ftds()) == 2

    def test_driver_class_flavor(self):
        cluster = build_cluster(2, flavor=FtgmDriver)
        assert isinstance(cluster[1].driver, FtgmDriver)

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError):
            build_cluster(2, flavor="tcp")

    def test_minimum_two_nodes(self):
        with pytest.raises(ValueError):
            build_cluster(1)

    def test_boot_installs_routes_everywhere(self):
        cluster = build_cluster(4, flavor="gm")
        for node in cluster.nodes:
            others = {n.node_id for n in cluster.nodes} - {node.node_id}
            assert set(node.mcp.routing_table) == others
            assert set(node.driver.host_routes) == others

    def test_boot_is_deterministic(self):
        a = build_cluster(3, flavor="gm", seed=5)
        b = build_cluster(3, flavor="gm", seed=5)
        assert a.sim.now == b.sim.now
        assert a[1].mcp.routing_table == b[1].mcp.routing_table

    def test_interpreted_nodes_selectable(self):
        cluster = build_cluster(2, flavor="gm", interpreted_nodes=[1])
        assert cluster[1].mcp.interpreted
        assert cluster[1].mcp.cpu is not None
        assert not cluster[0].mcp.interpreted
        assert cluster[0].mcp.cpu is None

    def test_no_boot_leaves_routes_empty(self):
        cluster = build_cluster(2, flavor="gm", boot=False)
        assert cluster[0].mcp.routing_table == {}

    def test_eight_node_star(self):
        cluster = build_cluster(8, flavor="gm")
        assert set(cluster[7].mcp.routing_table) == set(range(7))


class TestTopLevelApi:
    def test_public_names(self):
        assert callable(repro.build_cluster)
        assert repro.Payload is not None
        assert issubclass(repro.GmSendError, repro.ReproError)
        assert repro.__version__

    def test_build_via_package_root(self):
        cluster = repro.build_cluster(2)
        assert isinstance(cluster, repro.MyrinetCluster)


class TestCli:
    def test_fig45(self, capsys):
        from repro.cli import main
        assert main(["fig45"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4 duplicate, naive GM" in out
        assert "YES" in out

    def test_table1_small(self, capsys):
        from repro.cli import main
        assert main(["table1", "--runs", "4"]) == 0
        out = capsys.readouterr().out
        assert "Failure Category" in out

    def test_effectiveness_small(self, capsys):
        from repro.cli import main
        assert main(["effectiveness", "--runs", "4"]) == 0
        out = capsys.readouterr().out
        assert "Recovery effectiveness" in out

    def test_requires_command(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main([])
