"""Unit tests for the simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(5.0)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [5.0, 7.5]
    assert sim.now == 7.5


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(1.0, value="hello")
        got.append(value)

    sim.spawn(proc())
    sim.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_wakes_waiter_with_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    def firer():
        yield sim.timeout(3.0)
        ev.succeed(42)

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == [(3.0, 42)]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_escapes_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("nobody caught me"))
    with pytest.raises(ValueError):
        sim.run()


def test_defused_failure_does_not_escape():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("quiet")).defuse()
    sim.run()  # should not raise


def test_process_return_value_propagates():
    sim = Simulator()
    results = []

    def child():
        yield sim.timeout(1.0)
        return "child-result"

    def parent():
        value = yield sim.spawn(child())
        results.append(value)

    sim.spawn(parent())
    sim.run()
    assert results == ["child-result"]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1.0)
        raise RuntimeError("child failed")

    def parent():
        try:
            yield sim.spawn(child())
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(parent())
    sim.run()
    assert caught == ["child failed"]


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    got = []

    def proc():
        yield sim.timeout(10.0)
        value = yield ev  # processed long ago
        got.append((sim.now, value))

    sim.spawn(proc())
    sim.run()
    assert got == [(10.0, "early")]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    order = []

    def mk(tag):
        def proc():
            yield sim.timeout(1.0)
            order.append(tag)
        return proc

    for tag in ("a", "b", "c"):
        sim.spawn(mk(tag)())
    sim.run()
    assert order == ["a", "b", "c"]


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept-through")
        except Interrupt as exc:
            log.append(("interrupted", sim.now, exc.cause))

    proc = sim.spawn(sleeper())

    def killer():
        yield sim.timeout(5.0)
        proc.interrupt("crash")

    sim.spawn(killer())
    sim.run()
    assert log == [("interrupted", 5.0, "crash")]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.spawn(quick())

    def late_killer():
        yield sim.timeout(10.0)
        proc.interrupt("too late")

    sim.spawn(late_killer())
    sim.run()  # should not raise


def test_uncaught_interrupt_terminates_quietly():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    proc = sim.spawn(sleeper())

    def killer():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.spawn(killer())
    sim.run()
    assert not proc.is_alive


def test_any_of_fires_on_first():
    sim = Simulator()
    got = []

    def proc():
        t1 = sim.timeout(5.0, value="fast")
        t2 = sim.timeout(9.0, value="slow")
        result = yield AnyOf(sim, [t1, t2])
        got.append((sim.now, sorted(result.values())))

    sim.spawn(proc())
    sim.run()
    assert got == [(5.0, ["fast"])]


def test_all_of_waits_for_all():
    sim = Simulator()
    got = []

    def proc():
        t1 = sim.timeout(5.0, value="fast")
        t2 = sim.timeout(9.0, value="slow")
        result = yield AllOf(sim, [t1, t2])
        got.append((sim.now, sorted(result.values())))

    sim.spawn(proc())
    sim.run()
    assert got == [(9.0, ["fast", "slow"])]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    got = []

    def proc():
        result = yield AllOf(sim, [])
        got.append(result)

    sim.spawn(proc())
    sim.run()
    assert got == [{}]


def test_run_until_stops_clock_exactly():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(10.0)

    sim.spawn(proc())
    sim.run(until=35.0)
    assert sim.now == 35.0
    sim.run(until=40.0)
    assert sim.now == 40.0


def test_run_backwards_rejected():
    sim = Simulator()
    sim.run(until=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_self_interrupt_rejected():
    sim = Simulator()
    errors = []

    def selfish():
        yield sim.timeout(1.0)
        try:
            proc.interrupt()
        except SimulationError as exc:
            errors.append(str(exc))

    proc = sim.spawn(selfish())
    sim.run()
    assert errors and "interrupt itself" in errors[0]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(7.0)
    assert sim.peek() == 7.0
    sim.run()
    assert sim.peek() == float("inf")
