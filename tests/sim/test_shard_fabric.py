"""Topology-aware sharding at scale: plans and 64-node identity."""

from repro.cluster import build_cluster, plan_shards
from repro.net.fabric import fat_tree_dimensions
from repro.payload import Payload


class TestPlanShardsLargeN:
    def test_uneven_partition_stays_balanced(self):
        plan = plan_shards(250, 8)
        sizes = [plan.node_shard.count(s) for s in range(plan.n_shards)]
        assert sum(sizes) == 250
        assert max(sizes) - min(sizes) <= 1

    def test_shards_beyond_nodes_clamp(self):
        plan = plan_shards(5, 64)
        assert plan.n_shards == 5
        assert plan.node_shard == (0, 1, 2, 3, 4)

    def test_rack_span_keeps_racks_whole(self):
        # 64-node radix-8 fat-tree: 4 hosts per edge switch.
        half, _pods = fat_tree_dimensions(64, 8)
        plan = plan_shards(64, 4, rack_span=half)
        for rack_start in range(0, 64, half):
            rack = plan.node_shard[rack_start:rack_start + half]
            assert len(set(rack)) == 1, \
                "rack at %d straddles wheels %s" % (rack_start, set(rack))

    def test_rack_span_clamps_shards_to_racks(self):
        # 8 nodes in racks of 4: at most 2 rack-aligned shards.
        plan = plan_shards(8, 6, rack_span=4)
        assert plan.n_shards == 2

    def test_partial_last_rack_allowed(self):
        plan = plan_shards(10, 2, rack_span=4)   # racks of 4, 4, 2
        assert len(plan.node_shard) == 10
        for rack_start in range(0, 10, 4):
            rack = plan.node_shard[rack_start:rack_start + 4]
            assert len(set(rack)) == 1

    def test_fabric_keeps_dedicated_wheel_at_scale(self):
        plan = plan_shards(256, 8, rack_span=4)
        assert plan.fabric_shard == plan.n_shards
        assert plan.n_wheels == plan.n_shards + 1


class TestShardedFatTreePlacement:
    def test_edge_switches_ride_their_racks_wheel(self):
        cluster = build_cluster(64, flavor="gm", seed=11,
                                topology="fat-tree", radix=8, shards=4)
        plan = cluster.shard_plan
        assert plan is not None and plan.n_shards == 4
        wheels = {id(w): i
                  for i, w in enumerate(cluster.sim.wheels)}
        for node in cluster.nodes:
            port = cluster.fabric.nic_ports[node.node_id]
            edge = port.link.other(port).switch
            assert wheels[id(edge.sim)] == plan.wheel_of(node.node_id)
        # Aggregation and core switches stay on the fabric wheel.
        for switch in cluster.fabric.switches:
            if getattr(switch, "tier", None) in ("agg", "core", "spine"):
                assert wheels[id(switch.sim)] == plan.fabric_shard


def _drive_traffic(cluster, pairs):
    """Send one cross-pod message per pair; return delivery fingerprints."""
    results = {}

    def flow(src, dst):
        sport = yield from cluster[src].driver.open_port(2)
        dport = yield from cluster[dst].driver.open_port(2)
        data = (b"shard-identity %3d -> %3d " % (src, dst)) * 4
        payload = Payload(len(data), data=data)
        yield from dport.provide_receive_buffer(len(data))
        yield from sport.send_and_wait(payload, dst, 2)
        event = yield from dport.receive_message(timeout=50_000.0)
        results[(src, dst)] = (None if event is None
                               else event.payload.fingerprint)

    for src, dst in pairs:
        cluster[src].host.spawn(flow(src, dst), "flow%d-%d" % (src, dst))
    cluster.sim.run(until=cluster.sim.now + 100_000.0)
    return results


class TestMergedScheduleIdentity:
    def test_64_node_sharded_boot_and_traffic_match_serial(self):
        pairs = [(0, 36), (17, 55)]          # both cross pods
        snapshots = []
        for shards in (1, 4):
            cluster = build_cluster(64, flavor="gm", seed=11,
                                    topology="fat-tree", radix=8,
                                    shards=shards)
            deliveries = _drive_traffic(cluster, pairs)
            tables = [dict(node.mcp.routing_table)
                      for node in cluster.nodes]
            stats = [dict(node.mcp.stats) for node in cluster.nodes]
            snapshots.append((deliveries, tables, stats))
        serial, sharded = snapshots
        assert serial[0] == sharded[0]
        assert all(fp is not None for fp in serial[0].values())
        assert serial[1] == sharded[1]
        assert serial[2] == sharded[2]
