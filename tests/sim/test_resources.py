"""Unit tests for Resource, Store and Pipe."""

import pytest

from repro.sim import Pipe, Resource, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    order = []

    def worker(tag, hold):
        req = res.request()
        yield req
        order.append(("start", tag, sim.now))
        yield sim.timeout(hold)
        res.release()
        order.append(("end", tag, sim.now))

    sim.spawn(worker("a", 10.0))
    sim.spawn(worker("b", 10.0))
    sim.spawn(worker("c", 10.0))
    sim.run()
    starts = {tag: t for kind, tag, t in order if kind == "start"}
    assert starts["a"] == 0.0
    assert starts["b"] == 0.0
    assert starts["c"] == 10.0  # queued behind the first pair


def test_resource_fifo_fairness():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    starts = []

    def worker(tag):
        req = res.request()
        yield req
        starts.append(tag)
        yield sim.timeout(1.0)
        res.release()

    for tag in range(5):
        sim.spawn(worker(tag))
    sim.run()
    assert starts == [0, 1, 2, 3, 4]


def test_resource_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_acquire_helper_and_utilization():
    sim = Simulator()
    res = Resource(sim)

    def worker():
        yield from res.acquire(4.0)
        yield sim.timeout(6.0)  # idle time

    sim.spawn(worker())
    sim.run()
    assert res.utilization() == pytest.approx(0.4)


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    store.put("x")
    sim.spawn(consumer())
    sim.run()
    assert got == [(0.0, "x")]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(5.0)
        store.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(5.0, "late")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    for i in range(3):
        store.put(i)
    assert store.try_get() == (True, 0)
    assert store.try_get() == (True, 1)
    assert store.try_get() == (True, 2)
    assert store.try_get() == (False, None)


def test_store_capacity_overflow():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put("a")
    assert store.full
    with pytest.raises(OverflowError):
        store.put("b")


def test_store_put_bypasses_capacity_when_getter_waits():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    sim.spawn(consumer())
    sim.run()
    store.put("direct")  # goes straight to the getter, not the buffer
    sim.run()
    assert got == ["direct"]
    assert len(store) == 0


def test_store_drain():
    sim = Simulator()
    store = Store(sim)
    for i in range(4):
        store.put(i)
    assert store.drain() == [0, 1, 2, 3]
    assert len(store) == 0


def test_pipe_transfer_time():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=100.0, setup=1.0)  # 100 B/us
    assert pipe.transfer_time(400) == pytest.approx(5.0)


def test_pipe_serializes_transfers():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=100.0, setup=0.0)
    ends = []

    def mover(tag, nbytes):
        yield from pipe.transfer(nbytes)
        ends.append((tag, sim.now))

    sim.spawn(mover("a", 1000))  # 10 us
    sim.spawn(mover("b", 1000))  # queued: ends at 20 us
    sim.run()
    assert ends == [("a", 10.0), ("b", 20.0)]
    assert pipe.bytes_moved == 2000


def test_pipe_rejects_negative_size():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=1.0)

    def mover():
        yield from pipe.transfer(-1)

    proc = sim.spawn(mover())
    proc.defuse()
    sim.run()
    assert isinstance(proc.value, ValueError)


def test_pipe_rejects_bad_bandwidth():
    sim = Simulator()
    with pytest.raises(ValueError):
        Pipe(sim, bandwidth=0.0)
