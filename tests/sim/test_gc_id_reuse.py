"""Regression: event scheduling state must not be keyed by ``id()``.

An earlier kernel tracked scheduled events in a set of ``id(event)``
values.  Once a triggered event was garbage collected, CPython happily
hands its address to the next allocation — so a brand-new event could be
born "already triggered" and refuse to fire.  The kernel now keeps the
flag on the event itself; these tests pin the behaviour down by forcing
address reuse and checking fresh events still work.
"""

import gc

from repro.sim import SimulationError, Simulator

import pytest


def test_fresh_event_after_gc_is_untriggered():
    """A new event allocated at a dead triggered event's address works."""
    sim = Simulator()
    reused = 0
    for _ in range(500):
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        assert ev.triggered
        addr = id(ev)
        del ev
        # With __slots__ instances of identical layout, the freed block
        # is overwhelmingly likely to be handed straight back.
        fresh = sim.event()
        if id(fresh) == addr:
            reused += 1
            assert not fresh.triggered, \
                "new event inherited triggered state from a dead one"
            fresh.succeed("y")  # must not raise "already triggered"
            sim.run()
        del fresh
    # The regression is only exercised when reuse actually happens; on
    # CPython it happens essentially every iteration.
    assert reused > 0, "allocator never reused an address; test inert"


def test_fresh_timeout_after_gc_collect():
    """Same shape across an explicit collection (generational GC)."""
    sim = Simulator()
    dead_ids = set()
    for _ in range(50):
        t = sim.timeout(1.0)
        sim.run()
        dead_ids.add(id(t))
        del t
    gc.collect()
    for _ in range(200):
        t = sim.timeout(1.0)
        if id(t) in dead_ids:
            assert t.triggered  # scheduled-on-creation, as always
        waiters = []
        t.callbacks.append(waiters.append)
        sim.run()
        assert waiters, "timeout never fired"
        del t


def test_double_trigger_still_rejected():
    """The flag must still refuse re-triggering the *same* event."""
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("boom"))
    sim.run()
    # ...and after processing, too.
    with pytest.raises(SimulationError):
        ev.succeed(3)
