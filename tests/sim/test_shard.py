"""Sharded simulation: partitioner, scheduler, boundaries, identity.

The load-bearing invariant: at equal seeds a sharded run is
*byte-identical* to the serial run — outcomes, rendering, summaries.
The merged schedule guarantees it by construction (shared tie-break
counter, global-minimum pop); the windowed schedule guarantees it by the
conservative lookahead argument.  Both are exercised here, end to end,
across every executor the engine offers.
"""

import pytest

from repro.cluster import build_cluster, plan_shards
from repro.sim import (LookaheadError, ShardChannel, ShardedScheduler,
                       SimulationError, Simulator, shards_from_env)


class TestPlanShards:
    def test_contiguous_blocks_cover_all_nodes(self):
        plan = plan_shards(8, 4)
        assert plan.n_shards == 4
        assert plan.node_shard == (0, 0, 1, 1, 2, 2, 3, 3)

    def test_node_zero_lands_on_wheel_zero(self):
        for nodes, shards in ((2, 2), (4, 3), (16, 5)):
            assert plan_shards(nodes, shards).wheel_of(0) == 0

    def test_uneven_split_is_balanced(self):
        plan = plan_shards(5, 2)
        sizes = [plan.node_shard.count(s) for s in range(2)]
        assert sorted(sizes) == [2, 3]

    def test_shards_clamped_to_node_count(self):
        plan = plan_shards(2, 8)
        assert plan.n_shards == 2
        assert plan.node_shard == (0, 1)

    def test_fabric_gets_dedicated_wheel(self):
        plan = plan_shards(4, 4)
        assert plan.fabric_shard == 4
        assert plan.n_wheels == 5
        assert plan.fabric_shard not in plan.node_shard

    def test_single_shard_collapses_to_one_wheel(self):
        plan = plan_shards(4, 1)
        assert plan.n_wheels == 1
        assert plan.fabric_shard == 0

    def test_colocated_fabric(self):
        plan = plan_shards(4, 2, colocate_fabric=True)
        assert plan.fabric_shard == 0
        assert plan.n_wheels == 2


class TestShardsFromEnv:
    def test_default_is_serial_merged(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_SHARD_SCHEDULE", raising=False)
        assert shards_from_env() == (1, "merged")

    def test_env_roundtrip(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        monkeypatch.setenv("REPRO_SHARD_SCHEDULE", "windowed")
        assert shards_from_env() == (4, "windowed")

    def test_bad_count_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "lots")
        with pytest.raises(ValueError, match="REPRO_SHARDS"):
            shards_from_env()

    def test_bad_schedule_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        monkeypatch.setenv("REPRO_SHARD_SCHEDULE", "optimistic")
        with pytest.raises(ValueError, match="schedule"):
            shards_from_env()

    def test_nonpositive_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "0")
        assert shards_from_env()[0] == 1


def _ticker(sim, log, name, delays):
    for delay in delays:
        yield sim.timeout(delay)
        log.append((sim.now, name))


class TestMergedSchedule:
    """The simulated-shards mode: serial order, bit for bit."""

    def _serial_log(self, plan):
        sim = Simulator()
        log = []
        for name, delays in plan:
            sim.spawn(_ticker(sim, log, name, delays))
        sim.run()
        return log

    def _sharded_log(self, plan, n_wheels):
        sched = ShardedScheduler(n_wheels)
        log = []
        for index, (name, delays) in enumerate(plan):
            wheel = sched.wheels[index % n_wheels]
            wheel.spawn(_ticker(wheel, log, name, delays))
        sched.run()
        return log

    def test_interleaving_matches_serial(self):
        plan = [("a", [1.0, 2.0, 0.5]), ("b", [0.5, 0.5, 3.0]),
                ("c", [2.0, 0.25, 0.25])]
        assert self._sharded_log(plan, 3) == self._serial_log(plan)

    def test_same_instant_ties_break_identically(self):
        # Every process fires at the same instants; only the shared
        # sequence counter orders them — across wheels it must reproduce
        # the serial spawn-order tie-break.
        plan = [(name, [1.0, 1.0, 1.0]) for name in "abcd"]
        assert self._sharded_log(plan, 2) == self._serial_log(plan)

    def test_step_pops_global_minimum(self):
        sched = ShardedScheduler(2)
        log = []
        sched.wheels[0].spawn(_ticker(sched.wheels[0], log, "slow", [5.0]))
        sched.wheels[1].spawn(_ticker(sched.wheels[1], log, "fast", [1.0]))
        sched.run(until=0.0)  # drain the spawn bootstraps
        sched.step()
        assert log == [(1.0, "fast")]
        assert sched.now == 1.0

    def test_step_empty_schedule_raises(self):
        with pytest.raises(IndexError):
            ShardedScheduler(2).step()

    def test_run_backwards_rejected(self):
        sched = ShardedScheduler(2)
        sched.run(until=10.0)
        with pytest.raises(ValueError, match="backwards"):
            sched.run(until=5.0)

    def test_run_until_advances_every_wheel(self):
        sched = ShardedScheduler(3)
        sched.run(until=42.0)
        assert sched.now == 42.0
        assert all(w.now == 42.0 for w in sched.wheels)

    def test_facade_spawns_on_wheel_zero(self):
        sched = ShardedScheduler(2)
        log = []
        sched.spawn(_ticker(sched.wheels[0], log, "x", [1.0]))
        sched.run()
        assert log == [(1.0, "x")]


class _DeliverySpy:
    def __init__(self):
        self.pushed = []

    def push(self, when, packet, duplicate, on_accept):
        self.pushed.append((when, packet))


class TestShardChannel:
    def test_zero_lookahead_rejected(self):
        sched = ShardedScheduler(2)
        with pytest.raises(LookaheadError):
            ShardChannel(sched, sched.wheels[0], sched.wheels[1],
                         0.0, _DeliverySpy())

    def test_lookahead_is_min_over_channels(self):
        sched = ShardedScheduler(2, schedule="windowed")
        ShardChannel(sched, sched.wheels[0], sched.wheels[1],
                     0.4, _DeliverySpy())
        ShardChannel(sched, sched.wheels[1], sched.wheels[0],
                     0.2, _DeliverySpy())
        assert sched.lookahead == 0.2

    def test_merged_posts_pass_straight_through(self):
        sched = ShardedScheduler(2)  # merged => _direct
        spy = _DeliverySpy()
        channel = ShardChannel(sched, sched.wheels[0], sched.wheels[1],
                               0.4, spy)
        channel.post(1.5, "pkt", False, None)
        assert spy.pushed == [(1.5, "pkt")]
        assert not channel.buffer
        assert channel.handoffs == 1

    def test_windowed_posts_buffer_until_flush(self):
        sched = ShardedScheduler(2, schedule="windowed")
        spy = _DeliverySpy()
        channel = ShardChannel(sched, sched.wheels[0], sched.wheels[1],
                               0.4, spy)
        channel.post(1.5, "early", False, None)
        channel.post(2.5, "late", False, None)
        assert spy.pushed == []
        assert channel.peek() == 1.5
        released = channel.flush(2.0)  # strictly-exclusive bound
        assert released == 1
        assert spy.pushed == [(1.5, "early")]
        assert channel.flush(None) == 1
        assert [p for _, p in spy.pushed] == ["early", "late"]
        assert channel.batches == 2

    def test_flush_into_receivers_past_is_fatal(self):
        sched = ShardedScheduler(2, schedule="windowed")
        channel = ShardChannel(sched, sched.wheels[0], sched.wheels[1],
                               0.4, _DeliverySpy())
        sched.wheels[1]._now = 5.0
        channel.post(1.0, "stale", False, None)
        with pytest.raises(SimulationError, match="causality"):
            channel.flush(None)


class _FakeEndpoint:
    """Minimal Link endpoint pinned to a wheel."""

    def __init__(self, name, wheel):
        self.name = name
        self.wheel = wheel
        self.received = []

    def deliver_packet(self, packet):
        self.received.append(packet)
        return True


class TestCrossShardLink:
    def test_zero_latency_cross_shard_link_rejected(self):
        # The lookahead-deadlock regression: a zero-latency cable across
        # shards has an empty grant window and must fail at cable time.
        from repro.net.link import Link

        sched = ShardedScheduler(2)
        a = _FakeEndpoint("a", sched.wheels[0])
        b = _FakeEndpoint("b", sched.wheels[1])
        with pytest.raises(LookaheadError):
            Link(sched.wheels[0], a, b, latency=0.0)

    def test_zero_latency_same_wheel_link_allowed(self):
        from repro.net.link import Link

        sched = ShardedScheduler(2)
        a = _FakeEndpoint("a", sched.wheels[0])
        b = _FakeEndpoint("b", sched.wheels[0])
        Link(sched.wheels[0], a, b, latency=0.0)  # no boundary, no window

    def test_cross_shard_delivery_lands_on_receiver_wheel(self):
        from repro.net.link import Link

        sched = ShardedScheduler(2)
        a = _FakeEndpoint("a", sched.wheels[0])
        b = _FakeEndpoint("b", sched.wheels[1])
        link = Link(sched.wheels[0], a, b, latency=0.4)

        def push():
            ok = yield from link.send(a, _FakePacket(64))
            assert ok

        sched.wheels[0].spawn(push())
        sched.run()
        assert len(b.received) == 1
        stats = sched.boundary_stats()
        assert stats["handoffs"] == 1
        assert stats["lookahead_us"] == 0.4


class _FakePacket:
    def __init__(self, size):
        self.wire_size = size

    def describe(self):
        return "fake"


class TestEarliestLive:
    def test_sees_other_wheels(self):
        sched = ShardedScheduler(2)
        log = []
        sched.wheels[1].spawn(_ticker(sched.wheels[1], log, "x", [7.0]))
        sched.run(until=0.0)
        # Wheel 0 is empty, but the global horizon must see wheel 1.
        assert sched.wheels[0].earliest_live() == 7.0
        assert sched.earliest_live() == 7.0

    def test_mid_window_uses_floor(self):
        sched = ShardedScheduler(2, schedule="windowed")
        sched._window_floor = 3.0
        assert sched.wheels[0].earliest_live() == 3.0
        sched._window_floor = None

    def test_empty_schedule_is_unbounded(self):
        sched = ShardedScheduler(2)
        assert sched.earliest_live() == float("inf")


class TestClusterPartitioning:
    def test_sharded_cluster_places_nodes_and_fabric(self):
        cluster = build_cluster(4, shards=2)
        sched = cluster.sim
        assert isinstance(sched, ShardedScheduler)
        plan = cluster.shard_plan
        assert plan.n_shards == 2 and plan.n_wheels == 3
        for node in cluster.nodes:
            wheel = sched.wheels[plan.wheel_of(node.node_id)]
            assert node.host.sim is wheel
            assert node.nic.sim is wheel
        assert cluster.fabric_sim is sched.wheels[plan.fabric_shard]

    def test_serial_cluster_keeps_plain_simulator(self):
        cluster = build_cluster(2)
        assert isinstance(cluster.sim, Simulator)
        assert not isinstance(cluster.sim, ShardedScheduler)

    def test_env_selects_sharding(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        cluster = build_cluster(2)
        assert isinstance(cluster.sim, ShardedScheduler)


def _netfaults_doc(seed, **kwargs):
    from repro.exp.registry import get_experiment
    from repro.exp.runner import run_experiment

    experiment = get_experiment("netfaults")
    spec = experiment.build_spec({"runs_per_scenario": 1, "seed": seed})
    doc = run_experiment(spec, **kwargs).to_doc()
    doc.pop("manifest", None)  # wall time differs by construction
    return doc


class TestShardedIdentity:
    """Sharded runs are byte-identical to serial, per the acceptance bar."""

    @pytest.mark.parametrize("seed", [2003, 7])
    def test_merged_matches_serial(self, seed):
        serial = _netfaults_doc(seed)
        sharded = _netfaults_doc(seed, shards=4)
        assert sharded == serial

    def test_windowed_matches_serial(self):
        serial = _netfaults_doc(2003)
        windowed = _netfaults_doc(2003, shards=4,
                                  shard_schedule="windowed")
        assert windowed == serial

    def test_identity_survives_fork_server(self):
        serial = _netfaults_doc(2003)
        forked = _netfaults_doc(2003, shards=2, workers=2)
        assert forked == serial

    def test_identity_survives_spawn_pool(self):
        serial = _netfaults_doc(2003)
        pooled = _netfaults_doc(2003, shards=2, workers=2,
                                forkserver=False)
        assert pooled == serial

    def test_unknown_schedule_rejected_up_front(self):
        with pytest.raises(ValueError, match="schedule"):
            _netfaults_doc(2003, shards=2, shard_schedule="optimistic")
