"""Stateful property tests of Resource and Store invariants."""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


class StoreMachine(RuleBasedStateMachine):
    """A Store must behave as a FIFO queue with blocking getters."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.store = Store(self.sim)
        self.model = []          # items the store should hold
        self.collected = []      # items getters received
        self.expected = []       # items getters should receive, in order
        self.pending_gets = 0
        self.counter = 0

    @rule()
    def put(self):
        item = self.counter
        self.counter += 1
        if self.pending_gets:
            self.pending_gets -= 1
            self.expected.append(item)
        else:
            self.model.append(item)
        self.store.put(item)
        self.sim.run()

    @rule()
    def get(self):
        def getter():
            value = yield self.store.get()
            self.collected.append(value)

        if self.model:
            self.expected.append(self.model.pop(0))
        else:
            self.pending_gets += 1
        self.sim.spawn(getter())
        self.sim.run()

    @rule()
    def cancel_pending_get(self):
        # try_get on the real store vs model front.
        ok, value = self.store.try_get()
        if self.model:
            assert ok and value == self.model.pop(0)
        else:
            # Either empty, or all queued items are owed to blocked
            # getters (try_get bypasses them only when items exist).
            assert not ok

    @invariant()
    def fifo_order_preserved(self):
        assert self.collected == self.expected[:len(self.collected)]
        assert len(self.store) == len(self.model)


class ResourceMachine(RuleBasedStateMachine):
    """A Resource must never exceed capacity and must be FIFO-fair."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.capacity = 2
        self.resource = Resource(self.sim, capacity=self.capacity)
        self.active = 0
        self.max_seen = 0
        self.grant_order = []
        self.request_order = []
        self.counter = 0

    @rule(hold=st.floats(min_value=0.1, max_value=5.0))
    def acquire_and_hold(self, hold):
        tag = self.counter
        self.counter += 1
        self.request_order.append(tag)
        machine = self

        def worker():
            req = machine.resource.request()
            yield req
            machine.grant_order.append(tag)
            machine.active += 1
            machine.max_seen = max(machine.max_seen, machine.active)
            yield machine.sim.timeout(hold)
            machine.active -= 1
            machine.resource.release()

        self.sim.spawn(worker())

    @rule()
    def drain(self):
        self.sim.run()

    @invariant()
    def capacity_respected(self):
        assert self.max_seen <= self.capacity
        assert self.resource.in_use <= self.capacity

    @invariant()
    def grants_fifo(self):
        assert self.grant_order == \
            self.request_order[:len(self.grant_order)]


TestStoreMachine = pytest.mark.filterwarnings("ignore")(
    settings(max_examples=30, stateful_step_count=30,
             deadline=None)(StoreMachine).TestCase)
TestResourceMachine = pytest.mark.filterwarnings("ignore")(
    settings(max_examples=30, stateful_step_count=30,
             deadline=None)(ResourceMachine).TestCase)
