"""Tests for seeded RNG streams and the tracer."""


from repro.sim import SeededRng, TraceRecord, Tracer, derive_seed


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(42, "faults")
        b = SeededRng(42, "faults")
        assert [a.random() for _ in range(10)] \
            == [b.random() for _ in range(10)]

    def test_purpose_separates_streams(self):
        a = SeededRng(42, "faults")
        b = SeededRng(42, "workload")
        assert [a.random() for _ in range(10)] \
            != [b.random() for _ in range(10)]

    def test_spawn_children_independent(self):
        parent = SeededRng(1, "campaign")
        c1 = parent.spawn("run0")
        c2 = parent.spawn("run1")
        assert c1.random() != c2.random()
        # Children are reproducible too.
        again = SeededRng(1, "campaign").spawn("run0")
        assert SeededRng(1, "campaign/run0").random() == again.random()

    def test_derive_seed_stable(self):
        assert derive_seed(7, "x") == derive_seed(7, "x")
        assert derive_seed(7, "x") != derive_seed(8, "x")


class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer()
        tracer.emit(1.0, "nic0", "timer_expired", timer=1)
        tracer.emit(2.0, "nic1", "timer_expired", timer=0)
        tracer.emit(3.0, "nic0", "crc_drop")
        assert len(tracer) == 3
        assert len(tracer.filter(kind="timer_expired")) == 2
        assert len(tracer.filter(source="nic0")) == 2
        assert len(tracer.filter(kind="crc_drop", source="nic0")) == 1

    def test_first_and_last(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", "k", n=1)
        tracer.emit(2.0, "a", "k", n=2)
        assert tracer.first("k").details["n"] == 1
        assert tracer.last("k").details["n"] == 2
        assert tracer.first("missing") is None
        assert tracer.last("missing") is None

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, "a", "k")
        assert len(tracer) == 0

    def test_kind_filtering_at_emit(self):
        tracer = Tracer(kinds={"wanted"})
        tracer.emit(1.0, "a", "wanted")
        tracer.emit(2.0, "a", "unwanted")
        assert len(tracer) == 1

    def test_sink_callback(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        tracer.emit(1.0, "a", "k")
        assert len(seen) == 1
        assert isinstance(seen[0], TraceRecord)

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", "k")
        tracer.clear()
        assert len(tracer) == 0

    def test_record_str_contains_fields(self):
        record = TraceRecord(12.5, "ftd1", "ftd_woken", {"extra": 3})
        text = str(record)
        assert "ftd1" in text and "ftd_woken" in text and "extra=3" in text

    def test_empty_tracer_is_still_truthy_for_none_checks(self):
        """Regression: Tracer defines __len__, so `tracer or default`
        silently discarded empty tracers; all construction sites must
        use `is not None`."""
        import re
        import pathlib
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        offenders = []
        for path in src.rglob("*.py"):
            if re.search(r"tracer or Tracer", path.read_text()):
                offenders.append(str(path))
        assert offenders == []
