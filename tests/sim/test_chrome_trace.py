"""Chrome trace-event export round-trip."""

import json

from repro.sim import Tracer


def test_one_record_round_trips():
    tracer = Tracer()
    tracer.emit(123.5, "ftd0", "ftd_reroute_start", dest=2, attempt=1)
    doc = json.loads(tracer.to_chrome_trace())
    assert doc["displayTimeUnit"] == "ms"
    (event,) = doc["traceEvents"]
    assert event["name"] == "ftd_reroute_start"
    assert event["ph"] == "i"
    assert event["ts"] == 123.5
    assert event["pid"] == "ftd0"
    assert event["args"] == {"dest": 2, "attempt": 1}


def test_non_json_details_are_stringified():
    tracer = Tracer()
    tracer.emit(1.0, "link", "cut", ends=("a", "b"))
    doc = json.loads(tracer.to_chrome_trace())
    assert doc["traceEvents"][0]["args"]["ends"] == repr(("a", "b"))


def test_export_is_deterministic():
    def build():
        tracer = Tracer()
        for i in range(5):
            tracer.emit(float(i), "src%d" % (i % 2), "kind", n=i)
        return tracer.to_chrome_trace()

    assert build() == build()
