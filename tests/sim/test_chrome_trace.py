"""Chrome trace-event export round-trip."""

import json

from repro.sim import Tracer, chrome_trace_doc


def _split(doc):
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    data = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    return meta, data


def test_one_record_round_trips():
    tracer = Tracer()
    tracer.emit(123.5, "ftd0", "ftd_reroute_start", dest=2, attempt=1)
    doc = json.loads(tracer.to_chrome_trace())
    assert doc["displayTimeUnit"] == "ms"
    meta, (event,) = _split(doc)
    assert event["name"] == "ftd_reroute_start"
    assert event["ph"] == "i"
    assert event["ts"] == 123.5
    assert isinstance(event["pid"], int)
    assert event["tid"] == event["pid"]
    assert event["args"] == {"dest": 2, "attempt": 1}
    names = {(m["name"], m["pid"]): m["args"]["name"] for m in meta}
    assert names[("process_name", event["pid"])] == "ftd0"
    assert names[("thread_name", event["pid"])] == "ftd0"


def test_pids_are_stable_small_ints():
    tracer = Tracer()
    tracer.emit(1.0, "nodeB", "x")
    tracer.emit(2.0, "nodeA", "y")
    tracer.emit(3.0, "nodeB", "z")
    doc = json.loads(tracer.to_chrome_trace())
    meta, data = _split(doc)
    by_source = {m["args"]["name"]: m["pid"] for m in meta
                 if m["name"] == "process_name"}
    # Sources sorted -> deterministic pid assignment starting at 1.
    assert by_source == {"nodeA": 1, "nodeB": 2}
    assert [e["pid"] for e in data] == [2, 1, 2]


def test_non_json_details_are_stringified():
    tracer = Tracer()
    tracer.emit(1.0, "link", "cut", ends=("a", "b"))
    doc = json.loads(tracer.to_chrome_trace())
    _, (event,) = _split(doc)
    assert event["args"]["ends"] == repr(("a", "b"))


def test_reserved_keys_become_span_and_flow_fields():
    tracer = Tracer()
    tracer.emit(10.0, "ftd0", "span", _ph="B", name="card reset")
    tracer.emit(20.0, "ftd0", "span", _ph="E", name="card reset")
    tracer.emit(5.0, "n0", "flow", _ph="b", _cat="msg", _id=7)
    doc = json.loads(tracer.to_chrome_trace())
    _, data = _split(doc)
    begin, end, flow = data
    assert (begin["ph"], begin["name"], begin["ts"]) == ("B", "card reset", 10.0)
    assert (end["ph"], end["name"]) == ("E", "card reset")
    assert "s" not in begin and "name" not in begin["args"]
    assert (flow["ph"], flow["cat"], flow["id"]) == ("b", "msg", 7)
    assert "_id" not in flow["args"] and "_cat" not in flow["args"]


def test_multi_run_doc_separates_pids_by_label():
    t1, t2 = Tracer(), Tracer()
    t1.emit(1.0, "ftd0", "a")
    t2.emit(2.0, "ftd0", "b")
    doc = chrome_trace_doc([("run0", t1.records), ("run1", t2.records)])
    meta, data = _split(doc)
    names = {m["pid"]: m["args"]["name"] for m in meta
             if m["name"] == "process_name"}
    assert names == {1: "run0/ftd0", 2: "run1/ftd0"}
    assert [e["pid"] for e in data] == [1, 2]


def test_export_is_deterministic():
    def build():
        tracer = Tracer()
        for i in range(5):
            tracer.emit(float(i), "src%d" % (i % 2), "kind", n=i)
        return tracer.to_chrome_trace()

    assert build() == build()
