"""Unit tests for the LANai CPU interpreter."""

import pytest

from repro.hw import Sram
from repro.lanai import CYCLE_US, LanaiCpu, MemoryBus, assemble
from repro.lanai.bus import MMIO_BASE
from repro.sim import Simulator


def run(source, *, args=None, fuel=20000, sram_size=64 * 1024, devices=None,
        base=0x100):
    """Assemble, load and execute a routine; return (cpu, outcome, sim)."""
    sim = Simulator()
    sram = Sram(sram_size)
    bus = MemoryBus(sram)
    if devices:
        for addr, handlers in devices.items():
            bus.map_register(addr, *handlers)
    prog = assemble(source, base=base)
    sram.write_bytes(prog.base, prog.code)
    cpu = LanaiCpu(sim, bus)
    outcomes = []

    def driver():
        outcome = yield from cpu.run_routine(prog.symbol("entry"),
                                             args=args, fuel=fuel)
        outcomes.append(outcome)

    sim.spawn(driver())
    sim.run()
    return cpu, outcomes[0], sim


def test_arithmetic_and_return():
    cpu, outcome, _ = run("""
    entry:
        addi r1, r0, 20
        addi r2, r0, 22
        add  r3, r1, r2
        jr   r15
    """)
    assert outcome.ok
    assert cpu.regs[3] == 42


def test_args_preload_registers():
    cpu, outcome, _ = run("""
    entry:
        add r3, r1, r2
        jr  r15
    """, args={1: 10, 2: 5})
    assert cpu.regs[3] == 15


def test_r0_is_hardwired_zero():
    cpu, outcome, _ = run("""
    entry:
        addi r0, r0, 99
        add  r1, r0, r0
        jr   r15
    """)
    assert cpu.regs[0] == 0
    assert cpu.regs[1] == 0


def test_memory_load_store():
    cpu, outcome, _ = run("""
    entry:
        addi r1, r0, 0xABC
        sw   r1, 0x2000(r0)
        lw   r2, 0x2000(r0)
        jr   r15
    """)
    assert cpu.regs[2] == 0xABC


def test_loop_executes_correct_count():
    cpu, outcome, _ = run("""
    entry:
        addi r1, r0, 10
        addi r2, r0, 0
    loop:
        addi r2, r2, 3
        addi r1, r1, -1
        bne  r1, r0, loop
        jr   r15
    """)
    assert outcome.ok
    assert cpu.regs[2] == 30


def test_signed_comparison():
    cpu, outcome, _ = run("""
    entry:
        addi r1, r0, -5
        addi r2, r0, 3
        slt  r3, r1, r2      # -5 < 3 -> 1
        slt  r4, r2, r1      # 3 < -5 -> 0
        jr   r15
    """)
    assert cpu.regs[3] == 1
    assert cpu.regs[4] == 0


def test_shifts():
    cpu, outcome, _ = run("""
    entry:
        addi r1, r0, 1
        addi r2, r0, 8
        sll  r3, r1, r2
        srl  r4, r3, r2
        jr   r15
    """)
    assert cpu.regs[3] == 256
    assert cpu.regs[4] == 1


def test_jal_and_jr_subroutine():
    cpu, outcome, _ = run("""
    entry:
        jal  sub
        addi r2, r1, 1
        jr   r15
    sub:
        addi r1, r0, 41
        jr   r15
    """)
    # careful: jal clobbers r15 then sub returns to caller; the final
    # jr r15 now jumps to the post-jal address again... so this test uses
    # the return value only.
    assert cpu.regs[1] == 41


def test_execution_charges_simulated_time():
    _, outcome, sim = run("""
    entry:
        addi r1, r0, 1
        addi r2, r0, 2
        jr   r15
    """)
    assert outcome.instructions == 3
    assert sim.now == pytest.approx(3 * CYCLE_US)


def test_invalid_instruction_hangs():
    cpu, outcome, _ = run("""
    entry:
        .word 0xFC000000     # opcode 0x3F: invalid
        jr r15
    """)
    assert outcome.status == "hung"
    assert outcome.reason == "invalid-instruction"
    assert cpu.hung


def test_halt_hangs():
    cpu, outcome, _ = run("""
    entry:
        halt
    """)
    assert outcome.status == "hung"
    assert outcome.reason == "halt-instruction"


def test_infinite_loop_hangs_via_fuel():
    cpu, outcome, _ = run("""
    entry:
        j entry
    """, fuel=1000)
    assert outcome.status == "hung"
    assert outcome.reason == "infinite-loop"
    assert outcome.instructions == 1000


def test_bus_error_hangs():
    cpu, outcome, _ = run("""
    entry:
        lw r1, 0(r2)        # r2 = 0x00800000: beyond SRAM, not MMIO
        jr r15
    """, args={2: 0x00800000})
    assert outcome.status == "hung"
    assert outcome.reason == "bus-error"


def test_jump_to_reset_vector_reports_restart():
    cpu, outcome, _ = run("""
    entry:
        j 0
    """)
    assert outcome.status == "restart"
    assert not cpu.hung  # restart is not a hang: the MCP re-initializes


def test_pc_out_of_bounds_hangs():
    cpu, outcome, _ = run("""
    entry:
        jr r9            # r9 = somewhere misaligned
    """, args={9: 0x1001})
    assert outcome.status == "hung"
    assert outcome.reason == "pc-out-of-bounds"


def test_hung_cpu_refuses_further_routines():
    sim = Simulator()
    sram = Sram(64 * 1024)
    bus = MemoryBus(sram)
    prog = assemble("entry:\n halt\n", base=0x100)
    sram.write_bytes(prog.base, prog.code)
    cpu = LanaiCpu(sim, bus)
    results = []

    def driver():
        first = yield from cpu.run_routine(prog.symbol("entry"))
        second = yield from cpu.run_routine(prog.symbol("entry"))
        results.extend([first, second])

    sim.spawn(driver())
    sim.run()
    assert results[0].status == "hung"
    assert results[1].status == "hung"
    assert results[1].instructions == 0


def test_mmio_read_write_immediate():
    regs = {"value": 0}
    devices = {
        MMIO_BASE: (lambda: 123, None),
        MMIO_BASE + 4: (None, lambda v: regs.__setitem__("value", v)),
    }
    cpu, outcome, _ = run("""
    entry:
        lui r14, 960          # 0xF00000 >> 14
        lw  r1, 0(r14)
        sw  r1, 4(r14)
        jr  r15
    """, devices=devices)
    assert outcome.ok
    assert regs["value"] == 123


def test_mmio_blocking_read_parks_cpu():
    sim = Simulator()
    sram = Sram(64 * 1024)
    bus = MemoryBus(sram)
    ready = sim.event()
    bus.map_register(MMIO_BASE, read=lambda: ready)
    prog = assemble("""
    entry:
        lui r14, 960
        lw  r1, 0(r14)        # blocks until the device event fires
        jr  r15
    """, base=0x100)
    sram.write_bytes(prog.base, prog.code)
    cpu = LanaiCpu(sim, bus)
    outcomes = []

    def driver():
        outcome = yield from cpu.run_routine(prog.symbol("entry"))
        outcomes.append((outcome, sim.now))

    def device():
        yield sim.timeout(50.0)
        ready.succeed(7)

    sim.spawn(driver())
    sim.spawn(device())
    sim.run()
    outcome, finished_at = outcomes[0]
    assert outcome.ok
    assert cpu.regs[1] == 7
    assert finished_at >= 50.0


def test_reset_clears_hang():
    sim = Simulator()
    sram = Sram(64 * 1024)
    bus = MemoryBus(sram)
    cpu = LanaiCpu(sim, bus)
    cpu.hung = True
    cpu.hang_reason = "test"
    cpu.reset()
    assert not cpu.hung
    assert cpu.hang_reason is None
