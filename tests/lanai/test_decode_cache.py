"""The decoded-instruction cache must never mask a memory write.

The interpreter caches compiled instructions keyed by PC; the cache is
owned by the SRAM so that *every* write path — ``write_word``,
``write_bytes``, ``write_words``, and crucially the fault injector's
``flip_bit`` — drops the stale decode.  These tests prove the paper's
persistent-flip semantics survive the cache: a flipped bit corrupts
every subsequent execution until the MCP is reloaded.
"""

import pytest

from repro.errors import InvalidInstruction
from repro.faults.injector import InjectionConfig, run_injection
from repro.hw.sram import Sram
from repro.lanai import isa
from repro.lanai.bus import MemoryBus
from repro.lanai.cpu import LanaiCpu
from repro.sim import Simulator

ENTRY = 0x100


def _assemble(words):
    Ins = isa.Instruction
    ops = isa.BY_MNEMONIC
    return [isa.encode(w) for w in words(Ins, ops)]


def _program():
    """addi r1,r0,5 ; addi r2,r1,7 ; jr r15  — leaves r2 = 12."""
    return _assemble(lambda Ins, ops: [
        Ins(ops["addi"], rd=1, ra=0, imm=5),
        Ins(ops["addi"], rd=2, ra=1, imm=7),
        Ins(ops["jr"], ra=15),
    ])


def _machine():
    sim = Simulator()
    sram = Sram(64 * 1024)
    sram.write_words(ENTRY, _program())
    cpu = LanaiCpu(sim, MemoryBus(sram))
    return sim, sram, cpu


def _run(sim, cpu, entry=ENTRY):
    outcomes = []

    def proc():
        outcome = yield from cpu.run_routine(entry, fuel=1000)
        outcomes.append(outcome)

    sim.spawn(proc())
    sim.run()
    return outcomes[0]


def _invalidating_bit(word, word_addr):
    """A ``flip_bit`` offset that turns ``word`` into an invalid opcode."""
    for j in range(32):
        flipped = word ^ (1 << (31 - j))
        try:
            isa.decode(flipped, word_addr)
        except InvalidInstruction:
            return word_addr * 8 + j
    pytest.skip("no single-bit flip of this word is invalid")


def test_execution_populates_cache_and_flip_evicts():
    sim, sram, cpu = _machine()
    assert _run(sim, cpu).ok
    assert cpu.regs[2] == 12
    assert set(sram.decode_cache) == {ENTRY, ENTRY + 4, ENTRY + 8}

    # Flip a bit in the *second* instruction only: its entry must go,
    # its neighbours must stay.
    sram.flip_bit((ENTRY + 4) * 8 + 31)
    assert (ENTRY + 4) not in sram.decode_cache
    assert ENTRY in sram.decode_cache
    assert (ENTRY + 8) in sram.decode_cache


def test_flip_corrupts_every_subsequent_execution():
    """Persistent-flip semantics: the corruption outlives CPU resets."""
    sim, sram, cpu = _machine()
    assert _run(sim, cpu).ok  # warm the cache with the healthy decode
    bit = _invalidating_bit(sram.read_word(ENTRY + 4), ENTRY + 4)
    sram.flip_bit(bit)

    outcome = _run(sim, cpu)
    assert outcome.status == "hung"
    assert outcome.reason == "invalid-instruction"
    assert outcome.pc == ENTRY + 4

    # A CPU reset clears the hang latch but not the SRAM: the fault is
    # in memory, so it must strike again (no healthy cached decode may
    # resurrect the original instruction).
    cpu.reset()
    again = _run(sim, cpu)
    assert again.status == "hung"
    assert again.reason == "invalid-instruction"

    # Only rewriting the word (the MCP reload path) heals it.
    cpu.reset()
    sram.write_words(ENTRY, _program())
    healed = _run(sim, cpu)
    assert healed.ok
    assert cpu.regs[2] == 12


def test_every_write_path_invalidates():
    sim, sram, cpu = _machine()
    assert _run(sim, cpu).ok
    cache = sram.decode_cache
    nop = isa.encode(isa.Instruction(isa.BY_MNEMONIC["nop"]))

    sram.write_word(ENTRY, nop)
    assert ENTRY not in cache

    sram.write_words(ENTRY + 4, [nop])
    assert (ENTRY + 4) not in cache

    # An unaligned byte write must evict the word it lands in.
    assert (ENTRY + 8) in cache
    sram.write_bytes(ENTRY + 9, b"\x00")
    assert (ENTRY + 8) not in cache

    sram.write_words(ENTRY, _program())
    assert _run(sim, cpu).ok
    assert cache
    sram.clear()
    assert not cache


def test_injector_flip_reaches_interpreted_firmware():
    """End to end: a fixed-offset flip through ``run_injection`` must
    corrupt the cached ``send_chunk`` decode mid-campaign."""
    from repro.cluster import build_cluster

    cluster = build_cluster(2, flavor="gm", interpreted_nodes=[0], seed=99)
    firmware = cluster[0].mcp.firmware
    start, end = firmware.send_chunk_extent
    # Find a send_chunk word whose single-bit flip is an invalid opcode.
    target = None
    for addr in range(start, end, 4):
        word = cluster[0].nic.sram.read_word(addr)
        for j in range(32):
            try:
                isa.decode(word ^ (1 << (31 - j)), addr)
            except InvalidInstruction:
                target = (addr - start) * 8 + j
                break
        if target is not None:
            break
    assert target is not None, "send_chunk has no invalidating flip?"

    config = InjectionConfig(run_id=0, seed=1234, flavor="gm",
                             messages=6, inject_after_messages=3,
                             bit_offset=target)
    outcome = run_injection(config)
    # send_chunk ran (and was cached) three times before the flip; the
    # fourth execution must see the corrupted word and hang the LANai.
    assert outcome.local_hung
    assert "invalid-instruction" in (outcome.hang_reason or "")
    # Hermetic runs are reproducible.
    assert run_injection(config) == outcome
