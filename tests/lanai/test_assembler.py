"""Unit tests for the assembler."""

import pytest

from repro.errors import AssemblerError
from repro.lanai import assemble, decode, disassemble


def words(program):
    return [int.from_bytes(program.code[i:i + 4], "big")
            for i in range(0, len(program.code), 4)]


def test_simple_program():
    prog = assemble("""
        addi r1, r0, 5
        add  r2, r1, r1
    """)
    assert prog.size == 8
    assert disassemble(words(prog)[0]) == "addi r1, r0, 5"
    assert disassemble(words(prog)[1]) == "add r2, r1, r1"


def test_labels_and_branches():
    prog = assemble("""
    start:
        addi r1, r0, 3
    loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        jr   r15
    """)
    branch = decode(words(prog)[2])
    # branch at byte 8 targets byte 4: offset = (4 - 12) / 4 = -2
    assert branch.imm == -2


def test_forward_reference():
    prog = assemble("""
        beq r0, r0, done
        nop
    done:
        jr r15
    """)
    branch = decode(words(prog)[0])
    assert branch.imm == 1  # skip one instruction


def test_base_address_affects_jumps():
    prog = assemble("""
    entry:
        j entry
    """, base=0x1000)
    jump = decode(words(prog)[0])
    assert jump.imm == 0x1000 // 4
    assert prog.symbol("entry") == 0x1000


def test_equ_and_expressions():
    prog = assemble("""
        .equ BASE 0x100
        .equ OFF  8
        lw r1, BASE+OFF(r0)
        lw r2, BASE-4(r0)
    """)
    assert decode(words(prog)[0]).imm == 0x108
    assert decode(words(prog)[1]).imm == 0xFC


def test_negative_literal():
    prog = assemble("addi r1, r0, -42")
    assert decode(words(prog)[0]).imm == -42


def test_mem_operand_styles_equivalent():
    a = assemble("lw r1, 16(r2)")
    b = assemble("lw r1, r2, 16")
    assert a.code == b.code


def test_word_directive():
    prog = assemble("""
        .word 0xDEADBEEF, 42
    """)
    assert words(prog) == [0xDEADBEEF, 42]


def test_org_directive():
    prog = assemble("""
        nop
        .org 16
        jr r15
    """)
    assert prog.size == 20
    assert disassemble(words(prog)[4]) == "jr r15"


def test_comments_ignored():
    prog = assemble("""
        # full line comment
        nop        # trailing comment
        nop        ; alt comment
    """)
    assert prog.size == 8


def test_extent_helper():
    prog = assemble("""
    routine:
        nop
        nop
    routine_end:
        jr r15
    """, base=0x100)
    assert prog.extent("routine") == (0x100, 0x108)


def test_line_table_maps_addresses_to_source():
    prog = assemble("""
        addi r1, r0, 1
        addi r2, r0, 2
    """, base=0x10)
    assert "addi r1" in prog.lines[0]
    assert "addi r2" in prog.lines[4]


def test_lui_materializes_high_bits():
    prog = assemble("lui r14, 960")
    instr = decode(words(prog)[0])
    assert instr.op.mnemonic == "lui"
    assert (instr.imm << 14) == 0xF00000


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError, match="undefined symbol"):
            assemble("j nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x:\nx:\n  nop")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2, r99")

    def test_wrong_arity(self):
        with pytest.raises(AssemblerError, match="operand"):
            assemble("add r1, r2")

    def test_misaligned_org(self):
        with pytest.raises(AssemblerError, match="misaligned"):
            assemble(".org 3\nnop")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r1\n")
