"""Tests for the interpreted send path: firmware + MMIO glue end to end.

These verify that the assembly ``send_chunk``, executing on the
interpreter against the device glue, produces byte-identical protocol
behaviour to the native path — and that *specific* corruptions produce
their expected failure modes (the mechanism behind Table 1).
"""


from repro.cluster import build_cluster
from repro.lanai import build_firmware, decode
from repro.payload import Payload


def run_until(cluster, predicate, limit=30_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


def interp_pair():
    return build_cluster(2, flavor="gm", interpreted_nodes=[0])


def send_one(cluster, payload, wait=True):
    state = {}

    def sender():
        port = yield from cluster[0].driver.open_port(1)
        state["port"] = port
        if wait:
            yield from port.send_and_wait(payload, 1, 2)
            state["sent"] = True
        else:
            yield from port.send(payload, 1, 2)
            state["sent"] = True

    def receiver():
        port = yield from cluster[1].driver.open_port(2)
        yield from port.provide_receive_buffer(max(payload.size, 1))
        event = yield from port.receive_message()
        state["event"] = event

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    return state


class TestFirmware:
    def test_firmware_assembles_with_symbols(self):
        firmware = build_firmware()
        start, end = firmware.send_chunk_extent
        assert end > start
        assert (end - start) % 4 == 0
        assert firmware.entry_send_chunk == start
        # Every word in the section is a valid instruction or data-free.
        code = firmware.program.code
        base = firmware.program.base
        for off in range(start - base, end - base, 4):
            word = int.from_bytes(code[off:off + 4], "big")
            decode(word)  # must not raise

    def test_firmware_loads_into_sram(self):
        from repro.hw import Sram
        from repro.lanai.firmware import MAGIC_WORD_ADDR, VERSION_ADDR
        firmware = build_firmware()
        sram = Sram(256 * 1024)
        firmware.load_into(sram)
        assert sram.read_word(MAGIC_WORD_ADDR) == 0
        assert sram.read_word(VERSION_ADDR) == firmware.version
        start, _ = firmware.send_chunk_extent
        assert sram.read_word(start) != 0

    def test_source_line_lookup(self):
        firmware = build_firmware()
        start, _ = firmware.send_chunk_extent
        assert "lui" in firmware.source_line(start)


class TestInterpretedSendPath:
    def test_small_message_delivered_identically(self):
        cluster = interp_pair()
        state = send_one(cluster, Payload.from_bytes(b"via the interpreter"))
        assert run_until(cluster, lambda: "event" in state and
                         "sent" in state)
        assert state["event"].payload.data == b"via the interpreter"

    def test_fragmented_message_delivered(self):
        cluster = interp_pair()
        payload = Payload.pattern(10_000, seed=5)
        state = send_one(cluster, payload)
        assert run_until(cluster, lambda: "event" in state)
        assert state["event"].payload == payload
        assert cluster[0].mcp.stats["packets_sent"] == 3

    def test_cpu_retires_instructions(self):
        cluster = interp_pair()
        state = send_one(cluster, Payload.from_bytes(b"count me"))
        assert run_until(cluster, lambda: "event" in state)
        assert cluster[0].mcp.cpu.instructions_retired > 30

    def test_interpreted_matches_native_delivery(self):
        for interpreted in ([], [0]):
            cluster = build_cluster(2, flavor="gm",
                                    interpreted_nodes=interpreted)
            payload = Payload.pattern(5_000, seed=1)
            state = send_one(cluster, payload)
            assert run_until(cluster, lambda: "event" in state)
            assert state["event"].payload == payload
            assert state["event"].size == 5_000


class TestTargetedCorruption:
    """Deterministic single-instruction corruptions and their organic
    failure modes."""

    def _corrupt_and_send(self, mutate, payload=None):
        cluster = interp_pair()
        mcp = cluster[0].mcp
        mutate(mcp)
        state = send_one(cluster, payload or Payload.from_bytes(b"doomed"),
                         wait=False)
        return cluster, state

    def test_invalid_opcode_hangs_cpu(self):
        def mutate(mcp):
            mcp.nic.sram.write_word(mcp.firmware.entry_send_chunk,
                                    0x3F << 26)

        cluster, state = self._corrupt_and_send(mutate)
        run_until(cluster, lambda: cluster[0].mcp.hung, limit=100_000.0)
        assert cluster[0].mcp.cpu.hang_reason == "invalid-instruction"

    def test_backward_branch_corruption_loops_forever(self):
        def mutate(mcp):
            # Replace the entry with a jump-to-self.
            from repro.lanai import encode
            from repro.lanai.isa import BY_MNEMONIC, Instruction
            entry = mcp.firmware.entry_send_chunk
            mcp.nic.sram.write_word(entry, encode(
                Instruction(BY_MNEMONIC["j"], imm=entry // 4)))

        cluster, state = self._corrupt_and_send(mutate)
        run_until(cluster, lambda: cluster[0].mcp.hung, limit=200_000.0)
        assert cluster[0].mcp.cpu.hang_reason == "infinite-loop"

    def test_jump_to_reset_vector_restarts_mcp(self):
        def mutate(mcp):
            from repro.lanai import encode
            from repro.lanai.isa import BY_MNEMONIC, Instruction
            mcp.nic.sram.write_word(mcp.firmware.entry_send_chunk,
                                    encode(Instruction(BY_MNEMONIC["j"],
                                                       imm=0)))

        cluster, state = self._corrupt_and_send(mutate)
        run_until(cluster,
                  lambda: cluster[0].mcp.stats["mcp_restarts"] > 0,
                  limit=200_000.0)
        assert not cluster[0].mcp.hung

    def test_corrupted_dma_address_changes_payload(self):
        """Corrupt the host-address load offset: the DMA pulls the wrong
        slice, the packet sails through CRC (computed after the damage),
        and the receiver delivers wrong bytes."""
        cluster = interp_pair()
        mcp = cluster[0].mcp
        # `lw r1, TOKEN+0(r0)` is the second instruction; flip a low imm
        # bit so it loads TOKEN+4 (the SRAM staging address) instead.
        addr = mcp.firmware.entry_send_chunk + 4
        word = mcp.nic.sram.read_word(addr)
        mcp.nic.sram.write_word(addr, word ^ 0x4)
        payload = Payload.from_bytes(b"A" * 64)
        state = send_one(cluster, payload, wait=False)
        run_until(cluster, lambda: "event" in state, limit=5_000_000.0)
        if "event" in state:
            assert state["event"].payload != payload  # delivered corrupt

    def test_flip_in_scratch_counter_is_harmless(self):
        """Corrupting the diagnostics-counter store changes nothing the
        protocol observes: a No-Impact flip."""
        cluster = interp_pair()
        mcp = cluster[0].mcp
        # Find the `sw r7, SCRATCH+4(r0)` diagnostics store.
        firmware = mcp.firmware
        start, end = firmware.send_chunk_extent
        target = None
        for byte_addr in range(start, end, 4):
            if "SCRATCH+4" in firmware.source_line(byte_addr):
                target = byte_addr
        assert target is not None
        word = mcp.nic.sram.read_word(target)
        mcp.nic.sram.write_word(target, word ^ 0x8)  # perturb offset
        payload = Payload.from_bytes(b"still fine")
        state = send_one(cluster, payload)
        assert run_until(cluster, lambda: "event" in state)
        assert state["event"].payload == payload
