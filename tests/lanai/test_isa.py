"""Unit and property tests for the ISA encoder/decoder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidInstruction
from repro.lanai import decode, disassemble, encode
from repro.lanai.isa import (
    BY_CODE,
    BY_MNEMONIC,
    Format,
    IMM18_MAX,
    IMM18_MIN,
    Instruction,
)


def test_encode_decode_r_type():
    instr = Instruction(BY_MNEMONIC["add"], rd=1, ra=2, rb=3)
    assert decode(encode(instr)) == instr


def test_encode_decode_i_type_negative_imm():
    instr = Instruction(BY_MNEMONIC["addi"], rd=5, ra=6, imm=-1)
    assert decode(encode(instr)) == instr


def test_encode_decode_b_type():
    instr = Instruction(BY_MNEMONIC["beq"], ra=1, rb=2, imm=-16)
    assert decode(encode(instr)) == instr


def test_encode_decode_j_type():
    instr = Instruction(BY_MNEMONIC["jal"], imm=0x123456)
    assert decode(encode(instr)) == instr


def test_invalid_opcode_raises():
    with pytest.raises(InvalidInstruction):
        decode(0x3F << 26)


def test_r_type_pad_bits_are_dont_care():
    """Flips in the low 14 bits of an R-type instruction change nothing."""
    base = encode(Instruction(BY_MNEMONIC["add"], rd=1, ra=2, rb=3))
    for bit in range(14):
        assert decode(base ^ (1 << bit)) == decode(base)


def test_imm_range_enforced():
    with pytest.raises(ValueError):
        encode(Instruction(BY_MNEMONIC["addi"], rd=1, ra=0, imm=IMM18_MAX + 1))
    with pytest.raises(ValueError):
        encode(Instruction(BY_MNEMONIC["addi"], rd=1, ra=0, imm=IMM18_MIN - 1))


def test_register_range_enforced():
    with pytest.raises(ValueError):
        encode(Instruction(BY_MNEMONIC["add"], rd=16, ra=0, rb=0))


def test_disassemble_valid_and_invalid():
    word = encode(Instruction(BY_MNEMONIC["lw"], rd=3, ra=4, imm=100))
    assert disassemble(word) == "lw r3, 100(r4)"
    assert disassemble(0x3F << 26).startswith(".invalid")


def test_disassemble_styles():
    assert disassemble(encode(Instruction(BY_MNEMONIC["nop"]))) == "nop"
    assert disassemble(encode(Instruction(BY_MNEMONIC["jr"], ra=15))) == "jr r15"
    assert disassemble(
        encode(Instruction(BY_MNEMONIC["j"], imm=4))) == "j 0x4"


_ops = st.sampled_from(sorted(BY_MNEMONIC.values(), key=lambda o: o.code))
_regs = st.integers(min_value=0, max_value=15)
_imm18 = st.integers(min_value=IMM18_MIN, max_value=IMM18_MAX)
_imm26 = st.integers(min_value=0, max_value=(1 << 26) - 1)


@given(op=_ops, rd=_regs, ra=_regs, rb=_regs, imm18=_imm18, imm26=_imm26)
def test_prop_encode_decode_roundtrip(op, rd, ra, rb, imm18, imm26):
    if op.fmt == Format.R:
        instr = Instruction(op, rd=rd, ra=ra, rb=rb)
    elif op.fmt == Format.I:
        instr = Instruction(op, rd=rd, ra=ra, imm=imm18)
    elif op.fmt == Format.B:
        instr = Instruction(op, ra=ra, rb=rb, imm=imm18)
    else:
        instr = Instruction(op, imm=imm26)
    assert decode(encode(instr)) == instr


@given(word=st.integers(min_value=0, max_value=2**32 - 1))
def test_prop_decode_never_crashes(word):
    """Any 32-bit word either decodes or raises InvalidInstruction."""
    try:
        instr = decode(word)
    except InvalidInstruction:
        return
    assert instr.op.code in BY_CODE
