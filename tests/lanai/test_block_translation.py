"""Fused basic blocks must never outlive a write into their words.

The block translator fuses straight-line runs (plus a folded terminator)
into one generated superinstruction, cached in the SRAM-owned
``block_cache`` with a word-address reverse index.  These tests pin the
safety contract: a write landing *anywhere* inside a translated block —
``flip_bit`` mid-block, a store from the running program itself, a
folded-terminator corruption — drops the whole block, so the next
dispatch re-translates from the corrupted memory.  Anything less would
let a stale superinstruction resurrect pre-fault firmware and break the
paper's persistent-flip semantics.
"""

import pytest

from repro.errors import InvalidInstruction
from repro.lanai import isa
from repro.lanai.bus import MemoryBus
from repro.lanai.cpu import _BLOCK_CAP, LanaiCpu
from repro.hw.sram import Sram
from repro.sim import Simulator

ENTRY = 0x200


def _assemble(words):
    Ins = isa.Instruction
    ops = isa.BY_MNEMONIC
    return [isa.encode(w) for w in words(Ins, ops)]


def _straightline():
    """addi r1,r0,5 ; addi r2,r1,7 ; jr r15 — one fused block, r2 = 12."""
    return _assemble(lambda Ins, ops: [
        Ins(ops["addi"], rd=1, ra=0, imm=5),
        Ins(ops["addi"], rd=2, ra=1, imm=7),
        Ins(ops["jr"], ra=15),
    ])


def _machine(program):
    sim = Simulator()
    sram = Sram(64 * 1024)
    sram.write_words(ENTRY, program)
    cpu = LanaiCpu(sim, MemoryBus(sram))
    return sim, sram, cpu


def _run(sim, cpu, args=None):
    outcomes = []

    def proc():
        outcome = yield from cpu.run_routine(ENTRY, args=args, fuel=5000)
        outcomes.append(outcome)

    sim.spawn(proc())
    sim.run()
    return outcomes[0]


def _invalidating_bit(word, word_addr):
    """A ``flip_bit`` offset that turns ``word`` into an invalid opcode."""
    for j in range(32):
        try:
            isa.decode(word ^ (1 << (31 - j)), word_addr)
        except InvalidInstruction:
            return word_addr * 8 + j
    pytest.skip("no single-bit flip of this word is invalid")


def test_execution_translates_and_reuses_a_block():
    sim, sram, cpu = _machine(_straightline())
    assert _run(sim, cpu).ok
    assert cpu.regs[2] == 12
    block = sram.block_cache[ENTRY]
    n_instr, _cycles, _fn = block
    assert n_instr == 3  # both addis plus the folded jr
    # The reverse index covers every word, terminator included.
    for word_addr in (ENTRY, ENTRY + 4, ENTRY + 8):
        assert ENTRY in sram.block_index[word_addr]
    # A second run hits the cached block and reproduces the result.
    assert _run(sim, cpu).ok
    assert cpu.regs[2] == 12
    assert sram.block_cache[ENTRY] is block


def test_flip_bit_mid_block_drops_the_whole_block():
    sim, sram, cpu = _machine(_straightline())
    assert _run(sim, cpu).ok  # warm the block cache
    assert ENTRY in sram.block_cache

    # Corrupt the *second* instruction: the flip lands mid-block, so the
    # block keyed at ENTRY must go even though ENTRY's own word is fine.
    bit = _invalidating_bit(sram.read_word(ENTRY + 4), ENTRY + 4)
    sram.flip_bit(bit)
    assert ENTRY not in sram.block_cache
    assert (ENTRY + 4) not in sram.block_index

    outcome = _run(sim, cpu)
    assert outcome.status == "hung"
    assert outcome.reason == "invalid-instruction"
    assert outcome.pc == ENTRY + 4


def test_flip_in_folded_terminator_drops_the_block():
    sim, sram, cpu = _machine(_straightline())
    assert _run(sim, cpu).ok
    assert ENTRY in sram.block_cache

    # The jr is folded into the block as its terminator; corrupting it
    # must invalidate the block just like corrupting a body word.
    bit = _invalidating_bit(sram.read_word(ENTRY + 8), ENTRY + 8)
    sram.flip_bit(bit)
    assert ENTRY not in sram.block_cache

    outcome = _run(sim, cpu)
    assert outcome.status == "hung"
    assert outcome.reason == "invalid-instruction"
    assert outcome.pc == ENTRY + 8


def test_self_modifying_store_invalidates_the_translated_block():
    """A store into a fused run must retranslate before the next pass."""
    program = _assemble(lambda Ins, ops: [
        Ins(ops["sw"], rd=4, ra=3, imm=0),    # mem[r3] = r4
        Ins(ops["addi"], rd=2, ra=2, imm=1),
        Ins(ops["addi"], rd=2, ra=2, imm=10),  # victim word at ENTRY+8
        Ins(ops["jr"], ra=15),
    ])
    sim, sram, cpu = _machine(program)
    victim = ENTRY + 8
    original = sram.read_word(victim)

    # First pass stores the word back unchanged: same code, but the block
    # spanning ENTRY+4..ENTRY+12 gets translated after the store runs.
    assert _run(sim, cpu, args={3: victim, 4: original}).ok
    assert cpu.regs[2] == 11
    assert (ENTRY + 4) in sram.block_cache

    # Second pass rewrites the victim *through the running program*; the
    # stale block must be dropped mid-run and the new code must execute.
    patched = isa.encode(isa.Instruction(isa.BY_MNEMONIC["addi"],
                                         rd=2, ra=2, imm=100))
    assert _run(sim, cpu, args={3: victim, 4: patched}).ok
    assert cpu.regs[2] == 101
    assert sram.read_word(victim) == patched


def test_runs_longer_than_the_cap_split_at_block_boundaries():
    count = _BLOCK_CAP + 6
    program = _assemble(lambda Ins, ops: (
        [Ins(ops["addi"], rd=1, ra=1, imm=1)] * count
        + [Ins(ops["jr"], ra=15)]))
    sim, sram, cpu = _machine(program)
    assert _run(sim, cpu).ok
    assert cpu.regs[1] == count
    split = ENTRY + 4 * _BLOCK_CAP
    assert set(sram.block_cache) == {ENTRY, split}
    n_first, _, _ = sram.block_cache[ENTRY]
    n_second, _, _ = sram.block_cache[split]
    assert n_first == _BLOCK_CAP
    assert n_second == count - _BLOCK_CAP + 1  # remainder plus folded jr

    # A flip in the second block must not disturb the first.
    bit = _invalidating_bit(sram.read_word(split), split)
    sram.flip_bit(bit)
    assert ENTRY in sram.block_cache
    assert split not in sram.block_cache
