"""The parallel campaign runner must be invisible in the results.

``run_campaign(workers=N)`` fans injection runs out over a process pool.
Every run is hermetic (its own Simulator, its own seed), so the parallel
campaign must reproduce the serial one bit for bit: same outcome objects,
same order, same rendered table.  Anything less would make Table 1 depend
on the machine's core count.
"""

from repro.exp.runner import run_many
from repro.faults import run_campaign, run_effectiveness_study
from repro.faults.injector import InjectionConfig, run_injection


def test_campaign_parallel_matches_serial():
    serial = run_campaign(runs=40, seed=2003, workers=1)
    parallel = run_campaign(runs=40, seed=2003, workers=4)
    assert [o.run_id for o in parallel.outcomes] == list(range(40))
    assert parallel.outcomes == serial.outcomes
    assert parallel.counts == serial.counts
    assert parallel.render() == serial.render()


def test_effectiveness_parallel_matches_serial():
    serial = run_effectiveness_study(runs=16, seed=42, workers=1)
    parallel = run_effectiveness_study(runs=16, seed=42, workers=4)
    assert parallel == serial


def test_parallel_progress_reaches_total():
    ticks = []
    result = run_campaign(runs=8, seed=11, workers=2,
                          progress=ticks.append)
    assert len(result.outcomes) == 8
    # Completion order is nondeterministic but the count is not.
    assert sorted(ticks) == list(range(1, 9))
    assert ticks[-1] == 8 or 8 in ticks


def test_run_many_single_config_stays_serial():
    # A one-element campaign must not pay pool startup.
    configs = [InjectionConfig(run_id=0, seed=5, flavor="gm", messages=4)]
    outcomes = run_many(configs, run_injection, workers=8, progress=None)
    assert len(outcomes) == 1
    assert outcomes[0].run_id == 0
