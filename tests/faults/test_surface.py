"""Unit tests for the fault-surface analyzer."""

import pytest

from repro.faults.outcomes import Category, InjectionOutcome
from repro.faults.surface import (
    FieldKind,
    analyze_surface,
    classify_bit,
)
from repro.lanai import build_firmware, decode


@pytest.fixture(scope="module")
def firmware():
    return build_firmware()


class TestClassifyBit:
    def test_bit_zero_is_opcode_of_first_instruction(self, firmware):
        field, line = classify_bit(firmware, 0)
        assert field == FieldKind.OPCODE
        assert "lui" in line

    def test_opcode_field_spans_six_bits(self, firmware):
        for bit in range(6):
            field, _ = classify_bit(firmware, bit)
            assert field == FieldKind.OPCODE
        field, _ = classify_bit(firmware, 6)
        assert field != FieldKind.OPCODE

    def test_i_format_low_bits_are_immediate(self, firmware):
        # First instruction is `lui r14, MMIO_HI` (I-format): bits
        # 14..31 of the word (offsets 14..31 from MSB) are immediate.
        field, _ = classify_bit(firmware, 31)
        assert field == FieldKind.IMMEDIATE

    def test_every_bit_in_section_classifiable(self, firmware):
        start, end = firmware.send_chunk_extent
        kinds = set()
        for bit in range(0, (end - start) * 8, 7):
            field, line = classify_bit(firmware, bit)
            assert field in FieldKind.ORDER
            kinds.add(field)
        # The section exercises at least opcode/register/immediate.
        assert {FieldKind.OPCODE, FieldKind.REGISTER,
                FieldKind.IMMEDIATE} <= kinds

    def test_nop_pad_bits_classified_as_pad(self, firmware):
        start, end = firmware.send_chunk_extent
        base = firmware.program.base
        code = firmware.program.code
        for off in range(start - base, end - base, 4):
            word = int.from_bytes(code[off:off + 4], "big")
            if decode(word).op.mnemonic == "nop":
                # Bit 18 from MSB lies in the R-format pad.
                bit = (off - (start - base)) * 8 + 20
                field, _ = classify_bit(firmware, bit)
                assert field == FieldKind.PAD
                return
        pytest.fail("no nop found in send_chunk")


class TestSurfaceReport:
    def _outcome(self, bit, category):
        out = InjectionOutcome(run_id=0, bit_offset=bit, injected_at=0.0)
        out.category = category
        return out

    def test_analyze_counts_by_field(self, firmware):
        outcomes = [self._outcome(0, Category.LOCAL_HANG),
                    self._outcome(1, Category.NO_IMPACT),
                    self._outcome(31, Category.CORRUPTED)]
        report = analyze_surface(outcomes, firmware)
        assert report.total == 3
        assert report.field_total(FieldKind.OPCODE) == 2
        assert report.field_total(FieldKind.IMMEDIATE) == 1
        assert report.rate(FieldKind.OPCODE, Category.LOCAL_HANG) \
            == pytest.approx(0.5)

    def test_rate_of_empty_field_is_zero(self, firmware):
        report = analyze_surface([], firmware)
        assert report.rate(FieldKind.PAD, Category.NO_IMPACT) == 0.0

    def test_render_mentions_fields(self, firmware):
        outcomes = [self._outcome(0, Category.LOCAL_HANG)]
        text = analyze_surface(outcomes, firmware).render()
        assert "opcode" in text
        assert "field" in text
