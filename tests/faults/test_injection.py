"""Tests for the fault-injection framework."""

import pytest

from repro.faults import (
    CATEGORY_ORDER,
    Category,
    InjectionConfig,
    classify,
    run_campaign,
    run_injection,
)
from repro.faults.outcomes import InjectionOutcome


class TestClassifier:
    def _outcome(self, **kwargs):
        base = dict(run_id=0, bit_offset=0, injected_at=0.0,
                    messages_expected=10, messages_delivered_ok=10,
                    workload_completed=True)
        base.update(kwargs)
        return InjectionOutcome(**base)

    def test_host_crash_dominates(self):
        outcome = self._outcome(host_crashed=True, local_hung=True)
        assert classify(outcome) == Category.HOST_CRASH

    def test_remote_hang_beats_local(self):
        outcome = self._outcome(remote_hung=True, local_hung=True)
        assert classify(outcome) == Category.REMOTE_HANG

    def test_local_hang(self):
        outcome = self._outcome(local_hung=True)
        assert classify(outcome) == Category.LOCAL_HANG

    def test_mcp_restart(self):
        outcome = self._outcome(mcp_restarts=1)
        assert classify(outcome) == Category.MCP_RESTART

    def test_corrupted_delivery(self):
        outcome = self._outcome(messages_corrupted=2,
                                messages_delivered_ok=8)
        assert classify(outcome) == Category.CORRUPTED

    def test_lost_messages_count_as_corrupted(self):
        outcome = self._outcome(messages_delivered_ok=7,
                                workload_completed=False)
        assert classify(outcome) == Category.CORRUPTED

    def test_no_impact(self):
        assert classify(self._outcome()) == Category.NO_IMPACT

    def test_send_errors_without_loss_are_other(self):
        outcome = self._outcome(sends_errored=1)
        assert classify(outcome) == Category.OTHER


class TestSingleInjection:
    def test_deterministic_for_same_seed(self):
        a = run_injection(InjectionConfig(run_id=0, seed=123, messages=8))
        b = run_injection(InjectionConfig(run_id=0, seed=123, messages=8))
        assert a.category == b.category
        assert a.bit_offset == b.bit_offset

    def test_different_seeds_vary_bit(self):
        bits = {run_injection(InjectionConfig(run_id=i, seed=500 + i,
                                              messages=4)).bit_offset
                for i in range(5)}
        assert len(bits) > 1

    def test_forced_benign_bit_is_no_impact(self):
        """Flipping a pad bit of an R-type instruction changes nothing.

        The first instruction is `lui r14, MMIO_HI` (I-type)… instead we
        aim at a `nop`'s don't-care bits via a bit we know is harmless:
        the very last bit of the first `nop` settle slot would need
        lookup, so this test instead asserts that *some* single-bit flip
        in the section is benign by construction: flip bit 31 of the
        checksum accumulator init (`addi r10, r0, 0` imm LSB) changes
        the checksum seed, which nothing verifies.
        """
        from repro.lanai import build_firmware, decode
        firmware = build_firmware()
        start, end = firmware.send_chunk_extent
        # Find a nop and flip one of its don't-care bits (bit 0: LSB of
        # the ignored low-14 field).
        code = firmware.program.code
        nop_offset = None
        for off in range(0, end - start, 4):
            word = int.from_bytes(
                code[start - firmware.program.base + off:
                     start - firmware.program.base + off + 4], "big")
            try:
                if decode(word).op.mnemonic == "nop":
                    nop_offset = off
                    break
            except Exception:
                continue
        assert nop_offset is not None
        outcome = run_injection(InjectionConfig(
            run_id=0, seed=1, messages=6,
            bit_offset=nop_offset * 8 + 31))
        assert outcome.category == Category.NO_IMPACT

    def test_forced_opcode_corruption_is_visible(self):
        """Clearing the opcode MSB region of a load usually breaks it."""
        outcome = run_injection(InjectionConfig(
            run_id=0, seed=1, messages=6, bit_offset=0))
        assert outcome.category != ""  # classified; exact bucket varies

    def test_outcome_records_source_line(self):
        outcome = run_injection(InjectionConfig(run_id=0, seed=9,
                                                messages=4))
        assert isinstance(outcome.faulting_source_line, str)


class TestCampaign:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        return run_campaign(runs=25, seed=900, messages=8)

    def test_counts_sum_to_runs(self, small_campaign):
        assert sum(small_campaign.counts.values()) == 25

    def test_render_includes_reference_columns(self, small_campaign):
        text = small_campaign.render()
        assert "Iyer" in text
        for category in CATEGORY_ORDER:
            assert category in text

    def test_dominant_shape(self, small_campaign):
        """Coarse Table 1 shape: hangs + corrupted dominate the
        failures; no-impact is the single largest bucket."""
        counts = small_campaign.counts
        failures = 25 - counts[Category.NO_IMPACT]
        if failures:
            dominant = counts[Category.LOCAL_HANG] \
                + counts[Category.CORRUPTED]
            assert dominant / failures > 0.5
        assert counts[Category.NO_IMPACT] == max(counts.values())


class TestClassifyDeliveries:
    """The batched observe/classify path vs the scalar fallback."""

    def _payloads(self, n, bytes_=64):
        from repro.payload import Payload
        return {i: Payload.pattern(bytes_, seed=i) for i in range(n)}

    def test_all_match(self):
        from repro.faults.injector import classify_deliveries
        expected = self._payloads(6)
        assert classify_deliveries(dict(expected), expected) == (6, 0)

    def test_corruption_and_truncation_counted(self):
        from repro.faults.injector import classify_deliveries
        expected = self._payloads(4)
        received = dict(expected)
        received[1] = expected[1].corrupt(bit_offset=5)
        received[2] = expected[2].truncate(10)
        assert classify_deliveries(received, expected) == (2, 2)

    def test_unexpected_index_is_corrupted(self):
        from repro.payload import Payload
        from repro.faults.injector import classify_deliveries
        expected = self._payloads(2)
        received = dict(expected)
        received[9] = Payload.pattern(64, seed=9)  # never sent
        assert classify_deliveries(received, expected) == (2, 1)

    def test_empty(self):
        from repro.faults.injector import classify_deliveries
        assert classify_deliveries({}, self._payloads(3)) == (0, 0)

    def test_vector_and_scalar_paths_agree(self, monkeypatch):
        from repro.faults import injector
        if injector._np is None:
            pytest.skip("numpy unavailable; only the scalar path exists")
        expected = self._payloads(32)
        received = dict(expected)
        received[3] = expected[3].corrupt(bit_offset=1)
        received[17] = expected[17].truncate(1)
        with_np = injector.classify_deliveries(received, expected)
        monkeypatch.setattr(injector, "_np", None)
        assert injector.classify_deliveries(received, expected) == with_np

    @pytest.mark.parametrize("seed", [900, 31])
    def test_campaign_counts_identical_at_two_seeds(self, seed,
                                                    monkeypatch):
        """The acceptance bar: vectorized classification leaves campaign
        outcomes byte-identical to the historic scalar loop."""
        from repro.faults import injector
        vectored = run_campaign(runs=4, seed=seed, messages=6)
        monkeypatch.setattr(injector, "_np", None)
        scalar = run_campaign(runs=4, seed=seed, messages=6)
        assert scalar.counts == vectored.counts
        assert scalar.outcomes == vectored.outcomes
        assert scalar.render() == vectored.render()
