"""FTGM recovery-effectiveness (§5.2) on a small injected population."""

import pytest

from repro.faults import run_effectiveness_study


@pytest.fixture(scope="module")
def study():
    return run_effectiveness_study(runs=30, seed=4242, messages=8)


def test_hang_population_nonempty(study):
    assert study.hangs > 0


def test_all_hangs_detected(study):
    """"this simple fault detection mechanism was able to detect all the
    interface hangs" — our watchdog must match."""
    assert study.detected == study.hangs


def test_recovery_rate_matches_paper_band(study):
    """Paper: 281/286 (98.3%) recovered.  Require >= 90% here."""
    assert study.recovery_rate >= 0.90


def test_render_mentions_paper_numbers(study):
    text = study.render()
    assert "286" in text and "98.3" in text
