"""Tests for MCP pause/resume and the classical-checkpoint baseline."""


from repro.cluster import build_cluster
from repro.faults.checkpoint import CheckpointDaemon
from repro.gm import constants as C
from repro.payload import Payload


def run_until(cluster, predicate, limit=30_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


class TestPauseResume:
    def test_pause_freezes_data_path_but_not_l_timer(self):
        cluster = build_cluster(2, flavor="gm")
        sim = cluster.sim
        mcp = cluster[0].mcp
        done = sim.event()
        mcp.host_request(("pause", done))
        run_until(cluster, lambda: done.processed)
        assert mcp.paused
        ticks = mcp.l_timer_invocations
        sim.run(until=sim.now + 5 * C.L_TIMER_INTERVAL_US)
        assert mcp.l_timer_invocations > ticks  # housekeeping continues

    def test_resume_restores_service(self):
        cluster = build_cluster(2, flavor="gm")
        sim = cluster.sim
        mcp = cluster[0].mcp
        pause_done = sim.event()
        mcp.host_request(("pause", pause_done))
        run_until(cluster, lambda: pause_done.processed)
        resume_done = sim.event()
        mcp.host_request(("resume", resume_done))
        run_until(cluster, lambda: resume_done.processed)
        assert not mcp.paused

    def test_messages_arriving_during_pause_deliver_after_resume(self):
        cluster = build_cluster(2, flavor="gm")
        sim = cluster.sim
        got = {}
        ports = {}

        def opener(node, pid, key):
            ports[key] = yield from cluster[node].driver.open_port(pid)

        cluster[0].host.spawn(opener(0, 1, "s"), "o1")
        cluster[1].host.spawn(opener(1, 2, "r"), "o2")
        run_until(cluster, lambda: len(ports) == 2)

        # Pause the receiver.
        pause_done = sim.event()
        cluster[1].mcp.host_request(("pause", pause_done))
        run_until(cluster, lambda: pause_done.processed)

        def sender():
            yield from ports["s"].send_and_wait(
                Payload.from_bytes(b"parked"), 1, 2)
            got["sent_at"] = sim.now

        def receiver():
            yield from ports["r"].provide_receive_buffer(64)
            event = yield from ports["r"].receive_message()
            got["recv_at"] = sim.now
            got["data"] = event.payload.data

        cluster[1].host.spawn(receiver(), "r")
        cluster[0].host.spawn(sender(), "s")
        sim.run(until=sim.now + 3_000.0)
        assert "recv_at" not in got  # frozen: nothing delivered

        resume_done = sim.event()
        cluster[1].mcp.host_request(("resume", resume_done))
        assert run_until(cluster, lambda: "recv_at" in got)
        assert got["data"] == b"parked"


class TestCheckpointDaemon:
    def test_single_checkpoint_cycle(self):
        cluster = build_cluster(2, flavor="gm")
        daemon = CheckpointDaemon(cluster[0].driver,
                                  interval_us=50_000.0)
        pauses = []

        def once():
            pause = yield from daemon.checkpoint_once()
            pauses.append(pause)

        cluster[0].host.spawn(once(), "c")
        run_until(cluster, lambda: bool(pauses))
        # The pause spans two L_timer round-trips plus the PCI copy.
        copy_time = daemon.state_bytes / cluster[0].nic.pci.bandwidth
        assert pauses[0] >= copy_time
        assert not cluster[0].mcp.paused  # resumed

    def test_periodic_daemon_accumulates_stats(self):
        cluster = build_cluster(2, flavor="gm")
        daemon = CheckpointDaemon(cluster[0].driver,
                                  interval_us=10_000.0)
        daemon.start()
        cluster.sim.run(until=cluster.sim.now + 65_000.0)
        assert daemon.stats.checkpoints >= 4
        assert daemon.stats.mean_pause_us > 1_000.0
        assert 0.0 < daemon.overhead_fraction(65_000.0) < 0.5

    def test_daemon_skips_dead_mcp(self):
        cluster = build_cluster(2, flavor="gm")
        cluster[0].mcp.die("gone")
        daemon = CheckpointDaemon(cluster[0].driver,
                                  interval_us=5_000.0)
        daemon.start()
        cluster.sim.run(until=cluster.sim.now + 20_000.0)
        assert daemon.stats.checkpoints == 0

    def test_stop_halts_daemon(self):
        cluster = build_cluster(2, flavor="gm")
        daemon = CheckpointDaemon(cluster[0].driver,
                                  interval_us=5_000.0)
        daemon.start()
        cluster.sim.run(until=cluster.sim.now + 12_000.0)
        count = daemon.stats.checkpoints
        daemon.stop()
        cluster.sim.run(until=cluster.sim.now + 20_000.0)
        assert daemon.stats.checkpoints <= count + 1  # at most in-flight
