"""Tests for measurement workloads and analysis rendering."""

import pytest

from repro.analysis import Series, render_ascii, to_csv
from repro.cluster import build_cluster
from repro.workloads import (
    measure_utilization,
    run_allsize,
    run_pingpong,
)


class TestPingPong:
    def test_basic_measurement(self):
        cluster = build_cluster(2, flavor="gm")
        result = run_pingpong(cluster, 64, iterations=10)
        assert len(result.rtts) == 10
        assert 5.0 < result.half_rtt_us < 30.0

    def test_latency_grows_with_size(self):
        small = run_pingpong(build_cluster(2, flavor="gm"), 64,
                             iterations=5)
        large = run_pingpong(build_cluster(2, flavor="gm"), 32_768,
                             iterations=5)
        assert large.half_rtt_us > small.half_rtt_us

    def test_ftgm_slower_than_gm_small_messages(self):
        gm = run_pingpong(build_cluster(2, flavor="gm"), 64, iterations=10)
        ftgm = run_pingpong(build_cluster(2, flavor="ftgm"), 64,
                            iterations=10)
        delta = ftgm.half_rtt_us - gm.half_rtt_us
        # Paper: ~1.5us overhead.
        assert 0.5 < delta < 3.0


class TestAllsize:
    def test_bandwidth_positive_and_bounded(self):
        cluster = build_cluster(2, flavor="gm")
        result = run_allsize(cluster, 65_536, messages=6)
        assert 10.0 < result.bandwidth_mb_s < 250.0  # under link rate

    def test_bandwidth_grows_with_message_size(self):
        small = run_allsize(build_cluster(2, flavor="gm"), 1_024,
                            messages=10)
        large = run_allsize(build_cluster(2, flavor="gm"), 262_144,
                            messages=4)
        assert large.bandwidth_mb_s > small.bandwidth_mb_s

    def test_asymptote_near_paper_value(self):
        result = run_allsize(build_cluster(2, flavor="gm"), 1 << 20,
                             messages=4)
        # Paper: ~92 MB/s; accept a band.
        assert 80.0 < result.bandwidth_mb_s < 105.0


class TestUtilization:
    def test_gm_matches_paper_costs(self):
        u = measure_utilization("gm", messages=40)
        assert u.host_send_us == pytest.approx(0.30, abs=0.05)
        assert u.host_recv_us == pytest.approx(0.75, abs=0.05)
        assert u.lanai_total_us == pytest.approx(6.0, abs=0.4)

    def test_ftgm_overheads_emerge(self):
        u = measure_utilization("ftgm", messages=40)
        assert u.host_send_us == pytest.approx(0.55, abs=0.05)
        assert u.host_recv_us == pytest.approx(1.15, abs=0.05)
        assert u.lanai_total_us == pytest.approx(6.8, abs=0.4)


class TestAnalysis:
    def test_series_and_csv(self):
        a = Series("gm", [(1, 10.0), (2, 20.0)])
        b = Series("ftgm", [(1, 11.0), (2, 21.0)])
        csv = to_csv([a, b], x_name="size")
        lines = csv.strip().splitlines()
        assert lines[0] == "size,gm,ftgm"
        assert lines[1].startswith("1,10")

    def test_csv_handles_missing_points(self):
        a = Series("gm", [(1, 10.0)])
        b = Series("ftgm", [(2, 21.0)])
        csv = to_csv([a, b])
        assert ",," not in csv.splitlines()[0]

    def test_ascii_render_contains_series_labels(self):
        a = Series("gm", [(1, 10.0), (1024, 90.0)])
        text = render_ascii([a], "Bandwidth", "bytes", "MB/s")
        assert "Bandwidth" in text
        assert "gm" in text

    def test_ascii_render_empty(self):
        assert "(no data)" in render_ascii([], "t", "x", "y")
