"""Campaign report aggregation and its CLI surfaces.

The doc functions are pure document-to-document, so most tests run on
hand-built outcome dicts — no simulation; one module-scoped real
campaign backs the CLI round-trip tests.
"""

import json

import pytest

from repro.cli import main
from repro.exp.registry import get_experiment
from repro.exp.runner import run_experiment
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.report import (
    REPORT_SCHEMA,
    _cdf,
    campaign_report_doc,
    metrics_report_doc,
    render_campaign_report,
    render_metrics_report,
)


@pytest.fixture(autouse=True)
def _clean_runtime():
    obs_runtime.reset()
    yield
    obs_runtime.reset()


class TestCdf:
    def test_empty_sample(self):
        cdf = _cdf([])
        assert cdf["n"] == 0 and cdf["values"] == []
        assert cdf["p50"] is cdf["p99"] is cdf["min"] is None

    def test_nearest_rank_on_a_decade(self):
        cdf = _cdf([float(v) for v in range(10, 110, 10)])
        assert cdf["n"] == 10
        assert cdf["p50"] == 50.0
        assert cdf["p90"] == 90.0
        assert cdf["p99"] == 100.0
        assert cdf["min"] == 10.0 and cdf["max"] == 100.0

    def test_quantiles_are_exact_sample_values(self):
        # Nearest-rank never interpolates: every quantile of a 2-point
        # sample is one of the 2 points, not an invented midpoint.
        cdf = _cdf([1.0, 1000.0])
        assert cdf["p50"] == 1.0
        assert cdf["p90"] == 1000.0

    def test_singleton_collapses_every_quantile(self):
        cdf = _cdf([7.0])
        assert cdf["p50"] == cdf["p90"] == cdf["p99"] == 7.0

    def test_values_ship_sorted(self):
        assert _cdf([3.0, 1.0, 2.0])["values"] == [1.0, 2.0, 3.0]


def _stage(stage, verdict="pass", breaches=(), availability=None,
           p99_us=None):
    return {"stage": stage, "verdict": verdict,
            "breaches": list(breaches), "availability": availability,
            "p99_us": p99_us}


def _slo_outcome(scenario, flavor, verdict, stages):
    return {"scenario": scenario, "flavor": flavor,
            "verdict": {"verdict": verdict, "slo_hash": "h",
                        "stages": stages}}


def _nf_outcome(scenario, fault_at, verdict_at, installed_at=-1.0):
    return {"scenario": scenario, "fault_at": fault_at,
            "verdict_at": verdict_at,
            "reroute_installed_at": installed_at}


def _result_doc(outcomes, **extra):
    doc = {"schema": "repro.exp.result/1",
           "spec": {"experiment": "synthetic"},
           "manifest": {"spec_hash": "cafe"},
           "outcomes": outcomes, "rendered": "", "summary": None}
    doc.update(extra)
    return doc


class TestSloAttribution:
    def test_attribution_aggregates_per_cell_and_stage(self):
        outcomes = [
            _slo_outcome("link-cut", "gm", "fail", [
                _stage("spike", "fail", ["availability 0.4 < 0.95"],
                       availability=0.4, p99_us=9000.0),
                _stage("cooldown", "pass", availability=0.99),
            ]),
            _slo_outcome("link-cut", "gm", "pass", [
                _stage("spike", "pass", availability=0.97,
                       p99_us=1500.0),
                _stage("cooldown", "pass", availability=0.98),
            ]),
            _slo_outcome("link-cut", "ftgm", "pass", [
                _stage("spike", "pass", availability=0.99),
            ]),
        ]
        report = campaign_report_doc(_result_doc(outcomes))
        attribution = report["slo_attribution"]
        assert sorted(attribution) == ["link-cut/ftgm", "link-cut/gm"]
        gm = attribution["link-cut/gm"]
        assert gm["runs"] == 2 and gm["failed_runs"] == 1
        spike = gm["stages"]["spike"]
        assert spike["failed"] == 1
        assert spike["breaches"] == ["availability 0.4 < 0.95"]
        assert spike["worst_availability"] == 0.4
        assert spike["worst_p99_us"] == 9000.0
        assert gm["stages"]["cooldown"]["failed"] == 0

    def test_outcomes_without_verdicts_are_skipped(self):
        report = campaign_report_doc(
            _result_doc([{"scenario": "x", "resolved": True}]))
        assert "slo_attribution" not in report


class TestScenarioCdfs:
    def test_detection_and_recovery_deltas(self):
        outcomes = [
            _nf_outcome("link-cut", 100.0, 150.0, 180.0),
            _nf_outcome("link-cut", 200.0, 270.0, 300.0),
            _nf_outcome("corrupt", 50.0, -1.0),   # never detected
        ]
        scenarios = campaign_report_doc(
            _result_doc(outcomes))["scenarios"]
        cut = scenarios["link-cut"]
        assert cut["runs"] == 2
        assert cut["detection_us"]["values"] == [50.0, 70.0]
        assert cut["recovery_us"]["values"] == [80.0, 100.0]
        # The undetected run is counted but contributes no samples —
        # n vs runs is the "how many even reached detection" signal.
        corrupt = scenarios["corrupt"]
        assert corrupt["runs"] == 1
        assert corrupt["detection_us"]["n"] == 0


class TestCampaignReportDoc:
    def test_minimal_doc_has_only_the_header(self):
        report = campaign_report_doc(_result_doc([]))
        assert report == {"schema": REPORT_SCHEMA,
                          "experiment": "synthetic",
                          "spec_hash": "cafe", "runs": 0}

    def test_latency_rebuilds_from_serialized_histograms(self):
        hist = Histogram()
        for v in (100.0, 200.0, 300.0):
            hist.observe(v)
        doc = _result_doc([], telemetry={
            "counters": {}, "gauges": {},
            "histograms": {"recovery.detection_us": hist.to_doc(),
                           "unrelated.metric_us": hist.to_doc()}})
        latency = campaign_report_doc(doc)["latency"]
        assert set(latency) == {"recovery.detection_us"}
        assert latency["recovery.detection_us"]["n"] == 3
        assert latency["recovery.detection_us"]["max"] == 300.0

    def test_timeseries_summary_counts_runs_samples_tracks(self):
        doc = _result_doc([], timeseries={
            "schema": "repro.obs.timeseries/1",
            "sample_every_us": 5000.0,
            "runs": [[0, {"t": [1.0, 2.0], "tracks": {"a": [1, 2]}}],
                     [2, {"t": [1.0], "tracks": {"b": [5]}}]]})
        series = campaign_report_doc(doc)["timeseries"]
        assert series == {"sample_every_us": 5000.0, "runs_sampled": 2,
                          "samples": 3, "tracks": ["a", "b"]}


class TestRendering:
    def test_campaign_render_names_every_section(self):
        outcomes = [
            _slo_outcome("link-cut", "gm", "fail",
                         [_stage("spike", "fail", ["lost 16 > 0"])]),
            _nf_outcome("link-cut", 100.0, 150.0, 180.0),
        ]
        text = render_campaign_report(
            campaign_report_doc(_result_doc(outcomes)))
        assert "Campaign report: synthetic (2 runs)" in text
        assert "Detection / recovery latency CDFs" in text
        assert "SLO attribution by stage" in text
        assert "link-cut/gm: 1/1 runs failed" in text
        assert "breach: lost 16 > 0" in text

    def test_campaign_render_empty_fallback(self):
        text = render_campaign_report(campaign_report_doc(
            _result_doc([])))
        assert "(no per-stage verdicts" in text

    def test_metrics_report_doc_mirrors_the_snapshot(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("packets", 3)
        reg.gauge("depth", 2.0)
        reg.observe("lat_us", 50.0)
        doc = metrics_report_doc(reg.snapshot(), title="t")
        assert doc["schema"] == "repro.obs.metrics_report/1"
        assert doc["title"] == "t"
        assert doc["counters"] == {"packets": 3}
        assert doc["gauges"]["depth"]["mean"] == 2.0
        assert doc["histograms"]["lat_us"]["n"] == 1
        json.dumps(doc)    # must be serializable as-is

    def test_metrics_render_always_shows_table3_block(self):
        text = render_metrics_report(
            MetricsRegistry(enabled=True).snapshot())
        assert "Recovery latency breakdown (cf. paper Table 3)" in text
        assert "detection" in text


@pytest.fixture(scope="module")
def nf_result_path(tmp_path_factory):
    """One real telemetry-on campaign backing the CLI round-trips."""
    spec = get_experiment("netfaults").build_spec(
        {"runs_per_scenario": 1, "scenarios": ["link-cut"], "nodes": 4})
    result = run_experiment(spec, telemetry=True)
    path = tmp_path_factory.mktemp("reports") / "nf.json"
    result.write(str(path))
    return str(path)


class TestCli:
    def test_metrics_from_rerenders_saved_telemetry(self, nf_result_path,
                                                    capsys):
        assert main(["metrics", "--from", nf_result_path]) == 0
        out = capsys.readouterr().out
        assert "netfaults (1 runs, from" in out
        assert "Counters" in out

    def test_metrics_from_json(self, nf_result_path, capsys):
        assert main(["metrics", "--from", nf_result_path,
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.obs.metrics_report/1"
        assert "netfaults" in doc["title"]

    def test_metrics_from_requires_telemetry(self, nf_result_path,
                                             tmp_path):
        with open(nf_result_path) as fh:
            doc = json.load(fh)
        doc.pop("telemetry")
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(doc))
        with pytest.raises(SystemExit, match="no 'telemetry' key"):
            main(["metrics", "--from", str(bare)])

    def test_report_renders_a_saved_result(self, nf_result_path,
                                           capsys):
        assert main(["report", nf_result_path]) == 0
        out = capsys.readouterr().out
        assert "Campaign report: netfaults (1 runs)" in out
        assert "Detection / recovery latency CDFs" in out

    def test_report_json_is_the_report_doc(self, nf_result_path,
                                           capsys):
        assert main(["report", nf_result_path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["runs"] == 1
        assert "link-cut" in doc["scenarios"]
        assert doc["scenarios"]["link-cut"]["detection_us"]["n"] == 1
