"""Flight recorder contracts: zero-cost ring, trigger taxonomy,
snapshot-carrying dumps and the verified time-travel restore."""

import glob
import json
import os
from types import SimpleNamespace

import pytest

from repro.exp.registry import get_experiment
from repro.exp.runner import run_experiment
from repro.obs import flightrec
from repro.obs import runtime as obs_runtime
from repro.obs.flightrec import (
    FLIGHT_VERSION,
    RING_CAPACITY,
    FlightRecorder,
    classify_anomaly,
    load_flight_dump,
    restore_flight_dump,
)
from repro.sim.trace import TraceRecord


@pytest.fixture(autouse=True)
def _clean_runtime():
    obs_runtime.reset()
    yield
    obs_runtime.reset()


def _rec(t, kind="span", **details):
    return TraceRecord(t, "test", kind, details)


class TestZeroCostContract:
    def test_disabled_record_is_the_module_noop(self):
        rec = FlightRecorder(enabled=False)
        assert rec.record is flightrec._noop_record

    def test_enabled_record_is_the_bound_method(self):
        rec = FlightRecorder()
        assert rec.record is not flightrec._noop_record
        assert rec.record.__func__ is FlightRecorder.record

    def test_toggling_swaps_back_and_forth(self):
        rec = FlightRecorder()
        rec.enabled = False
        rec.record(_rec(1.0))
        assert not rec.ring
        rec.enabled = True
        rec.record(_rec(2.0))
        assert len(rec.ring) == 1


class TestRing:
    def test_ring_is_bounded_and_keeps_the_newest(self):
        rec = FlightRecorder()
        for i in range(RING_CAPACITY + 50):
            rec.record(_rec(float(i)))
        assert len(rec.ring) == RING_CAPACITY
        assert rec.ring[0].time == 50.0
        assert rec.ring[-1].time == float(RING_CAPACITY + 49)

    def test_counter_deltas_enter_the_ring_as_records(self):
        rec = FlightRecorder()
        rec.note_counters(120.0, {"link.packets_carried": 8})
        entry = rec.ring[0]
        assert entry.source == "flightrec"
        assert entry.kind == "counter_deltas"
        assert entry.details == {"link.packets_carried": 8}

    def test_report_pins_the_noted_end_instant(self):
        rec = FlightRecorder()
        rec.record(_rec(10.0))
        rec.note_end(99.5)
        payload = rec.report("slo-breach: spike")
        assert payload["reason"] == "slo-breach: spike"
        assert payload["at_us"] == 99.5
        assert payload["records"] == [[10.0, "test", "span", {}]]

    def test_report_falls_back_to_last_record_time(self):
        rec = FlightRecorder()
        rec.record(_rec(10.0))
        rec.record(_rec(42.0))
        assert rec.report("x")["at_us"] == 42.0

    def test_report_makes_details_json_safe(self):
        rec = FlightRecorder()
        rec.record(_rec(1.0, packet=object(), n=3))
        details = rec.report("x")["records"][0][3]
        assert details["n"] == 3
        assert isinstance(details["packet"], str)
        json.dumps(details)    # must not raise


class TestAttach:
    def test_attach_behind_an_enabled_tracer_chains_the_sink(self):
        seen = []
        tracer = SimpleNamespace(enabled=True, sink=seen.append)
        rec = FlightRecorder()
        rec.attach(tracer)
        record = _rec(5.0)
        tracer.sink(record)
        assert seen == [record]
        assert list(rec.ring) == [record]

    def test_attach_to_a_disabled_tracer_adopts_the_ring(self):
        tracer = SimpleNamespace(enabled=False, sink=None,
                                 kinds=(), records=[])
        rec = FlightRecorder()
        rec.attach(tracer)
        assert tracer.enabled
        assert tracer.records is rec.ring
        assert tracer.kinds, "forced span kinds must be installed"


class _Verdict:
    def __init__(self, passed, stages=()):
        self._passed = passed
        self._stages = [SimpleNamespace(stage=s) for s in stages]

    @property
    def passed(self):
        return self._passed

    def failed_stages(self):
        return self._stages


class TestTriggerTaxonomy:
    def test_exception_wins(self):
        reason = classify_anomaly(None, ValueError("boom"))
        assert reason == "exception: ValueError: boom"

    def test_failed_verdict_names_the_breached_stages(self):
        outcome = SimpleNamespace(
            verdict=_Verdict(False, ["spike", "cooldown", "spike"]))
        assert classify_anomaly(outcome) == "slo-breach: cooldown,spike"

    def test_passed_verdict_is_clean(self):
        outcome = SimpleNamespace(verdict=_Verdict(True),
                                  workload_completed=True)
        assert classify_anomaly(outcome) is None

    def test_incomplete_workload_is_a_deadlock(self):
        outcome = SimpleNamespace(workload_completed=False,
                                  category="partitioned")
        assert classify_anomaly(outcome) == "deadlock: partitioned"

    def test_outcome_without_observability_fields_is_clean(self):
        assert classify_anomaly(SimpleNamespace(resolved=True)) is None


class TestDumps:
    def test_load_rejects_non_flight_documents(self, tmp_path):
        path = str(tmp_path / "notflight.json")
        with open(path, "w") as fh:
            json.dump({"flight": 99}, fh)
        with pytest.raises(ValueError, match="not a flight dump"):
            load_flight_dump(path)

    def test_ring_only_dump_refuses_to_restore(self):
        doc = {"flight": FLIGHT_VERSION, "experiment": "x",
               "run_index": 0, "snapshot": None,
               "snapshot_error": "run raised before completing"}
        with pytest.raises(ValueError, match="no snapshot"):
            restore_flight_dump(doc)

    def test_induced_breach_dumps_and_restores(self, tmp_path):
        # The small link-cut cell: the plain-gm flavor reliably
        # breaches its SLO while ftgm holds it, so exactly one run
        # must trigger the recorder.
        spec = get_experiment("slo-chaos").build_spec(
            {"scale": "small", "scenarios": ["link-cut"]})
        flight_dir = str(tmp_path / "flights")
        result = run_experiment(spec, sample_every=5000.0,
                                flight_dir=flight_dir)

        dumps = sorted(glob.glob(os.path.join(flight_dir,
                                              "*.flight.json")))
        assert result.flight_dumps == dumps
        assert len(dumps) == 1

        doc = load_flight_dump(dumps[0])
        assert doc["experiment"] == "slo-chaos"
        assert doc["reason"].startswith("slo-breach: ")
        assert doc["records"], "ring must not be empty"
        assert doc["snapshot"] is not None
        # Counter deltas from the sampler ride the same ring.
        assert any(row[1] == "flightrec" and row[2] == "counter_deltas"
                   for row in doc["records"])

        breached = result.outcomes[doc["run_index"]]
        assert breached.flavor == "gm"
        assert not breached.verdict.passed

        paused = restore_flight_dump(dumps[0], verify=True)
        assert paused.now == doc["at_us"]

    def test_clean_campaign_writes_no_dumps(self, tmp_path):
        spec = get_experiment("netfaults").build_spec(
            {"runs_per_scenario": 1, "scenarios": ["link-cut"],
             "nodes": 4})
        flight_dir = str(tmp_path / "flights")
        result = run_experiment(spec, flight_dir=flight_dir)
        assert not result.flight_dumps
        assert not glob.glob(os.path.join(flight_dir, "*"))
