"""Continuous sampling contracts.

The load-bearing guarantees: sampling off installs nothing (results
byte-identical to unsampled runs), sampling on is deterministic across
every executor, sample instants ride simulated time exactly, and
reading a lazily-parked MCP never wakes it.
"""

import json

import pytest

from repro.cluster import build_cluster
from repro.exp.registry import get_experiment
from repro.exp.results import validate_result
from repro.exp.runner import run_experiment
from repro.obs import runtime as obs_runtime
from repro.obs.timeseries import TimeSeriesSampler


@pytest.fixture(autouse=True)
def _clean_runtime():
    obs_runtime.reset()
    yield
    obs_runtime.reset()


NF_PARAMS = {"runs_per_scenario": 1, "scenarios": ["link-cut"],
             "nodes": 4}


def _run(name, params, **kw):
    experiment = get_experiment(name)
    spec = experiment.build_spec(dict(params))
    return run_experiment(spec, **kw)


def _doc_without_manifest(result):
    doc = result.to_doc()
    doc.pop("manifest")
    return doc


class TestSamplerUnit:
    def test_cadence_must_be_positive(self):
        cluster = build_cluster(n_nodes=2, flavor="gm")
        with pytest.raises(ValueError):
            TimeSeriesSampler(cluster, 0.0)

    def test_samples_land_on_exact_cadence_instants(self):
        obs_runtime.configure(sample_every=500.0)
        cluster = build_cluster(n_nodes=2, flavor="ftgm")
        cluster.sim.run(until=2600)
        doc = cluster.sampler.to_doc()
        assert doc["t"] == [500.0, 1000.0, 1500.0, 2000.0, 2500.0]
        assert doc["every_us"] == 500.0

    def test_every_track_spans_every_sample(self):
        obs_runtime.configure(sample_every=400.0)
        cluster = build_cluster(n_nodes=3, flavor="ftgm")
        cluster.sim.run(until=2000)
        doc = cluster.sampler.to_doc()
        assert doc["tracks"], "no tracks registered"
        for name, track in doc["tracks"].items():
            assert len(track) == len(doc["t"]), name

    def test_default_tracks_cover_mcp_and_fabric(self):
        obs_runtime.configure(sample_every=1000.0)
        cluster = build_cluster(n_nodes=2, flavor="ftgm")
        cluster.sim.run(until=3000)
        tracks = set(cluster.sampler.to_doc()["tracks"])
        for expected in ("mcp.node0.l_timer_invocations",
                         "mcp.node0.ticks_parked",
                         "mcp.node0.watchdog_arms",
                         "mcp.node1.l_timer_invocations",
                         "link.packets_carried",
                         "link.packets_corrupted",
                         "switch.forwarded"):
            assert expected in tracks, expected

    def test_gm_flavor_has_no_watchdog_track(self):
        obs_runtime.configure(sample_every=1000.0)
        cluster = build_cluster(n_nodes=2, flavor="gm")
        assert not any("watchdog" in name
                       for name in cluster.sampler.tracks)

    def test_counter_tracks_are_monotone(self):
        obs_runtime.configure(sample_every=500.0)
        cluster = build_cluster(n_nodes=2, flavor="ftgm")
        cluster.sim.run(until=4000)
        for name, track in cluster.sampler.to_doc()["tracks"].items():
            assert all(a <= b for a, b in zip(track, track[1:])), name

    def test_duplicate_registration_rejected(self):
        obs_runtime.configure(sample_every=500.0)
        cluster = build_cluster(n_nodes=2, flavor="gm")
        with pytest.raises(ValueError):
            cluster.sampler.register("link.packets_carried", lambda now: 0)

    def test_midrun_registration_backfills_zeros(self):
        obs_runtime.configure(sample_every=500.0)
        cluster = build_cluster(n_nodes=2, flavor="gm")
        cluster.sim.run(until=1600)            # 3 samples taken
        cluster.sampler.register("late.track", lambda now: 9)
        cluster.sim.run(until=2100)            # 1 more
        track = cluster.sampler.to_doc()["tracks"]["late.track"]
        assert track == [0, 0, 0, 9]

    def test_counter_records_are_chrome_counter_events(self):
        obs_runtime.configure(sample_every=1000.0)
        cluster = build_cluster(n_nodes=2, flavor="gm")
        cluster.sim.run(until=2500)
        records = cluster.sampler.counter_records()
        assert records
        assert all(r.source == "timeseries" and r.details["_ph"] == "C"
                   and "value" in r.details for r in records)
        assert {r.kind for r in records} == set(cluster.sampler.tracks)

    def test_nothing_installed_when_intent_unset(self):
        cluster = build_cluster(n_nodes=2, flavor="ftgm")
        assert cluster.sampler is None
        assert cluster.flight is None


class TestParkedSampling:
    """Reading a parked MCP projects, never wakes."""

    def _parked_cluster(self):
        cluster = build_cluster(n_nodes=2, flavor="gm", lazy=True)
        cluster.sim.run(until=50_000)
        return cluster

    def test_sample_stats_does_not_unpark(self):
        cluster = self._parked_cluster()
        mcp = cluster.nodes[0].driver.mcp
        assert mcp._parked, "idle lazy node should have parked"
        before = mcp.l_timer_invocations
        mcp.sample_stats(cluster.sim.now)
        assert mcp._parked
        assert mcp.l_timer_invocations == before

    def test_projection_matches_settled_counters(self):
        # The read-only projection must agree exactly with what the
        # counters read after the real replay settles the parked span
        # at the same instant.
        cluster = self._parked_cluster()
        mcp = cluster.nodes[0].driver.mcp
        assert mcp._parked
        projected = mcp.sample_stats(cluster.sim.now)
        mcp.settle_idle()
        assert mcp.l_timer_invocations \
            == projected["l_timer_invocations"]
        assert mcp.ticks_parked == projected["ticks_parked"]

    def test_ftgm_projection_matches_watchdog_arms(self):
        cluster = build_cluster(n_nodes=2, flavor="ftgm", lazy=True)
        cluster.sim.run(until=80_000)
        mcp = cluster.nodes[1].driver.mcp
        if not mcp._parked:
            pytest.skip("node never parked in this window")
        projected = mcp.sample_stats(cluster.sim.now)
        mcp.settle_idle()
        assert mcp.l_timer_invocations \
            == projected["l_timer_invocations"]
        # A mid-window wake arms its watchdog only at the tail
        # callback, so both the projection and the replay count whole
        # windows only — they must agree exactly.
        assert mcp.watchdog_arms == projected["watchdog_arms"]

    def test_unparked_mcp_projection_is_plain_counters(self):
        cluster = build_cluster(n_nodes=2, flavor="ftgm")
        cluster.sim.run(until=10_000)
        mcp = cluster.nodes[0].driver.mcp
        stats = mcp.sample_stats(cluster.sim.now)
        assert stats["l_timer_invocations"] == mcp.l_timer_invocations
        assert stats["watchdog_arms"] == mcp.watchdog_arms


class TestEngineIntegration:
    def test_sampling_off_leaves_results_byte_identical(self):
        off = _doc_without_manifest(_run("netfaults", NF_PARAMS))
        on = _doc_without_manifest(
            _run("netfaults", NF_PARAMS, sample_every=2000.0))
        assert "timeseries" not in off
        series = on.pop("timeseries")
        assert json.dumps(off, sort_keys=True) \
            == json.dumps(on, sort_keys=True)
        assert series["sample_every_us"] == 2000.0
        assert [index for index, _ in series["runs"]] == [0]

    def test_timeseries_identical_across_executors(self):
        docs = [
            _run("netfaults", NF_PARAMS, sample_every=2000.0,
                 **mode).to_doc()["timeseries"]
            for mode in ({}, {"workers": 2}, {"forkserver": False},
                         {"shards": 2})
        ]
        as_json = [json.dumps(d, sort_keys=True) for d in docs]
        assert all(d == as_json[0] for d in as_json), \
            "serial/pool/spawn/sharded timeseries must be identical"

    def test_result_doc_with_timeseries_validates(self):
        result = _run("netfaults", NF_PARAMS, sample_every=2000.0)
        validate_result(json.loads(result.to_json()))

    def test_malformed_timeseries_rejected(self):
        result = _run("netfaults", NF_PARAMS, sample_every=2000.0)
        doc = json.loads(result.to_json())
        doc["timeseries"]["runs"][0][1]["tracks"]["bad"] = [1]
        with pytest.raises(ValueError, match="spanning"):
            validate_result(doc)

    def test_trace_gains_counter_events_when_sampling(self):
        result = _run("netfaults", NF_PARAMS, sample_every=2000.0,
                      trace=True)
        assert result.traces
        for _, records in result.traces:
            counters = [r for r in records if r.source == "timeseries"]
            assert counters, "no counter events in trace"
            assert all(r.details["_ph"] == "C" for r in counters)

    def test_runtime_reset_after_sampled_campaign(self):
        _run("netfaults", NF_PARAMS, sample_every=2000.0)
        assert obs_runtime.sample_every() is None
        assert not obs_runtime.flight_on()
