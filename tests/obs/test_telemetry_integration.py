"""Telemetry-plane integration contracts.

The load-bearing guarantees: telemetry never perturbs an experiment
(byte-identical outcomes on or off, in every execution mode), snapshot
aggregation is order-independent, and tracing captures recovery spans
and cross-node message flows.
"""

import json

import pytest

from repro.obs import runtime as obs_runtime
from repro.exp.registry import get_experiment
from repro.exp.results import validate_result
from repro.exp.runner import run_experiment


@pytest.fixture(autouse=True)
def _clean_runtime():
    obs_runtime.reset()
    yield
    obs_runtime.reset()


def _doc(name, params, **kw):
    experiment = get_experiment(name)
    spec = experiment.build_spec(dict(params))
    result = run_experiment(spec, **kw)
    doc = result.to_doc()
    doc.pop("manifest")      # wall time / timestamp differ run to run
    return result, doc


def _strip(doc):
    doc = dict(doc)
    doc.pop("telemetry", None)
    return json.dumps(doc, sort_keys=True)


class TestByteIdentity:
    @pytest.mark.parametrize("seed", [2003, 99])
    def test_enabled_vs_disabled_is_byte_identical(self, seed):
        params = {"runs": 3, "seed": seed}
        _, off = _doc("table1", params)
        _, on = _doc("table1", params, telemetry=True, trace=True)
        assert "telemetry" not in off
        assert "telemetry" in on
        assert _strip(off) == _strip(on)

    def test_ftgm_flavor_identical_too(self):
        params = {"runs": 4}
        _, off = _doc("effectiveness", params)
        _, on = _doc("effectiveness", params, telemetry=True, trace=True)
        assert _strip(off) == _strip(on)

    def test_workers_and_forkserver_modes_agree(self):
        params = {"runs": 4}
        docs = [
            _doc("effectiveness", params, telemetry=True,
                 workers=workers, forkserver=forkserver)[1]
            for workers, forkserver in
            ((1, True), (4, True), (1, False), (4, False))
        ]
        asjson = [json.dumps(d, sort_keys=True) for d in docs]
        assert all(d == asjson[0] for d in asjson), \
            "serial/pool/fork-server runs must agree, telemetry included"


class TestSnapshotSemantics:
    def test_telemetry_doc_validates(self):
        result, doc = _doc("table1", {"runs": 3}, telemetry=True)
        doc["manifest"] = result.manifest.to_dict()
        validate_result(doc)

    def test_snapshot_covers_every_layer(self):
        result, _ = _doc("table1", {"runs": 3}, telemetry=True)
        counters = result.telemetry.counters
        for key in ("sim.events_scheduled", "lanai.instructions_retired",
                    "mcp.packets_sent", "dma.transactions",
                    "pci.bytes_moved", "link.packets_carried",
                    "switch.forwarded", "gm.port.sends_completed"):
            assert key in counters, "missing %s" % key

    def test_recovery_histograms_present_for_ftgm(self):
        # 10 runs at the default seed is the smallest campaign in which
        # at least one injected fault triggers a full FTGM recovery.
        result, _ = _doc("effectiveness", {"runs": 10}, telemetry=True)
        hists = result.telemetry.histograms
        assert any(k.startswith("recovery.phase.") for k in hists)
        assert "recovery.total_us" in hists

    def test_disabled_run_attaches_no_telemetry(self):
        result, _ = _doc("table1", {"runs": 2})
        assert result.telemetry is None
        assert result.traces is None


class TestTracing:
    def test_flows_stitch_sender_wire_receiver(self):
        result, _ = _doc("table1", {"runs": 2}, trace=True)
        assert result.traces and len(result.traces) == 2
        phases = {}
        for _, records in result.traces:
            for record in records:
                if record.kind == "flow":
                    phases.setdefault(record.details["_id"], set()) \
                          .add(record.details["_ph"])
        assert any(v >= {"b", "n", "e"} for v in phases.values()), \
            "no message completed a b/n/e flow"

    def test_recovery_spans_mirror_table3_phases(self):
        result, _ = _doc("effectiveness", {"runs": 10}, trace=True)
        spans = {record.details["name"]
                 for _, records in result.traces
                 for record in records if record.kind == "span"}
        assert {"daemon wakeup", "MCP reload",
                "FAULT_DETECTED posting"} <= spans

    def test_timer_expired_noise_is_excluded(self):
        result, _ = _doc("table1", {"runs": 2}, trace=True)
        kinds = {record.kind
                 for _, records in result.traces for record in records}
        assert "timer_expired" not in kinds

    def test_runtime_is_reset_after_run(self):
        _doc("table1", {"runs": 2}, telemetry=True, trace=True)
        assert not obs_runtime.metrics_on()
        assert not obs_runtime.tracing()
