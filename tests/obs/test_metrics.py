"""Unit tests for the metrics registry primitives."""

import pytest

from repro.obs import metrics as m
from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    BusyTracker,
    GaugeStat,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestZeroCostContract:
    def test_disabled_emit_is_the_module_noop(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.emit is m._noop_emit

    def test_enabled_emit_is_the_bound_method(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.emit is not m._noop_emit
        assert reg.emit.__func__ is MetricsRegistry.emit

    def test_toggling_swaps_back_and_forth(self):
        reg = MetricsRegistry(enabled=True)
        reg.enabled = False
        assert reg.emit is m._noop_emit
        reg.enabled = True
        assert reg.emit is not m._noop_emit

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.observe("h", 3.0)
        reg.gauge("g", 1.0)
        snap = reg.snapshot()
        assert not snap.counters and not snap.gauges \
            and not snap.histograms


class TestRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("c", 2)
        reg.inc("c")
        reg.gauge("g", 5.0)
        reg.gauge("g", 7.0)
        reg.observe("h", 10.0)
        snap = reg.snapshot()
        assert snap.counters["c"] == 3
        assert snap.gauges["g"].mean() == 6.0
        assert snap.histograms["h"].n == 1

    def test_unknown_kind_raises(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            reg.emit("x", 1.0, kind="bogus")

    def test_emit_dispatches_on_kind(self):
        reg = MetricsRegistry(enabled=True)
        reg.emit("c", 2.0, kind=COUNTER)
        reg.emit("g", 2.0, kind=GAUGE)
        reg.emit("h", 2.0, kind=HISTOGRAM)
        snap = reg.snapshot()
        assert snap.counters["c"] == 2.0
        assert "g" in snap.gauges and "h" in snap.histograms


class TestHistogram:
    def test_percentiles_of_constant_are_exact(self):
        h = Histogram()
        for _ in range(50):
            h.observe(42.0)
        assert h.percentile(50) == 42.0
        assert h.percentile(99) == 42.0

    def test_percentiles_are_monotone_and_bounded(self):
        h = Histogram()
        for v in (1.0, 10.0, 100.0, 1000.0, 10000.0):
            h.observe(v)
        p50, p90, p99 = (h.percentile(p) for p in (50, 90, 99))
        assert h.min <= p50 <= p90 <= p99 <= h.max

    def test_merge_sums_counts(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        b.observe(100.0)
        a.merge(b)
        assert a.n == 2
        assert a.min == 1.0 and a.max == 100.0

    def test_merge_rejects_different_edges(self):
        a = Histogram()
        b = Histogram(edges=(1.0, 2.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_doc_roundtrip(self):
        h = Histogram()
        for v in (0.5, 3.0, 2.5e6, 1e9):      # incl. overflow bucket
            h.observe(v)
        assert Histogram.from_doc(h.to_doc()) == h


class TestPercentileEdgeCases:
    def test_empty_histogram_has_no_percentiles(self):
        h = Histogram()
        for q in (0, 50, 99, 99.9, 100):
            assert h.percentile(q) is None

    def test_q_zero_is_the_observed_min(self):
        h = Histogram()
        for v in (3.0, 7.0, 90.0):
            h.observe(v)
        assert h.percentile(0) == 3.0

    def test_single_bucket_clamps_to_the_exact_sample(self):
        # Every observation lands in one bucket; interpolation inside
        # the bucket would invent values below/around 5.0, but the
        # [min, max] clamp pins every percentile to the exact constant.
        h = Histogram()
        for _ in range(7):
            h.observe(5.0)
        assert sum(1 for c in h.counts if c) == 1
        for q in (1, 50, 99, 99.9):
            assert h.percentile(q) == 5.0

    def test_overflow_bucket_p999_is_clamped_to_max(self):
        # Values beyond the last edge (7e6 in DEFAULT_BUCKETS) land in
        # the overflow bucket, whose upper bound is the observed max —
        # p999 must interpolate toward and never exceed it.
        h = Histogram()
        for v in (8e6, 9e6, 4e9):
            h.observe(v)
        assert h.counts[len(h.edges)] == 3      # all in overflow
        p999 = h.percentile(99.9)
        assert h.edges[-1] < p999 <= h.max == 4e9
        assert h.percentile(100) == h.max

    def test_merge_then_percentile_matches_percentile_of_halves(self):
        # Two identically-distributed halves merged must report the
        # same percentiles as either half: counts and rank targets
        # scale together, so the interpolation is unchanged.
        values = (1.0, 12.0, 340.0, 4400.0, 2.5e6)
        a, b = Histogram(), Histogram()
        for v in values:
            a.observe(v)
            b.observe(v)
        before = {q: a.percentile(q) for q in (50, 90, 99, 99.9)}
        a.merge(b)
        assert a.n == 2 * len(values)
        for q, expected in before.items():
            assert a.percentile(q) == expected

    def test_merge_order_does_not_change_percentiles(self):
        lo, hi = Histogram(), Histogram()
        for v in (1.0, 2.0, 3.0):
            lo.observe(v)
        for v in (1e4, 2e4, 1e8):               # incl. overflow
            hi.observe(v)
        ab = lo.copy()
        ab.merge(hi)
        ba = hi.copy()
        ba.merge(lo)
        assert ab == ba
        for q in (50, 90, 99, 99.9):
            assert ab.percentile(q) == ba.percentile(q)


class TestGaugeStat:
    def test_merge_combines_extremes_and_mean(self):
        a, b = GaugeStat(), GaugeStat()
        a.set(1.0)
        a.set(3.0)
        b.set(5.0)
        a.merge(b)
        assert (a.n, a.min, a.max, a.mean()) == (3, 1.0, 5.0, 3.0)

    def test_doc_roundtrip(self):
        g = GaugeStat()
        g.set(2.0)
        assert GaugeStat.from_doc(g.to_doc()) == g


class TestSnapshotMerge:
    def _snap(self, c, g, h):
        reg = MetricsRegistry(enabled=True)
        reg.inc("c", c)
        reg.gauge("g", g)
        reg.observe("h", h)
        return reg.snapshot()

    def test_merge_is_order_independent(self):
        ab = MetricsSnapshot.merged([self._snap(1, 2.0, 3.0),
                                     self._snap(10, 20.0, 30.0)])
        ba = MetricsSnapshot.merged([self._snap(10, 20.0, 30.0),
                                     self._snap(1, 2.0, 3.0)])
        assert ab == ba
        assert ab.to_doc() == ba.to_doc()

    def test_merge_with_disjoint_keys(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("only_a")
        a = reg.snapshot()
        reg2 = MetricsRegistry(enabled=True)
        reg2.inc("only_b", 5)
        merged = MetricsSnapshot.merged([a, reg2.snapshot()])
        assert merged.counters == {"only_a": 1, "only_b": 5}

    def test_doc_roundtrip(self):
        snap = self._snap(4, 7.0, 9.0)
        assert MetricsSnapshot.from_doc(snap.to_doc()) == snap


class TestBusyTracker:
    def test_engage_release_accumulates(self):
        t = BusyTracker()
        t.engage(10.0)
        t.release(15.0)
        t.engage(20.0)
        t.release(21.5)
        assert t.busy_time == 6.5

    def test_engage_is_idempotent(self):
        t = BusyTracker()
        t.engage(0.0)
        t.engage(5.0)          # ignored; still busy since t=0
        t.release(10.0)
        assert t.busy_time == 10.0

    def test_release_without_engage_is_noop(self):
        t = BusyTracker()
        t.release(10.0)
        assert t.busy_time == 0.0

    def test_total_includes_open_interval(self):
        t = BusyTracker()
        t.engage(10.0)
        assert t.total(14.0) == 4.0
        assert t.busy_time == 0.0   # not yet released
