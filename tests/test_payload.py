"""Unit and property tests for the payload abstraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.payload import Payload


class TestConcrete:
    def test_from_bytes_roundtrip(self):
        p = Payload.from_bytes(b"hello world")
        assert p.size == 11
        assert p.data == b"hello world"
        assert p.is_concrete

    def test_equality_by_content(self):
        assert Payload.from_bytes(b"abc") == Payload.from_bytes(b"abc")
        assert Payload.from_bytes(b"abc") != Payload.from_bytes(b"abd")

    def test_slice(self):
        p = Payload.from_bytes(b"0123456789")
        assert p.slice(2, 5).data == b"23456"

    def test_slice_bounds_checked(self):
        p = Payload.from_bytes(b"0123")
        with pytest.raises(ValueError):
            p.slice(2, 3)

    def test_concat(self):
        a = Payload.from_bytes(b"abc")
        b = Payload.from_bytes(b"def")
        assert Payload.concat([a, b]).data == b"abcdef"

    def test_corrupt_changes_equality(self):
        p = Payload.from_bytes(b"data!")
        assert p.corrupt(3) != p

    def test_corrupt_twice_restores(self):
        p = Payload.from_bytes(b"data!")
        assert p.corrupt(3).corrupt(3) == p

    def test_truncate(self):
        p = Payload.from_bytes(b"0123456789")
        assert p.truncate(4).data == b"0123"
        assert p.truncate(100).data == b"0123456789"

    def test_pattern_deterministic(self):
        assert Payload.pattern(100, seed=7) == Payload.pattern(100, seed=7)
        assert Payload.pattern(100, seed=7) != Payload.pattern(100, seed=8)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Payload(5, data=b"abc")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Payload(-1)


class TestPhantom:
    def test_identity(self):
        p = Payload.phantom(4096, tag=1)
        assert not p.is_concrete
        assert p == Payload.phantom(4096, tag=1)
        assert p != Payload.phantom(4096, tag=2)
        assert p != Payload.phantom(4097, tag=1)

    def test_data_access_raises(self):
        with pytest.raises(ValueError):
            Payload.phantom(10).data

    def test_fragment_reassembly_reproduces_original(self):
        """Slice into 4KB fragments, concat in order -> equal payload."""
        p = Payload.phantom(10000, tag=42)
        frags = [p.slice(off, min(4096, 10000 - off))
                 for off in range(0, 10000, 4096)]
        assert Payload.concat(frags) == p

    def test_out_of_order_reassembly_differs(self):
        p = Payload.phantom(8192, tag=42)
        a, b = p.slice(0, 4096), p.slice(4096, 4096)
        assert Payload.concat([b, a]) != p

    def test_corrupt_phantom_changes_identity(self):
        p = Payload.phantom(100, tag=1)
        assert p.corrupt() != p

    def test_full_slice_is_identity(self):
        p = Payload.phantom(100, tag=9)
        assert p.slice(0, 100) == p


@settings(max_examples=50)
@given(data=st.binary(min_size=1, max_size=512),
       cut=st.integers(min_value=0, max_value=512))
def test_prop_concrete_slice_concat_roundtrip(data, cut):
    p = Payload.from_bytes(data)
    cut = min(cut, p.size)
    left, right = p.slice(0, cut), p.slice(cut, p.size - cut)
    assert Payload.concat([left, right]) == p


@settings(max_examples=50)
@given(size=st.integers(min_value=1, max_value=100_000),
       tag=st.integers(min_value=0, max_value=2**32),
       mtu=st.integers(min_value=1, max_value=8192))
def test_prop_phantom_fragmentation_roundtrip(size, tag, mtu):
    p = Payload.phantom(size, tag=tag)
    frags = [p.slice(off, min(mtu, size - off)) for off in range(0, size, mtu)]
    assert Payload.concat(frags) == p
    assert sum(f.size for f in frags) == size


@settings(max_examples=50)
@given(data=st.binary(min_size=1, max_size=256),
       bit=st.integers(min_value=0, max_value=10_000))
def test_prop_corruption_always_detected_by_equality(data, bit):
    p = Payload.from_bytes(data)
    assert p.corrupt(bit) != p
