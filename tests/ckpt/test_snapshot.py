"""Snapshot round-trips: take -> write -> restore -> re-take, same bytes.

The contract under test: a snapshot file is a pure function of (spec,
run index, pause instant) — no wall clock, no process identity — so
restoring it and snapshotting again reproduces the file byte for byte,
in this process, in a fresh ``spawn`` process, and under every execution
mode (shards on/off, telemetry on/off, lazy node parking).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.ckpt.snapshot import (
    SnapshotMismatch,
    load_snapshot,
    restore_and_step,
    restore_snapshot,
    take_snapshot,
    write_snapshot,
)
from repro.exp.registry import get_experiment
from repro.exp.runner import run_many

SEEDS = [2003, 99]
AT_US = 4_000.0


def _netfaults_spec(seed):
    return get_experiment("netfaults").build_spec(
        {"runs_per_scenario": 1, "seed": seed})


def _roundtrip_bytes(spec, tmp_path, name, at=AT_US, run_index=2):
    first = tmp_path / ("%s-a.json" % name)
    second = tmp_path / ("%s-b.json" % name)
    snapshot = take_snapshot(spec, at, run_index=run_index)
    write_snapshot(snapshot, str(first))
    restored = restore_snapshot(str(first))      # verify=True hash check
    write_snapshot(take_snapshot(spec, at, run_index=run_index),
                   str(second))
    assert first.read_bytes() == second.read_bytes()
    return snapshot, restored


@pytest.mark.parametrize("seed", SEEDS)
class TestRoundTrip:
    def test_snapshot_restore_snapshot_is_byte_identical(self, seed,
                                                         tmp_path):
        spec = _netfaults_spec(seed)
        snapshot, restored = _roundtrip_bytes(spec, tmp_path,
                                              "nf%d" % seed)
        assert restored.now == snapshot.at_us

    def test_restored_run_finishes_like_a_cold_run(self, seed, tmp_path):
        experiment = get_experiment("netfaults")
        spec = _netfaults_spec(seed)
        snapshot = take_snapshot(spec, AT_US, run_index=2)
        outcome = restore_snapshot(snapshot).finish()
        cold = run_many([experiment.expand(spec)[2]], experiment.run_one,
                        workers=1)[0]
        assert outcome == cold


class TestExecutionModes:
    @pytest.mark.parametrize("schedule", ["merged", "windowed"])
    def test_shards_2_round_trip(self, schedule, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        monkeypatch.setenv("REPRO_SHARD_SCHEDULE", schedule)
        spec = _netfaults_spec(SEEDS[0])
        _roundtrip_bytes(spec, tmp_path, "shards-%s" % schedule)

    def test_telemetry_mode_round_trip(self, tmp_path):
        from repro.obs import runtime as obs_runtime

        spec = _netfaults_spec(SEEDS[0])
        plain = take_snapshot(spec, AT_US, run_index=2)
        try:
            obs_runtime.configure(metrics=True, tracing=False)
            obs_runtime.begin_run()
            telemetered = take_snapshot(spec, AT_US, run_index=2)
        finally:
            obs_runtime.reset()
            obs_runtime.configure(metrics=False, tracing=False)
        assert telemetered.state_hash == plain.state_hash

    def test_lazy_parked_nodes_settle_across_restore(self, tmp_path):
        # A 16-node fat-tree is at the lazy auto-threshold: idle MCPs
        # park off the wheel.  The parked latches are part of the hashed
        # state, and a restore must land every node in the same latch
        # state the snapshot recorded.
        spec = get_experiment("closfault").build_spec(
            {"scale": "small", "nodes": 16, "radix": 4})
        snapshot = take_snapshot(spec, AT_US, run_index=0)
        recorded = [node["mcp"]["parked"]
                    for node in snapshot.capture["state"]["nodes"]]
        assert any(recorded), "expected parked nodes on a lazy fabric"
        paused = restore_snapshot(snapshot)      # verify=True hash check
        live = [bool(getattr(node.driver.mcp, "_parked", False))
                for node in paused.cluster.nodes]
        assert live == recorded


class TestTimeTravel:
    def test_restore_and_step_advances_the_clock(self, tmp_path):
        spec = _netfaults_spec(SEEDS[0])
        path = tmp_path / "nf.json"
        write_snapshot(take_snapshot(spec, AT_US, run_index=2), str(path))
        paused = restore_and_step(str(path), step_us=500.0)
        assert paused.now == AT_US + 500.0
        outcome = paused.finish()
        assert outcome.run_id == 2

    def test_finish_is_one_shot(self):
        spec = _netfaults_spec(SEEDS[0])
        paused = restore_snapshot(take_snapshot(spec, AT_US, run_index=2))
        paused.finish()
        with pytest.raises(RuntimeError):
            paused.finish()


class TestMismatchRejection:
    def test_tampered_state_hash_is_refused(self, tmp_path):
        spec = _netfaults_spec(SEEDS[0])
        path = tmp_path / "nf.json"
        write_snapshot(take_snapshot(spec, AT_US, run_index=2), str(path))
        doc = json.loads(path.read_text())
        doc["capture"]["state_hash"] = "0" * 64
        path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotMismatch):
            restore_snapshot(str(path))

    def test_wrong_version_is_refused(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"snapshot": 999}))
        with pytest.raises(SnapshotMismatch):
            load_snapshot(str(path))

    def test_run_index_out_of_range_is_refused(self):
        spec = _netfaults_spec(SEEDS[0])
        with pytest.raises(SnapshotMismatch):
            take_snapshot(spec, AT_US, run_index=99)


class TestCrossProcess:
    def test_restore_in_a_fresh_spawn_process(self, tmp_path):
        # The cross-machine story in miniature: the snapshot leaves this
        # process as a file, and a brand-new interpreter must rebuild
        # the same simulated instant (restore_snapshot's verify leg) and
        # re-derive the identical state hash.
        spec = _netfaults_spec(SEEDS[0])
        path = tmp_path / "nf.json"
        snapshot = take_snapshot(spec, AT_US, run_index=2)
        write_snapshot(snapshot, str(path))
        script = (
            "from repro.ckpt.snapshot import restore_snapshot\n"
            "import sys\n"
            "paused = restore_snapshot(sys.argv[1])\n"
            "print(paused.capture()['state_hash'])\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True, text=True, env=dict(os.environ),
            timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == snapshot.state_hash
