"""Branch-at-injection vs cold boot: byte-identical, everywhere.

The executor is pure execution mode: one shared prefix per branch group
plus a copy-on-write fork per run must reproduce the cold-boot outcomes
exactly — under serial and pooled fan-out, shards on and off, telemetry
on and off — and experiments without a brancher must fall back to the
normal executors with identical results.  Two golden tests pin the
netfaults and closfault rendered documents both ways, so a future drift
in either executor fails loudly against a recorded constant.
"""

import hashlib
import pickle

import pytest

from repro.ckpt.branch import branching_available
from repro.ckpt.snapshot import (
    SnapshotMismatch,
    take_snapshot,
    write_snapshot,
)
from repro.exp.registry import get_experiment
from repro.exp.runner import branch_supported, run_experiment

SEEDS = [2003, 99]

needs_fork = pytest.mark.skipif(
    not branching_available(),
    reason="branch executor needs os.fork")

# Small-scale parameters for every registered data experiment (perf is
# the benchmark harness, not a data experiment).
SMALL_PARAMS = {
    "table1": {"runs": 4, "scale": "small"},
    "effectiveness": {"runs": 4, "scale": "small"},
    "surface": {"runs": 4, "scale": "small"},
    "netfaults": {"runs_per_scenario": 1},
    "closfault": {"scale": "small"},
    "slo-chaos": {"scale": "small"},
    "table2": {"iterations": 2},
    "table3": {},
    "fig9": {},
    "fig7": {"messages": 2},
    "fig8": {"iterations": 2},
    "fig45": {},
}


def _run(name, params, **kwargs):
    spec = get_experiment(name).build_spec(params)
    return run_experiment(spec, **kwargs)


def _assert_same(cold, branched):
    # Outcomes unpickled from branch frames don't share references the
    # way in-process outcomes do, so the list-level pickle can differ
    # while every element is byte-identical; compare element-wise.
    assert len(cold.outcomes) == len(branched.outcomes)
    for a, b in zip(cold.outcomes, branched.outcomes):
        assert pickle.dumps(a) == pickle.dumps(b)
    assert cold.summary == branched.summary
    assert cold.rendered == branched.rendered


@needs_fork
class TestBranchMatchesCold:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_table1_serial(self, seed):
        params = {"runs": 6, "scale": "small", "seed": seed}
        _assert_same(_run("table1", params),
                     _run("table1", params, branch=True))

    def test_table1_workers_4(self):
        params = {"runs": 6, "scale": "small"}
        _assert_same(_run("table1", params),
                     _run("table1", params, branch=True, workers=4))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_netfaults_serial(self, seed):
        params = {"runs_per_scenario": 2, "seed": seed}
        _assert_same(_run("netfaults", params),
                     _run("netfaults", params, branch=True))

    def test_closfault_serial(self):
        params = {"scale": "small"}
        _assert_same(_run("closfault", params),
                     _run("closfault", params, branch=True))

    def test_shards_merged(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        monkeypatch.setenv("REPRO_SHARD_SCHEDULE", "merged")
        params = {"runs_per_scenario": 2}
        _assert_same(_run("netfaults", params),
                     _run("netfaults", params, branch=True))

    def test_shards_windowed_falls_back_identically(self, monkeypatch):
        # Windowed wheels can't be single-stepped to an exact instant,
        # so branch=True must quietly take the cold path — and match.
        monkeypatch.setenv("REPRO_SHARDS", "2")
        monkeypatch.setenv("REPRO_SHARD_SCHEDULE", "windowed")
        params = {"runs_per_scenario": 2}
        _assert_same(_run("netfaults", params),
                     _run("netfaults", params, branch=True))

    def test_telemetry_on(self):
        params = {"runs_per_scenario": 2}
        cold = _run("netfaults", params, telemetry=True)
        branched = _run("netfaults", params, branch=True, telemetry=True)
        _assert_same(cold, branched)

    def test_every_registered_experiment(self):
        for name, params in SMALL_PARAMS.items():
            _assert_same(_run(name, params),
                         _run(name, params, branch=True))


class TestFallback:
    def test_slo_chaos_has_no_brancher(self):
        assert not branch_supported(get_experiment("slo-chaos"))
        assert branch_supported(get_experiment("table1"))

    @needs_fork
    def test_unbranchable_experiment_matches_cold(self):
        params = {"scale": "small"}
        _assert_same(_run("slo-chaos", params),
                     _run("slo-chaos", params, branch=True))


class TestFromSnapshot:
    def test_from_snapshot_matches_cold_campaign(self, tmp_path):
        spec = get_experiment("netfaults").build_spec(
            {"runs_per_scenario": 1})
        path = tmp_path / "nf.json"
        write_snapshot(take_snapshot(spec, 4_000.0, run_index=2),
                       str(path))
        cold = run_experiment(spec)
        spliced = run_experiment(spec, from_snapshot=str(path))
        _assert_same(cold, spliced)

    def test_wrong_spec_is_refused(self, tmp_path):
        spec = get_experiment("netfaults").build_spec(
            {"runs_per_scenario": 1})
        path = tmp_path / "nf.json"
        write_snapshot(take_snapshot(spec, 4_000.0, run_index=2),
                       str(path))
        other = get_experiment("netfaults").build_spec(
            {"runs_per_scenario": 1, "seed": 99})
        with pytest.raises(SnapshotMismatch):
            run_experiment(other, from_snapshot=str(path))


@needs_fork
class TestGoldenDocs:
    """Pinned rendered-document hashes, cold and branched.

    Recorded from the tree at the PR that introduced the branch
    executor.  A change here means the *simulation* changed, not just
    the executor — update the constants only alongside a deliberate,
    explained behavior change.
    """

    NETFAULTS_DOC = ("7b9302fd65f30ab9cca41231a5234c94c0d4"
                     "1597385e036fa3ea8353ac210467")
    CLOSFAULT_DOC = ("62bb32659387d0df8dd691c32123b61ae70f"
                     "bc720cf9a01df709e34b1556466a")

    @staticmethod
    def _doc_hash(result):
        return hashlib.sha256(result.rendered.encode()).hexdigest()

    def test_netfaults_doc_pinned_both_ways(self):
        params = {"runs_per_scenario": 1, "seed": 2003}
        assert self._doc_hash(_run("netfaults", params)) \
            == self.NETFAULTS_DOC
        assert self._doc_hash(_run("netfaults", params, branch=True)) \
            == self.NETFAULTS_DOC

    def test_closfault_doc_pinned_both_ways(self):
        params = {"scale": "small", "runs_per_cell": 1, "seed": 2003}
        assert self._doc_hash(_run("closfault", params)) \
            == self.CLOSFAULT_DOC
        assert self._doc_hash(_run("closfault", params, branch=True)) \
            == self.CLOSFAULT_DOC
