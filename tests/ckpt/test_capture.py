"""Canonical state capture: stability, exclusions, stable stand-ins."""

from repro.ckpt.capture import (
    canonical_json,
    capture_state,
    count_position,
    stable_value,
    state_hash,
)
from repro.cluster import build_cluster
from repro.faults.injector import InjectionConfig, resume_injection


def _paused_cluster(seed=2003, at=5_000.0):
    config = InjectionConfig(run_id=0, seed=seed, flavor="gm")
    cluster = build_cluster(2, flavor="gm", interpreted_nodes=[0],
                            seed=seed)
    paused = resume_injection(cluster, config, pause_at=at)
    return paused


class TestCountPosition:
    def test_reads_without_consuming(self):
        import itertools

        counter = itertools.count(7)
        assert count_position(counter) == 7
        assert next(counter) == 7     # untouched by the read
        assert count_position(counter) == 8


class TestStableValue:
    def test_primitives_pass_through(self):
        assert stable_value(3) == 3
        assert stable_value("x") == "x"
        assert stable_value(None) is None

    def test_containers_recurse(self):
        assert stable_value([1, (2, 3)]) == [1, [2, 3]]
        assert stable_value({"a": {"b": 1}}) == {"a": {"b": 1}}

    def test_opaque_objects_never_use_repr(self):
        class Opaque:
            pass

        # Default reprs embed memory addresses; the stand-in must not.
        assert stable_value(Opaque()) == "<Opaque>"

    def test_ckpt_state_contract_is_honored(self):
        class Declared:
            def ckpt_state(self):
                return {"x": 1}

        assert stable_value(Declared()) == {"x": 1}


class TestCaptureStability:
    def test_same_instant_hashes_equal(self):
        a = _paused_cluster().capture()
        b = _paused_cluster().capture()
        assert a["state_hash"] == b["state_hash"]
        assert canonical_json(a["state"]) == canonical_json(b["state"])

    def test_different_instants_hash_differently(self):
        a = _paused_cluster(at=5_000.0).capture()
        b = _paused_cluster(at=6_000.0).capture()
        assert a["state_hash"] != b["state_hash"]

    def test_hash_covers_only_the_state_section(self):
        capture = _paused_cluster().capture()
        assert capture["state_hash"] == state_hash(capture["state"])
        assert "observability" in capture
        assert "tracer" not in capture["state"]

    def test_telemetry_mode_does_not_change_the_hash(self):
        from repro.obs import runtime as obs_runtime

        try:
            off = _paused_cluster().capture()
            obs_runtime.configure(metrics=True, tracing=False)
            obs_runtime.begin_run()
            on = _paused_cluster().capture()
        finally:
            obs_runtime.reset()
            obs_runtime.configure(metrics=False, tracing=False)
        assert on["state_hash"] == off["state_hash"]

    def test_extras_are_captured_and_hashed(self):
        class Plane:
            def ckpt_state(self):
                return {"k": 1}

        paused = _paused_cluster()
        bare = capture_state(paused.cluster)
        with_extras = capture_state(paused.cluster, {"marker": Plane()})
        assert with_extras["state"]["extras"] == {"marker": {"k": 1}}
        assert with_extras["state_hash"] != bare["state_hash"]
