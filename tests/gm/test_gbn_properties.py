"""Property tests: exactly-once in-order delivery under adversarial
wire-fault patterns.

Hypothesis drives the *pattern* of packet faults (which wire crossings
drop, which corrupt); the invariant — every message delivered exactly
once, in order, with intact content — must hold for all of them.  This
is the Go-Back-N + CRC machinery's contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.net.packet import PacketType
from repro.payload import Payload


def run_until(cluster, predicate, limit):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


def _run_stream(fault_plan, n_msgs=6, size=6000):
    """fault_plan: dict crossing-index -> 'drop' | 'corrupt'."""
    cluster = build_cluster(2, flavor="gm", seed=3)
    crossing = {"n": -1}

    def fault(pkt):
        if pkt.ptype not in (PacketType.DATA, PacketType.ACK,
                             PacketType.NACK):
            return False
        crossing["n"] += 1
        verdict = fault_plan.get(crossing["n"])
        if verdict == "drop":
            return True
        if verdict == "corrupt":
            return "corrupt"
        return False

    for link in cluster.fabric.links:
        link.fault_filter = fault

    received = []
    state = {"sent": 0}
    expected = [Payload.pattern(size, seed=i) for i in range(n_msgs)]
    ports = {}

    def opener(node, pid, key):
        ports[key] = yield from cluster[node].driver.open_port(pid)

    cluster[0].host.spawn(opener(0, 1, "s"), "o1")
    cluster[1].host.spawn(opener(1, 2, "r"), "o2")
    assert run_until(cluster, lambda: len(ports) == 2, 10_000.0)

    def sender():
        for payload in expected:
            yield from ports["s"].send_and_wait(payload, 1, 2)
            state["sent"] += 1

    def receiver():
        for _ in range(n_msgs):
            yield from ports["r"].provide_receive_buffer(size)
        while len(received) < n_msgs:
            event = yield from ports["r"].receive_message()
            received.append(event.payload)

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    ok = run_until(cluster,
                   lambda: len(received) == n_msgs
                   and state["sent"] == n_msgs,
                   limit=120_000_000.0)
    return ok, received, expected


@settings(max_examples=12, deadline=None)
@given(plan=st.dictionaries(
    keys=st.integers(min_value=0, max_value=60),
    values=st.sampled_from(["drop", "corrupt"]),
    max_size=25))
def test_prop_exactly_once_under_arbitrary_fault_patterns(plan):
    ok, received, expected = _run_stream(plan)
    assert ok, "stream never completed under plan %r" % (plan,)
    assert received == expected  # in order, intact, exactly once


def test_worst_case_every_other_crossing_faulty():
    """A deterministic hard case: 50% of early crossings faulty."""
    plan = {i: ("drop" if i % 4 == 0 else "corrupt")
            for i in range(0, 80, 2)}
    ok, received, expected = _run_stream(plan, n_msgs=4)
    assert ok
    assert received == expected
