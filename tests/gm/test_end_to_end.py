"""Integration tests: GM messaging over the full simulated stack."""

import pytest

from repro.cluster import build_cluster
from repro.errors import GmNoTokens, GmSendError
from repro.gm.constants import SEND_TOKENS_PER_PORT
from repro.gm.events import EventType
from repro.payload import Payload


def run_until(cluster, predicate, limit=5_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    assert predicate(), "condition not reached within %.0f us" % limit


@pytest.fixture
def pair():
    return build_cluster(2, flavor="gm")


def open_ports(cluster, specs):
    """specs: list of (node, port_id).  Returns ports in order."""
    out = {}

    def opener(node, port_id, key):
        port = yield from cluster[node].driver.open_port(port_id)
        out[key] = port

    for i, (node, port_id) in enumerate(specs):
        cluster[node].host.spawn(opener(node, port_id, i), "open%d" % i)
    run_until(cluster, lambda: len(out) == len(specs))
    return [out[i] for i in range(len(specs))]


class TestBasicMessaging:
    def test_small_message_delivery(self, pair):
        sport, rport = open_ports(pair, [(0, 1), (1, 2)])
        got = {}

        def receiver():
            yield from rport.provide_receive_buffer(1024)
            event = yield from rport.receive_message()
            got["event"] = event

        def sender():
            yield from sport.send_and_wait(
                Payload.from_bytes(b"the quick brown fox"), 1, 2)
            got["sent"] = True

        pair[1].host.spawn(receiver(), "r")
        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: "event" in got and "sent" in got)
        assert got["event"].payload.data == b"the quick brown fox"
        assert got["event"].sender_node == 0
        assert got["event"].sender_port == 1

    def test_zero_byte_message(self, pair):
        sport, rport = open_ports(pair, [(0, 1), (1, 2)])
        got = {}

        def receiver():
            yield from rport.provide_receive_buffer(64)
            got["event"] = yield from rport.receive_message()

        def sender():
            yield from sport.send_and_wait(Payload.from_bytes(b""), 1, 2)

        pair[1].host.spawn(receiver(), "r")
        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: "event" in got)
        assert got["event"].size == 0

    def test_large_message_fragmented_and_reassembled(self, pair):
        sport, rport = open_ports(pair, [(0, 1), (1, 2)])
        payload = Payload.pattern(50_000, seed=9)
        got = {}

        def receiver():
            yield from rport.provide_receive_buffer(64_000)
            got["event"] = yield from rport.receive_message()

        def sender():
            yield from sport.send_and_wait(payload, 1, 2)

        pair[1].host.spawn(receiver(), "r")
        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: "event" in got)
        assert got["event"].payload == payload
        # 50000 / 4096 -> 13 fragments on the wire.
        assert pair[0].mcp.stats["packets_sent"] == 13

    def test_many_messages_in_order(self, pair):
        sport, rport = open_ports(pair, [(0, 1), (1, 2)])
        received = []

        def receiver():
            for _ in range(10):
                yield from rport.provide_receive_buffer(256)
            while len(received) < 10:
                event = yield from rport.receive_message()
                received.append(event.payload.data)

        def sender():
            for i in range(10):
                yield from sport.send_and_wait(
                    Payload.from_bytes(b"msg-%02d" % i), 1, 2)

        pair[1].host.spawn(receiver(), "r")
        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: len(received) == 10)
        assert received == [b"msg-%02d" % i for i in range(10)]

    def test_bidirectional_traffic(self, pair):
        pa, pb = open_ports(pair, [(0, 1), (1, 1)])
        got = {}

        def side(port, me, peer, key):
            yield from port.provide_receive_buffer(1024)
            yield from port.send(Payload.from_bytes(b"from-%d" % me),
                                 peer, 1)
            event = yield from port.receive_message()
            got[key] = event.payload.data

        pair[0].host.spawn(side(pa, 0, 1, "a"), "a")
        pair[1].host.spawn(side(pb, 1, 0, "b"), "b")
        run_until(pair, lambda: len(got) == 2)
        assert got == {"a": b"from-1", "b": b"from-0"}

    def test_multiple_ports_same_node(self, pair):
        s1, s2, r1, r2 = open_ports(pair, [(0, 1), (0, 3), (1, 1), (1, 3)])
        got = {}

        def receiver(port, key):
            yield from port.provide_receive_buffer(256)
            event = yield from port.receive_message()
            got[key] = event.payload.data

        def sender(port, dport, text):
            yield from port.send_and_wait(Payload.from_bytes(text), 1, dport)

        pair[1].host.spawn(receiver(r1, "p1"), "r1")
        pair[1].host.spawn(receiver(r2, "p3"), "r2")
        pair[0].host.spawn(sender(s1, 1, b"to-port-1"), "s1")
        pair[0].host.spawn(sender(s2, 3, b"to-port-3"), "s2")
        run_until(pair, lambda: len(got) == 2)
        assert got == {"p1": b"to-port-1", "p3": b"to-port-3"}

    def test_three_node_cluster(self):
        cluster = build_cluster(3, flavor="gm")
        p0, p1, p2 = open_ports(cluster, [(0, 1), (1, 1), (2, 1)])
        got = []

        def receiver():
            yield from p2.provide_receive_buffer(256)
            yield from p2.provide_receive_buffer(256)
            while len(got) < 2:
                event = yield from p2.receive_message()
                got.append((event.sender_node, event.payload.data))

        def sender(port, text):
            yield from port.send_and_wait(Payload.from_bytes(text), 2, 1)

        cluster[2].host.spawn(receiver(), "r")
        cluster[0].host.spawn(sender(p0, b"from-0"), "s0")
        cluster[1].host.spawn(sender(p1, b"from-1"), "s1")
        run_until(cluster, lambda: len(got) == 2)
        assert sorted(got) == [(0, b"from-0"), (1, b"from-1")]


class TestTokens:
    def test_send_token_exhaustion_raises(self, pair):
        sport, _ = open_ports(pair, [(0, 1), (1, 2)])
        failures = []

        def sender():
            try:
                for _ in range(SEND_TOKENS_PER_PORT + 1):
                    yield from sport.send(Payload.from_bytes(b"x"), 1, 2)
            except GmNoTokens as exc:
                failures.append(str(exc))

        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: bool(failures))

    def test_tokens_return_after_completion(self, pair):
        sport, rport = open_ports(pair, [(0, 1), (1, 2)])
        done = {}

        def receiver():
            for _ in range(SEND_TOKENS_PER_PORT * 2):
                yield from rport.provide_receive_buffer(64)
                event = yield from rport.receive_message()
                assert event is not None

        def sender():
            # Twice the token pool: must recycle tokens to finish.
            for i in range(SEND_TOKENS_PER_PORT * 2):
                yield from sport.send_and_wait(
                    Payload.from_bytes(b"m%d" % i), 1, 2)
            done["ok"] = sport.send_tokens

        pair[1].host.spawn(receiver(), "r")
        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: "ok" in done)
        assert done["ok"] == SEND_TOKENS_PER_PORT

    def test_no_receive_buffer_stalls_until_provided(self, pair):
        sport, rport = open_ports(pair, [(0, 1), (1, 2)])
        got = {}

        def sender():
            yield from sport.send_and_wait(Payload.from_bytes(b"wait"), 1, 2)
            got["sent_at"] = pair.sim.now

        def receiver():
            # Provide the buffer only after 5000 us.
            yield pair.sim.timeout(5000.0)
            yield from rport.provide_receive_buffer(64)
            event = yield from rport.receive_message()
            got["recv_at"] = pair.sim.now

        pair[0].host.spawn(sender(), "s")
        pair[1].host.spawn(receiver(), "r")
        run_until(pair, lambda: "sent_at" in got and "recv_at" in got)
        assert got["recv_at"] >= 5000.0
        # The sender needed retransmissions while no buffer existed.
        assert pair[1].mcp.stats["no_token_drops"] > 0


class TestReliability:
    def test_dropped_data_packet_retransmitted(self, pair):
        sport, rport = open_ports(pair, [(0, 1), (1, 2)])
        link = pair.fabric.links[0]  # node0 <-> switch
        dropped = {"count": 0}

        def drop_first_data(pkt):
            from repro.net.packet import PacketType
            if pkt.ptype == PacketType.DATA and dropped["count"] == 0:
                dropped["count"] += 1
                return True
            return False

        link.fault_filter = drop_first_data
        got = {}

        def receiver():
            yield from rport.provide_receive_buffer(256)
            got["event"] = yield from rport.receive_message()

        def sender():
            yield from sport.send_and_wait(Payload.from_bytes(b"retry me"),
                                           1, 2)

        pair[1].host.spawn(receiver(), "r")
        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: "event" in got)
        assert got["event"].payload.data == b"retry me"
        assert dropped["count"] == 1
        assert pair[0].mcp.stats["retransmit_rounds"] >= 1

    def test_corrupted_packet_dropped_by_crc_then_recovered(self, pair):
        sport, rport = open_ports(pair, [(0, 1), (1, 2)])
        link = pair.fabric.links[0]
        state = {"corrupted": 0}

        def corrupt_first_data(pkt):
            from repro.net.packet import PacketType
            if pkt.ptype == PacketType.DATA and state["corrupted"] == 0:
                state["corrupted"] += 1
                return "corrupt"
            return False

        link.fault_filter = corrupt_first_data
        got = {}

        def receiver():
            yield from rport.provide_receive_buffer(256)
            got["event"] = yield from rport.receive_message()

        def sender():
            yield from sport.send_and_wait(
                Payload.from_bytes(b"crc protected"), 1, 2)

        pair[1].host.spawn(receiver(), "r")
        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: "event" in got)
        assert got["event"].payload.data == b"crc protected"
        assert pair[1].mcp.stats["crc_drops"] == 1

    def test_lossy_link_exactly_once_delivery(self, pair):
        """20% loss both ways: every message delivered exactly once, in
        order — GM's headline guarantee."""
        import random
        rng = random.Random(42)
        sport, rport = open_ports(pair, [(0, 1), (1, 2)])
        for link in pair.fabric.links:
            link.fault_filter = lambda pkt: rng.random() < 0.2
        received = []
        n = 12

        def receiver():
            for _ in range(n):
                yield from rport.provide_receive_buffer(256)
            while len(received) < n:
                event = yield from rport.receive_message()
                received.append(event.payload.data)

        def sender():
            for i in range(n):
                yield from sport.send_and_wait(
                    Payload.from_bytes(b"seq-%03d" % i), 1, 2)

        pair[1].host.spawn(receiver(), "r")
        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: len(received) == n, limit=60_000_000.0)
        assert received == [b"seq-%03d" % i for i in range(n)]

    def test_unreachable_destination_fails_send(self, pair):
        sport, _ = open_ports(pair, [(0, 1), (1, 2)])
        failures = []

        def sender():
            try:
                yield from sport.send_and_wait(
                    Payload.from_bytes(b"to nowhere"), 7, 2)
            except GmSendError as exc:
                failures.append(str(exc))

        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: bool(failures))
        assert "no-route" in failures[0]

    def test_dead_peer_send_times_out(self, pair):
        sport, rport = open_ports(pair, [(0, 1), (1, 2)])
        pair[1].mcp.die("test: peer killed")
        failures = []

        def sender():
            try:
                yield from sport.send_and_wait(
                    Payload.from_bytes(b"into the void"), 1, 2)
            except GmSendError as exc:
                failures.append(str(exc))

        pair[0].host.spawn(sender(), "s")
        run_until(pair, lambda: bool(failures), limit=60_000_000.0)
        assert "send-timeout" in failures[0]


class TestAlarmsAndPorts:
    def test_alarm_event_delivered(self, pair):
        port, = open_ports(pair, [(0, 1)])
        got = {}

        def app():
            port.set_alarm(2000.0, context="wake-up")
            event = yield from port.receive()
            got["event"] = event
            got["at"] = pair.sim.now

        pair[0].host.spawn(app(), "a")
        run_until(pair, lambda: "event" in got)
        assert got["event"].etype == EventType.ALARM
        assert got["event"].context == "wake-up"
        assert got["at"] >= 2000.0

    def test_receive_timeout_returns_none(self, pair):
        port, = open_ports(pair, [(0, 1)])
        got = {}

        def app():
            event = yield from port.receive(timeout=500.0)
            got["event"] = event

        pair[0].host.spawn(app(), "a")
        run_until(pair, lambda: "event" in got)
        assert got["event"] is None

    def test_close_port_rejects_further_use(self, pair):
        port, = open_ports(pair, [(0, 1)])
        got = {}

        def app():
            yield from port.close()
            try:
                yield from port.send(Payload.from_bytes(b"x"), 1, 2)
            except Exception as exc:
                got["error"] = type(exc).__name__

        pair[0].host.spawn(app(), "a")
        run_until(pair, lambda: "error" in got)
        assert got["error"] == "GmPortClosed"

    def test_port_ids_exhaust_at_eight(self, pair):
        from repro.errors import GmError
        ports = open_ports(pair, [(0, i) for i in range(8)])
        assert len(ports) == 8
        errors = []

        def opener():
            try:
                yield from pair[0].driver.open_port()
            except GmError as exc:
                errors.append(str(exc))

        pair[0].host.spawn(opener(), "o")
        run_until(pair, lambda: bool(errors))
