"""Lazy node parking: idle MCPs leave the wheel, exactly.

The tickless fold (PR 4) made idle ticks cheap; lazy parking makes idle
*nodes* free — and like the fold it must be invisible: every counter a
parked node would have accumulated live is replayed arithmetically on
wake-up (or at settle), so a lazy run is indistinguishable from an
eager one.
"""

import pytest

from repro.cluster import LAZY_AUTO_THRESHOLD, build_cluster
from repro.payload import Payload

IDLE_US = 20_000.0


def _cluster(flavor, lazy, n=16):
    return build_cluster(n, flavor=flavor, seed=9, topology="fat-tree",
                         radix=4, lazy=lazy)


def _parked(cluster):
    return [node.node_id for node in cluster.nodes
            if getattr(node.driver.mcp, "_parked", False)]


def _snapshot(cluster):
    """Every per-MCP counter lazy parking must reproduce, post-settle."""
    out = {}
    for node in cluster.nodes:
        mcp = node.driver.mcp
        mcp.settle_idle()
        entry = {
            "invocations": mcp.l_timer_invocations,
            "busy": mcp.busy_time,
            "last": mcp.l_timer_last,
            "max_gap": mcp.l_timer_max_gap,
            "stats": dict(mcp.stats),
        }
        if hasattr(mcp, "watchdog_arms"):
            entry["watchdog_arms"] = mcp.watchdog_arms
        out[node.node_id] = entry
    return out


class TestParkUnpark:
    def test_idle_fabric_parks_whole_nodes(self):
        cluster = _cluster("ftgm", lazy=True)
        cluster.sim.run(until=cluster.sim.now + IDLE_US)
        assert len(_parked(cluster)) == 16

    def test_eager_fabric_never_parks(self):
        cluster = _cluster("ftgm", lazy=False)
        cluster.sim.run(until=cluster.sim.now + IDLE_US)
        assert _parked(cluster) == []

    def test_first_message_wakes_both_ends(self):
        cluster = _cluster("gm", lazy=True)
        sim = cluster.sim
        sim.run(until=sim.now + IDLE_US)
        assert 0 in _parked(cluster) and 9 in _parked(cluster)
        got = {}

        def traffic():
            sport = yield from cluster[0].driver.open_port(2)
            dport = yield from cluster[9].driver.open_port(2)
            data = b"doorbell" * 8
            yield from dport.provide_receive_buffer(len(data))
            yield from sport.send_and_wait(Payload(len(data), data=data),
                                           9, 2)
            event = yield from dport.receive_message(timeout=30_000.0)
            got["fp"] = event.payload.fingerprint if event else None

        cluster[0].host.spawn(traffic(), "traffic")
        sim.run(until=sim.now + 50_000.0)
        assert got.get("fp") is not None
        # Idle again: the woken endpoints re-park.
        sim.run(until=sim.now + IDLE_US)
        assert 0 in _parked(cluster) and 9 in _parked(cluster)

    def test_parked_ticks_are_accounted(self):
        cluster = _cluster("ftgm", lazy=True)
        cluster.sim.run(until=cluster.sim.now + IDLE_US)
        for node in cluster.nodes:
            node.driver.mcp.settle_idle()
        assert sum(node.driver.mcp.ticks_parked
                   for node in cluster.nodes) > 0


class TestExactness:
    @pytest.mark.parametrize("flavor", ["gm", "ftgm"])
    def test_lazy_and_eager_runs_are_identical(self, flavor):
        snapshots = {}
        deliveries = {}
        for lazy in (True, False):
            cluster = _cluster(flavor, lazy=lazy)
            sim = cluster.sim
            sim.run(until=sim.now + IDLE_US)
            got = {}

            def traffic():
                sport = yield from cluster[0].driver.open_port(2)
                dport = yield from cluster[9].driver.open_port(2)
                data = b"identical?" * 5
                yield from dport.provide_receive_buffer(len(data))
                yield from sport.send_and_wait(
                    Payload(len(data), data=data), 9, 2)
                event = yield from dport.receive_message(timeout=30_000.0)
                got["fp"] = event.payload.fingerprint if event else None

            cluster[0].host.spawn(traffic(), "traffic")
            sim.run(until=sim.now + 50_000.0)
            sim.run(until=sim.now + IDLE_US)
            snapshots[lazy] = _snapshot(cluster)
            deliveries[lazy] = got.get("fp")
            if flavor == "ftgm":
                assert sum(len(f.recoveries)
                           for f in cluster.ftds()) == 0, \
                    "parking must not trip the watchdog/FTD"
        assert deliveries[True] == deliveries[False] is not None
        assert snapshots[True] == snapshots[False]


class TestDefaults:
    def test_auto_threshold_gates_parking(self):
        below = build_cluster(LAZY_AUTO_THRESHOLD - 8, flavor="gm",
                              seed=9, topology="fat-tree", radix=4)
        at = build_cluster(LAZY_AUTO_THRESHOLD, flavor="gm", seed=9,
                           topology="fat-tree", radix=4)
        for cluster, expect in ((below, False), (at, True)):
            cluster.sim.run(until=cluster.sim.now + IDLE_US)
            assert bool(_parked(cluster)) is expect

    def test_env_override_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAZY", "0")
        cluster = _cluster("gm", lazy=True)
        cluster.sim.run(until=cluster.sim.now + IDLE_US)
        assert _parked(cluster) == []

    def test_env_override_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAZY", "1")
        cluster = _cluster("gm", lazy=False)
        cluster.sim.run(until=cluster.sim.now + IDLE_US)
        assert len(_parked(cluster)) == 16
