"""Unit tests for MCP internals: L_timer, doorbells, requests, events."""


from repro.cluster import build_cluster
from repro.gm import constants as C
from repro.gm.events import EventType
from repro.net.packet import Packet, PacketType
from repro.payload import Payload


def run_until(cluster, predicate, limit=10_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


class TestLTimer:
    def test_l_timer_invoked_periodically(self):
        cluster = build_cluster(2, flavor="gm")
        mcp = cluster[0].mcp
        base = mcp.l_timer_invocations
        cluster.sim.run(until=cluster.sim.now + 10 * C.L_TIMER_INTERVAL_US)
        assert mcp.l_timer_invocations >= base + 8

    def test_idle_gap_tracks_interval(self):
        cluster = build_cluster(2, flavor="gm")
        cluster.sim.run(until=cluster.sim.now + 20 * C.L_TIMER_INTERVAL_US)
        gap = cluster[0].mcp.l_timer_max_gap
        assert C.L_TIMER_INTERVAL_US * 0.9 <= gap \
            <= C.L_TIMER_INTERVAL_US * 1.5

    def test_gap_stretches_under_load(self):
        """The effect behind the paper's 800us measurement: serialized
        event handling delays L_timer."""
        cluster = build_cluster(2, flavor="gm")
        sim = cluster.sim
        done = {}

        def blast():
            port = yield from cluster[0].driver.open_port(1)
            payload = Payload.phantom(32_768, tag=9)
            for _ in range(40):
                while port.send_tokens == 0:
                    yield from port.receive(timeout=200.0)
                yield from port.send(payload, 1, 2)
                yield from port.receive(timeout=50.0)
            done["ok"] = True

        def sink():
            port = yield from cluster[1].driver.open_port(2)
            for _ in range(16):
                yield from port.provide_receive_buffer(32_768)
            while True:
                yield from port.receive_message()
                yield from port.provide_receive_buffer(32_768)

        cluster[1].host.spawn(sink(), "sink")
        cluster[0].host.spawn(blast(), "blast")
        run_until(cluster, lambda: "ok" in done)
        assert cluster[0].mcp.l_timer_max_gap > C.L_TIMER_INTERVAL_US
        # ...but bounded well below the watchdog interval.
        assert cluster[0].mcp.l_timer_max_gap < C.WATCHDOG_INTERVAL_US

    def test_dead_mcp_stops_l_timer(self):
        cluster = build_cluster(2, flavor="gm")
        sim = cluster.sim
        sim.run(until=sim.now + 1_000.0)
        mcp = cluster[0].mcp
        mcp.die("test")
        count = mcp.l_timer_invocations
        sim.run(until=sim.now + 5_000.0)
        assert mcp.l_timer_invocations == count


class TestHostRequests:
    def test_open_served_within_one_l_timer_period(self):
        cluster = build_cluster(2, flavor="gm")
        opened = {}

        def opener():
            t0 = cluster.sim.now
            yield from cluster[0].driver.open_port(3)
            opened["took"] = cluster.sim.now - t0

        cluster[0].host.spawn(opener(), "o")
        run_until(cluster, lambda: "took" in opened)
        assert opened["took"] <= C.L_TIMER_INTERVAL_US + 50.0

    def test_unknown_request_kind_is_ignored(self):
        cluster = build_cluster(2, flavor="gm", trace=True)
        cluster[0].mcp.host_request(("frobnicate", 1, 2))
        cluster.sim.run(until=cluster.sim.now + 2 * C.L_TIMER_INTERVAL_US)
        assert cluster.tracer.filter(kind="bad_host_request")

    def test_restore_rx_sets_stream_expectation(self):
        cluster = build_cluster(2, flavor="ftgm")
        mcp = cluster[0].mcp
        mcp.host_request(("restore_rx", (1, 4), 41))
        cluster.sim.run(until=cluster.sim.now + 2 * C.L_TIMER_INTERVAL_US)
        stream = mcp.rx_streams[(1, 4)]
        assert stream.expected_seq == 42
        assert stream.last_acked == 41


class TestSendFailures:
    def test_no_route_posts_send_error(self):
        cluster = build_cluster(2, flavor="gm")
        events = {}

        def app():
            port = yield from cluster[0].driver.open_port(1)
            yield from port.send(Payload.from_bytes(b"x"), 6, 1)
            event = yield from port.receive()
            events["event"] = event

        cluster[0].host.spawn(app(), "a")
        run_until(cluster, lambda: "event" in events)
        assert events["event"].etype == EventType.SEND_ERROR
        assert "no-route" in events["event"].error

    def test_self_send_loops_back_without_touching_wire(self):
        """GM supports sending to your own node: the packet loops back
        through the receive ring, never crossing the switch."""
        cluster = build_cluster(2, flavor="gm")
        outcome = {}
        wire_before = cluster.fabric.links[0].packets_carried

        def app():
            port = yield from cluster[0].driver.open_port(1)
            yield from port.provide_receive_buffer(64)
            yield from port.send(Payload.from_bytes(b"dear me"), 0, 1)
            event = yield from port.receive_message()
            outcome["data"] = event.payload.data
            outcome["sender"] = event.sender_node

        cluster[0].host.spawn(app(), "a")
        run_until(cluster, lambda: "data" in outcome)
        assert outcome["data"] == b"dear me"
        assert outcome["sender"] == 0
        assert cluster.fabric.links[0].packets_carried == wire_before


class TestHeartbeat:
    def test_healthy_mcp_answers_heartbeat(self):
        cluster = build_cluster(2, flavor="gm")
        sim = cluster.sim
        replies = []
        cluster[0].mcp.heartbeat_listener = replies.append
        route = cluster[0].mcp.routing_table[1]
        probe = Packet(ptype=PacketType.HEARTBEAT, src_node=0,
                       dest_node=1, route=list(route), seq=17).seal()
        cluster[0].mcp._transmit(probe)
        sim.run(until=sim.now + 1_000.0)
        assert replies and replies[0].seq == 17
        assert replies[0].src_node == 1

    def test_hung_mcp_stays_silent(self):
        cluster = build_cluster(2, flavor="gm")
        sim = cluster.sim
        replies = []
        cluster[0].mcp.heartbeat_listener = replies.append
        cluster[1].mcp.die("quiet")
        route = cluster[0].mcp.routing_table[1]
        probe = Packet(ptype=PacketType.HEARTBEAT, src_node=0,
                       dest_node=1, route=list(route), seq=1).seal()
        cluster[0].mcp._transmit(probe)
        sim.run(until=sim.now + 5_000.0)
        assert replies == []


class TestStats:
    def test_busy_time_accumulates(self):
        cluster = build_cluster(2, flavor="gm")
        done = {}

        def app():
            port = yield from cluster[0].driver.open_port(1)
            rport = yield from cluster[1].driver.open_port(2)
            yield from rport.provide_receive_buffer(64)
            yield from port.send_and_wait(Payload.from_bytes(b"x"), 1, 2)
            done["ok"] = True

        cluster[0].host.spawn(app(), "a")
        run_until(cluster, lambda: "ok" in done)
        assert cluster[0].mcp.send_busy_time > 0
        assert cluster[1].mcp.recv_busy_time > 0
        assert cluster[0].mcp.busy_time >= cluster[0].mcp.send_busy_time
