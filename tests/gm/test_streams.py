"""Unit and property tests for Go-Back-N stream state."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gm.constants import GBN_WINDOW, SEND_STALL_TIMEOUT_US
from repro.gm.streams import RxStream, TxStream
from repro.gm.tokens import SendToken


def make_token(size=100, seq_base=None, dest=1, port=0):
    return SendToken(src_port=port, dest_node=dest, dest_port=2,
                     region_id=1, host_addr=0x1000_0000, size=size,
                     seq_base=seq_base)


class TestTxStream:
    def test_admit_assigns_contiguous_seqs(self):
        stream = TxStream((1,))
        r1 = stream.admit(make_token(size=100))       # 1 fragment
        r2 = stream.admit(make_token(size=10000))     # 3 fragments
        assert (r1.seq_base, r1.nfrags) == (0, 1)
        assert (r2.seq_base, r2.nfrags) == (1, 3)
        assert stream.next_seq == 4

    def test_host_assigned_seq_base_respected(self):
        stream = TxStream((1,))
        record = stream.admit(make_token(size=100, seq_base=7))
        assert record.seq_base == 7
        assert stream.next_seq == 8

    def test_next_to_send_walks_fragments_in_order(self):
        stream = TxStream((1,))
        stream.admit(make_token(size=9000))  # 3 frags: seq 0,1,2
        jobs = [stream.next_to_send() for _ in range(3)]
        assert [j.seq for j in jobs] == [0, 1, 2]
        assert [j.offset for j in jobs] == [0, 4096, 8192]
        assert jobs[2].length == 9000 - 8192
        assert stream.next_to_send() is None

    def test_zero_byte_message_is_one_fragment(self):
        stream = TxStream((1,))
        record = stream.admit(make_token(size=0))
        assert record.nfrags == 1
        job = stream.next_to_send()
        assert job.length == 0

    def test_window_blocks_after_limit(self):
        stream = TxStream((1,))
        stream.admit(make_token(size=GBN_WINDOW * 4096 * 2))
        sent = 0
        while stream.next_to_send() is not None:
            sent += 1
        assert sent == GBN_WINDOW

    def test_ack_opens_window_and_completes_messages(self):
        stream = TxStream((1,))
        stream.admit(make_token(size=8000))  # seq 0,1
        stream.next_to_send(), stream.next_to_send()
        assert stream.on_ack(0) == []       # partial
        completed = stream.on_ack(1)
        assert len(completed) == 1
        assert not stream.msgs

    def test_stale_ack_ignored(self):
        stream = TxStream((1,))
        stream.admit(make_token(size=8000))
        stream.next_to_send()
        stream.on_ack(0)
        assert stream.on_ack(0) == []
        assert stream.acked_upto == 0

    def test_timeout_rewinds_cursor(self):
        stream = TxStream((1,))
        stream.admit(make_token(size=12000))  # seq 0,1,2
        for _ in range(3):
            stream.next_to_send()
        stream.on_ack(0)
        stream.on_timeout()
        # Go-Back-N: resend from first unacked (seq 1).
        assert stream.next_to_send().seq == 1

    def test_stall_clock_governs_failure(self):
        stream = TxStream((1,))
        stream.admit(make_token(size=100))
        stream.next_to_send()
        stream.note_progress(now=1_000.0)
        assert not stream.stalled(now=1_000.0 + SEND_STALL_TIMEOUT_US)
        assert stream.stalled(now=1_001.0 + SEND_STALL_TIMEOUT_US)
        # ACK progress resets the clock (via the MCP calling
        # note_progress); failing the stream marks every message.
        failed = stream.fail_all()
        assert len(failed) == 1 and failed[0].failed

    def test_rto_backs_off_and_resets_on_progress(self):
        stream = TxStream((1,))
        stream.admit(make_token(size=8000))
        stream.next_to_send()
        base_rto = stream.rto
        stream.on_timeout()
        assert stream.rto > base_rto
        stream.next_to_send()
        stream.on_ack(0)
        assert stream.rto == base_rto

    def test_nack_rewind_classic(self):
        stream = TxStream((1,))
        stream.admit(make_token(size=12000))  # seq 0,1,2
        for _ in range(3):
            stream.next_to_send()
        stream.on_nack(1)   # receiver expected seq 1
        assert stream.next_to_send().seq == 1

    def test_nack_adopt_future_numbering_relabels(self):
        """The Figure 4 flaw: a restarted sender adopts the receiver's
        expected seq and renumbers queued (possibly already-delivered)
        messages."""
        stream = TxStream((1,))  # fresh post-reload stream
        record = stream.admit(make_token(size=100))
        stream.next_to_send()    # transmit with seq 0
        stream.on_nack(5)        # receiver says: I expect 5
        assert record.seq_base == 5
        job = stream.next_to_send()
        assert job.seq == 5

    def test_gap_skip_after_failures(self):
        stream = TxStream((1,))
        stream.admit(make_token(size=100))     # seq 0
        stream.next_to_send()
        stream.on_timeout()
        stream.fail_all()  # the MCP fails stalled streams
        stream.admit(make_token(size=100))     # seq 1 (gap at 0)
        job = stream.next_to_send()
        assert job is not None and job.seq == 1


class TestRxStream:
    def test_in_order_acceptance(self):
        stream = RxStream((0,))
        assert stream.classify(0) == "expected"
        stream.accept(0)
        assert stream.expected_seq == 1
        assert stream.last_acked == 0

    def test_stale_and_future(self):
        stream = RxStream((0,))
        stream.accept(0)
        assert stream.classify(0) == "stale"
        assert stream.classify(2) == "future"

    def test_restore_resumes_after_host_seq(self):
        stream = RxStream((0,))
        for seq in range(5):
            stream.accept(seq)
        stream.open_msg_id = 99
        stream.restore(2)   # host only saw through seq 2
        assert stream.expected_seq == 3
        assert stream.open_msg_id is None


@settings(max_examples=60)
@given(sizes=st.lists(st.integers(min_value=0, max_value=50_000),
                      min_size=1, max_size=8))
def test_prop_fragments_tile_messages_exactly(sizes):
    """Every admitted message fragments into jobs whose extents tile it."""
    stream = TxStream((1,), window=10_000)
    records = [stream.admit(make_token(size=size)) for size in sizes]
    jobs = []
    while True:
        job = stream.next_to_send()
        if job is None:
            break
        jobs.append(job)
    for record in records:
        mine = [j for j in jobs if j.msg_id == record.token.msg_id]
        assert len(mine) == record.nfrags
        assert sum(j.length for j in mine) == record.token.size
        offsets = sorted(j.offset for j in mine)
        assert offsets[0] == 0
        seqs = sorted(j.seq for j in mine)
        assert seqs == list(range(record.seq_base,
                                  record.seq_base + record.nfrags))


@settings(max_examples=60)
@given(acks=st.lists(st.integers(min_value=-1, max_value=30), max_size=20))
def test_prop_cumulative_ack_monotone(acks):
    """acked_upto never regresses, whatever ACK sequence arrives."""
    stream = TxStream((1,), window=100)
    stream.admit(make_token(size=31 * 4096))
    while stream.next_to_send() is not None:
        pass
    high_water = stream.acked_upto
    for ack in acks:
        stream.on_ack(ack)
        assert stream.acked_upto >= high_water
        high_water = stream.acked_upto


@settings(max_examples=40)
@given(ops=st.lists(st.sampled_from(["send", "ack", "nack", "timeout"]),
                    min_size=1, max_size=60))
def test_prop_stream_never_crashes_under_random_ops(ops):
    """State machine robustness under arbitrary event interleavings."""
    stream = TxStream((1,))
    stream.admit(make_token(size=20_000))
    sent_high = -1
    for op in ops:
        if op == "send":
            job = stream.next_to_send()
            if job is not None:
                sent_high = max(sent_high, job.seq)
        elif op == "ack" and sent_high >= 0:
            stream.on_ack(sent_high)
        elif op == "nack":
            stream.on_nack(max(stream.acked_upto + 1, 0))
        elif op == "timeout":
            stream.on_timeout()
            if stream.stalled(now=10**9):
                stream.fail_all()
    # Invariant: the cursor never runs past what has been assigned.
    assert stream.send_cursor <= stream.next_seq
