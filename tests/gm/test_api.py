"""Tests for the C-style GM API facade."""


from repro.cluster import build_cluster
from repro.gm.api import (
    gm_blocking_receive,
    gm_close,
    gm_open,
    gm_provide_receive_buffer,
    gm_receive,
    gm_send_with_callback,
    gm_set_alarm,
    gm_unknown,
)
from repro.gm.events import EventType


def run_until(cluster, predicate, limit=10_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


def test_figure3_style_control_flow():
    """The paper's Figure 3 loop, written against the C-ish facade."""
    cluster = build_cluster(2, flavor="gm")
    state = {"received": None, "callbacks": []}

    def receiver():
        port = yield from gm_open(cluster[1], 2)
        yield from gm_provide_receive_buffer(port, 4096)
        while state["received"] is None:
            event = yield from gm_blocking_receive(port)
            if event.etype == EventType.RECEIVED:
                state["received"] = event.payload.data
            else:
                yield from gm_unknown(port, event)

    def sender():
        port = yield from gm_open(cluster[0], 1)
        yield from gm_send_with_callback(
            port, b"figure 3 flow", None, 1, 2,
            callback=lambda outcome: state["callbacks"].append(outcome))
        # Poll until the send-complete callback fires.
        while not state["callbacks"]:
            yield from gm_receive(port, timeout=100.0)
        yield from gm_close(port)

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    assert run_until(cluster, lambda: state["received"] is not None
                     and state["callbacks"])
    assert state["received"] == b"figure 3 flow"
    assert state["callbacks"][0].ok


def test_send_accepts_payload_and_size():
    cluster = build_cluster(2, flavor="gm")
    got = {}

    def receiver():
        port = yield from gm_open(cluster[1], 2)
        yield from gm_provide_receive_buffer(port, 64)
        event = yield from gm_blocking_receive(port)
        got["data"] = event.payload.data

    def sender():
        port = yield from gm_open(cluster[0], 1)
        yield from gm_send_with_callback(port, b"0123456789", 4, 1, 2)

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    assert run_until(cluster, lambda: "data" in got)
    assert got["data"] == b"0123"


def test_send_rejects_bad_type():
    cluster = build_cluster(2, flavor="gm")
    errors = []

    def sender():
        port = yield from gm_open(cluster[0], 1)
        try:
            yield from gm_send_with_callback(port, 12345, None, 1, 2)
        except TypeError as exc:
            errors.append(str(exc))

    cluster[0].host.spawn(sender(), "s")
    assert run_until(cluster, lambda: bool(errors))


def test_nonblocking_receive_returns_none():
    cluster = build_cluster(2, flavor="gm")
    got = {}

    def app():
        port = yield from gm_open(cluster[0], 1)
        event = yield from gm_receive(port)   # instantaneous poll
        got["event"] = event

    cluster[0].host.spawn(app(), "a")
    assert run_until(cluster, lambda: "event" in got or True)
    run_until(cluster, lambda: "event" in got)
    assert got["event"] is None


def test_alarm_via_facade():
    cluster = build_cluster(2, flavor="gm")
    got = {}

    def app():
        port = yield from gm_open(cluster[0], 1)
        gm_set_alarm(port, 1_500.0, context="tick")
        event = yield from gm_blocking_receive(port)
        got["event"] = event

    cluster[0].host.spawn(app(), "a")
    assert run_until(cluster, lambda: "event" in got)
    assert got["event"].etype == EventType.ALARM
    assert got["event"].context == "tick"


def test_gm_unknown_ignores_well_known_and_none():
    cluster = build_cluster(2, flavor="ftgm")
    done = {}

    def app():
        port = yield from gm_open(cluster[0], 1)
        yield from gm_unknown(port, None)
        from repro.gm.events import GmEvent
        yield from gm_unknown(port, GmEvent(EventType.ALARM, 1))
        done["ok"] = True

    cluster[0].host.spawn(app(), "a")
    assert run_until(cluster, lambda: "ok" in done)
