"""Tests for GM's two message priority levels.

GM offers "two non-preemptive priority levels"; receive buffers are
matched by (size, priority) — a high-priority message only lands in a
high-priority buffer.
"""


from repro.cluster import build_cluster
from repro.payload import Payload


def run_until(cluster, predicate, limit=10_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


def open_pair(cluster):
    out = {}

    def opener(node, pid, key):
        out[key] = yield from cluster[node].driver.open_port(pid)

    cluster[0].host.spawn(opener(0, 1, "s"), "o1")
    cluster[1].host.spawn(opener(1, 2, "r"), "o2")
    assert run_until(cluster, lambda: len(out) == 2)
    return out["s"], out["r"]


def test_priority_matched_to_buffer_priority():
    cluster = build_cluster(2, flavor="gm")
    sport, rport = open_pair(cluster)
    got = []

    def receiver():
        yield from rport.provide_receive_buffer(64, priority=1)
        yield from rport.provide_receive_buffer(64, priority=0)
        while len(got) < 2:
            event = yield from rport.receive_message()
            got.append(event.payload.data)

    def sender():
        yield from sport.send_and_wait(Payload.from_bytes(b"urgent"),
                                       1, 2, priority=1)
        yield from sport.send_and_wait(Payload.from_bytes(b"bulk"),
                                       1, 2, priority=0)

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    assert run_until(cluster, lambda: len(got) == 2)
    assert got == [b"urgent", b"bulk"]


def test_wrong_priority_buffer_does_not_match():
    """A high-priority message stalls until a matching buffer appears."""
    cluster = build_cluster(2, flavor="gm")
    sport, rport = open_pair(cluster)
    sim = cluster.sim
    got = {}

    def receiver():
        yield from rport.provide_receive_buffer(64, priority=0)  # wrong
        yield sim.timeout(5_000.0)
        yield from rport.provide_receive_buffer(64, priority=1)  # right
        event = yield from rport.receive_message()
        got["data"] = event.payload.data
        got["at"] = sim.now

    def sender():
        yield from sport.send_and_wait(Payload.from_bytes(b"important"),
                                       1, 2, priority=1)
        got["sent_at"] = sim.now

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    assert run_until(cluster, lambda: "data" in got)
    assert got["data"] == b"important"
    assert got["at"] >= 5_000.0               # waited for the right buffer
    assert cluster[1].mcp.stats["no_token_drops"] > 0


def test_priority_preserved_under_ftgm_recovery():
    cluster = build_cluster(2, flavor="ftgm")
    sport, rport = open_pair(cluster)
    sim = cluster.sim
    got = []

    def receiver():
        yield from rport.provide_receive_buffer(64, priority=1)
        event = yield from rport.receive_message()
        got.append((event.payload.data, sim.now))

    def sender():
        yield from sport.send_and_wait(Payload.from_bytes(b"survivor"),
                                       1, 2, priority=1)

    def crasher():
        yield sim.timeout(405.0)   # just as the send leaves
        cluster[1].mcp.die("priority test hang")

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    sim.spawn(crasher())
    assert run_until(cluster, lambda: bool(got), limit=60_000_000.0)
    assert got[0][0] == b"survivor"
