"""Unit tests for the GM driver and naive reload."""

import pytest

from repro.cluster import build_cluster
from repro.errors import GmError
from repro.faults import naive_reload
from repro.payload import Payload


def run_until(cluster, predicate, limit=10_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


class TestDriver:
    def test_double_load_rejected(self):
        cluster = build_cluster(2, flavor="gm")
        with pytest.raises(GmError):
            cluster[0].driver.load_mcp()

    def test_reload_after_stop_allowed(self):
        cluster = build_cluster(2, flavor="gm")
        cluster[0].mcp.stop()
        mcp = cluster[0].driver.load_mcp()
        assert mcp.running
        assert cluster[0].mcp is mcp

    def test_port_ids_allocated_lowest_free(self):
        cluster = build_cluster(2, flavor="gm")
        got = []

        def opener():
            a = yield from cluster[0].driver.open_port()
            b = yield from cluster[0].driver.open_port(4)
            c = yield from cluster[0].driver.open_port()
            got.extend([a.port_id, b.port_id, c.port_id])

        cluster[0].host.spawn(opener(), "o")
        run_until(cluster, lambda: len(got) == 3)
        assert got == [0, 4, 1]

    def test_duplicate_port_id_rejected(self):
        cluster = build_cluster(2, flavor="gm")
        errors = []

        def opener():
            yield from cluster[0].driver.open_port(2)
            try:
                yield from cluster[0].driver.open_port(2)
            except GmError as exc:
                errors.append(str(exc))

        cluster[0].host.spawn(opener(), "o")
        run_until(cluster, lambda: bool(errors))
        assert "already open" in errors[0]

    def test_out_of_range_port_rejected(self):
        cluster = build_cluster(2, flavor="gm")
        errors = []

        def opener():
            try:
                yield from cluster[0].driver.open_port(8)
            except GmError as exc:
                errors.append(str(exc))

        cluster[0].host.spawn(opener(), "o")
        run_until(cluster, lambda: bool(errors))

    def test_closed_port_frees_id(self):
        cluster = build_cluster(2, flavor="gm")
        got = []

        def app():
            port = yield from cluster[0].driver.open_port(0)
            yield from port.close()
            port2 = yield from cluster[0].driver.open_port(0)
            got.append(port2.port_id)

        cluster[0].host.spawn(app(), "a")
        run_until(cluster, lambda: bool(got))
        assert got == [0]


class TestNaiveReload:
    def test_reload_produces_fresh_working_stack(self):
        cluster = build_cluster(2, flavor="gm")
        sim = cluster.sim
        ports = {}

        def opener(node, pid, key):
            ports[key] = yield from cluster[node].driver.open_port(pid)

        cluster[0].host.spawn(opener(0, 1, "s"), "o1")
        cluster[1].host.spawn(opener(1, 2, "r"), "o2")
        run_until(cluster, lambda: len(ports) == 2)

        cluster[0].mcp.die("hang")
        old = cluster[0].mcp
        done = []

        def reloader():
            yield from naive_reload(cluster[0].driver)
            done.append(True)

        cluster[0].host.spawn(reloader(), "n")
        run_until(cluster, lambda: bool(done), limit=60_000_000.0)
        assert cluster[0].mcp is not old
        assert cluster[0].mcp.running
        # Ports are re-bound to the fresh MCP and usable again.
        got = {}

        def traffic():
            yield from ports["r"].provide_receive_buffer(64)
            yield from ports["s"].send_and_wait(
                Payload.from_bytes(b"post-reload"), 1, 2)
            event = yield from ports["r"].receive_message()
            got["data"] = event.payload.data

        cluster[0].host.spawn(traffic(), "t")
        run_until(cluster, lambda: "data" in got, limit=60_000_000.0)
        assert got["data"] == b"post-reload"

    def test_reload_loses_lanai_state(self):
        """What naive reload does NOT restore: streams and tokens."""
        cluster = build_cluster(2, flavor="gm")
        sim = cluster.sim
        cluster[0].mcp.tx_streams[(1,)] = object()  # fake LANai state
        cluster[0].mcp.die("hang")
        done = []

        def reloader():
            yield from naive_reload(cluster[0].driver)
            done.append(True)

        cluster[0].host.spawn(reloader(), "n")
        run_until(cluster, lambda: bool(done), limit=60_000_000.0)
        assert cluster[0].mcp.tx_streams == {}
        # But routes were restored from the driver's host copy.
        assert cluster[0].mcp.routing_table == \
            cluster[0].driver.host_routes
