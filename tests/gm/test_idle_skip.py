"""Tickless idle fast-forward: fewer events, bitwise-equal bookkeeping.

A quiet GM cluster spends its life in L_timer housekeeping ticks.  The
idle-skip fold absorbs provably idle runs of those ticks into arithmetic
and arms IT0 directly at the first tick that could interact with a live
event.  These tests pin both halves of that bargain:

* the simulator processes dramatically fewer heap events across a long
  idle span, and
* every piece of tick bookkeeping (invocation counts, busy time, last
  tick, max gap) lands on the exact floats live ticking produces, so a
  later burst of traffic observes identical MCP state at identical
  times.

The traffic after the quiet span is scheduled *in-sim* (a host process
sleeping on a timeout), which keeps the future send heap-visible — the
contract the skip's event-scan relies on.
"""

import pytest

from repro.cluster import build_cluster
from repro.payload import Payload

QUIET_US = 500_000.0


def _scenario(monkeypatch, tickless):
    monkeypatch.setenv("REPRO_TICKLESS", "1" if tickless else "0")
    cluster = build_cluster(2, flavor="gm")
    sim = cluster.sim
    done = {}

    def receiver(port):
        for tag in ("first", "second"):
            yield from port.provide_receive_buffer(1024)
            event = yield from port.receive_message()
            done[tag] = event.payload.data

    def sender(port):
        yield from port.send_and_wait(Payload.from_bytes(b"warm"), 1, 2)
        yield sim.timeout(QUIET_US)
        yield from port.send_and_wait(Payload.from_bytes(b"wake"), 1, 2)
        done["sent"] = sim.now

    def opener():
        sport = yield from cluster[0].driver.open_port(1)
        rport = yield from cluster[1].driver.open_port(2)
        cluster[1].host.spawn(receiver(rport), "receiver")
        cluster[0].host.spawn(sender(sport), "sender")

    cluster[0].host.spawn(opener(), "opener")
    steps = 0
    while not ("second" in done and "sent" in done):
        assert sim.peek() != float("inf"), "deadlocked before completion"
        sim.step()
        steps += 1
    books = [(n.mcp.l_timer_invocations, n.mcp.busy_time,
              n.mcp.l_timer_last, n.mcp.l_timer_max_gap)
             for n in cluster.nodes]
    return {"steps": steps, "now": sim.now, "books": books,
            "payloads": (done["first"], done["second"])}


class TestIdleSkip:
    def test_bookkeeping_bitwise_equals_live_ticking(self, monkeypatch):
        live = _scenario(monkeypatch, tickless=False)
        skip = _scenario(monkeypatch, tickless=True)
        assert skip["payloads"] == live["payloads"] == (b"warm", b"wake")
        assert skip["now"] == live["now"]
        assert skip["books"] == live["books"]

    def test_idle_span_processes_far_fewer_events(self, monkeypatch):
        live = _scenario(monkeypatch, tickless=False)
        skip = _scenario(monkeypatch, tickless=True)
        # ~1245 ticks tick by per MCP across the quiet half-millisecond;
        # live ticking pays heap events for each while the fold pays a
        # handful per host-poll horizon.
        assert skip["steps"] < live["steps"] / 3

    def test_tick_cadence_is_preserved_through_the_fold(self, monkeypatch):
        skip = _scenario(monkeypatch, tickless=True)
        for invocations, busy, last, max_gap in skip["books"]:
            # Every absorbed tick was billed: ~401.5 us apart across the
            # whole run, 1.5 us of housekeeping charge each.
            assert invocations > QUIET_US / 402.0
            assert busy >= 1.5 * invocations
