"""Whole-stack determinism: identical seeds -> identical simulations.

Everything in the reproduction (experiments, campaigns, benchmarks)
relies on runs being exactly replayable from their seeds.  These tests
run non-trivial scenarios twice and require bit-identical observable
histories.
"""


from repro.cluster import build_cluster
from repro.faults import InjectionConfig, run_injection
from repro.payload import Payload


def _traffic_trace(seed):
    """A messy scenario: traffic + hang + recovery, traced."""
    cluster = build_cluster(2, flavor="ftgm", seed=seed, trace=True)
    sim = cluster.sim
    events = []
    ports = {}

    def opener(node, pid, key):
        ports[key] = yield from cluster[node].driver.open_port(pid)

    cluster[0].host.spawn(opener(0, 1, "s"), "o1")
    cluster[1].host.spawn(opener(1, 2, "r"), "o2")
    while len(ports) < 2:
        sim.step()

    def sender():
        for i in range(12):
            yield from ports["s"].send_and_wait(
                Payload.from_bytes(b"d%02d" % i), 1, 2)
            yield sim.timeout(35.0)

    def receiver():
        for _ in range(8):
            yield from ports["r"].provide_receive_buffer(64)
        while True:
            event = yield from ports["r"].receive_message(timeout=50_000.0)
            if event is not None:
                events.append((sim.now, event.payload.data))
                yield from ports["r"].provide_receive_buffer(64)

    def crasher():
        yield sim.timeout(250.0)
        cluster[1].mcp.die("det test")

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    sim.spawn(crasher())
    sim.run(until=sim.now + 10_000_000.0)
    trace = [(r.time, r.source, r.kind) for r in cluster.tracer.records]
    return events, trace


def test_recovery_scenario_bit_identical():
    a_events, a_trace = _traffic_trace(seed=77)
    b_events, b_trace = _traffic_trace(seed=77)
    assert a_events == b_events
    assert a_trace == b_trace


def test_different_seeds_still_deliver_identically():
    """Seeds steer randomness (none on this path), not correctness."""
    a_events, _ = _traffic_trace(seed=1)
    b_events, _ = _traffic_trace(seed=2)
    assert [d for _, d in a_events] == [d for _, d in b_events]


def test_injection_campaign_runs_bit_identical():
    config = InjectionConfig(run_id=3, seed=555, messages=8)
    a = run_injection(config)
    b = run_injection(config)
    assert (a.category, a.bit_offset, a.injected_at,
            a.messages_delivered_ok, a.hang_reason) \
        == (b.category, b.bit_offset, b.injected_at,
            b.messages_delivered_ok, b.hang_reason)


def test_boot_time_bit_identical_across_cluster_sizes():
    for n in (2, 5):
        a = build_cluster(n, flavor="gm", seed=9)
        b = build_cluster(n, flavor="gm", seed=9)
        assert a.sim.now == b.sim.now
        for node_a, node_b in zip(a.nodes, b.nodes):
            assert node_a.mcp.routing_table == node_b.mcp.routing_table
