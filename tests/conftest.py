"""Test-suite-wide configuration."""

from hypothesis import HealthCheck, settings

# Simulation-heavy property tests can blow hypothesis' default 200 ms
# per-example deadline on a loaded machine; correctness, not wall time,
# is what these tests check.  derandomize keeps CI runs reproducible.
settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
