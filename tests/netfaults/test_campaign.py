"""Netfault campaign aggregation, rendering and determinism."""

from repro.netfaults import (
    NetCategory,
    NetFaultConfig,
    run_netfault_injection,
    run_netfaults_campaign,
)


class TestScenarioOutcomes:
    def test_flap_below_suspicion_recovers_by_retransmit(self):
        # Down for 12 ms, below the 15 ms stall threshold: Go-Back-N
        # rides it out and no reroute ever triggers.
        out = run_netfault_injection(NetFaultConfig(
            run_id=0, seed=21, scenario="link-flap", fault_at_us=8_000.0))
        assert out.category == NetCategory.RETRANSMIT
        assert out.reroutes == 0
        assert out.nic_resets == 0

    def test_corruption_absorbed_by_retransmit(self):
        out = run_netfault_injection(NetFaultConfig(
            run_id=0, seed=22, scenario="corrupt", fault_at_us=5_000.0))
        assert out.category == NetCategory.RETRANSMIT
        assert out.duplicates == 0          # exactly-once despite dup mode

    def test_switch_port_kill_recovers_by_reroute(self):
        out = run_netfault_injection(NetFaultConfig(
            run_id=0, seed=23, scenario="switch-port-kill",
            fault_at_us=9_000.0))
        assert out.category == NetCategory.REROUTE
        assert out.nic_resets == 0


class TestCampaign:
    def test_render_is_reproducible_byte_for_byte(self):
        kwargs = dict(runs_per_scenario=1, seed=77,
                      scenarios=["link-cut", "link-flap"])
        r1 = run_netfaults_campaign(**kwargs)
        r2 = run_netfaults_campaign(**kwargs)
        assert r1.render() == r2.render()
        assert [(o.run_id, o.category) for o in r1.outcomes] \
            == [(o.run_id, o.category) for o in r2.outcomes]

    def test_render_contains_table_and_breakdown(self):
        result = run_netfaults_campaign(runs_per_scenario=1, seed=77,
                                        scenarios=["link-cut"])
        text = result.render()
        assert "link-cut" in text
        assert "deadlocked" in text
        assert "mapper discovery" in text   # latency breakdown present
        row = result.counts["link-cut"]
        assert row[NetCategory.REROUTE] == 1

    def test_parallel_equals_serial(self):
        kwargs = dict(runs_per_scenario=1, seed=99,
                      scenarios=["link-cut", "corrupt"])
        serial = run_netfaults_campaign(**kwargs)
        pooled = run_netfaults_campaign(workers=2, **kwargs)
        assert serial.render() == pooled.render()
