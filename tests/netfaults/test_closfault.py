"""Correlated-fault campaigns on multi-tier fabrics (``closfault``)."""

import pytest

from repro.exp.registry import get_experiment
from repro.netfaults.campaign import NetCategory
from repro.netfaults.clos import (
    ClosFaultConfig,
    cross_fabric_pairs,
    run_closfault_injection,
)


class TestCrossFabricPairs:
    def test_fat_tree_pairs_cross_pods(self):
        pairs = cross_fabric_pairs(16, "fat-tree", radix=4, n_pairs=2)
        for src, dst in pairs:
            assert src // 4 != dst // 4, \
                "(%d, %d) stays inside one pod" % (src, dst)

    def test_endpoints_are_disjoint(self):
        pairs = cross_fabric_pairs(64, "fat-tree", radix=8, n_pairs=6)
        flat = [n for pair in pairs for n in pair]
        assert len(flat) == len(set(flat)) == 12

    def test_clos_pairs_cross_racks(self):
        pairs = cross_fabric_pairs(12, "clos", radix=8, n_spines=2,
                                   n_pairs=2)
        for src, dst in pairs:
            assert src // 6 != dst // 6

    def test_small_fabric_falls_back_to_rack_stride(self):
        pairs = cross_fabric_pairs(8, "fat-tree", radix=4, n_pairs=2)
        assert len(pairs) == 2

    def test_too_many_pairs_rejected(self):
        with pytest.raises(ValueError):
            cross_fabric_pairs(8, "fat-tree", radix=4, n_pairs=5)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            cross_fabric_pairs(8, "ring", n_pairs=1)


def _config(scenario, flavor, **overrides):
    pairs = cross_fabric_pairs(16, "fat-tree", radix=4, n_pairs=2)
    defaults = dict(scenario="%s/%s" % (scenario, flavor), run_id=0,
                    seed=2003, n_nodes=16, topology="fat-tree",
                    n_switches=2, radix=4, flavor=flavor, pairs=pairs,
                    messages=6)
    defaults.update(overrides)
    return ClosFaultConfig(**defaults)


class TestCompoundRecovery:
    def test_spine_loss_ftgm_reroutes(self):
        # Killing the mid-route core switch severs every path through
        # it at once; FTGM's detector + remap must converge on one of
        # the surviving equal-cost paths and finish the stream.
        outcome = run_closfault_injection(_config("spine-loss", "ftgm"))
        assert outcome.category == NetCategory.REROUTE
        assert outcome.delivered_once == outcome.messages_expected

    def test_spine_loss_gm_deadlocks(self):
        # Plain GM has no path detector: same fault, stuck stream.
        outcome = run_closfault_injection(_config("spine-loss", "gm"))
        assert outcome.category == NetCategory.DEADLOCKED

    def test_rack_loss_recovers_by_retransmission(self):
        # A dead edge switch partitions its rack — no reroute exists.
        # After the revival, Go-Back-N drains the backlog.
        outcome = run_closfault_injection(_config("rack-loss", "ftgm"))
        assert outcome.category == NetCategory.RETRANSMIT
        assert outcome.delivered_once == outcome.messages_expected

    def test_cascade_ftgm_converges_across_staged_cuts(self):
        outcome = run_closfault_injection(_config("cascade", "ftgm"))
        assert outcome.category in (NetCategory.REROUTE,
                                    NetCategory.RETRANSMIT)
        assert outcome.delivered_once == outcome.messages_expected

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_closfault_injection(_config("bathtub", "ftgm"))


class TestExperimentRegistration:
    def test_small_scale_grid_is_one_cell(self):
        spec = get_experiment("closfault").build_spec({"scale": "small"})
        assert [s.name for s in spec.scenarios] == ["rack-loss/ftgm"]

    def test_full_grid_covers_scenarios_and_flavors(self):
        spec = get_experiment("closfault").build_spec({})
        names = [s.name for s in spec.scenarios]
        assert len(names) == 8
        assert "spine-loss/gm" in names and "repair-flap/ftgm" in names

    def test_spec_round_trips_with_radix(self):
        from repro.exp.spec import ExperimentSpec

        spec = get_experiment("closfault").build_spec(
            {"nodes": 64, "radix": 8})
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.scenarios[0].cluster.radix == 8
        assert clone.spec_hash == spec.spec_hash

    def test_expand_builds_cross_fabric_configs(self):
        experiment = get_experiment("closfault")
        spec = experiment.build_spec({"scale": "small"})
        configs = experiment.expand(spec)
        assert len(configs) == 1
        config = configs[0]
        assert isinstance(config, ClosFaultConfig)
        assert config.kind == "rack-loss"
        assert list(config.pairs) == cross_fabric_pairs(
            16, "fat-tree", radix=4, n_pairs=2)
