"""End-to-end reroute recovery: the PR's acceptance scenario.

A 4-node 2-switch ring runs a cross-switch message stream; the in-use
uplink is severed mid-stream.  The path detector must classify the fault
as path-dead (NOT a NIC hang — no card is reset), the FTD must re-run
the mapper and install fresh routes, in-flight shadow-tokened messages
must be delivered exactly once over the new path, and the whole run must
be deterministic: two same-seed executions produce identical traces.
"""

from dataclasses import asdict

from repro.netfaults import (
    NetCategory,
    NetFaultConfig,
    Verdict,
    run_netfault_injection,
)

_CONFIG = dict(run_id=0, seed=1234, scenario="link-cut",
               fault_at_us=9_000.0)


class TestRerouteRecovery:
    def setup_method(self):
        self.outcome = run_netfault_injection(NetFaultConfig(**_CONFIG))

    def test_detector_classifies_path_dead(self):
        verdicts = {v for _t, _d, v in self.outcome.verdicts}
        assert Verdict.PATH_DEAD in verdicts
        assert Verdict.NIC_HANG not in verdicts

    def test_card_is_not_reset(self):
        # The card was healthy: reroute must happen without the 765 ms
        # reset/reload path ever triggering.
        assert self.outcome.nic_resets == 0
        assert self.outcome.card_recoveries == 0

    def test_mapper_reroute_happened(self):
        assert self.outcome.reroutes >= 1
        assert self.outcome.reroutes_failed == 0
        assert self.outcome.reroute_installed_at \
            > self.outcome.reroute_woken_at > self.outcome.verdict_at \
            > self.outcome.fault_at

    def test_exactly_once_delivery(self):
        assert self.outcome.delivered_once == self.outcome.messages_expected
        assert self.outcome.duplicates == 0
        assert self.outcome.missing == 0
        assert self.outcome.sends_errored == 0

    def test_classified_as_reroute_recovery(self):
        assert self.outcome.category == NetCategory.REROUTE
        segments = self.outcome.latency_segments()
        assert segments is not None
        assert all(value >= 0 for _label, value in segments)


def test_same_seed_runs_are_identical():
    first = run_netfault_injection(NetFaultConfig(**_CONFIG))
    second = run_netfault_injection(NetFaultConfig(**_CONFIG))
    assert asdict(first) == asdict(second)
