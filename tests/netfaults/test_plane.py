"""Unit tests for the network fault plane."""

import pytest

from repro.cluster import build_cluster
from repro.netfaults import NetworkFaultPlane
from repro.sim import SeededRng


def _plane(cluster, seed=0):
    return NetworkFaultPlane(cluster.sim, cluster.fabric,
                             SeededRng(seed, "plane-test"))


class TestLinkFaults:
    def test_immediate_cut_and_restore(self):
        cluster = build_cluster(2, boot=False)
        plane = _plane(cluster)
        link = cluster.fabric.links[0]
        plane.cut_link(link)
        assert not link.up and link.cuts == 1
        plane.restore_link(link)
        assert link.up
        assert [a.action for a in plane.actions] \
            == ["cut_link", "restore_link"]

    def test_scheduled_cut_fires_at_time(self):
        cluster = build_cluster(2, boot=False)
        plane = _plane(cluster)
        link = cluster.fabric.links[0]
        plane.cut_link(link, at=500.0)
        assert link.up                       # not yet
        cluster.sim.run(until=499.0)
        assert link.up
        cluster.sim.run(until=501.0)
        assert not link.up
        assert plane.actions[0].at == 500.0

    def test_flap_restores_after_down_for(self):
        cluster = build_cluster(2, boot=False)
        plane = _plane(cluster)
        link = cluster.fabric.links[0]
        plane.flap_link(link, at=100.0, down_for=50.0)
        cluster.sim.run(until=120.0)
        assert not link.up
        cluster.sim.run(until=200.0)
        assert link.up


class TestSwitchFaults:
    def test_kill_and_revive_port(self):
        cluster = build_cluster(2, boot=False)
        plane = _plane(cluster)
        switch = cluster.fabric.switches[0]
        plane.kill_switch_port(switch, 1)
        assert 1 in switch.dead_ports
        plane.revive_switch_port(switch, 1)
        assert 1 not in switch.dead_ports

    def test_kill_bad_port_rejected(self):
        cluster = build_cluster(2, boot=False)
        switch = cluster.fabric.switches[0]
        with pytest.raises(ValueError):
            switch.kill_port(99)

    def test_dead_port_drops_traffic(self):
        cluster = build_cluster(2, seed=4)
        switch = cluster.fabric.switches[0]
        switch.kill_port(1)                  # node 1's access port
        before = switch.dead_port_drops
        done = []

        def talker():
            from repro.payload import Payload

            port = yield from cluster[0].driver.open_port(1)
            yield from port.send(Payload.phantom(64, tag=1), 1, 2,
                                 callback=lambda o: done.append(o))
            while not done:
                yield from port.receive(timeout=1_000.0)

        cluster[0].host.spawn(talker(), "talker")
        cluster.sim.run(until=cluster.sim.now + 20_000.0)
        assert switch.dead_port_drops > before


class TestCorruption:
    def test_rate_validated(self):
        cluster = build_cluster(2, boot=False)
        plane = _plane(cluster)
        with pytest.raises(ValueError):
            plane.corrupt_on_link(cluster.fabric.links[0], rate=1.5)
        with pytest.raises(ValueError):
            plane.corrupt_on_link(cluster.fabric.links[0], rate=0.1,
                                  modes=("explode",))

    def test_filter_draws_are_deterministic(self):
        decisions = []
        for _attempt in range(2):
            cluster = build_cluster(2, boot=False)
            plane = _plane(cluster, seed=9)
            link = cluster.fabric.links[0]
            plane.corrupt_on_link(link, rate=0.5)
            decisions.append([link.fault_filter(object())
                              for _ in range(40)])
        assert decisions[0] == decisions[1]

    def test_until_removes_filter(self):
        cluster = build_cluster(2, boot=False)
        plane = _plane(cluster)
        link = cluster.fabric.links[0]
        plane.corrupt_on_link(link, rate=1.0, at=10.0, until=50.0)
        cluster.sim.run(until=20.0)
        assert link.fault_filter is not None
        cluster.sim.run(until=60.0)
        assert link.fault_filter is None
