"""Tests for the analysis package: tables, timeline, figure helpers."""

import pytest

from repro.analysis import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    Series,
    Table2,
    Table3,
    recovery_timeline,
    render_ascii,
    render_timeline,
)
from repro.ftgm.ftd import RecoveryRecord
from repro.workloads.allsize import BandwidthResult
from repro.workloads.pingpong import PingPongResult
from repro.workloads.utilization import UtilizationResult


def fake_record():
    return RecoveryRecord(
        interrupt_at=1_000.0, woken_at=1_013.0, confirmed_at=2_013.0,
        reset_at=82_013.0, reloaded_at=582_013.0,
        tables_restored_at=732_013.0, events_posted_at=766_013.0,
        ports_notified=1)


class TestTable2:
    def _table(self):
        bw = BandwidthResult(1 << 20, 10, 11_000.0, 10 << 20)
        pp_gm = PingPongResult(64, 5, rtts=[23.0] * 5)
        pp_ftgm = PingPongResult(64, 5, rtts=[26.0] * 5)
        util_gm = UtilizationResult(100, 64, 0.30, 0.75, 3.0, 3.0)
        util_ftgm = UtilizationResult(100, 64, 0.55, 1.15, 3.4, 3.4)
        return Table2(bw, bw, pp_gm, pp_ftgm, util_gm, util_ftgm)

    def test_rows_align_with_paper_metrics(self):
        table = self._table()
        rows = table.rows()
        assert [name for name, *_ in rows] == list(PAPER_TABLE2)
        latency = dict((name, (gm, ftgm))
                       for name, gm, ftgm, _, _ in rows)["Latency (us)"]
        assert latency == (pytest.approx(11.5), pytest.approx(13.0))

    def test_render_contains_both_columns(self):
        text = self._table().render()
        assert "GM(paper)" in text
        assert "Bandwidth" in text


class TestTable3:
    def test_totals_and_render(self):
        table = Table3(detection_us=800.0, record=fake_record(),
                       per_port_us=900_000.0)
        assert table.record.ftd_time == pytest.approx(765_000.0)
        assert table.total_us == pytest.approx(800.0 + 765_000.0
                                               + 900_000.0)
        text = table.render()
        assert "Fault Detection Time" in text
        assert "< 2 sec" in text
        for component in PAPER_TABLE3:
            assert component in text


class TestTimeline:
    def test_segments_are_causal_and_complete(self):
        record = fake_record()
        segments = recovery_timeline(500.0, record, 1_666_013.0)
        assert segments[0][1] == 500.0
        for (_, start, end), (_, next_start, _) in zip(segments,
                                                       segments[1:]):
            assert end >= start
            assert next_start == end
        assert segments[-1][2] == 1_666_013.0

    def test_render_shows_every_segment(self):
        record = fake_record()
        segments = recovery_timeline(500.0, record, 1_666_013.0)
        text = render_timeline(segments)
        assert "MCP reload" in text
        assert "per-process" in text
        assert "1.666 s" in text or "1666" in text


class TestSeriesHelpers:
    def test_y_at_missing_returns_none(self):
        series = Series("x", [(1, 2.0)])
        assert series.y_at(99) is None

    def test_render_ascii_linear_scale(self):
        series = Series("lin", [(0, 1.0), (10, 2.0)])
        text = render_ascii([series], "t", "x", "y", log_x=False)
        assert "lin-x" in text
