"""Unit tests for FTGM's shadow state and sequence generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ftgm.seqgen import (
    SYNC_LOCK_COST_US,
    PortSequenceStreams,
    SharedConnectionStreams,
)
from repro.ftgm.shadow import ShadowState
from repro.gm.tokens import RecvToken, SendToken
from repro.sim import Simulator


def make_send_token(msg_id_hint=None, seq_base=0, dest=1):
    token = SendToken(src_port=1, dest_node=dest, dest_port=2,
                      region_id=1, host_addr=0x1000_0000, size=64,
                      seq_base=seq_base)
    return token


def make_recv_token():
    return RecvToken(port=1, region_id=2, host_addr=0x1000_1000, size=256)


class TestShadowState:
    def test_send_token_lifecycle(self):
        shadow = ShadowState(1)
        token = make_send_token()
        shadow.save_send_token(token)
        assert shadow.outstanding_sends() == [token]
        assert shadow.drop_send_token(token.msg_id) is token
        assert shadow.outstanding_sends() == []

    def test_drop_unknown_token_is_none(self):
        shadow = ShadowState(1)
        assert shadow.drop_send_token(999) is None
        assert shadow.drop_recv_token(999) is None

    def test_outstanding_sends_ordered_by_seq_base(self):
        shadow = ShadowState(1)
        late = make_send_token(seq_base=10)
        early = make_send_token(seq_base=3)
        shadow.save_send_token(late)
        shadow.save_send_token(early)
        assert shadow.outstanding_sends() == [early, late]

    def test_recv_token_lifecycle(self):
        shadow = ShadowState(1)
        token = make_recv_token()
        shadow.save_recv_token(token)
        assert shadow.outstanding_recvs() == [token]
        shadow.drop_recv_token(token.token_id)
        assert shadow.outstanding_recvs() == []

    def test_ack_table_monotone(self):
        shadow = ShadowState(1)
        shadow.record_delivery(0, 1, 5)
        shadow.record_delivery(0, 1, 3)   # stale: ignored
        shadow.record_delivery(0, 1, 9)
        assert shadow.stream_restore_points() == {(0, 1): 9}

    def test_none_seq_ignored(self):
        shadow = ShadowState(1)
        shadow.record_delivery(0, 1, None)
        assert shadow.stream_restore_points() == {}

    def test_memory_accounting_small(self):
        shadow = ShadowState(1)
        for _ in range(16):
            shadow.save_send_token(make_send_token())
            shadow.save_recv_token(make_recv_token())
        shadow.record_delivery(0, 1, 4)
        assert 0 < shadow.memory_bytes() < 20 * 1024

    def test_repr_is_informative(self):
        shadow = ShadowState(3)
        assert "port=3" in repr(shadow)


class TestPortSequenceStreams:
    def _alloc(self, streams, dest, count):
        sim = Simulator()
        out = []

        def body():
            base = yield from streams.alloc(dest, count)
            out.append(base)

        sim.spawn(body())
        sim.run()
        return out[0]

    def test_contiguous_per_destination(self):
        streams = PortSequenceStreams(1)
        assert self._alloc(streams, 1, 3) == 0
        assert self._alloc(streams, 1, 2) == 3
        assert streams.peek(1) == 5

    def test_destinations_independent(self):
        streams = PortSequenceStreams(1)
        self._alloc(streams, 1, 5)
        assert self._alloc(streams, 2, 1) == 0

    def test_snapshot(self):
        streams = PortSequenceStreams(1)
        self._alloc(streams, 7, 4)
        assert streams.snapshot() == {7: 4}


class TestSharedConnectionStreams:
    def test_serialized_allocation_is_gap_free(self):
        sim = Simulator()
        shared = SharedConnectionStreams(sim)
        grabbed = []

        def worker():
            for _ in range(20):
                base = yield from shared.alloc(3, 1)
                grabbed.append(base)

        for _ in range(5):
            sim.spawn(worker())
        sim.run()
        assert sorted(grabbed) == list(range(100))

    def test_lock_cost_charged(self):
        sim = Simulator()
        shared = SharedConnectionStreams(sim)

        def worker():
            yield from shared.alloc(1, 1)

        sim.spawn(worker())
        sim.run()
        assert sim.now == pytest.approx(SYNC_LOCK_COST_US)

    def test_contention_counted(self):
        sim = Simulator()
        shared = SharedConnectionStreams(sim)

        def worker():
            yield from shared.alloc(1, 1)

        for _ in range(3):
            sim.spawn(worker())
        sim.run()
        assert shared.lock_waits == 2


@given(counts=st.lists(st.integers(min_value=1, max_value=20),
                       min_size=1, max_size=30))
def test_prop_port_streams_partition_sequence_space(counts):
    """Allocations tile [0, total) with no gaps or overlaps."""
    streams = PortSequenceStreams(0)
    sim = Simulator()
    spans = []

    def body():
        for count in counts:
            base = yield from streams.alloc(5, count)
            spans.append((base, base + count))

    sim.spawn(body())
    sim.run()
    spans.sort()
    cursor = 0
    for start, end in spans:
        assert start == cursor
        cursor = end
    assert cursor == sum(counts)
