"""Soak test: repeated hangs over one long-running stream.

The FTD "rewinds and stands guard for the recovery of the next fault" —
so a node must survive *any number* of sequential hangs.  This drives a
long message stream through three successive NIC hangs (alternating
sides) and checks exactly-once in-order delivery end to end, plus one
run where hangs strike both sides.
"""


from repro.cluster import build_cluster
from repro.payload import Payload


def run_until(cluster, predicate, limit):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


def _soak(hang_plan, n_msgs=30, gap=100_000.0):
    """A slow stream (one message per 100 ms) spanning several seconds,
    so multiple hang/recovery cycles land mid-stream."""
    """hang_plan: list of (delay_after_previous_event_us, node)."""
    cluster = build_cluster(2, flavor="ftgm")
    sim = cluster.sim
    received = []
    ports = {}

    def opener(node, pid, key):
        ports[key] = yield from cluster[node].driver.open_port(pid)

    cluster[0].host.spawn(opener(0, 1, "s"), "o1")
    cluster[1].host.spawn(opener(1, 2, "r"), "o2")
    assert run_until(cluster, lambda: len(ports) == 2, 10_000.0)

    def sender():
        for i in range(n_msgs):
            yield from ports["s"].send_and_wait(
                Payload.from_bytes(b"soak-%04d" % i), 1, 2)
            yield sim.timeout(gap)

    def receiver():
        for _ in range(8):
            yield from ports["r"].provide_receive_buffer(64)
        while len(received) < n_msgs:
            event = yield from ports["r"].receive_message()
            received.append(event.payload.data)
            if len(received) <= n_msgs - 8:
                yield from ports["r"].provide_receive_buffer(64)

    def saboteur():
        for delay, node in hang_plan:
            yield sim.timeout(delay)
            # Wait until the node's current MCP is actually running
            # (prior recovery may still be in flight).
            while not cluster[node].mcp.running:
                yield sim.timeout(100_000.0)
            cluster[node].mcp.die("soak hang on node %d" % node)

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    sim.spawn(saboteur())
    finished = run_until(cluster, lambda: len(received) == n_msgs,
                         limit=120_000_000.0)
    return cluster, received, finished


def test_three_sequential_receiver_hangs():
    cluster, received, finished = _soak(
        [(600.0, 1), (1_500_000.0, 1), (1_500_000.0, 1)])
    assert finished
    assert received == [b"soak-%04d" % i for i in range(30)]
    assert len(cluster[1].driver.ftd.recoveries) == 3
    assert all(not r.false_alarm
               for r in cluster[1].driver.ftd.recoveries)


def test_alternating_side_hangs():
    cluster, received, finished = _soak(
        [(700.0, 1), (1_600_000.0, 0), (1_600_000.0, 1)])
    assert finished
    assert received == [b"soak-%04d" % i for i in range(30)]
    total = (len(cluster[0].driver.ftd.recoveries)
             + len(cluster[1].driver.ftd.recoveries))
    assert total == 3
