"""Recovery with multiple ports and multiple nodes.

The per-(port, remote node) sequence streams of Figure 6(b) exist so
that *independent processes* on one node can generate sequence numbers
without synchronizing.  These tests exercise exactly that: several
ports (processes) on the failed node, traffic to/from several peers,
and recovery that must restore every stream independently.
"""


from repro.cluster import build_cluster
from repro.payload import Payload


def run_until(cluster, predicate, limit=60_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


def open_ports(cluster, specs):
    out = {}

    def opener(node, port_id, key):
        port = yield from cluster[node].driver.open_port(port_id)
        out[key] = port

    for i, (node, port_id) in enumerate(specs):
        cluster[node].host.spawn(opener(node, port_id, i), "open%d" % i)
    assert run_until(cluster, lambda: len(out) == len(specs))
    return [out[i] for i in range(len(specs))]


class TestTwoProcessesOneNode:
    def test_independent_streams_recover_independently(self):
        """Two 'processes' (ports) on node 1 receive from node 0; the
        NIC hangs; both recover with exactly-once delivery."""
        cluster = build_cluster(2, flavor="ftgm")
        sim = cluster.sim
        s1, s2, r1, r2 = open_ports(
            cluster, [(0, 1), (0, 3), (1, 1), (1, 3)])
        got = {1: [], 3: []}

        def sender(port, dport, tag):
            for i in range(15):
                yield from port.send_and_wait(
                    Payload.from_bytes(b"%s-%03d" % (tag, i)), 1, dport)
                yield sim.timeout(30.0)

        def receiver(port, key):
            for _ in range(8):
                yield from port.provide_receive_buffer(64)
            while len(got[key]) < 15:
                event = yield from port.receive_message()
                got[key].append(event.payload.data)
                if len(got[key]) <= 7:
                    yield from port.provide_receive_buffer(64)

        def crasher():
            # Spawned after port opening (~400us in): +300us lands the
            # hang mid-stream for both ports.
            yield sim.timeout(300.0)
            cluster[1].mcp.die("multi-process hang")

        cluster[1].host.spawn(receiver(r1, 1), "r1")
        cluster[1].host.spawn(receiver(r2, 3), "r2")
        cluster[0].host.spawn(sender(s1, 1, b"a"), "s1")
        cluster[0].host.spawn(sender(s2, 3, b"b"), "s2")
        sim.spawn(crasher())
        assert run_until(cluster, lambda: len(got[1]) == 15
                         and len(got[3]) == 15)
        assert got[1] == [b"a-%03d" % i for i in range(15)]
        assert got[3] == [b"b-%03d" % i for i in range(15)]
        assert r1.recoveries == 1 and r2.recoveries == 1
        # The two receiving streams are distinct (Fig. 6b): the MCP
        # keyed them by (sender node, sender port).
        keys = set(cluster[1].mcp.rx_streams)
        assert (0, 1) in keys and (0, 3) in keys

    def test_sender_side_streams_are_per_port(self):
        cluster = build_cluster(2, flavor="ftgm")
        s1, s2, r1 = open_ports(cluster, [(0, 1), (0, 3), (1, 2)])
        done = {}

        def senders():
            yield from s1.send_and_wait(Payload.from_bytes(b"x"), 1, 2)
            yield from s2.send_and_wait(Payload.from_bytes(b"y"), 1, 2)
            done["ok"] = True

        def receiver():
            yield from r1.provide_receive_buffer(64)
            yield from r1.provide_receive_buffer(64)
            yield from r1.receive_message()
            yield from r1.receive_message()

        cluster[1].host.spawn(receiver(), "r")
        cluster[0].host.spawn(senders(), "s")
        assert run_until(cluster, lambda: "ok" in done)
        keys = set(cluster[0].mcp.tx_streams)
        assert (1, 1) in keys and (1, 3) in keys
        # Each port's stream numbers independently from zero.
        assert cluster[0].mcp.tx_streams[(1, 1)].next_seq == 1
        assert cluster[0].mcp.tx_streams[(1, 3)].next_seq == 1


class TestFourNodeRecovery:
    def test_healthy_pairs_unaffected_by_peer_recovery(self):
        """Node 1 hangs mid-run; traffic between nodes 2 and 3 must not
        even hiccup, and node 0 <-> node 1 traffic must recover."""
        cluster = build_cluster(4, flavor="ftgm")
        sim = cluster.sim
        ports = open_ports(cluster, [(0, 1), (1, 1), (2, 1), (3, 1)])
        p0, p1, p2, p3 = ports
        got = {1: [], 3: []}
        clean_latencies = []

        def pump(sport, rport, dest, key, n, track_latency=False):
            def sender():
                for i in range(n):
                    t0 = sim.now
                    yield from sport.send_and_wait(
                        Payload.from_bytes(b"%d-%03d" % (dest, i)),
                        dest, 1)
                    if track_latency:
                        clean_latencies.append(sim.now - t0)
                    yield sim.timeout(40.0)
            return sender

        def receiver(rport, key, n):
            def body():
                for _ in range(8):
                    yield from rport.provide_receive_buffer(64)
                while len(got[key]) < n:
                    event = yield from rport.receive_message()
                    got[key].append(event.payload.data)
                    if len(got[key]) <= n - 8:
                        yield from rport.provide_receive_buffer(64)
            return body

        def crasher():
            yield sim.timeout(900.0)
            cluster[1].mcp.die("node 1 hang")

        cluster[1].host.spawn(receiver(p1, 1, 20)(), "r1")
        cluster[3].host.spawn(receiver(p3, 3, 20)(), "r3")
        cluster[0].host.spawn(pump(p0, p1, 1, 1, 20)(), "s01")
        cluster[2].host.spawn(pump(p2, p3, 3, 3, 20,
                                   track_latency=True)(), "s23")
        sim.spawn(crasher())
        assert run_until(cluster, lambda: len(got[1]) == 20
                         and len(got[3]) == 20)
        assert got[1] == [b"1-%03d" % i for i in range(20)]
        assert got[3] == [b"3-%03d" % i for i in range(20)]
        assert cluster[1].driver.ftd.recoveries
        # The clean pair (2 -> 3) never saw a slow send: every one of
        # its completions stayed in the microsecond regime.
        assert max(clean_latencies) < 1_000.0
