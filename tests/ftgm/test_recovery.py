"""Integration tests for FTGM fault detection and transparent recovery."""

import pytest

from repro.cluster import build_cluster
from repro.gm import constants as C
from repro.payload import Payload


def run_until(cluster, predicate, limit=60_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    assert predicate(), "condition not reached within %.0f us" % limit


def open_ports(cluster, specs):
    out = {}

    def opener(node, port_id, key):
        port = yield from cluster[node].driver.open_port(port_id)
        out[key] = port

    for i, (node, port_id) in enumerate(specs):
        cluster[node].host.spawn(opener(node, port_id, i), "open%d" % i)
    run_until(cluster, lambda: len(out) == len(specs))
    return [out[i] for i in range(len(specs))]


class TestWatchdog:
    def test_healthy_mcp_never_trips_watchdog(self):
        cluster = build_cluster(2, flavor="ftgm")
        cluster.sim.run(until=cluster.sim.now + 100_000.0)
        for node in cluster.nodes:
            assert node.driver.fatal_interrupts == 0
            assert node.mcp.running

    def test_hang_raises_fatal_interrupt_within_watchdog_interval(self):
        cluster = build_cluster(2, flavor="ftgm", start_ftd=False)
        sim = cluster.sim
        t_hang = sim.now + 5_000.0

        def crasher():
            yield sim.timeout(5_000.0)
            cluster[1].mcp.die("test hang")

        sim.spawn(crasher())
        run_until(cluster, lambda: cluster[1].driver.fatal_interrupts > 0,
                  limit=50_000.0)
        detection_latency = sim.now - t_hang
        # IT1 was last reset by L_timer at most L_TIMER_INTERVAL before
        # the hang, so detection falls within one watchdog interval.
        assert detection_latency <= C.WATCHDOG_INTERVAL_US + 1.0
        assert detection_latency > 0

    def test_detection_time_band_matches_paper(self):
        """Fault detection ~800us (Table 3): between IT1 - L_timer gap
        and the full IT1 interval."""
        latencies = []
        for offset in (50.0, 150.0, 250.0, 350.0):
            cluster = build_cluster(2, flavor="ftgm", start_ftd=False)
            sim = cluster.sim
            base = sim.now

            def crasher(off=offset):
                yield sim.timeout(10_000.0 + off)
                cluster[1].mcp.die("test")

            sim.spawn(crasher())
            t_hang = base + 10_000.0 + offset
            run_until(cluster,
                      lambda: cluster[1].driver.fatal_interrupts > 0,
                      limit=50_000.0)
            latencies.append(sim.now - t_hang)
        mean = sum(latencies) / len(latencies)
        assert C.WATCHDOG_INTERVAL_US - C.L_TIMER_INTERVAL_US \
            <= mean <= C.WATCHDOG_INTERVAL_US

    def test_watchdog_detects_interpreted_lanai_hang(self):
        cluster = build_cluster(2, flavor="ftgm", interpreted_nodes=[0],
                                start_ftd=False)
        sport, rport = open_ports(cluster, [(0, 1), (1, 2)])
        # Corrupt send_chunk so the CPU halts: overwrite the entry with
        # an invalid opcode.
        mcp = cluster[0].mcp
        entry = mcp.firmware.entry_send_chunk
        mcp.nic.sram.write_word(entry, 0x3F << 26)
        sent = {}

        def sender():
            yield from sport.send(Payload.from_bytes(b"doomed"), 1, 2)
            sent["posted"] = True

        cluster[0].host.spawn(sender(), "s")
        run_until(cluster, lambda: cluster[0].driver.fatal_interrupts > 0,
                  limit=100_000.0)
        assert mcp.cpu.hung
        assert mcp.hung


class TestFtdRecovery:
    def _hang_and_recover(self, cluster, node=1, at=5_000.0):
        sim = cluster.sim

        def crasher():
            yield sim.timeout(at)
            cluster[node].mcp.die("test hang")

        sim.spawn(crasher())
        ftd = cluster[node].driver.ftd
        run_until(cluster, lambda: len(ftd.recoveries) > 0)
        return ftd.recoveries[0]

    def test_ftd_confirms_hang_via_magic_word(self):
        cluster = build_cluster(2, flavor="ftgm")
        record = self._hang_and_recover(cluster)
        assert not record.false_alarm
        assert record.confirmed_at - record.woken_at \
            >= C.MAGIC_WORD_SETTLE_US

    def test_ftd_time_matches_table3(self):
        cluster = build_cluster(2, flavor="ftgm")
        record = self._hang_and_recover(cluster)
        # ~765000us total, ~500000us reloading the MCP.
        assert record.ftd_time == pytest.approx(765_000.0, rel=0.05)
        assert record.reloaded_at - record.reset_at \
            == pytest.approx(C.MCP_RELOAD_US, rel=0.01)

    def test_recovery_reloads_fresh_mcp_and_restores_routes(self):
        cluster = build_cluster(2, flavor="ftgm")
        old_mcp = cluster[1].mcp
        self._hang_and_recover(cluster)
        new_mcp = cluster[1].mcp
        assert new_mcp is not old_mcp
        assert new_mcp.running
        assert new_mcp.routing_table == old_mcp.routing_table
        assert cluster[1].nic.resets == 1

    def test_recovered_watchdog_guards_next_fault(self):
        cluster = build_cluster(2, flavor="ftgm")
        self._hang_and_recover(cluster)
        sim = cluster.sim

        def crasher():
            yield sim.timeout(1_000.0)
            cluster[1].mcp.die("second hang")

        sim.spawn(crasher())
        ftd = cluster[1].driver.ftd
        run_until(cluster, lambda: len(ftd.recoveries) >= 2)
        assert not ftd.recoveries[1].false_alarm

    def test_false_alarm_when_lanai_healthy(self):
        cluster = build_cluster(2, flavor="ftgm")
        # Trip the FATAL path by hand without hanging the MCP.
        cluster[1].driver.ftd.notify()
        ftd = cluster[1].driver.ftd
        run_until(cluster, lambda: ftd.false_alarms > 0
                  or len(ftd.recoveries) > 0, limit=100_000.0)
        assert ftd.false_alarms == 1
        assert cluster[1].mcp.running  # untouched

    def test_fault_detected_posted_to_all_open_ports(self):
        cluster = build_cluster(2, flavor="ftgm")
        ports = open_ports(cluster, [(1, 0), (1, 3), (1, 5)])
        record = self._hang_and_recover(cluster)
        assert record.ports_notified == 3


class TestTransparentRecovery:
    def _traffic_with_hang(self, hang_at, n_msgs=25, gap=25.0,
                           hang_node=1):
        cluster = build_cluster(2, flavor="ftgm")
        sim = cluster.sim
        state = {"recv": [], "sent": 0, "errors": []}
        sport, rport = open_ports(cluster, [(0, 1), (1, 2)])
        state["rport"] = rport

        def sender():
            for i in range(n_msgs):
                try:
                    yield from sport.send_and_wait(
                        Payload.from_bytes(b"msg-%03d" % i), 1, 2)
                    state["sent"] += 1
                except Exception as exc:
                    state["errors"].append(str(exc))
                    return
                yield sim.timeout(gap)

        def receiver():
            for _ in range(8):
                yield from rport.provide_receive_buffer(256)
            while len(state["recv"]) < n_msgs:
                event = yield from rport.receive_message()
                state["recv"].append(event.payload.data)
                if len(state["recv"]) <= n_msgs - 8:
                    yield from rport.provide_receive_buffer(256)

        def crasher():
            yield sim.timeout(hang_at)
            cluster[hang_node].mcp.die("injected")

        cluster[1].host.spawn(receiver(), "r")
        cluster[0].host.spawn(sender(), "s")
        sim.spawn(crasher())
        run_until(cluster,
                  lambda: len(state["recv"]) == n_msgs or state["errors"])
        return cluster, state

    def test_receiver_hang_recovers_exactly_once_in_order(self):
        cluster, state = self._traffic_with_hang(hang_at=600.0)
        assert not state["errors"]
        expected = [b"msg-%03d" % i for i in range(25)]
        assert state["recv"] == expected          # in order, no dup, no loss
        assert state["rport"].recoveries == 1

    def test_sender_hang_recovers_exactly_once_in_order(self):
        cluster, state = self._traffic_with_hang(hang_at=600.0, hang_node=0)
        assert not state["errors"]
        expected = [b"msg-%03d" % i for i in range(25)]
        assert state["recv"] == expected

    def test_hang_during_idle_recovers_cleanly(self):
        cluster, state = self._traffic_with_hang(hang_at=300.0, n_msgs=5,
                                                 gap=3_000_000.0)
        assert not state["errors"]
        assert len(state["recv"]) == 5

    def test_recovery_under_two_seconds(self):
        """Headline claim: complete fault recovery in under 2 seconds."""
        cluster, state = self._traffic_with_hang(hang_at=600.0)
        ftd = cluster[1].driver.ftd
        assert len(ftd.recoveries) == 1
        record = ftd.recoveries[0]
        trace_done = None
        for rec in cluster.tracer.records:
            if rec.kind == "port_recovery_done":
                trace_done = rec.time
        # Tracer is disabled by default; derive from the record instead.
        total = (record.events_posted_at - record.interrupt_at) \
            + C.PER_PORT_RECOVERY_US
        assert total < 2_000_000.0

    def test_large_message_interrupted_mid_fragments(self):
        cluster = build_cluster(2, flavor="ftgm")
        sim = cluster.sim
        payload = Payload.pattern(60_000, seed=4)
        state = {}
        sport, rport = open_ports(cluster, [(0, 1), (1, 2)])

        def sender():
            yield from sport.send_and_wait(payload, 1, 2)
            state["sent"] = True

        def receiver():
            yield from rport.provide_receive_buffer(64_000)
            event = yield from rport.receive_message()
            state["event"] = event

        def crasher():
            # 60KB = 15 fragments; kill the receiver mid-message, i.e.
            # once it has accepted a few fragments but not all.
            target = cluster[1].mcp
            while target.stats["packets_received"] < 5:
                yield sim.timeout(5.0)
            target.die("mid-message")

        cluster[1].host.spawn(receiver(), "r")
        cluster[0].host.spawn(sender(), "s")
        sim.spawn(crasher())
        run_until(cluster, lambda: "event" in state and "sent" in state)
        assert state["event"].payload == payload
        assert cluster[1].driver.ftd.recoveries

    def test_shadow_state_is_small(self):
        """Paper: ~20KB extra virtual memory per process."""
        cluster = build_cluster(2, flavor="ftgm")
        sport, rport = open_ports(cluster, [(0, 1), (1, 2)])
        state = {}

        def sender():
            for i in range(C.SEND_TOKENS_PER_PORT):
                yield from sport.send(Payload.from_bytes(b"x" * 64), 1, 2)
            state["mem"] = sport.shadow.memory_bytes()

        cluster[0].host.spawn(sender(), "s")
        run_until(cluster, lambda: "mem" in state)
        assert 0 < state["mem"] < C.EXTRA_HOST_MEMORY_BYTES
