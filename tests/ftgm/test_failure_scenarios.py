"""The paper's Figure 4 and Figure 5 failure scenarios.

Figure 4 (duplicate messages): a sender crashes with an ACK in transit;
after a naive MCP reload it resends with fresh sequence numbers, the
receiver NACKs with its expected number, the sender adopts it, and the
receiver accepts a message it already delivered.

Figure 5 (lost messages): plain GM's receiver ACKs before the DMA into
the user buffer completes; a crash in that window convinces the sender
the message arrived while the receiver never sees it.

Both bugs must REPRODUCE under plain GM + naive reload, and both must be
ABSENT under FTGM.  The scenario runners live in
:mod:`repro.faults.scenarios` (shared with the Fig. 4/5 benchmark).
"""

from repro.faults.scenarios import run_figure4, run_figure5


class TestFigure4Duplicates:
    def test_plain_gm_naive_reload_accepts_duplicate(self):
        result = run_figure4("gm")
        # Message 5 was delivered BEFORE the crash (its ACK was in
        # transit) and AGAIN after the naive resend: a duplicate.
        assert result.deliveries_of_msg5 == 2
        assert result.duplicate

    def test_ftgm_rejects_duplicate_after_recovery(self):
        result = run_figure4("ftgm")
        assert result.deliveries_of_msg5 == 1
        assert not result.duplicate
        # And the sender's send completed (callback fired post-recovery).
        assert result.sender_completed


class TestFigure5LostMessages:
    def test_plain_gm_loses_message_acked_before_dma(self):
        result = run_figure5("gm")
        # The sender was told the send succeeded...
        assert result.sender_told_success
        # ...but the receiving application never saw the message.
        assert not result.receiver_got_message
        assert result.lost

    def test_ftgm_delayed_ack_preserves_message(self):
        result = run_figure5("ftgm")
        assert result.sender_told_success
        assert result.receiver_got_message
        assert not result.lost
