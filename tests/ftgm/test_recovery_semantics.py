"""Tests pinning the recovery-semantics refinements found by E5.

Three behaviours, each of which closed a real exactly-once hole:

1. the host's shadow (ACK table + recv-token copies) updates at
   event-POST time, not application consumption;
2. the RECEIVED event is posted before the delayed final ACK;
3. port recovery salvages RECEIVED events when clearing the queue.
"""


from repro.cluster import build_cluster
from repro.gm.events import EventType, GmEvent
from repro.payload import Payload


def run_until(cluster, predicate, limit=30_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


def open_ports(cluster, specs):
    out = {}

    def opener(node, port_id, key):
        port = yield from cluster[node].driver.open_port(port_id)
        out[key] = port

    for i, (node, port_id) in enumerate(specs):
        cluster[node].host.spawn(opener(node, port_id, i), "open%d" % i)
    assert run_until(cluster, lambda: len(out) == len(specs))
    return [out[i] for i in range(len(specs))]


class TestShadowUpdatesAtPostTime:
    def test_ack_table_current_before_app_polls(self):
        cluster = build_cluster(2, flavor="ftgm")
        sport, rport = open_ports(cluster, [(0, 1), (1, 2)])
        sent = {}

        def sender():
            yield from sport.send_and_wait(
                Payload.from_bytes(b"unpolled"), 1, 2)
            sent["ok"] = True

        def receiver_provides_only():
            yield from rport.provide_receive_buffer(64)
            # Deliberately never polls.

        cluster[1].host.spawn(receiver_provides_only(), "r")
        cluster[0].host.spawn(sender(), "s")
        assert run_until(cluster, lambda: "ok" in sent)
        # The app never consumed the event, yet the shadow already
        # reflects the delivery (post-time update)...
        assert rport.shadow.stream_restore_points() == {(0, 1): 0}
        assert rport.shadow.outstanding_recvs() == []
        # ...and the event is still queued for the application.
        assert len(rport.recv_queue) == 1

    def test_sender_completion_implies_host_copy_covers_it(self):
        """Invariant R1: acked at the sender => in the host copy."""
        cluster = build_cluster(2, flavor="ftgm")
        sport, rport = open_ports(cluster, [(0, 1), (1, 2)])
        progress = {"sent": 0}

        def sender():
            for i in range(10):
                yield from sport.send_and_wait(
                    Payload.from_bytes(b"m%d" % i), 1, 2)
                progress["sent"] += 1
                # R1 must hold at every completion, poll-free.
                acked = cluster[0].mcp.tx_streams[(1, 1)].acked_upto
                copied = rport.shadow.stream_restore_points().get(
                    (0, 1), -1)
                assert copied >= acked

        def receiver():
            for _ in range(10):
                yield from rport.provide_receive_buffer(64)
            # Poll lazily — consumption must not matter for R1.
            while progress["sent"] < 10:
                yield from rport.receive_message(timeout=2_000.0)

        cluster[1].host.spawn(receiver(), "r")
        cluster[0].host.spawn(sender(), "s")
        assert run_until(cluster, lambda: progress["sent"] == 10)


class TestQueueSalvage:
    def test_recovery_requeues_unconsumed_received_events(self):
        """Messages acked-but-unpolled at fault time must survive."""
        cluster = build_cluster(2, flavor="ftgm")
        sim = cluster.sim
        sport, rport = open_ports(cluster, [(0, 1), (1, 2)])
        state = {"sent": 0, "recv": []}

        def sender():
            # Burst of 5 messages, fire-and-forget completion tracking.
            for _ in range(5):
                yield from rport.provide_receive_buffer(64)
            for i in range(5):
                yield from sport.send_and_wait(
                    Payload.from_bytes(b"burst-%d" % i), 1, 2)
                state["sent"] += 1

        cluster[0].host.spawn(sender(), "s")
        assert run_until(cluster, lambda: state["sent"] == 5)
        # 5 RECEIVED events sit unconsumed; the sender believes all 5
        # completed.  Now the receiver NIC hangs.
        assert len(rport.recv_queue) == 5
        cluster[1].mcp.die("hang with queued events")

        def receiver():
            while len(state["recv"]) < 5:
                event = yield from rport.receive_message(timeout=50_000.0)
                if event is not None:
                    state["recv"].append(event.payload.data)

        cluster[1].host.spawn(receiver(), "r")
        assert run_until(cluster, lambda: len(state["recv"]) == 5,
                         limit=60_000_000.0)
        assert state["recv"] == [b"burst-%d" % i for i in range(5)]

        # The queued events may drain before FAULT_DETECTED even lands
        # (the FTD takes ~766 ms); either way the port then recovers and
        # stays usable.
        def idle_poller():
            while rport.recoveries == 0:
                yield from rport.receive(timeout=100_000.0)

        cluster[1].host.spawn(idle_poller(), "poll")
        assert run_until(cluster, lambda: rport.recoveries == 1,
                         limit=60_000_000.0)

    def test_non_received_events_still_dropped(self):
        cluster = build_cluster(2, flavor="ftgm")
        (rport,) = open_ports(cluster, [(1, 2)])
        # Seed the queue with a stale alarm and a stale RECEIVED.
        rport._event_sink(GmEvent(EventType.ALARM, 2, context="stale"))
        region = cluster[1].host.alloc_dma(64, 2)
        region.payload = Payload.from_bytes(b"keep me")
        rport.recv_queue.put(GmEvent(
            EventType.RECEIVED, 2, sender_node=0, sender_port=1,
            payload=region.payload, size=7, region_id=region.region_id,
            recv_token_id=999, seq=0))
        cluster[1].mcp.die("hang")
        kept = {}

        def receiver():
            event = yield from rport.receive_message(timeout=None)
            kept["event"] = event

        cluster[1].host.spawn(receiver(), "r")
        assert run_until(cluster, lambda: "event" in kept,
                         limit=60_000_000.0)
        assert kept["event"].payload.data == b"keep me"
        # The stale alarm did not survive recovery.
        assert len(rport.recv_queue) == 0
