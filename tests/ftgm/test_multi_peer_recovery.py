"""Recovery of a node engaged with several peers at once.

The FAULT_DETECTED handler restores one rx-stream expectation per
(sender node, sender port) entry in the ACK table; these tests make a
node receive from two peers and send to a third simultaneously, hang
it mid-everything, and require exactly-once in-order delivery on every
stream after recovery.
"""


from repro.cluster import build_cluster
from repro.payload import Payload


def run_until(cluster, predicate, limit=90_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


def test_hub_node_recovers_all_streams():
    """Node 1 receives from nodes 0 and 2 and sends to node 3; it hangs
    mid-traffic; every stream must finish exactly once, in order."""
    cluster = build_cluster(4, flavor="ftgm")
    sim = cluster.sim
    N = 15
    got = {"from0": [], "from2": [], "at3": []}
    opened = {}

    def opener(node, pid, key):
        opened[key] = yield from cluster[node].driver.open_port(pid)

    for node, pid, key in [(0, 1, "s0"), (2, 1, "s2"),
                           (1, 2, "hub"), (3, 2, "r3")]:
        cluster[node].host.spawn(opener(node, pid, key), key)
    assert run_until(cluster, lambda: len(opened) == 4, 10_000.0)

    def pump_sender(port, dest, tag):
        def body():
            for i in range(N):
                yield from port.send_and_wait(
                    Payload.from_bytes(b"%s-%03d" % (tag, i)), dest, 2)
                yield sim.timeout(40.0)
        return body

    def hub():
        port = opened["hub"]
        for _ in range(8):
            yield from port.provide_receive_buffer(64)
        forwarded = 0
        while (len(got["from0"]) < N or len(got["from2"]) < N
               or forwarded < N):
            event = yield from port.receive(timeout=20_000.0)
            if event is None:
                continue
            if event.etype != "received":
                continue
            key = "from0" if event.sender_node == 0 else "from2"
            got[key].append(event.payload.data)
            yield from port.provide_receive_buffer(64)
            if forwarded < N:
                # Relay work onward to node 3 (fire and forget; tokens
                # recycle via the polling this loop already does).
                if port.send_tokens > 0:
                    yield from port.send(
                        Payload.from_bytes(b"fwd-%03d" % forwarded), 3, 2)
                    forwarded += 1

    def receiver3():
        port = opened["r3"]
        for _ in range(8):
            yield from port.provide_receive_buffer(64)
        while len(got["at3"]) < N:
            event = yield from port.receive_message()
            got["at3"].append(event.payload.data)
            if len(got["at3"]) <= N - 8:
                yield from port.provide_receive_buffer(64)

    def crasher():
        target = cluster[1].mcp
        while target.stats["messages_delivered"] < 6:
            yield sim.timeout(20.0)
        target.die("hub hang")

    cluster[1].host.spawn(hub(), "hub")
    cluster[3].host.spawn(receiver3(), "r3")
    cluster[0].host.spawn(pump_sender(opened["s0"], 1, b"a")(), "s0")
    cluster[2].host.spawn(pump_sender(opened["s2"], 1, b"c")(), "s2")
    sim.spawn(crasher())

    assert run_until(cluster, lambda: len(got["from0"]) == N
                     and len(got["from2"]) == N and len(got["at3"]) == N)
    assert got["from0"] == [b"a-%03d" % i for i in range(N)]
    assert got["from2"] == [b"c-%03d" % i for i in range(N)]
    assert got["at3"] == [b"fwd-%03d" % i for i in range(N)]
    # The hub really did hang and recover.
    assert cluster[1].driver.ftd.recoveries
    # Both inbound streams were restored independently.
    hub_port = opened["hub"]
    assert set(hub_port.shadow.stream_restore_points()) \
        == {(0, 1), (2, 1)}
