"""Tests for the peer-watchdog extension (fallback hang detection)."""


from repro.cluster import build_cluster
from repro.ftgm import PeerWatchdog
from repro.payload import Payload


def run_until(cluster, predicate, limit=60_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


def watched_pair():
    cluster = build_cluster(2, flavor="ftgm")
    watchers = [
        PeerWatchdog(cluster[0].driver, cluster[1].driver),
        PeerWatchdog(cluster[1].driver, cluster[0].driver),
    ]
    for watcher in watchers:
        watcher.start()
    return cluster, watchers


class TestPeerWatchdog:
    def test_healthy_buddy_never_flagged(self):
        cluster, watchers = watched_pair()
        cluster.sim.run(until=cluster.sim.now + 100_000.0)
        assert all(w.detections == 0 for w in watchers)
        assert all(w.probes_sent > 10 for w in watchers)
        assert all(node.driver.ftd.false_alarms == 0
                   for node in cluster.nodes)

    def test_silent_hang_with_dead_timers_is_invisible_to_it1(self):
        """The failure mode the paper's watchdog cannot see."""
        cluster = build_cluster(2, flavor="ftgm")  # no peer watch
        sim = cluster.sim
        sim.run(until=sim.now + 2_000.0)
        cluster[1].nic.kill_timers()
        cluster[1].mcp.die("hang + timer logic dead")
        sim.run(until=sim.now + 100_000.0)
        assert cluster[1].driver.fatal_interrupts == 0
        assert not cluster[1].driver.ftd.recoveries

    def test_peer_watchdog_catches_silent_hang(self):
        cluster, watchers = watched_pair()
        sim = cluster.sim
        sim.run(until=sim.now + 2_000.0)
        cluster[1].nic.kill_timers()
        cluster[1].mcp.die("hang + timer logic dead")
        ftd = cluster[1].driver.ftd
        assert run_until(cluster, lambda: bool(ftd.recoveries),
                         limit=30_000_000.0)
        record = ftd.recoveries[0]
        assert not record.false_alarm
        assert watchers[0].detections >= 1
        # Detection is slower than IT1 (interval * misses + channel).
        assert record.interrupt_at - 2_000.0 \
            >= watchers[0].interval_us * watchers[0].misses_threshold - 1

    def test_peer_verdict_gated_by_magic_word(self):
        """A spurious peer detection ends as a harmless false alarm."""
        cluster, watchers = watched_pair()
        sim = cluster.sim
        sim.run(until=sim.now + 5_000.0)
        # Fake a detection against a perfectly healthy buddy.
        cluster[1].driver.ftd.notify()
        run_until(cluster,
                  lambda: cluster[1].driver.ftd.false_alarms > 0,
                  limit=1_000_000.0)
        assert cluster[1].driver.ftd.false_alarms == 1
        assert cluster[1].mcp.running  # untouched

    def test_traffic_survives_silent_hang_with_peer_watch(self):
        """End to end: exactly-once delivery across a timer-dead hang."""
        cluster, watchers = watched_pair()
        sim = cluster.sim
        received = []
        opened = {}

        def opener(node, pid, key):
            opened[key] = yield from cluster[node].driver.open_port(pid)

        cluster[0].host.spawn(opener(0, 1, "s"), "o1")
        cluster[1].host.spawn(opener(1, 2, "r"), "o2")
        run_until(cluster, lambda: len(opened) == 2)

        def sender():
            for i in range(20):
                yield from opened["s"].send_and_wait(
                    Payload.from_bytes(b"m%03d" % i), 1, 2)
                yield sim.timeout(25.0)

        def receiver():
            for _ in range(8):
                yield from opened["r"].provide_receive_buffer(64)
            while len(received) < 20:
                event = yield from opened["r"].receive_message()
                received.append(event.payload.data)
                if len(received) <= 12:
                    yield from opened["r"].provide_receive_buffer(64)

        def saboteur():
            yield sim.timeout(700.0)
            cluster[1].nic.kill_timers()
            cluster[1].mcp.die("silent hang")

        cluster[1].host.spawn(receiver(), "r")
        cluster[0].host.spawn(sender(), "s")
        sim.spawn(saboteur())
        assert run_until(cluster, lambda: len(received) == 20,
                         limit=60_000_000.0)
        assert received == [b"m%03d" % i for i in range(20)]
        assert cluster[1].driver.ftd.recoveries
