"""run_many ordering, seeds, and monotonic progress in both modes."""

import pytest

from repro.exp.runner import derive_run_seed, run_many


def square(config):
    return config * config


def test_derive_run_seed_matches_historic_scheme():
    assert derive_run_seed(2003, 0) == 2003
    assert derive_run_seed(2003, 7) == 2010


class TestOrdering:
    def test_serial_outcomes_in_config_order(self):
        assert run_many([3, 1, 2], square) == [9, 1, 4]

    def test_parallel_outcomes_in_config_order(self):
        configs = list(range(20))
        assert run_many(configs, square, workers=4) \
            == [c * c for c in configs]

    def test_parallel_equals_serial(self):
        configs = list(range(13))
        assert run_many(configs, square, workers=4) \
            == run_many(configs, square)


class TestProgress:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_ticks_are_monotonic_and_complete(self, workers):
        ticks = []
        run_many(list(range(9)), square, workers=workers,
                 progress=ticks.append)
        assert ticks == list(range(1, 10))

    def test_completed_runs_shift_the_tick_origin(self):
        ticks = []
        outcomes = run_many([5, 6, 7, 8], square,
                            completed={0: 25, 2: 49},
                            progress=ticks.append)
        assert outcomes == [25, 36, 49, 64]
        assert ticks == [3, 4]

    def test_on_outcome_fires_before_the_tick(self):
        order = []
        run_many([1, 2], square,
                 on_outcome=lambda i, o: order.append(("outcome", i)),
                 progress=lambda done: order.append(("tick", done)))
        assert order == [("outcome", 0), ("tick", 1),
                         ("outcome", 1), ("tick", 2)]


class TestCompletedSkip:
    def test_completed_configs_never_rerun(self):
        calls = []

        def noting(config):
            calls.append(config)
            return config

        outcomes = run_many([10, 11, 12], noting,
                            completed={1: "cached"})
        assert outcomes == [10, "cached", 12]
        assert calls == [10, 12]

    def test_all_completed_runs_nothing(self):
        outcomes = run_many([1, 2], square, completed={0: "a", 1: "b"},
                            progress=lambda d: pytest.fail("no ticks"))
        assert outcomes == ["a", "b"]
