"""Journaled campaigns: interrupt, resume, byte-identity, mismatch."""

import json

import pytest

from repro.exp.registry import get_experiment
from repro.exp.runner import Journal, JournalMismatch, run_experiment


def table1_spec(runs=4):
    return get_experiment("table1").build_spec({"runs": runs})


def doc_without_timing(result):
    """The result document minus the timing-only manifest fields."""
    doc = result.to_doc()
    doc["manifest"] = {k: v for k, v in doc["manifest"].items()
                       if k not in ("wall_time_s", "recorded_at")}
    return doc


class TestResume:
    def test_interrupted_campaign_resumes_byte_identical(self, tmp_path):
        spec = table1_spec(runs=4)
        journal = str(tmp_path / "run.journal")
        fresh = run_experiment(spec, journal_path=journal)

        # Keep the header and the first two outcome lines — as if the
        # process had been killed after run 2 — plus a torn final line.
        lines = (tmp_path / "run.journal").read_text().splitlines()
        assert len(lines) == 5          # header + 4 outcomes
        truncated = tmp_path / "resume.journal"
        truncated.write_text("\n".join(lines[:3])
                             + '\n{"run": 3, "outcome": {"torn')

        calls = []
        resumed = run_experiment(
            spec, journal_path=str(truncated),
            progress=calls.append)
        assert calls == [3, 4]          # only the missing runs re-ran
        assert resumed.outcomes == fresh.outcomes
        assert resumed.rendered == fresh.rendered
        assert doc_without_timing(resumed) == doc_without_timing(fresh)

    def test_finished_journal_is_a_pure_cache_hit(self, tmp_path):
        spec = table1_spec(runs=3)
        journal = str(tmp_path / "run.journal")
        fresh = run_experiment(spec, journal_path=journal)
        again = run_experiment(
            spec, journal_path=journal,
            progress=lambda done: pytest.fail("nothing should re-run"))
        assert again.outcomes == fresh.outcomes
        assert again.rendered == fresh.rendered

    def test_journal_decodes_outcomes_equal_to_live_objects(self, tmp_path):
        spec = table1_spec(runs=2)
        journal_path = str(tmp_path / "run.journal")
        fresh = run_experiment(spec, journal_path=journal_path)
        journal = Journal(journal_path, spec, total=2)
        decode = get_experiment("table1").decode
        decoded = {index: decode(encoded)
                   for index, encoded in journal.load().items()}
        assert [decoded[i] for i in range(2)] == fresh.outcomes


class TestMismatch:
    def test_different_spec_refuses_to_resume(self, tmp_path):
        journal = str(tmp_path / "run.journal")
        run_experiment(table1_spec(runs=2), journal_path=journal)
        with pytest.raises(JournalMismatch, match="mix configurations"):
            run_experiment(table1_spec(runs=3), journal_path=journal)

    def test_unreadable_header_refuses_to_resume(self, tmp_path):
        journal = tmp_path / "run.journal"
        journal.write_text("not json\n")
        with pytest.raises(JournalMismatch, match="header"):
            run_experiment(table1_spec(runs=2), journal_path=str(journal))

    def test_header_records_the_spec(self, tmp_path):
        spec = table1_spec(runs=2)
        journal = tmp_path / "run.journal"
        run_experiment(spec, journal_path=str(journal))
        header = json.loads(journal.read_text().splitlines()[0])
        assert header == {"journal": 1, "experiment": "table1",
                          "spec_hash": spec.spec_hash, "total": 2}
