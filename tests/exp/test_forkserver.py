"""Fork-server executor equivalence: boot once, fork per run, same bytes.

The fork-server boots each scenario family once and forks a
copy-on-write child per run.  These tests pin the contract that this is
purely an execution-strategy change: outcomes, summaries and rendered
reports are byte-identical to the historic spawn-per-run path, for both
experiment archetypes that register a boot/resume split, at more than
one seed, serial and parallel alike.
"""

import pytest

from repro.exp.registry import get_experiment
from repro.exp.runner import forkserver_available, run_experiment

RUNS = 4
SEEDS = [2003, 99]

needs_forkserver = pytest.mark.skipif(
    not forkserver_available(),
    reason="fork-server unavailable on this platform or disabled by env")


def _results(name, params, seed, **kwargs):
    spec = get_experiment(name).build_spec(dict(params, seed=seed))
    return run_experiment(spec, **kwargs)


def _assert_same(a, b):
    assert a.outcomes == b.outcomes
    assert a.summary == b.summary
    assert a.rendered == b.rendered


@needs_forkserver
@pytest.mark.parametrize("seed", SEEDS)
class TestForkServerByteIdentity:
    def test_table1(self, seed):
        on = _results("table1", {"runs": RUNS}, seed, forkserver=True)
        off = _results("table1", {"runs": RUNS}, seed, forkserver=False)
        _assert_same(on, off)

    def test_netfaults(self, seed):
        on = _results("netfaults", {"runs_per_scenario": 1}, seed,
                      forkserver=True)
        off = _results("netfaults", {"runs_per_scenario": 1}, seed,
                       forkserver=False)
        _assert_same(on, off)


@needs_forkserver
class TestForkServerParallel:
    def test_parallel_forkserver_matches_serial_spawn(self):
        on = _results("table1", {"runs": RUNS}, SEEDS[0],
                      workers=4, forkserver=True)
        off = _results("table1", {"runs": RUNS}, SEEDS[0],
                       forkserver=False)
        _assert_same(on, off)


class TestForkServerGating:
    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORKSERVER", "0")
        assert not forkserver_available()

    def test_spawn_method_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
        assert not forkserver_available()

    @needs_forkserver
    def test_env_kill_switch_preserves_bytes(self, monkeypatch):
        on = _results("table1", {"runs": RUNS}, SEEDS[0])
        monkeypatch.setenv("REPRO_FORKSERVER", "0")
        off = _results("table1", {"runs": RUNS}, SEEDS[0])
        _assert_same(on, off)
