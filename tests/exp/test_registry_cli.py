"""The registry behind the CLI: every verb resolves, run/list work."""

import json

import pytest

from repro.cli import _legacy_parser, main
from repro.exp.registry import all_experiments, experiment_names, \
    get_experiment
from repro.exp.results import validate_result
from repro.exp.spec import ExperimentSpec

ALL_VERBS = ("table1", "table2", "table3", "fig7", "fig8", "fig9",
             "fig45", "effectiveness", "surface", "netfaults", "perf")


class TestRegistry:
    def test_every_cli_verb_resolves_to_a_registered_experiment(self):
        parser = _legacy_parser()
        subparsers = next(a for a in parser._actions
                          if hasattr(a, "choices") and a.choices)
        for verb in subparsers.choices:
            experiment = get_experiment(verb)
            assert experiment.name == verb

    def test_all_historic_verbs_registered(self):
        names = experiment_names()
        for verb in ALL_VERBS:
            assert verb in names

    def test_unknown_name_lists_the_alternatives(self):
        with pytest.raises(KeyError, match="table1"):
            get_experiment("nope")

    def test_registrations_are_complete(self):
        for experiment in all_experiments():
            assert callable(experiment.build_spec)
            assert callable(experiment.expand)
            assert callable(experiment.run_one)
            assert callable(experiment.aggregate)
            assert callable(experiment.render)
            spec = experiment.build_spec(
                {opt.dest: opt.default for opt in experiment.options})
            assert spec.experiment == experiment.name
            assert len(experiment.expand(spec)) == spec.runs


class TestEngineVerbs:
    def test_list_shows_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_names():
            assert name in out

    def test_run_by_name(self, capsys):
        assert main(["run", "table1", "--runs", "2"]) == 0
        assert "Failure Category" in capsys.readouterr().out

    def test_run_writes_a_valid_result_document(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        assert main(["run", "table1", "--runs", "2",
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        validate_result(doc)
        assert doc["spec"]["experiment"] == "table1"
        assert len(doc["outcomes"]) == 2
        capsys.readouterr()

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec = get_experiment("table1").build_spec({"runs": 2})
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["run", str(path)]) == 0
        assert "Failure Category" in capsys.readouterr().out

    def test_spec_file_round_trips_through_the_cli(self, tmp_path):
        spec = get_experiment("netfaults").build_spec(
            {"runs_per_scenario": 1})
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert ExperimentSpec.from_json(path.read_text()) == spec

    def test_run_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])

    def test_legacy_netfaults_flag_still_spells_runs(self, capsys):
        assert main(["netfaults", "--runs", "1"]) == 0
        assert "Netfault campaign" in capsys.readouterr().out

    def test_workers_flag_accepted_everywhere(self, capsys):
        assert main(["table1", "--runs", "2", "--workers", "2"]) == 0
        capsys.readouterr()
