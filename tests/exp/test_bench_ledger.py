"""BENCH_perf.json ledger policy: append-only, baseline frozen."""

import importlib.util
import json
import pathlib

import pytest


def _harness():
    root = pathlib.Path(__file__).resolve().parents[2]
    path = root / "benchmarks" / "perf" / "perf_harness.py"
    spec = importlib.util.spec_from_file_location("perf_harness", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def harness():
    return _harness()


def _read(path):
    with open(path) as fh:
        return json.load(fh)


class TestLedger:
    def test_first_write_creates_entry(self, harness, tmp_path):
        out = tmp_path / "bench.json"
        label = harness.merge_into(str(out), "pr9", {"x": 1})
        assert label == "pr9"
        assert _read(out)["entries"]["pr9"]["x"] == 1

    def test_baseline_is_frozen(self, harness, tmp_path):
        out = tmp_path / "bench.json"
        harness.merge_into(str(out), "baseline", {"x": 1})
        with pytest.raises(SystemExit):
            harness.merge_into(str(out), "baseline", {"x": 2})
        assert _read(out)["entries"]["baseline"]["x"] == 1

    def test_duplicate_labels_accumulate(self, harness, tmp_path):
        out = tmp_path / "bench.json"
        harness.merge_into(str(out), "pr9", {"x": 1})
        relabel = harness.merge_into(str(out), "pr9", {"x": 2})
        assert relabel != "pr9" and relabel.startswith("pr9-")
        entries = _read(out)["entries"]
        assert entries["pr9"]["x"] == 1
        assert entries[relabel]["x"] == 2
