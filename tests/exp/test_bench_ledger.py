"""BENCH_perf.json ledger policy: append-only, baseline frozen, axes required."""

import importlib.util
import json
import pathlib

import pytest


def _harness():
    root = pathlib.Path(__file__).resolve().parents[2]
    path = root / "benchmarks" / "perf" / "perf_harness.py"
    spec = importlib.util.spec_from_file_location("perf_harness", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def harness():
    return _harness()


def _read(path):
    with open(path) as fh:
        return json.load(fh)


def _entry(**overrides):
    """A minimal valid ledger entry (cpus + fully-axed campaign result)."""
    entry = {
        "cpus": 1,
        "campaign": {"runs": 8, "runs_per_sec": 4.0, "wall_s": 2.0,
                     "workers": 1, "shards": 1, "branch": False},
    }
    entry.update(overrides)
    return entry


class TestLedger:
    def test_first_write_creates_entry(self, harness, tmp_path):
        out = tmp_path / "bench.json"
        label = harness.merge_into(str(out), "pr9", _entry(x=1))
        assert label == "pr9"
        assert _read(out)["entries"]["pr9"]["x"] == 1

    def test_baseline_is_frozen(self, harness, tmp_path):
        out = tmp_path / "bench.json"
        harness.merge_into(str(out), "baseline", _entry(x=1))
        with pytest.raises(SystemExit):
            harness.merge_into(str(out), "baseline", _entry(x=2))
        assert _read(out)["entries"]["baseline"]["x"] == 1

    def test_duplicate_labels_accumulate(self, harness, tmp_path):
        out = tmp_path / "bench.json"
        harness.merge_into(str(out), "pr9", _entry(x=1))
        relabel = harness.merge_into(str(out), "pr9", _entry(x=2))
        assert relabel != "pr9" and relabel.startswith("pr9-")
        entries = _read(out)["entries"]
        assert entries["pr9"]["x"] == 1
        assert entries[relabel]["x"] == 2


class TestEntryValidation:
    """New entries must record the hardware and parallelism axes."""

    def test_cpus_required(self, harness, tmp_path):
        out = tmp_path / "bench.json"
        entry = _entry()
        del entry["cpus"]
        with pytest.raises(SystemExit, match="cpus"):
            harness.merge_into(str(out), "pr9", entry)
        assert not out.exists()

    def test_cpus_must_be_int(self, harness, tmp_path):
        with pytest.raises(SystemExit, match="cpus"):
            harness.merge_into(str(tmp_path / "bench.json"), "pr9",
                               _entry(cpus="one"))

    def test_campaign_results_need_workers_axis(self, harness, tmp_path):
        entry = _entry()
        del entry["campaign"]["workers"]
        with pytest.raises(SystemExit, match="workers"):
            harness.merge_into(str(tmp_path / "bench.json"), "pr9", entry)

    def test_campaign_results_need_shards_axis(self, harness, tmp_path):
        entry = _entry()
        del entry["campaign"]["shards"]
        with pytest.raises(SystemExit, match="shards"):
            harness.merge_into(str(tmp_path / "bench.json"), "pr9", entry)

    def test_campaign_results_need_branch_axis(self, harness, tmp_path):
        # A branched runs/s shares the whole pre-fault prefix across a
        # group — not comparable to a cold-boot rate without the flag.
        entry = _entry()
        del entry["campaign"]["branch"]
        with pytest.raises(SystemExit, match="branch"):
            harness.merge_into(str(tmp_path / "bench.json"), "pr9", entry)

    def test_non_rate_subresults_are_exempt(self, harness, tmp_path):
        out = tmp_path / "bench.json"
        entry = _entry(kernel_timeouts={"events_per_sec": 5e5,
                                        "wall_s": 0.4})
        label = harness.merge_into(str(out), "pr9", entry)
        assert label == "pr9"

    def test_run_all_output_passes_validation(self, harness):
        # The real harness output shape (campaign via bench_campaign +
        # environment_info) must satisfy its own ledger policy.
        from repro.exp.perfbench import environment_info

        results = {
            "campaign": {"runs": 8, "workers": 1, "shards": 1,
                         "shard_schedule": "merged", "branch": False,
                         "wall_s": 1.0,
                         "runs_per_sec": 8.0, "counts": {}},
        }
        results.update(environment_info())
        harness._validate_entry("pr9", results)

    def test_existing_ledger_labels_untouched(self, harness, tmp_path):
        # Validation applies to the entry being merged, not to history:
        # a ledger holding pre-shard-era entries still accepts new ones.
        out = tmp_path / "bench.json"
        doc = {"schema": 1,
               "entries": {"pr1": {"campaign": {"runs_per_sec": 3.2}}}}
        out.write_text(json.dumps(doc))
        label = harness.merge_into(str(out), "pr9", _entry())
        entries = _read(out)["entries"]
        assert label == "pr9" and "pr1" in entries and "pr9" in entries
