"""The refactor guarantee: engine output == pre-engine campaign loops.

Each test reconstructs what the historic code path did — a plain serial
loop over the per-run function with ``seed + run_id`` derivation — and
asserts the engine produces identical outcomes and identical rendered
text, serial and with ``workers=4`` alike.
"""

from repro.exp.registry import get_experiment
from repro.exp.runner import run_experiment
from repro.faults.campaign import CampaignResult
from repro.faults.injector import InjectionConfig, run_injection
from repro.netfaults.campaign import (
    NET_SCENARIOS,
    NetFaultCampaignResult,
    NetFaultConfig,
    run_netfault_injection,
)

RUNS = 6
SEED = 2003


def historic_table1():
    outcomes = [run_injection(InjectionConfig(run_id=i, seed=SEED + i,
                                              flavor="gm", messages=16))
                for i in range(RUNS)]
    return outcomes, CampaignResult(RUNS, outcomes).render()


def historic_netfaults(runs_per_scenario=1):
    configs = []
    run_id = 0
    for scenario in NET_SCENARIOS:
        for _ in range(runs_per_scenario):
            configs.append(NetFaultConfig(
                run_id=run_id, seed=SEED + run_id, scenario=scenario,
                n_nodes=4, topology="ring", messages=12))
            run_id += 1
    outcomes = [run_netfault_injection(c) for c in configs]
    return outcomes, NetFaultCampaignResult(SEED, outcomes).render()


class TestTable1Regression:
    def test_engine_matches_historic_loop(self):
        old_outcomes, old_render = historic_table1()
        spec = get_experiment("table1").build_spec(
            {"runs": RUNS, "seed": SEED})
        serial = run_experiment(spec)
        assert serial.outcomes == old_outcomes
        assert serial.rendered == old_render

    def test_parallel_matches_serial(self):
        spec = get_experiment("table1").build_spec(
            {"runs": RUNS, "seed": SEED})
        serial = run_experiment(spec)
        parallel = run_experiment(spec, workers=4)
        assert parallel.outcomes == serial.outcomes
        assert parallel.rendered == serial.rendered


class TestNetfaultsRegression:
    def test_engine_matches_historic_loop(self):
        old_outcomes, old_render = historic_netfaults()
        spec = get_experiment("netfaults").build_spec(
            {"runs_per_scenario": 1, "seed": SEED})
        serial = run_experiment(spec)
        assert serial.outcomes == old_outcomes
        assert serial.rendered == old_render

    def test_parallel_matches_serial(self):
        spec = get_experiment("netfaults").build_spec(
            {"runs_per_scenario": 1, "seed": SEED})
        serial = run_experiment(spec)
        parallel = run_experiment(spec, workers=4)
        assert parallel.outcomes == serial.outcomes
        assert parallel.rendered == serial.rendered


class TestEffectivenessRegression:
    def test_engine_serial_and_parallel_agree(self):
        spec = get_experiment("effectiveness").build_spec({"runs": 4})
        serial = run_experiment(spec)
        parallel = run_experiment(spec, workers=4)
        assert parallel.outcomes == serial.outcomes
        assert parallel.rendered == serial.rendered
        assert "Recovery effectiveness" in serial.rendered
