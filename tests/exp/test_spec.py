"""Spec round-trips, param freezing and the stable spec hash."""

import pytest

from repro.exp.spec import (
    ClusterSpec,
    ExperimentSpec,
    FaultSpec,
    ScenarioSpec,
    WorkloadSpec,
    freeze_params,
    thaw_params,
)


def full_spec() -> ExperimentSpec:
    """A spec exercising every nesting level and value shape."""
    return ExperimentSpec(
        experiment="netfaults",
        seed=2003,
        runs=8,
        scenarios=(
            ScenarioSpec(
                name="link-cut",
                runs=4,
                cluster=ClusterSpec(n_nodes=4, flavor="ftgm",
                                    topology="ring", n_switches=2,
                                    interpreted_nodes=(0, 2)),
                workload=WorkloadSpec(kind="cross-pairs", messages=12,
                                      message_bytes=512,
                                      params=freeze_params(
                                          {"pairs": [[0, 1], [2, 3]]})),
                fault=FaultSpec(kind="link-cut",
                                params=freeze_params({"at_us": 500.0}))),
            ScenarioSpec(name="corrupt", runs=4),
        ),
        params=freeze_params({"topology": "ring",
                              "nested": {"a": 1, "b": [2, 3]}}))


class TestParamFreezing:
    def test_round_trip(self):
        original = {"b": 2, "a": [1, {"x": "y"}], "c": {"k": [True, None]}}
        assert thaw_params(freeze_params(original)) == original

    def test_frozen_is_hashable_and_sorted(self):
        frozen = freeze_params({"b": 1, "a": 2})
        hash(frozen)
        assert [k for k, _ in frozen] == ["a", "b"]

    def test_param_accessor(self):
        spec = full_spec()
        assert spec.param("topology") == "ring"
        assert spec.param("nested") == {"a": 1, "b": [2, 3]}
        assert spec.param("missing", 42) == 42


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = full_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = full_spec()
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash

    def test_unknown_field_rejected(self):
        data = full_spec().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            ExperimentSpec.from_dict(data)

    def test_defaults_fill_missing_sections(self):
        spec = ExperimentSpec.from_dict({"experiment": "table1"})
        assert spec.seed == 0 and spec.runs == 0
        assert spec.scenarios == () and spec.params == ()


class TestSpecHash:
    def test_stable_across_sessions(self):
        # Pinned digest: a hash change means existing journals and
        # manifests stop matching their specs — bump deliberately.
        from repro.exp.registry import get_experiment
        spec = get_experiment("table1").build_spec({})
        assert spec.spec_hash == "aa17f0a93e96c345"

    def test_differs_when_spec_differs(self):
        base = full_spec()
        other = ExperimentSpec.from_dict(
            dict(base.to_dict(), seed=base.seed + 1))
        assert other.spec_hash != base.spec_hash

    def test_round_trip_preserves_hash(self):
        spec = full_spec()
        assert ExperimentSpec.from_json(spec.to_json()).spec_hash \
            == spec.spec_hash
