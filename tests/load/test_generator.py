"""Pure-schedule properties of the load generator (no simulator)."""

import pytest

from repro.load.generator import (
    SEND_PORTS,
    LoadConfig,
    build_schedule,
    op_payload,
)


def _config(**overrides):
    base = dict(seed=2003, n_nodes=4, clients=6, peak_rate=1_200.0,
                duration_us=150_000.0)
    base.update(overrides)
    return LoadConfig(**base)


def test_equal_configs_equal_schedules():
    a = build_schedule(_config())
    b = build_schedule(_config())
    assert a.ops == b.ops
    assert a.churn == b.churn


def test_seed_changes_the_schedule():
    a = build_schedule(_config(seed=1))
    b = build_schedule(_config(seed=2))
    assert a.ops != b.ops


def test_churn_streams_do_not_perturb_sends():
    # Churn draws from its own per-node RNG streams, so turning churn
    # up must leave every scheduled send untouched.
    quiet = build_schedule(_config(churn_per_node=0))
    churny = build_schedule(_config(churn_per_node=2))
    assert quiet.ops == churny.ops


def test_ops_sorted_and_indexed():
    schedule = build_schedule(_config())
    assert schedule.ops
    for a, b in zip(schedule.ops, schedule.ops[1:]):
        assert (a.at_us, a.client) <= (b.at_us, b.client)
    assert [op.index for op in schedule.ops] == \
        list(range(len(schedule.ops)))


def test_stage_attribution_matches_profile():
    schedule = build_schedule(_config())
    for op in schedule.ops:
        assert op.stage == schedule.profile.stage_index_at(op.at_us)


def test_sources_and_destinations_in_range():
    config = _config()
    schedule = build_schedule(config)
    sizes = {size for size, _w in config.size_mix}
    for op in schedule.ops:
        assert 0 <= op.src < config.n_nodes
        assert 0 <= op.dst < config.n_nodes
        assert op.dst != op.src
        assert op.size in sizes
        assert op.src == op.client % config.n_nodes


def test_hotspot_attracts_traffic():
    schedule = build_schedule(_config(
        clients=8, peak_rate=4_000.0, duration_us=400_000.0,
        hotspot_node=2, hotspot_weight=0.6))
    per_dst = {}
    for op in schedule.ops:
        per_dst[op.dst] = per_dst.get(op.dst, 0) + 1
    assert per_dst[2] == max(per_dst.values())


def test_payload_fingerprints_unique():
    schedule = build_schedule(_config())
    fingerprints = [op_payload(op).fingerprint for op in schedule.ops]
    assert len(set(fingerprints)) == len(fingerprints)
    # by_dst indexes every op under its destination by fingerprint.
    indexed = sum(len(m) for m in schedule.by_dst.values())
    assert indexed == len(schedule.ops)


def test_churn_lands_inside_the_envelope():
    config = _config(churn_per_node=2)
    schedule = build_schedule(config)
    assert len(schedule.churn) == config.n_nodes * config.churn_per_node
    window = schedule.profile.total_duration_us
    for c in schedule.churn:
        assert 0.2 * window <= c.at_us <= 0.85 * window
        assert c.down_us == config.churn_down_us


def test_validation_errors():
    with pytest.raises(ValueError):
        build_schedule(_config(n_nodes=1))
    with pytest.raises(ValueError):
        build_schedule(_config(clients=0))
    with pytest.raises(ValueError):
        build_schedule(_config(size_mix=()))
    with pytest.raises(ValueError):
        build_schedule(_config(hotspot_node=99))
    with pytest.raises(ValueError):
        build_schedule(_config(churn_per_node=len(SEND_PORTS)))
