"""SloSpec round-trips and the pinned canonical hash."""

import dataclasses

import pytest

from repro.load.slo import DEFAULT_SLO, SloSpec


def test_dict_round_trip():
    spec = SloSpec(p50_us=1_000.0, p99_us=9_000.0, p999_us=20_000.0,
                   availability_min=0.99, max_lost=3, max_duplicated=1)
    assert SloSpec.from_dict(spec.to_dict()) == spec


def test_json_round_trip():
    spec = SloSpec(p99_us=75_000.0, max_lost=2)
    assert SloSpec.from_json(spec.to_json()) == spec


def test_partial_dict_fills_defaults():
    spec = SloSpec.from_dict({"p99_us": 10_000.0})
    assert spec.p99_us == 10_000.0
    assert spec.p50_us == SloSpec().p50_us
    assert spec.max_lost == SloSpec().max_lost


def test_default_slo_is_the_stock_spec():
    assert DEFAULT_SLO == SloSpec()


def test_spec_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        SloSpec().p50_us = 1.0


def test_hash_pinned():
    # The verdict document names this hash; changing any default is a
    # grading change and must be deliberate.
    assert SloSpec().spec_hash == "589dcbf8ee8f547a"


def test_hash_tracks_content():
    assert SloSpec().spec_hash == SloSpec().spec_hash
    assert SloSpec(max_lost=1).spec_hash != SloSpec().spec_hash
