"""Stage arithmetic of the load-profile DSL (pure, no simulator)."""

import pytest

from repro.load.profiles import PROFILE_NAMES, LoadProfile, Stage, make_profile


class TestStage:
    def test_rate_interpolates_linearly(self):
        stage = Stage("ramp", 100.0, 10.0, 110.0)
        assert stage.rate_at(0.0) == 10.0
        assert stage.rate_at(50.0) == 60.0
        assert stage.rate_at(100.0) == 110.0

    def test_rate_clamps_outside_duration(self):
        stage = Stage("ramp", 100.0, 10.0, 110.0)
        assert stage.rate_at(-5.0) == 10.0
        assert stage.rate_at(500.0) == 110.0

    def test_expected_messages_is_trapezoid(self):
        # mean rate 60 msgs/s over 0.5 s -> 30 messages.
        stage = Stage("ramp", 500_000.0, 10.0, 110.0)
        assert stage.expected_messages() == pytest.approx(30.0)

    def test_dict_round_trip(self):
        stage = Stage("spike", 25_000.0, 800.0, 1_600.0)
        assert Stage.from_dict(stage.to_dict()) == stage


class TestLoadProfile:
    def test_stage_bounds_tile_the_duration(self):
        profile = make_profile("staged-ramp", 1_000.0, 200_000.0)
        bounds = profile.stage_bounds()
        assert bounds[0][0] == 0.0
        for (_, end), (start, _) in zip(bounds, bounds[1:]):
            assert end == start
        assert bounds[-1][1] == pytest.approx(profile.total_duration_us)

    def test_stage_index_covers_every_instant(self):
        profile = make_profile("staged-ramp", 1_000.0, 200_000.0)
        for index, (start, end) in enumerate(profile.stage_bounds()):
            assert profile.stage_index_at(start) == index
            assert profile.stage_index_at((start + end) / 2.0) == index
        # Past the end (the drain window) belongs to the last stage.
        assert profile.stage_index_at(10 * profile.total_duration_us) \
            == len(profile.stages) - 1

    def test_rate_at_matches_owning_stage(self):
        profile = make_profile("spike-train", 900.0, 600_000.0)
        for start, end in profile.stage_bounds():
            mid = (start + end) / 2.0
            stage = profile.stages[profile.stage_index_at(mid)]
            assert profile.rate_at(mid) == stage.rate_at(mid - start)
        assert profile.rate_at(profile.total_duration_us + 1.0) == 0.0

    def test_expected_messages_scales_with_peak(self):
        base = make_profile("staged-ramp", 1_000.0, 300_000.0)
        double = make_profile("staged-ramp", 2_000.0, 300_000.0)
        assert double.expected_messages() == \
            pytest.approx(2.0 * base.expected_messages())

    def test_dict_round_trip(self):
        profile = make_profile("spike-train", 700.0, 120_000.0)
        assert LoadProfile.from_dict(profile.to_dict()) == profile

    def test_staged_ramp_shape(self):
        profile = make_profile("staged-ramp", 1_000.0, 1_000_000.0)
        names = [stage.name for stage in profile.stages]
        assert names == ["warmup", "ramp", "plateau", "spike", "cooldown"]
        spike = profile.stages[3]
        assert spike.start_rate == spike.end_rate == 2_000.0

    def test_every_builtin_instantiates(self):
        for name in PROFILE_NAMES:
            profile = make_profile(name, 500.0, 100_000.0)
            assert profile.total_duration_us == pytest.approx(100_000.0)

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            make_profile("nope", 100.0, 100.0)
        with pytest.raises(ValueError):
            make_profile("steady", 0.0, 100.0)
        with pytest.raises(ValueError):
            make_profile("steady", 100.0, -1.0)
