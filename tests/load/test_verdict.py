"""Verdict grading on synthetic stage observations (no simulator)."""

from repro.load.slo import SloSpec
from repro.load.verdict import StageObservation, grade_stages


def _obs(name="plateau", offered=100, accepted=100, completed=100,
         duplicated=0, latencies=()):
    obs = StageObservation(name=name, offered=offered, accepted=accepted,
                           completed=completed, duplicated=duplicated)
    for value in latencies:
        obs.latency.observe(value)
    return obs


def test_clean_stage_passes():
    obs = _obs(latencies=[100.0] * 100)
    verdict = grade_stages(SloSpec(), [obs])
    assert verdict.verdict == "pass"
    assert verdict.passed
    assert verdict.slo_hash == SloSpec().spec_hash
    (stage,) = verdict.stages
    assert stage.verdict == "pass"
    assert stage.breaches == []
    assert stage.offered == 100
    assert stage.availability == 1.0


def test_latency_breach_fails():
    # Every delivery at 500ms blows all three percentile bounds.
    obs = _obs(latencies=[500_000.0] * 100)
    verdict = grade_stages(SloSpec(), [obs])
    assert verdict.verdict == "fail"
    (stage,) = verdict.stages
    labels = {breach.split()[0] for breach in stage.breaches}
    assert {"p50", "p99", "p999"} <= labels


def test_availability_breach():
    obs = _obs(offered=100, accepted=90, completed=90,
               latencies=[100.0] * 90)
    (stage,) = grade_stages(SloSpec(), [obs]).stages
    assert stage.verdict == "fail"
    assert stage.rejected == 10
    assert any(b.startswith("availability") for b in stage.breaches)


def test_lost_breach():
    # Loosen availability so the lost budget is the only objective hit.
    spec = SloSpec(availability_min=0.0)
    obs = _obs(offered=100, accepted=100, completed=98,
               latencies=[100.0] * 98)
    (stage,) = grade_stages(spec, [obs]).stages
    assert stage.lost == 2
    assert stage.breaches == ["lost 2 > 0"]


def test_duplicated_breach():
    obs = _obs(duplicated=3, latencies=[100.0] * 100)
    (stage,) = grade_stages(SloSpec(), [obs]).stages
    assert stage.breaches == ["duplicated 3 > 0"]


def test_lost_budget_allows_slack():
    spec = SloSpec(availability_min=0.0, max_lost=5)
    obs = _obs(offered=100, accepted=100, completed=98,
               latencies=[100.0] * 98)
    (stage,) = grade_stages(spec, [obs]).stages
    assert stage.verdict == "pass"


def test_idle_stage_passes_vacuously():
    obs = _obs(offered=0, accepted=0, completed=0)
    (stage,) = grade_stages(SloSpec(), [obs]).stages
    assert stage.verdict == "pass"
    assert stage.availability == 1.0
    assert stage.p50_us is None
    assert stage.p99_us is None


def test_any_failing_stage_fails_the_run():
    good = _obs(name="warmup", latencies=[100.0] * 100)
    bad = _obs(name="spike", offered=100, accepted=80, completed=80,
               latencies=[100.0] * 80)
    verdict = grade_stages(SloSpec(), [good, bad])
    assert verdict.verdict == "fail"
    assert not verdict.passed
    assert [s.stage for s in verdict.failed_stages()] == ["spike"]
