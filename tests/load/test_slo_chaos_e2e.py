"""End-to-end slo-chaos determinism: same seed, same bytes, any executor.

The whole load plane promises that a campaign's result document depends
only on its spec — not on the execution strategy (serial, worker pool,
fork-server, sharded wheels) and not on whether telemetry was recording.
These tests pin that promise at the document level: ``to_doc()`` minus
the environment manifest (and the telemetry block, which is additive
observability, not outcome data) must be byte-identical.
"""

import json

import pytest

from repro.exp.registry import get_experiment
from repro.exp.results import validate_result
from repro.exp.runner import forkserver_available, run_experiment

SEEDS = [2003, 99]

needs_forkserver = pytest.mark.skipif(
    not forkserver_available(),
    reason="fork-server unavailable on this platform or disabled by env")


def _spec(seed):
    return get_experiment("slo-chaos").build_spec(
        {"scale": "small", "seed": seed})


def _doc_bytes(result):
    doc = result.to_doc()
    validate_result(doc)
    doc.pop("manifest")
    doc.pop("telemetry", None)
    return json.dumps(doc, sort_keys=True)


@pytest.mark.parametrize("seed", SEEDS)
class TestByteIdentity:
    def test_pool_matches_serial(self, seed):
        serial = run_experiment(_spec(seed), forkserver=False)
        pooled = run_experiment(_spec(seed), workers=2, forkserver=False)
        assert _doc_bytes(pooled) == _doc_bytes(serial)

    def test_sharded_matches_serial(self, seed):
        serial = run_experiment(_spec(seed), forkserver=False)
        sharded = run_experiment(_spec(seed), forkserver=False, shards=2)
        assert _doc_bytes(sharded) == _doc_bytes(serial)

    def test_telemetry_does_not_change_outcomes(self, seed):
        plain = run_experiment(_spec(seed), forkserver=False)
        metered = run_experiment(_spec(seed), forkserver=False,
                                 telemetry=True)
        assert metered.telemetry is not None
        assert _doc_bytes(metered) == _doc_bytes(plain)

    @needs_forkserver
    def test_forkserver_matches_spawn(self, seed):
        spawned = run_experiment(_spec(seed), forkserver=False)
        forked = run_experiment(_spec(seed), forkserver=True)
        assert _doc_bytes(forked) == _doc_bytes(spawned)


class TestSpecHashes:
    def test_spec_hashes_pinned(self):
        # Moving either hash silently invalidates journals and saved
        # result comparisons; changes must be deliberate.
        experiment = get_experiment("slo-chaos")
        assert experiment.build_spec({}).spec_hash == "6011eefefcd050de"
        assert experiment.build_spec({"scale": "small"}).spec_hash \
            == "6dac9f864914d083"


class TestVerdictDocument:
    def test_small_campaign_grades_the_expected_story(self):
        result = run_experiment(_spec(SEEDS[0]), forkserver=False)
        verdicts = result.summary["verdicts"]
        # Fault-free baseline passes with FT on and off; under a cut
        # link only the fault-tolerant flavor holds the SLO.
        assert verdicts["baseline/ftgm"] == "pass"
        assert verdicts["baseline/gm"] == "pass"
        assert verdicts["link-cut/ftgm"] == "pass"
        assert verdicts["link-cut/gm"] == "fail"

    def test_outcomes_decode_and_round_trip(self):
        experiment = get_experiment("slo-chaos")
        result = run_experiment(_spec(SEEDS[0]), forkserver=False)
        doc = result.to_doc()
        for encoded, outcome in zip(doc["outcomes"], result.outcomes):
            decoded = experiment.decode(encoded)
            assert decoded == outcome
            verdict = decoded.verdict
            assert verdict.verdict in ("pass", "fail")
            assert verdict.stages
            for stage in verdict.stages:
                assert stage.offered >= stage.accepted >= stage.completed
