"""Mapper robustness: lost CONFIG retries and post-fault re-mapping."""

from repro.cluster import build_cluster
from repro.net import Mapper, PacketType
from repro.netfaults import NetworkFaultPlane
from repro.sim import SeededRng


def _run_mapper(cluster, **kwargs):
    mapper = Mapper(cluster[0].mcp.mapper_agent, **kwargs)
    done = []

    def runner():
        found = yield from mapper.run()
        done.append(found)

    cluster.sim.spawn(runner(), name="test-mapper")
    deadline = cluster.sim.now + 10_000_000.0
    while not done and cluster.sim.peek() <= deadline:
        cluster.sim.step()
    assert done, "mapper did not finish"
    return mapper, done[0]


class TestConfigRetry:
    def test_dropped_config_is_retried(self):
        cluster = build_cluster(2, boot=False, seed=5)
        link = cluster.fabric.nic_ports[1].link
        dropped = {"n": 0}

        def drop_first_config(pkt):
            if pkt.ptype == PacketType.MAPPER_CONFIG and dropped["n"] == 0:
                dropped["n"] += 1
                return True
            return False

        link.fault_filter = drop_first_config
        mapper, found = _run_mapper(cluster, expected_nodes=2)
        assert dropped["n"] == 1
        assert mapper.config_retries >= 1
        assert mapper.unreached == []
        assert sorted(found) == [0, 1]
        assert 0 in cluster[1].mcp.routing_table

    def test_persistently_dead_node_nonstrict(self):
        """strict=False records the unreachable node and keeps going."""
        cluster = build_cluster(3, boot=False, seed=5)

        def drop_all_configs(pkt):
            return pkt.ptype == PacketType.MAPPER_CONFIG

        cluster.fabric.nic_ports[2].link.fault_filter = drop_all_configs
        mapper, found = _run_mapper(cluster, strict=False)
        assert 2 in mapper.unreached
        assert 2 not in found
        assert sorted(found) == [0, 1]


class TestRemapAfterSeveredLink:
    def test_rerun_converges_on_surviving_uplink(self):
        cluster = build_cluster(4, flavor="gm", topology="ring", seed=3)
        plane = NetworkFaultPlane(cluster.sim, cluster.fabric,
                                  SeededRng(0, "test"))
        uplinks = cluster.fabric.inter_switch_links()
        route = cluster[0].mcp.routing_table[2]
        on_path = [link for link in plane.links_on_route(0, route)
                   if link in uplinks]
        assert len(on_path) == 1
        victim = on_path[0]
        survivor = next(l2 for l2 in uplinks if l2 is not victim)

        victim.cut()
        mapper, found = _run_mapper(cluster, strict=False)
        assert sorted(found) == [0, 1, 2, 3]
        assert mapper.unreached == []
        # The fresh route 0 -> 2 avoids the severed uplink.
        new_route = cluster[0].mcp.routing_table[2]
        new_links = plane.links_on_route(0, new_route)
        assert victim not in new_links
        assert survivor in new_links
        assert mapper.phase_times["discovered"] \
            <= mapper.phase_times["distributed"]
