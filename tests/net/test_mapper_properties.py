"""Property test: the mapper configures arbitrary switch trees.

Hypothesis generates random tree-shaped fabrics (switches in a random
tree, interfaces on random free ports); the mapper must discover every
interface and install routes such that every ordered pair can actually
exchange a packet.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Host, Nic
from repro.net import Fabric, Mapper, MapperAgent, Packet, PacketType
from repro.payload import Payload
from repro.sim import Simulator


class _Node:
    def __init__(self, sim, fabric, node_id):
        self.host = Host(sim, "h%d" % node_id)
        self.nic = Nic(sim, self.host, node_id)
        fabric.attach_nic(self.nic)
        self.routes = {}
        self.agent = MapperAgent(sim, node_id, self._send,
                                 self.routes.update)
        sim.spawn(self._pump(sim), name="pump%d" % node_id)

    def _send(self, packet):
        self.nic.sim.spawn(self.nic.send_packet(packet))

    def _pump(self, sim):
        while True:
            packet = yield self.nic.recv_ring.get()
            self.agent.handle(packet)


def build_random_tree(n_switches, n_nics, parent_choices, port_choices):
    """Deterministically build a tree fabric from hypothesis draws."""
    sim = Simulator()
    fabric = Fabric(sim)
    switches = [fabric.add_switch(8) for _ in range(n_switches)]
    free = {s.switch_id: list(range(8)) for s in switches}
    # Tree of switches: switch i>0 uplinks to a random earlier switch.
    for i in range(1, n_switches):
        parent = switches[parent_choices[i] % i]
        up = free[switches[i].switch_id].pop(0)
        down = free[parent.switch_id].pop(0)
        fabric.connect(switches[i].port(up), parent.port(down))
    nodes = []
    for node_id in range(n_nics):
        # Attach to a switch that still has a free port.
        candidates = [s for s in switches if free[s.switch_id]]
        switch = candidates[port_choices[node_id] % len(candidates)]
        port = free[switch.switch_id].pop(0)
        node = _Node(sim, fabric, node_id)
        fabric.connect(fabric.nic_ports[node_id], switch.port(port))
        nodes.append(node)
    return sim, fabric, nodes


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_prop_mapper_configures_random_trees(data):
    n_switches = data.draw(st.integers(min_value=1, max_value=4))
    n_nics = data.draw(st.integers(min_value=2, max_value=6))
    parent_choices = data.draw(st.lists(
        st.integers(min_value=0, max_value=10),
        min_size=n_switches, max_size=n_switches))
    port_choices = data.draw(st.lists(
        st.integers(min_value=0, max_value=10),
        min_size=n_nics, max_size=n_nics))
    sim, fabric, nodes = build_random_tree(
        n_switches, n_nics, parent_choices, port_choices)

    mapper = Mapper(nodes[0].agent, expected_nodes=n_nics)
    found = []

    def run():
        result = yield from mapper.run()
        found.append(sorted(result))

    sim.spawn(run())
    deadline = 100_000.0
    while not found and sim.peek() <= deadline:
        sim.step()
    assert found and found[0] == list(range(n_nics))

    # Every node has a route to every other, and the routes *work*:
    # check the farthest pair by actually sending a packet.
    for node in nodes:
        expect = set(range(n_nics)) - {node.nic.node_id}
        assert set(node.routes) == expect

    src = data.draw(st.integers(min_value=0, max_value=n_nics - 1))
    dst = data.draw(st.integers(min_value=0, max_value=n_nics - 1))
    if src == dst:
        dst = (dst + 1) % n_nics
    pkt = Packet(ptype=PacketType.DATA, src_node=src, dest_node=dst,
                 route=list(nodes[src].routes[dst]),
                 payload=Payload.from_bytes(b"prop")).seal()
    delivered = []

    def send():
        ok = yield from nodes[src].nic.send_packet(pkt)
        delivered.append(ok)

    # The destination pump would consume it; that's fine — send_packet's
    # return value already tells us the NIC accepted it off the wire.
    sim.spawn(send())
    end = sim.now + 10_000.0
    while not delivered and sim.peek() <= end:
        sim.step()
    assert delivered == [True]
