"""`repro topo`: graph construction, summaries, min-cut and DOT."""

import pytest

from repro.cli import main
from repro.net.topo import build_graph, min_cut, summarize, to_dot


class TestBuildGraph:
    def test_fat_tree_dimensions(self):
        fabric = build_graph(16, "fat-tree", radix=4)
        tiers = {}
        for switch in fabric.switches:
            tiers[switch.tier] = tiers.get(switch.tier, 0) + 1
        assert tiers == {"edge": 8, "agg": 8, "core": 4}
        assert len(fabric.nic_ports) == 16

    def test_fat_tree_256_at_radix_8(self):
        fabric = build_graph(256, "fat-tree", radix=8)
        assert len(fabric.switches) == 144          # 64 + 64 + 16
        assert len(fabric.links) == 256 + 512

    def test_clos_leaf_spine(self):
        fabric = build_graph(16, "clos", n_switches=2, radix=8)
        leaves = [s for s in fabric.switches if s.tier == "leaf"]
        spines = [s for s in fabric.switches if s.tier == "spine"]
        assert len(spines) == 2
        # 8-port leaves keep 2 ports for spines -> 6 hosts per leaf.
        assert len(leaves) == 3
        assert len(fabric.inter_switch_links()) == len(leaves) * 2

    def test_stub_graph_has_no_sram(self):
        # The whole point: inspecting a 256-node fabric must not build
        # NICs (2 MB SRAM each).
        fabric = build_graph(64, "fat-tree", radix=8)
        for port in fabric.nic_ports.values():
            assert not hasattr(port.nic, "sram")

    def test_tiny_cluster_rejected(self):
        with pytest.raises(ValueError):
            build_graph(1, "star")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_graph(8, "hypercube")


class TestMinCut:
    def test_parallel_ring_uplinks_both_count(self):
        fabric = build_graph(8, "ring", n_switches=2)
        assert min_cut(fabric, 0, 1) == 2

    def test_fat_tree_cross_pod_width(self):
        fabric = build_graph(16, "fat-tree", radix=4)
        # Edge uplink fan-out is radix/2 = 2, the bottleneck stage.
        assert min_cut(fabric, 0, 2) == 2

    def test_clos_width_is_spine_count(self):
        fabric = build_graph(16, "clos", n_switches=2, radix=8)
        assert min_cut(fabric, 0, 1) == 2

    def test_tree_has_single_paths(self):
        fabric = build_graph(8, "tree", n_switches=2)
        leaves = [s.switch_id for s in fabric.switches if s.switch_id != 0]
        assert min_cut(fabric, leaves[0], leaves[1]) == 1

    def test_same_switch_is_zero(self):
        fabric = build_graph(8, "ring", n_switches=2)
        assert min_cut(fabric, 0, 0) == 0


class TestSummarize:
    def test_fat_tree_summary_lines(self):
        text = summarize(16, "fat-tree", radix=4)
        assert "16 hosts, 20 switches" in text
        assert "8 edge, 8 agg, 4 core" in text
        assert "32 inter-switch" in text

    def test_star_reports_no_redundancy(self):
        text = summarize(8, "star")
        assert "no inter-switch paths" in text


class TestDot:
    def test_every_link_appears(self):
        fabric = build_graph(16, "fat-tree", radix=4)
        doc = to_dot(16, "fat-tree", radix=4)
        assert doc.count(" -- ") == len(fabric.links)
        assert doc.startswith("graph fabric {")
        assert '"host0"' in doc and '"sw19"' in doc

    def test_tiers_are_ranked(self):
        doc = to_dot(16, "clos", n_switches=2, radix=8)
        assert doc.count("rank=same") == 3   # hosts, leaves, spines


class TestCliVerb:
    def test_summary_to_stdout(self, capsys):
        assert main(["topo", "fat-tree", "--nodes", "16",
                     "--radix", "4"]) == 0
        out = capsys.readouterr().out
        assert "20 switches" in out

    def test_dot_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "fabric.dot"
        assert main(["topo", "clos", "--nodes", "8", "--switches", "2",
                     "--dot", str(out_path)]) == 0
        assert out_path.read_text().startswith("graph fabric {")

    def test_bad_shape_exits(self):
        with pytest.raises(SystemExit):
            main(["topo", "moebius"])
