"""Unit and property tests for CRC-32 and packets."""

import zlib

from hypothesis import given
from hypothesis import strategies as st

from repro.net import Packet, PacketType, crc32, crc32_words
from repro.payload import Payload


class TestCrc:
    def test_known_vector(self):
        # The classic check value for CRC-32/IEEE.
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0

    def test_matches_zlib_oracle(self):
        for data in (b"a", b"hello world", bytes(range(256)) * 3):
            assert crc32(data) == zlib.crc32(data)

    def test_chaining(self):
        whole = crc32(b"abcdef")
        # Chained CRC is CRC of the concatenation when seeded correctly.
        part = crc32(b"def", seed=crc32(b"abc"))
        assert part == whole

    def test_words_big_endian(self):
        assert crc32_words([0x01020304]) == crc32(b"\x01\x02\x03\x04")

    @given(data=st.binary(max_size=512))
    def test_prop_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    @given(data=st.binary(min_size=1, max_size=128),
           bit=st.integers(min_value=0))
    def test_prop_single_bit_flip_detected(self, data, bit):
        mutated = bytearray(data)
        index, shift = divmod(bit % (len(data) * 8), 8)
        mutated[index] ^= 1 << shift
        assert crc32(bytes(mutated)) != crc32(data)


class TestPacket:
    def _packet(self, **kwargs):
        defaults = dict(ptype=PacketType.DATA, src_node=0, dest_node=1,
                        route=[3], seq=7,
                        payload=Payload.from_bytes(b"payload bytes"))
        defaults.update(kwargs)
        return Packet(**defaults)

    def test_seal_then_crc_ok(self):
        pkt = self._packet().seal()
        assert pkt.crc_ok()

    def test_payload_corruption_detected(self):
        pkt = self._packet().seal()
        pkt.corrupt_payload(bit=11)
        assert not pkt.crc_ok()

    def test_header_field_corruption_detected(self):
        pkt = self._packet().seal()
        pkt.seq += 1
        assert not pkt.crc_ok()

    def test_wire_size_counts_route_header_payload_crc(self):
        pkt = self._packet(route=[1, 2, 3])
        assert pkt.wire_size == 3 + 16 + 13 + 4

    def test_clone_for_retransmit_restores_route(self):
        pkt = self._packet(route=[5, 6])
        pkt.route.pop(0)  # a switch consumed a byte
        clone = pkt.clone_for_retransmit()
        assert clone.route == [6]
        assert clone.packet_id != pkt.packet_id
        assert clone.payload == pkt.payload

    def test_flood_copy_accumulates_stamps(self):
        scout = Packet(ptype=PacketType.MAPPER_SCOUT, src_node=0,
                       dest_node=-1, flood=True, ttl=4)
        copy = scout.clone_flood_copy(in_port=2, out_port=5)
        assert copy.ttl == 3
        assert copy.ingress_ports == [2]
        assert copy.egress_ports == [5]
        assert scout.ingress_ports == []  # original untouched

    def test_describe_is_readable(self):
        text = self._packet().describe()
        assert "DATA" in text and "0->1" in text
