"""Unit tests for links, switches and topology wiring."""

import pytest

from repro.hw import Host, Nic
from repro.net import Fabric, Packet, PacketType
from repro.payload import Payload
from repro.sim import Simulator


def make_node(sim, node_id):
    host = Host(sim, "host%d" % node_id)
    return Nic(sim, host, node_id)


def data_packet(src, dest, route, nbytes=64, **kwargs):
    return Packet(ptype=PacketType.DATA, src_node=src, dest_node=dest,
                  route=list(route),
                  payload=Payload.phantom(nbytes, tag=src), **kwargs).seal()


class TestDirectLink:
    def test_packet_crosses_direct_cable(self):
        sim = Simulator()
        fabric = Fabric(sim)
        a, b = make_node(sim, 0), make_node(sim, 1)
        fabric.connect(fabric.attach_nic(a), fabric.attach_nic(b))
        results = []

        def send():
            ok = yield from a.send_packet(data_packet(0, 1, []))
            results.append(ok)

        sim.spawn(send())
        sim.run()
        assert results == [True]
        assert len(b.recv_ring) == 1

    def test_wire_time_scales_with_size(self):
        sim = Simulator()
        fabric = Fabric(sim)
        a, b = make_node(sim, 0), make_node(sim, 1)
        fabric.connect(fabric.attach_nic(a), fabric.attach_nic(b))
        times = {}

        def send(nbytes, tag):
            yield from a.send_packet(data_packet(0, 1, [], nbytes))
            times[tag] = sim.now

        sim.spawn(send(100, "small"))
        sim.run()
        t_small = times["small"]
        sim2 = Simulator()
        fabric2 = Fabric(sim2)
        a2, b2 = make_node(sim2, 0), make_node(sim2, 1)
        fabric2.connect(fabric2.attach_nic(a2), fabric2.attach_nic(b2))

        def send2():
            yield from a2.send_packet(data_packet(0, 1, [], 4000))

        sim2.spawn(send2())
        sim2.run()
        assert sim2.now > t_small

    def test_cut_link_drops(self):
        sim = Simulator()
        fabric = Fabric(sim)
        a, b = make_node(sim, 0), make_node(sim, 1)
        link = fabric.connect(fabric.attach_nic(a), fabric.attach_nic(b))
        link.cut()
        results = []

        def send():
            ok = yield from a.send_packet(data_packet(0, 1, []))
            results.append(ok)

        sim.spawn(send())
        sim.run()
        assert results == [False]
        assert len(b.recv_ring) == 0

    def test_double_cabling_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim)
        a, b, c = (make_node(sim, i) for i in range(3))
        pa = fabric.attach_nic(a)
        fabric.connect(pa, fabric.attach_nic(b))
        with pytest.raises(ValueError):
            fabric.connect(pa, fabric.attach_nic(c))


class TestSwitch:
    def _star(self, n=3):
        sim = Simulator()
        fabric = Fabric(sim)
        nics = [make_node(sim, i) for i in range(n)]
        switch = fabric.star(nics)
        return sim, fabric, nics, switch

    def test_routes_through_star(self):
        sim, fabric, nics, switch = self._star()
        # node 0 -> node 2: route byte [2] (nic i on switch port i)

        def send():
            yield from nics[0].send_packet(data_packet(0, 2, [2]))

        sim.spawn(send())
        sim.run()
        assert len(nics[2].recv_ring) == 1
        assert len(nics[1].recv_ring) == 0
        assert switch.forwarded == 1

    def test_route_consumed_by_switch(self):
        sim, fabric, nics, switch = self._star()

        def send():
            yield from nics[0].send_packet(data_packet(0, 2, [2]))

        sim.spawn(send())
        sim.run()
        _, pkt = nics[2].recv_ring.try_get()
        assert pkt.route == []

    def test_invalid_route_byte_dropped(self):
        sim, fabric, nics, switch = self._star()

        def send():
            yield from nics[0].send_packet(data_packet(0, 2, [7]))  # uncabled

        sim.spawn(send())
        sim.run()
        assert switch.misrouted == 1
        assert all(len(n.recv_ring) == 0 for n in nics[1:])

    def test_empty_route_absorbed_at_switch(self):
        sim, fabric, nics, switch = self._star()

        def send():
            yield from nics[0].send_packet(data_packet(0, 2, []))

        sim.spawn(send())
        sim.run()
        assert switch.absorbed == 1

    def test_turnaround_rejected(self):
        sim, fabric, nics, switch = self._star()

        def send():
            yield from nics[0].send_packet(data_packet(0, 0, [0]))

        sim.spawn(send())
        sim.run()
        assert switch.misrouted == 1

    def test_two_switch_path(self):
        sim = Simulator()
        fabric = Fabric(sim)
        a, b = make_node(sim, 0), make_node(sim, 1)
        s1, s2 = fabric.add_switch(), fabric.add_switch()
        fabric.connect(fabric.attach_nic(a), s1.port(0))
        fabric.connect(s1.port(1), s2.port(0))
        fabric.connect(s2.port(1), fabric.attach_nic(b))

        def send():
            yield from a.send_packet(data_packet(0, 1, [1, 1]))

        sim.spawn(send())
        sim.run()
        assert len(b.recv_ring) == 1

    def test_output_contention_serializes(self):
        sim, fabric, nics, switch = self._star(3)
        arrivals = []

        def send(src, nbytes):
            yield from nics[src].send_packet(data_packet(src, 2, [2], nbytes))

        sim.spawn(send(0, 4000))
        sim.spawn(send(1, 4000))
        sim.run()
        assert len(nics[2].recv_ring) == 2
        # The shared output link carried 2 x ~4KB: total time must exceed
        # a single transfer's time.
        assert sim.now > 2 * 4000 / 250.0


class TestFloodScout:
    def test_flood_reaches_all_nics_in_star(self):
        sim = Simulator()
        fabric = Fabric(sim)
        nics = [make_node(sim, i) for i in range(4)]
        fabric.star(nics)
        scout = Packet(ptype=PacketType.MAPPER_SCOUT, src_node=0,
                       dest_node=-1, flood=True, ttl=4)

        def send():
            yield from nics[0].send_packet(scout)

        sim.spawn(send())
        sim.run()
        for nic in nics[1:]:
            assert len(nic.recv_ring) == 1
        assert len(nics[0].recv_ring) == 0  # not reflected to sender

    def test_flood_stamps_forward_and_reverse(self):
        sim = Simulator()
        fabric = Fabric(sim)
        nics = [make_node(sim, i) for i in range(3)]
        fabric.star(nics)
        scout = Packet(ptype=PacketType.MAPPER_SCOUT, src_node=0,
                       dest_node=-1, flood=True, ttl=4)

        def send():
            yield from nics[0].send_packet(scout)

        sim.spawn(send())
        sim.run()
        _, pkt = nics[2].recv_ring.try_get()
        assert pkt.egress_ports == [2]
        assert pkt.ingress_ports == [0]

    def test_ttl_bounds_flood_on_cycle(self):
        sim = Simulator()
        fabric = Fabric(sim)
        a = make_node(sim, 0)
        s1, s2 = fabric.add_switch(), fabric.add_switch()
        fabric.connect(fabric.attach_nic(a), s1.port(0))
        # Two parallel links between s1 and s2 create a cycle.
        fabric.connect(s1.port(1), s2.port(0))
        fabric.connect(s1.port(2), s2.port(1))
        scout = Packet(ptype=PacketType.MAPPER_SCOUT, src_node=0,
                       dest_node=-1, flood=True, ttl=5)

        def send():
            yield from a.send_packet(scout)

        sim.spawn(send())
        sim.run()  # must terminate (TTL kills the loop)
        assert s1.absorbed + s2.absorbed > 0
