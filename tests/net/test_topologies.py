"""Multi-switch topologies (ring/tree) and the cluster topology knob."""

import pytest

from repro.cluster import build_cluster
from repro.net.fabric import Fabric
from repro.net.switch import SwitchPort
from repro.sim import Simulator


class TestFabricShapes:
    def test_ring_has_one_uplink_per_switch(self):
        cluster = build_cluster(4, topology="ring", boot=False)
        fabric = cluster.fabric
        assert len(fabric.switches) == 2
        uplinks = fabric.inter_switch_links()
        assert len(uplinks) == 2       # two independent paths
        for link in uplinks:
            assert isinstance(link.end_a, SwitchPort)
            assert isinstance(link.end_b, SwitchPort)

    def test_ring_spreads_nics_in_blocks(self):
        cluster = build_cluster(4, topology="ring", boot=False)
        # Balanced contiguous blocks: nodes 0,1 on sw0; nodes 2,3 on sw1.
        for node_id, switch_id in ((0, 0), (1, 0), (2, 1), (3, 1)):
            port = cluster.fabric.nic_ports[node_id]
            other = port.link.other(port)
            assert other.switch.switch_id == switch_id

    def test_tree_root_plus_leaves(self):
        cluster = build_cluster(4, topology="tree", boot=False)
        fabric = cluster.fabric
        assert len(fabric.switches) == 3           # root + 2 leaves
        assert len(fabric.inter_switch_links()) == 2

    def test_ring_capacity_check(self):
        from repro.hw import Host, Nic

        sim = Simulator()
        fabric = Fabric(sim)
        nics = [Nic(sim, Host(sim, "h%d" % i), i) for i in range(13)]
        with pytest.raises(ValueError):
            fabric.ring(nics, n_switches=2)        # 13 > 2 * 6 slots

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_cluster(4, topology="mesh")


class TestBootedTopologies:
    def test_ring_boots_with_full_routes(self):
        cluster = build_cluster(4, flavor="ftgm", topology="ring", seed=3)
        for node in cluster.nodes:
            others = {n.node_id for n in cluster.nodes} - {node.node_id}
            assert set(node.mcp.routing_table) == others

    def test_tree_boots_with_full_routes(self):
        cluster = build_cluster(4, flavor="gm", topology="tree", seed=3)
        for node in cluster.nodes:
            others = {n.node_id for n in cluster.nodes} - {node.node_id}
            assert set(node.mcp.routing_table) == others

    def test_cross_switch_traffic_flows(self):
        from repro.workloads import run_pingpong

        cluster = build_cluster(4, flavor="gm", topology="ring", seed=3)
        result = run_pingpong(cluster, 64, iterations=5, a=0, b=2)
        assert len(result.rtts) == 5
        assert result.half_rtt_us > 0

    def test_default_star_unchanged(self):
        """The 2-node default is byte-identical to the pre-topology path."""
        c1 = build_cluster(2, seed=11)
        c2 = build_cluster(2, seed=11, topology="star")
        assert c1.topology == c2.topology == "star"
        assert len(c1.fabric.switches) == len(c2.fabric.switches) == 1
        assert c1.sim.now == c2.sim.now
        assert [n.mcp.routing_table for n in c1.nodes] \
            == [n.mcp.routing_table for n in c2.nodes]


class TestWorkloadPairValidation:
    def test_same_node_rejected(self):
        cluster = build_cluster(2, seed=1)
        from repro.workloads import run_allsize, run_pingpong

        with pytest.raises(ValueError):
            run_pingpong(cluster, 64, a=1, b=1)
        with pytest.raises(ValueError):
            run_allsize(cluster, 64, a=0, b=5)
