"""Tests for route derivation and the full mapper protocol."""

import pytest

from repro.hw import Host, Nic
from repro.net import (
    Fabric,
    Mapper,
    MapperAgent,
    MappingFailed,
    Packet,
    PacketType,
    derive_route,
)
from repro.payload import Payload
from repro.sim import Simulator


class TestDeriveRoute:
    def test_star_siblings(self):
        # mapper on port 3; X on port 0 (fwd [0], rev [3]); Y on port 1.
        assert derive_route([0], [3], [1]) == [1]

    def test_route_back_to_mapper_is_reverse(self):
        # X -> mapper is just X's reverse route; derive only covers X->Y,
        # the mapper fills its own entry separately.
        assert derive_route([0], [3], [1]) == [1]

    def test_two_switch_same_leaf(self):
        # m - S1 - S2 - {X on S2.2, Y on S2.3}; S1: m@0, S2-link@1;
        # S2: S1-link@0.
        fx, rx = [1, 2], [0, 0]
        fy = [1, 3]
        assert derive_route(fx, rx, fy) == [3]

    def test_two_switch_cross_level(self):
        # X behind S2, Y directly on S1 port 4.
        fx, rx = [1, 2], [0, 0]
        fy = [4]
        assert derive_route(fx, rx, fy) == [0, 4]

    def test_three_level(self):
        # m - S1 - S2 - S3 - X ; Y on S2.
        fx, rx = [1, 1, 2], [0, 0, 0]
        fy = [1, 3]
        assert derive_route(fx, rx, fy) == [0, 3]

    def test_same_interface_rejected(self):
        with pytest.raises(ValueError):
            derive_route([1], [0], [1])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            derive_route([1, 2], [0], [3])


class _TestNode:
    """A raw node: NIC + MapperAgent + a pump that feeds the agent."""

    def __init__(self, sim, fabric, node_id):
        self.host = Host(sim, "host%d" % node_id)
        self.nic = Nic(sim, self.host, node_id)
        fabric.attach_nic(self.nic)
        self.routes = {}
        self.agent = MapperAgent(sim, node_id, self._send_raw,
                                 self._install)
        sim.spawn(self._pump(sim), name="pump%d" % node_id)

    def _send_raw(self, packet):
        self.nic.sim.spawn(self.nic.send_packet(packet))

    def _install(self, table):
        self.routes = table

    def _pump(self, sim):
        while True:
            packet = yield self.nic.recv_ring.get()
            self.agent.handle(packet)


def star_cluster(sim, n):
    fabric = Fabric(sim)
    nodes = [_TestNode.__new__(_TestNode) for _ in range(n)]
    # Build nodes without attaching, then star-cable them.
    nics = []
    for i, node in enumerate(nodes):
        node.host = Host(sim, "host%d" % i)
        node.nic = Nic(sim, node.host, i)
        node.routes = {}
        node.agent = MapperAgent(sim, i, node._send_raw, node._install)
        sim.spawn(node._pump(sim), name="pump%d" % i)
        nics.append(node.nic)
    fabric.star(nics)
    return fabric, nodes


class TestMapperProtocol:
    def test_maps_star_of_four(self):
        sim = Simulator()
        fabric, nodes = star_cluster(sim, 4)
        mapper = Mapper(nodes[0].agent, expected_nodes=4)
        results = []

        def run():
            found = yield from mapper.run()
            results.append(found)

        sim.spawn(run())
        sim.run()
        assert results and sorted(results[0]) == [0, 1, 2, 3]
        # Every node got a full table.
        for i, node in enumerate(nodes):
            expected = {j for j in range(4) if j != i}
            assert set(node.routes) == expected

    def test_installed_routes_actually_work(self):
        sim = Simulator()
        fabric, nodes = star_cluster(sim, 3)
        mapper = Mapper(nodes[0].agent, expected_nodes=3)
        sim.spawn(mapper.run())
        sim.run()

        # Use node 1's installed route to reach node 2.
        route = nodes[1].routes[2]
        pkt = Packet(ptype=PacketType.DATA, src_node=1, dest_node=2,
                     route=list(route),
                     payload=Payload.from_bytes(b"via mapper route")).seal()
        delivered = []

        def send():
            ok = yield from nodes[1].nic.send_packet(pkt)
            delivered.append(ok)

        # Stop node 2's pump from eating the DATA packet: drain manually.
        sim.spawn(send())
        sim.run()
        assert delivered == [True]

    def test_maps_two_level_tree(self):
        sim = Simulator()
        fabric = Fabric(sim)
        nodes = []
        for i in range(4):
            node = _TestNode.__new__(_TestNode)
            node.host = Host(sim, "host%d" % i)
            node.nic = Nic(sim, node.host, i)
            node.routes = {}
            node.agent = MapperAgent(sim, i, node._send_raw, node._install)
            sim.spawn(node._pump(sim), name="pump%d" % i)
            fabric.attach_nic(node.nic)
            nodes.append(node)
        s1, s2 = fabric.add_switch(), fabric.add_switch()
        # nodes 0,1 on s1 ports 0,1 ; uplink s1.7 <-> s2.7 ; nodes 2,3 on s2.
        fabric.connect(fabric.nic_ports[0], s1.port(0))
        fabric.connect(fabric.nic_ports[1], s1.port(1))
        fabric.connect(s1.port(7), s2.port(7))
        fabric.connect(fabric.nic_ports[2], s2.port(0))
        fabric.connect(fabric.nic_ports[3], s2.port(1))

        mapper = Mapper(nodes[0].agent, expected_nodes=4)
        results = []

        def run():
            found = yield from mapper.run()
            results.append(sorted(found))

        sim.spawn(run())
        sim.run()
        assert results == [[0, 1, 2, 3]]
        # Cross-switch route from node 1 to node 3 must traverse the uplink.
        assert nodes[1].routes[3] == [7, 1]
        # Same-switch route stays local.
        assert nodes[1].routes[0] == [0]
        # Route back to the mapper from the far switch.
        assert nodes[3].routes[0] == [7, 0]

    def test_mapping_failure_when_expected_node_missing(self):
        sim = Simulator()
        fabric, nodes = star_cluster(sim, 2)
        mapper = Mapper(nodes[0].agent, expected_nodes=5)
        failures = []

        def run():
            try:
                yield from mapper.run()
            except MappingFailed as exc:
                failures.append(str(exc))

        sim.spawn(run())
        sim.run()
        assert failures

    def test_remapping_after_node_appears(self):
        sim = Simulator()
        fabric = Fabric(sim)
        made = []
        for i in range(2):
            node = _TestNode.__new__(_TestNode)
            node.host = Host(sim, "host%d" % i)
            node.nic = Nic(sim, node.host, i)
            node.routes = {}
            node.agent = MapperAgent(sim, i, node._send_raw, node._install)
            sim.spawn(node._pump(sim), name="pump%d" % i)
            fabric.attach_nic(node.nic)
            made.append(node)
        switch = fabric.add_switch()
        fabric.connect(fabric.nic_ports[0], switch.port(0))
        fabric.connect(fabric.nic_ports[1], switch.port(1))

        results = []

        def first_round():
            mapper = Mapper(made[0].agent, expected_nodes=2)
            found = yield from mapper.run()
            results.append(sorted(found))

        sim.spawn(first_round())
        sim.run()
        assert results == [[0, 1]]

        # A third node appears; re-run the mapper.
        node = _TestNode.__new__(_TestNode)
        node.host = Host(sim, "host2")
        node.nic = Nic(sim, node.host, 2)
        node.routes = {}
        node.agent = MapperAgent(sim, 2, node._send_raw, node._install)
        sim.spawn(node._pump(sim), name="pump2")
        fabric.attach_nic(node.nic)
        fabric.connect(fabric.nic_ports[2], switch.port(2))
        made.append(node)

        def second_round():
            mapper = Mapper(made[0].agent, expected_nodes=3)
            found = yield from mapper.run()
            results.append(sorted(found))

        sim.spawn(second_round())
        sim.run()
        assert results[1] == [0, 1, 2]
        assert made[2].routes[1] == [1]
