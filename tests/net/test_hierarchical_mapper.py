"""The two-phase hierarchical mapper on Clos/fat-tree fabrics."""

from repro.cluster import build_cluster
from repro.net import make_mapper
from repro.net.mapper import HierarchicalMapper, Mapper
from repro.netfaults import NetworkFaultPlane
from repro.sim import SeededRng


def _rerun_mapper(cluster, **kwargs):
    mapper = make_mapper(cluster[0].mcp.mapper_agent, hierarchical=True,
                         expected_nodes=len(cluster), **kwargs)
    done = []

    def runner():
        found = yield from mapper.run()
        done.append(found)

    cluster.sim.spawn(runner(), name="test-mapper")
    deadline = cluster.sim.now + 10_000_000.0
    while not done and cluster.sim.peek() <= deadline:
        cluster.sim.step()
    assert done, "mapper did not finish"
    return mapper, done[0]


def _full_tables(cluster):
    n = len(cluster)
    for node in cluster.nodes:
        others = set(node.mcp.routing_table) - {node.node_id}
        assert len(others) == n - 1, \
            "node %d mapped %d of %d peers" % (
                node.node_id, len(others), n - 1)


class TestMakeMapper:
    def test_hierarchical_flag_selects_class(self):
        cluster = build_cluster(4, boot=False)
        agent = cluster[0].mcp.mapper_agent
        assert isinstance(make_mapper(agent), Mapper)
        assert isinstance(make_mapper(agent, hierarchical=True),
                          HierarchicalMapper)
        assert not isinstance(make_mapper(agent), HierarchicalMapper)


class TestFullMap:
    def test_fat_tree_16_maps_every_node(self):
        cluster = build_cluster(16, flavor="gm", seed=7,
                                topology="fat-tree", radix=4)
        _full_tables(cluster)

    def test_clos_12_maps_every_node(self):
        cluster = build_cluster(12, flavor="gm", seed=7, topology="clos",
                                n_switches=2, radix=8)
        _full_tables(cluster)

    def test_routes_are_symmetric_in_length(self):
        cluster = build_cluster(16, flavor="gm", seed=7,
                                topology="fat-tree", radix=4)
        for src in (0, 5, 11):
            for dst in (3, 8, 15):
                if src == dst:
                    continue
                there = cluster[src].mcp.routing_table[dst]
                back = cluster[dst].mcp.routing_table[src]
                assert len(there) == len(back)


class TestEcmp:
    def _first_hops(self, cluster, sources, dst):
        return {cluster[src].mcp.routing_table[dst][0]
                for src in sources if src != dst}

    def test_cross_pod_traffic_spreads_over_uplinks(self):
        cluster = build_cluster(16, flavor="gm", seed=7,
                                topology="fat-tree", radix=4)
        # All four hosts of pod 0 talk to host 12 (pod 3): with two
        # equal-cost uplinks per edge the flows must not all share one.
        hops = self._first_hops(cluster, range(4), 12)
        assert len(hops) > 1

    def test_route_choice_is_deterministic(self):
        a = build_cluster(16, flavor="gm", seed=7,
                          topology="fat-tree", radix=4)
        b = build_cluster(16, flavor="gm", seed=7,
                          topology="fat-tree", radix=4)
        for node_a, node_b in zip(a.nodes, b.nodes):
            assert node_a.mcp.routing_table == node_b.mcp.routing_table


class TestRemapAfterSwitchLoss:
    def test_rerun_avoids_dead_agg_switch(self):
        cluster = build_cluster(16, flavor="gm", seed=7,
                                topology="fat-tree", radix=4)
        plane = NetworkFaultPlane(cluster.fabric_sim, cluster.fabric,
                                  SeededRng(0, "test"))
        # Kill the aggregation switch the current 0 -> 12 route uses.
        route = cluster[0].mcp.routing_table[12]
        port = cluster.fabric.nic_ports[0]
        end = port.link.other(port)
        victims = []
        for byte in route[:-1]:
            victims.append(end.switch)
            out = end.switch.ports[byte]
            end = out.link.other(out)
        agg = next(s for s in victims if s.tier == "agg")
        plane.kill_switch(agg)
        cluster.sim.run(until=cluster.sim.now + 1.0)

        mapper, found = _rerun_mapper(cluster, strict=False)
        assert sorted(found) == list(range(16))
        new_route = cluster[0].mcp.routing_table[12]
        end = port.link.other(port)
        for byte in new_route[:-1]:
            assert end.switch is not agg
            out = end.switch.ports[byte]
            end = out.link.other(out)


class TestScoutWaves:
    def test_waves_cover_every_leaf_once(self):
        cluster = build_cluster(16, flavor="gm", seed=7, boot=False,
                                topology="fat-tree", radix=4)
        mapper = make_mapper(cluster[0].mcp.mapper_agent,
                             hierarchical=True, expected_nodes=16)
        mapper.adjacency = {}
        leaves = list(range(8))
        mapper.host_attach = {n: (n // 2, n % 2) for n in range(16)}
        waves = mapper._leaf_waves(leaves)
        flat = [leaf for wave in waves for leaf in wave]
        assert sorted(flat) == leaves

    def test_wave_reply_budget_respects_ring(self):
        from repro.hw.nic import RECV_RING_SLOTS

        cluster = build_cluster(4, flavor="gm", seed=7, boot=False,
                                topology="fat-tree", radix=4)
        mapper = make_mapper(cluster[0].mcp.mapper_agent,
                             hierarchical=True, expected_nodes=4)
        # 64 leaves with 4 hosts each: every wave's expected reply count
        # must stay within half the receive ring.
        leaves = list(range(64))
        mapper.host_attach = {n: (n // 4, n % 4) for n in range(256)}
        for wave in mapper._leaf_waves(leaves):
            replies = sum(4 for _ in wave)
            assert replies <= max(4, RECV_RING_SLOTS // 2)
