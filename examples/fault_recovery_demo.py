#!/usr/bin/env python
"""Fault-recovery demo: hang a NIC mid-stream and watch FTGM recover.

A sender streams 40 messages to a receiver; at t=+600 us we hang the
receiver's LANai (the failure mode 28.6% of the paper's fault injections
produced).  The software watchdog detects the hang in under a
millisecond, the FTD reloads and restores the interface in ~765 ms, the
process recovers its port transparently inside ``gm_receive``, and every
message is delivered exactly once, in order.

Run:  python examples/fault_recovery_demo.py
"""

from repro.cluster import build_cluster
from repro.payload import Payload

N_MESSAGES = 40


def main():
    cluster = build_cluster(n_nodes=2, flavor="ftgm", trace=True)
    sim = cluster.sim
    received = []

    def sender():
        port = yield from cluster[0].driver.open_port(1)
        for i in range(N_MESSAGES):
            yield from port.send_and_wait(
                Payload.from_bytes(b"message-%03d" % i), 1, 2)
            yield sim.timeout(25.0)
        print("[%12.1f us] sender: all %d sends acknowledged"
              % (sim.now, N_MESSAGES))

    def receiver():
        port = yield from cluster[1].driver.open_port(2)
        for _ in range(8):
            yield from port.provide_receive_buffer(256)
        while len(received) < N_MESSAGES:
            event = yield from port.receive_message()
            received.append(event.payload.data)
            if len(received) <= N_MESSAGES - 8:
                yield from port.provide_receive_buffer(256)
        print("[%12.1f us] receiver: got all %d messages"
              % (sim.now, N_MESSAGES))

    def saboteur():
        yield sim.timeout(600.0)
        print("[%12.1f us] !!! hanging node 1's LANai (cosmic ray)"
              % sim.now)
        cluster[1].mcp.die("demo: injected processor hang")

    cluster[1].host.spawn(receiver(), "receiver")
    cluster[0].host.spawn(sender(), "sender")
    sim.spawn(saboteur())
    sim.run(until=sim.now + 30_000_000.0)

    print()
    print("delivery check: %d received, %d unique, in order: %s"
          % (len(received), len(set(received)),
             received == [b"message-%03d" % i for i in range(N_MESSAGES)]))
    print()
    print("recovery timeline (from the trace):")
    interesting = ("mcp_died", "fatal_interrupt",
                   "ftd_woken", "ftd_hang_confirmed", "ftd_card_reset",
                   "ftd_mcp_reloaded", "ftd_tables_restored",
                   "ftd_recovery_done", "port_recovery_start",
                   "port_recovery_done")
    for record in cluster.tracer.records:
        if record.kind in interesting and "1" in record.source:
            print("  " + str(record))

    ftd = cluster[1].driver.ftd
    if ftd.recoveries:
        rec = ftd.recoveries[0]
        print()
        print("FTD recovery time: %.0f us (paper: ~765000 us)"
              % rec.ftd_time)


if __name__ == "__main__":
    main()
