#!/usr/bin/env python
"""A distributed MPI application surviving a NIC hang — transparently.

Four ranks estimate pi by numerically integrating 4/(1+x^2) over [0,1]:
each rank sums its slice of the interval, then an ``allreduce`` combines
the partial sums — with a barrier per round.  Midway through, rank 2's
network interface hangs.

Run it over plain GM and the job dies with the fatal send error the
paper describes for MPI-over-GM.  Run it over FTGM — same application
code, same middleware — and the job completes; the only trace of the
fault is ~1.7 simulated seconds of recovery time.

Run:  python examples/mpi_resilient_app.py
"""

from repro.cluster import build_cluster
from repro.errors import MpiFatalError
from repro.middleware import mpi_world

RANKS = 4
ROUNDS = 6
STEPS_PER_ROUND = 4000


def pi_worker(mpi, results):
    yield from mpi.init()
    total = 0.0
    for round_index in range(ROUNDS):
        # Integrate this round's slab of [0, 1], split across ranks.
        lo = round_index / ROUNDS
        step = (1.0 / ROUNDS) / STEPS_PER_ROUND
        partial = 0.0
        for i in range(mpi.rank, STEPS_PER_ROUND, mpi.size):
            x = lo + (i + 0.5) * step
            partial += 4.0 / (1.0 + x * x) * step
        # Charge the numeric work as host CPU time (~1000 flops/us on a
        # Pentium III-class machine) so communication and computation
        # interleave on the simulated clock.
        yield from mpi.cluster[mpi.rank].host.cpu_execute(
            STEPS_PER_ROUND / mpi.size / 200.0, "compute")
        round_sum = yield from mpi.allreduce(partial, lambda a, b: a + b)
        total += round_sum
        yield from mpi.barrier()
        if mpi.rank == 0:
            print("  round %d/%d done (running total %.6f)"
                  % (round_index + 1, ROUNDS, total))
    results[mpi.rank] = total


def run(flavor):
    print("=== %s ===" % flavor.upper())
    cluster = build_cluster(RANKS, flavor=flavor)
    sim = cluster.sim
    world = mpi_world(cluster)
    results = {}
    failures = {}

    finish = {}

    def guarded(rank):
        try:
            yield from pi_worker(world[rank], results)
            finish[rank] = sim.now
        except MpiFatalError as exc:
            failures[rank] = str(exc)
            print("  rank %d ABORTED: %s" % (rank, exc))

    for rank in range(RANKS):
        cluster[rank].host.spawn(guarded(rank), "rank%d" % rank)

    def saboteur():
        # Strike midway through the job (round 3 of 6).
        yield sim.timeout(400.0 + 2.5 * (STEPS_PER_ROUND / RANKS / 200.0))
        print("  !!! hanging rank 2's NIC at t=%.0f us" % sim.now)
        cluster[2].mcp.die("cosmic ray in the LANai")

    sim.spawn(saboteur())
    # Run until every rank finished, or the first abort (under GM the
    # other ranks then block forever — the "grinding halt").
    deadline = sim.now + 120_000_000.0
    while (len(results) < RANKS and not failures
           and sim.peek() <= deadline):
        sim.step()

    if failures:
        print("job FAILED: ranks %s aborted (the paper's 'grinding "
              "halt')" % sorted(failures))
    else:
        print("job COMPLETED: pi = %.6f (all ranks agree: %s), "
              "finished at t=%.3f s"
              % (results.get(0, float("nan")),
                 len(set("%.9f" % v for v in results.values())) == 1,
                 max(finish.values()) / 1e6))
    print()
    return failures


def main():
    gm_failures = run("gm")
    ftgm_failures = run("ftgm")
    assert gm_failures, "plain GM should have died"
    assert not ftgm_failures, "FTGM should have survived"
    print("Same application, same middleware, same fault.")
    print("GM: job dead.  FTGM: nobody noticed.  (That is the paper.)")


if __name__ == "__main__":
    main()
