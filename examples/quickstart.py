#!/usr/bin/env python
"""Quickstart: two nodes, one switch, one message each way.

Builds the paper's testbed shape (two hosts with LANai9-class NICs on an
8-port switch), boots GM — which runs the mapper to discover routes —
opens a port on each node, and exchanges messages.

Run:  python examples/quickstart.py
"""

from repro.cluster import build_cluster
from repro.payload import Payload


def main():
    # flavor="gm" is stock GM; flavor="ftgm" adds the paper's fault
    # tolerance with the same application-facing API.
    cluster = build_cluster(n_nodes=2, flavor="gm")
    sim = cluster.sim
    print("cluster booted: %d nodes mapped at t=%.1f us"
          % (len(cluster), sim.now))

    def alice():
        port = yield from cluster[0].driver.open_port()
        # Hand the NIC a buffer for Bob's reply *before* pinging.
        yield from port.provide_receive_buffer(4096)
        yield from port.send(Payload.from_bytes(b"ping from alice"),
                             dest_node=1, dest_port=2)
        event = yield from port.receive_message()
        print("[%8.1f us] alice got: %r from node %d"
              % (sim.now, event.payload.data, event.sender_node))

    def bob():
        port = yield from cluster[1].driver.open_port(2)
        yield from port.provide_receive_buffer(4096)
        event = yield from port.receive_message()
        print("[%8.1f us] bob   got: %r from node %d"
              % (sim.now, event.payload.data, event.sender_node))
        yield from port.send(Payload.from_bytes(b"pong from bob"),
                             dest_node=event.sender_node,
                             dest_port=event.sender_port)

    # Applications are host processes inside the simulation.
    cluster[1].host.spawn(bob(), "bob")
    cluster[0].host.spawn(alice(), "alice")
    sim.run(until=sim.now + 1_000_000.0)

    mcp = cluster[0].mcp
    print("node 0 sent %d packets; node 1 delivered %d messages"
          % (mcp.stats["packets_sent"],
             cluster[1].mcp.stats["messages_delivered"]))


if __name__ == "__main__":
    main()
