#!/usr/bin/env python
"""The paper's Figure 3 control flow, written against the GM-style API.

Figure 3 sketches a typical GM application: post sends with callbacks,
provide receive buffers, then spin on gm_receive() — dispatching
received events yourself and passing everything you don't recognise to
gm_unknown().  That last convention is the hook FTGM rides: run this
example unchanged over FTGM and the mid-stream NIC hang is absorbed by
the gm_unknown() path inside the same polling loop.

Run:  python examples/gm_style_api.py
"""

from repro.cluster import build_cluster
from repro.gm.api import (
    gm_open,
    gm_provide_receive_buffer,
    gm_receive,
    gm_send_with_callback,
    gm_unknown,
)
from repro.gm.events import EventType

WORK_ITEMS = 12


def main():
    cluster = build_cluster(2, flavor="ftgm")
    sim = cluster.sim
    finished = {}

    def worker():  # node 0: the Figure 3 loop
        port = yield from gm_open(cluster[0], 1)
        sends_done = []

        def my_callback(outcome):
            sends_done.append(outcome)

        yield from gm_provide_receive_buffer(port, 4096)
        posted = 0
        replies = 0
        while replies < WORK_ITEMS:
            # Keep one request outstanding, GM style.
            if posted == replies and posted < WORK_ITEMS:
                yield from gm_send_with_callback(
                    port, b"request-%02d" % posted, None, 1, 2,
                    callback=my_callback)
                posted += 1
            event = yield from gm_receive(port, timeout=1_000.0)
            if event is None:
                continue
            if event.etype == EventType.RECEIVED:
                print("[%12.1f us] reply: %r"
                      % (sim.now, event.payload.data))
                replies += 1
                yield from gm_provide_receive_buffer(port, 4096)
            else:
                # "There are other GM internal events which a process is
                # not expected to handle and can simply pass to
                # gm_unknown() which handles them in a default manner."
                yield from gm_unknown(port, event)
        finished["worker"] = sim.now

    def echo_server():  # node 1
        port = yield from gm_open(cluster[1], 2)
        yield from gm_provide_receive_buffer(port, 4096)
        served = 0
        while served < WORK_ITEMS:
            event = yield from gm_receive(port, timeout=1_000.0)
            if event is None:
                continue
            if event.etype == EventType.RECEIVED:
                yield from gm_send_with_callback(
                    port, b"echo:" + event.payload.data, None,
                    event.sender_node, event.sender_port)
                served += 1
                yield from gm_provide_receive_buffer(port, 4096)
            else:
                yield from gm_unknown(port, event)
        finished["server"] = sim.now

    def saboteur():
        # Strike once the server has echoed a few requests (the
        # request/reply rounds start right after the ports open).
        target = cluster[1].mcp
        while target.stats["messages_delivered"] < 4:
            yield sim.timeout(20.0)
        print("[%12.1f us] !!! NIC hang on the echo server" % sim.now)
        target.die("cosmic ray")

    cluster[1].host.spawn(echo_server(), "server")
    cluster[0].host.spawn(worker(), "worker")
    sim.spawn(saboteur())
    sim.run(until=sim.now + 60_000_000.0)

    assert len(finished) == 2, "the Figure 3 loop did not complete"
    print()
    print("all %d request/reply pairs completed at t=%.3f s despite the "
          "hang" % (WORK_ITEMS, max(finished.values()) / 1e6))
    print("recoveries on the server NIC: %d"
          % len(cluster[1].driver.ftd.recoveries))


if __name__ == "__main__":
    main()
