#!/usr/bin/env python
"""GM mapper demo: self-configuration of a multi-switch Myrinet.

Builds a two-level fabric (two 8-port switches, five interfaces), runs
the mapper's scout flood from node 0, prints the routes every interface
learned, then hot-plugs a sixth node and re-runs the mapper — GM's
"self-configuration ... can also reconfigure the network if links or
nodes appear or disappear".

Run:  python examples/mapper_demo.py
"""

from repro.hw import Host, Nic
from repro.net import Fabric, Mapper
from repro.gm.driver import GmDriver
from repro.sim import Simulator, Tracer


def make_node(sim, fabric, tracer, node_id):
    host = Host(sim, "host%d" % node_id, tracer)
    nic = Nic(sim, host, node_id, tracer=tracer)
    fabric.attach_nic(nic)
    driver = GmDriver(sim, host, nic, tracer)
    return host, nic, driver


def run_mapping(sim, driver, expected):
    done = []

    def body():
        mapper = Mapper(driver.mcp.mapper_agent, expected_nodes=expected)
        found = yield from mapper.run()
        done.append(found)

    sim.spawn(body(), "mapper")
    while not done:
        sim.step()
    return done[0]


def print_routes(drivers):
    for driver in drivers:
        table = driver.mcp.routing_table
        routes = ", ".join("->%d via %s" % (dest, table[dest])
                           for dest in sorted(table))
        print("  node %d: %s" % (driver.nic.node_id, routes))


def main():
    sim = Simulator()
    tracer = Tracer(enabled=False)
    fabric = Fabric(sim, tracer)
    s1, s2 = fabric.add_switch(), fabric.add_switch()
    # Uplink between the switches on port 7 of each.
    fabric.connect(s1.port(7), s2.port(7))

    nodes = []
    for node_id in range(5):
        host, nic, driver = make_node(sim, fabric, tracer, node_id)
        switch, port = (s1, node_id) if node_id < 3 else (s2, node_id - 3)
        fabric.connect(fabric.nic_ports[node_id], switch.port(port))
        driver.load_mcp()
        nodes.append((host, nic, driver))

    found = run_mapping(sim, nodes[0][2], expected=5)
    print("mapped %d interfaces across 2 switches at t=%.1f us"
          % (len(found), sim.now))
    print_routes([driver for _, _, driver in nodes])

    # Hot-plug a sixth node on the second switch and remap.
    print("\n+ plugging in node 5 on switch 2 ...")
    host, nic, driver = make_node(sim, fabric, tracer, 5)
    fabric.connect(fabric.nic_ports[5], s2.port(3))
    driver.load_mcp()
    nodes.append((host, nic, driver))

    found = run_mapping(sim, nodes[0][2], expected=6)
    print("remapped: now %d interfaces at t=%.1f us" % (len(found), sim.now))
    print_routes([driver for _, _, driver in nodes])

    # Show a cross-switch route working end to end.
    from repro.payload import Payload
    from repro.net import Packet, PacketType
    route = nodes[1][2].mcp.routing_table[5]
    print("\nnode 1 -> node 5 uses source route %s (via the uplink)"
          % route)
    pkt = Packet(ptype=PacketType.DATA, src_node=1, dest_node=5,
                 route=list(route),
                 payload=Payload.from_bytes(b"cross-switch hello")).seal()
    delivered = []

    def send():
        ok = yield from nodes[1][1].send_packet(pkt)
        delivered.append(ok)

    sim.spawn(send())
    sim.run(until=sim.now + 1_000.0)
    print("delivered across switches: %s" % delivered[0])


if __name__ == "__main__":
    main()
