"""Named experiments: the registry behind every CLI verb.

A registered :class:`Experiment` bundles everything the engine needs to
run one of the paper's studies end to end: how to build a spec from CLI
parameters, how to expand a spec into hermetic per-run configs, the
picklable per-run function, aggregation/rendering of the outcome list,
the outcome decoder for journals and result files, and the CLI option
declarations that make each verb a thin registration instead of a
hand-built subcommand.

``repro list`` prints this registry; ``repro run <name>`` and every
legacy verb (``repro table1``, ``repro netfaults``, ...) resolve
through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .spec import ExperimentSpec

__all__ = ["Option", "Experiment", "register", "get_experiment",
           "all_experiments", "experiment_names"]


@dataclass(frozen=True)
class Option:
    """One CLI option of an experiment, shared by ``repro run <name>``
    and the experiment's legacy verb (which may use an older flag
    spelling, e.g. netfaults' historic ``--runs`` for
    ``--runs-per-scenario``)."""

    dest: str
    flag: str
    type: Callable[[str], Any] = int
    default: Any = None
    help: str = ""
    choices: Optional[Tuple[str, ...]] = None
    legacy_flag: Optional[str] = None

    def add_to(self, parser, legacy: bool = False) -> None:
        flag = (self.legacy_flag if legacy and self.legacy_flag
                else self.flag)
        kwargs: Dict[str, Any] = {"dest": self.dest,
                                  "default": self.default,
                                  "help": self.help}
        if self.type is bool:
            kwargs["action"] = "store_true"
        else:
            kwargs["type"] = self.type
        if self.choices:
            kwargs["choices"] = list(self.choices)
        parser.add_argument(flag, **kwargs)


@dataclass
class Experiment:
    """One registered experiment; see module docstring for the fields'
    roles in the engine."""

    name: str
    help: str
    build_spec: Callable[[Dict[str, Any]], ExperimentSpec]
    expand: Callable[[ExperimentSpec], List[Any]]
    run_one: Callable[[Any], Any]
    aggregate: Callable[[ExperimentSpec, List[Any]], Any]
    render: Callable[[Any], str]
    decode: Optional[Callable[[Any], Any]] = None
    summarize: Optional[Callable[[Any], Dict[str, Any]]] = None
    options: Tuple[Option, ...] = ()
    progress_every: int = 0           # 0 = no progress lines on stderr
    progress_fmt: str = "  ... %d/%d runs"
    # Fork-server support (optional): the seed-independent shared boot
    # prefix of a run and its continuation.  ``run_one`` must equal
    # ``resume(boot(config), config)`` exactly; ``boot_family`` groups
    # configs that share one boot (default: all of them).
    boot: Optional[Callable[[Any], Any]] = None
    resume: Optional[Callable[[Any, Any], Any]] = None
    boot_family: Optional[Callable[[Any], Any]] = None
    # Checkpoint support (optional): ``pause(state, config, at)`` runs a
    # booted run up to simulated time ``at`` and returns a
    # ``repro.ckpt.PausedRun`` — the hook behind ``repro snapshot``.
    pause: Optional[Callable[[Any, Any, float], Any]] = None
    # Branch-at-injection support (optional): a ``Brancher`` whose
    # ``group(config)`` keys configs sharing one common prefix,
    # ``plan(state, configs)`` resolves each run's fork gate, and
    # ``parent(state, config, controller)`` drives the shared prefix,
    # forking one child per run at its gate (see repro.ckpt.branch).
    brancher: Optional[Any] = None


_REGISTRY: Dict[str, Experiment] = {}
_LOADED = False


def register(experiment: Experiment) -> Experiment:
    if experiment.name in _REGISTRY:
        raise ValueError("experiment %r already registered"
                         % experiment.name)
    _REGISTRY[experiment.name] = experiment
    return experiment


def _ensure_loaded() -> None:
    global _LOADED
    if not _LOADED:
        _LOADED = True
        from . import experiments  # noqa: F401  (registers on import)


def get_experiment(name: str) -> Experiment:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError("no experiment named %r (have: %s)"
                       % (name, ", ".join(experiment_names())))


def all_experiments() -> List[Experiment]:
    """Registered experiments, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def experiment_names() -> List[str]:
    _ensure_loaded()
    return list(_REGISTRY)
