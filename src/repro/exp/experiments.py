"""Every experiment of the evaluation, registered declaratively.

Each ``register(Experiment(...))`` below replaces what used to be a
hand-built CLI subcommand plus its own ad-hoc fan-out loop: the SWIFI
campaigns (Table 1, §5.2 effectiveness, fault surface), the netfault
sweep, the GM-vs-FTGM metric and figure benchmarks (Tables 2/3,
Figs. 4/5/7/8/9) and the perf microbenchmarks.  The shared machinery —
spec expansion, process-pool fan-out, journaling/resume, manifests —
lives in :mod:`repro.exp.runner`; this module only declares *what* each
experiment runs and how its outcomes aggregate and render.

All ``run_one`` functions are picklable module-level callables so every
experiment parallelizes over :func:`repro.exp.runner.run_many`.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List

from ..ckpt.branch import Brancher
from ..faults.campaign import (
    CampaignResult,
    aggregate_effectiveness,
)
from ..faults.injector import (
    InjectionConfig,
    boot_injection,
    injection_family,
    injection_group,
    plan_injection_runs,
    resume_injection,
    run_injection,
)
from ..faults.outcomes import InjectionOutcome
from ..faults.surface import analyze_surface
from ..load.chaos import (
    SLO_SCENARIOS,
    SloChaosCampaignResult,
    SloChaosConfig,
    SloChaosOutcome,
    boot_slo_chaos,
    resume_slo_chaos,
    run_slo_chaos,
    slo_chaos_family,
)
from ..load.profiles import PROFILE_NAMES
from ..load.slo import SloSpec
from ..netfaults.campaign import (
    NET_SCENARIOS,
    NetFaultCampaignResult,
    NetFaultConfig,
    NetFaultOutcome,
    boot_netfault,
    netfault_family,
    netfault_group,
    plan_netfault_runs,
    resume_netfault,
    run_netfault_injection,
)
from ..netfaults.clos import (
    CLOS_SCENARIOS,
    ClosFaultCampaignResult,
    ClosFaultConfig,
    boot_closfault,
    closfault_family,
    closfault_group,
    cross_fabric_pairs,
    plan_closfault_runs,
    resume_closfault,
    run_closfault_injection,
)
from ..workloads.allsize import BandwidthResult
from ..workloads.pingpong import PingPongResult
from ..workloads.recovery import RecoveryExperiment
from ..workloads.utilization import UtilizationResult
from .registry import Experiment, Option, register
from .results import typed_decoder
from .runner import derive_run_seed
from .spec import (
    ClusterSpec,
    ExperimentSpec,
    FaultSpec,
    ScenarioSpec,
    WorkloadSpec,
    freeze_params,
    thaw_params,
)

__all__: List[str] = []      # everything is reached through the registry


def _get(params: Dict[str, Any], key: str, default: Any) -> Any:
    value = params.get(key)
    return default if value is None else value


def _identity(rendered: str) -> str:
    return rendered


# -- checkpoint / branch hooks -------------------------------------------------
#
# ``pause`` runs a booted run to a simulated instant and hands back a
# PausedRun (the hook behind ``repro snapshot``); a ``Brancher`` drives
# one shared prefix per group and forks a child per run at its gate (the
# hook behind ``repro run --branch-at injection``).  Module-level defs,
# like every other registered callable.


def _injection_pause(state, config, at):
    return resume_injection(state, config, pause_at=at)


def _injection_parent(state, config, controller):
    return resume_injection(state, config, branch=controller)


_INJECTION_BRANCHER = Brancher(group=injection_group,
                               plan=plan_injection_runs,
                               parent=_injection_parent)


def _netfault_pause(state, config, at):
    return resume_netfault(state, config, pause_at=at)


def _netfault_parent(state, config, controller):
    return resume_netfault(state, config, branch=controller)


_NETFAULT_BRANCHER = Brancher(group=netfault_group,
                              plan=plan_netfault_runs,
                              parent=_netfault_parent)


def _closfault_pause(state, config, at):
    return resume_closfault(state, config, pause_at=at)


def _closfault_parent(state, config, controller):
    return resume_closfault(state, config, branch=controller)


_CLOSFAULT_BRANCHER = Brancher(group=closfault_group,
                               plan=plan_closfault_runs,
                               parent=_closfault_parent)


def _slo_chaos_pause(state, config, at):
    return resume_slo_chaos(state, config, pause_at=at)


# -- SWIFI campaigns: table1 / effectiveness / surface -------------------------


def _swifi_spec(name: str, params: Dict[str, Any], *, flavor: str,
                default_runs: int, small_runs: int,
                default_seed: int) -> ExperimentSpec:
    # --scale small shrinks the default campaign for smoke tests and CI;
    # an explicit --runs always wins, and the default "full" scale keeps
    # the spec byte-identical to the pre---scale era.
    scale = _get(params, "scale", "full")
    runs = _get(params, "runs",
                small_runs if scale == "small" else default_runs)
    seed = _get(params, "seed", default_seed)
    messages = _get(params, "messages", 16)
    return ExperimentSpec(
        experiment=name, seed=seed, runs=runs,
        scenarios=(ScenarioSpec(
            name="send_chunk-bitflip", runs=runs,
            cluster=ClusterSpec(n_nodes=2, flavor=flavor,
                                interpreted_nodes=(0,)),
            workload=WorkloadSpec(kind="stream", messages=messages,
                                  message_bytes=256),
            fault=FaultSpec(kind="bitflip",
                            params=freeze_params(
                                {"section": "send_chunk"}))),),
        params=freeze_params({"flavor": flavor, "messages": messages}))


def _swifi_expand(spec: ExperimentSpec) -> List[InjectionConfig]:
    flavor = spec.param("flavor", "gm")
    messages = spec.param("messages", 16)
    return [InjectionConfig(run_id=run_id,
                            seed=derive_run_seed(spec.seed, run_id),
                            flavor=flavor, messages=messages)
            for run_id in range(spec.runs)]


def _campaign_aggregate(spec: ExperimentSpec,
                        outcomes: List[InjectionOutcome]) -> CampaignResult:
    return CampaignResult(spec.runs, outcomes)


def _campaign_summary(result: CampaignResult) -> Dict[str, Any]:
    return {"runs": result.runs, "counts": dict(result.counts)}


register(Experiment(
    name="table1",
    help="fault-injection campaign",
    build_spec=lambda params: _swifi_spec("table1", params, flavor="gm",
                                          default_runs=150, small_runs=12,
                                          default_seed=2003),
    expand=_swifi_expand,
    run_one=run_injection,
    aggregate=_campaign_aggregate,
    render=CampaignResult.render,
    decode=typed_decoder(InjectionOutcome),
    summarize=_campaign_summary,
    options=(Option("runs", "--runs", int, None,
                    "injection runs (default 150; 12 at --scale small)"),
             Option("seed", "--seed", int, 2003, "campaign base seed"),
             Option("scale", "--scale", str, "full",
                    "campaign size; 'small' trims the default runs "
                    "for smoke tests (explicit --runs wins)",
                    ("small", "full"))),
    progress_every=25,
    progress_fmt="  ... %d/%d runs",
    boot=boot_injection,
    resume=resume_injection,
    boot_family=injection_family,
    pause=_injection_pause,
    brancher=_INJECTION_BRANCHER,
))


def _effectiveness_aggregate(spec, outcomes):
    return aggregate_effectiveness(spec.runs, outcomes)


register(Experiment(
    name="effectiveness",
    help="FTGM recovery coverage (section 5.2)",
    build_spec=lambda params: _swifi_spec("effectiveness", params,
                                          flavor="ftgm",
                                          default_runs=80, small_runs=10,
                                          default_seed=7001),
    expand=_swifi_expand,
    run_one=run_injection,
    aggregate=_effectiveness_aggregate,
    render=lambda result: result.render(),
    decode=typed_decoder(InjectionOutcome),
    summarize=asdict,
    options=(Option("runs", "--runs", int, None,
                    "injection runs (default 80; 10 at --scale small)"),
             Option("seed", "--seed", int, 7001, "campaign base seed"),
             Option("scale", "--scale", str, "full",
                    "campaign size; 'small' trims the default runs "
                    "for smoke tests (explicit --runs wins)",
                    ("small", "full"))),
    boot=boot_injection,
    resume=resume_injection,
    boot_family=injection_family,
    pause=_injection_pause,
    brancher=_INJECTION_BRANCHER,
))


def _surface_aggregate(spec, outcomes):
    return CampaignResult(spec.runs, outcomes), analyze_surface(outcomes)


def _surface_render(aggregate) -> str:
    campaign, report = aggregate
    return campaign.render() + "\n\n" + report.render()


def _surface_summary(aggregate) -> Dict[str, Any]:
    campaign, report = aggregate
    return {"runs": campaign.runs, "counts": dict(campaign.counts),
            "fields": {name: dict(row)
                       for name, row in report.table.items()}}


register(Experiment(
    name="surface",
    help="fault outcomes by corrupted instruction field",
    build_spec=lambda params: _swifi_spec("surface", params, flavor="gm",
                                          default_runs=150, small_runs=12,
                                          default_seed=6007),
    expand=_swifi_expand,
    run_one=run_injection,
    aggregate=_surface_aggregate,
    render=_surface_render,
    decode=typed_decoder(InjectionOutcome),
    summarize=_surface_summary,
    options=(Option("runs", "--runs", int, None,
                    "injection runs (default 150; 12 at --scale small)"),
             Option("seed", "--seed", int, 6007, "campaign base seed"),
             Option("scale", "--scale", str, "full",
                    "campaign size; 'small' trims the default runs "
                    "for smoke tests (explicit --runs wins)",
                    ("small", "full"))),
    boot=boot_injection,
    resume=resume_injection,
    boot_family=injection_family,
    pause=_injection_pause,
    brancher=_INJECTION_BRANCHER,
))


# -- netfaults: link/switch fault sweep ----------------------------------------


def _netfaults_spec(params: Dict[str, Any]) -> ExperimentSpec:
    scenarios = tuple(_get(params, "scenarios", NET_SCENARIOS))
    runs_per_scenario = _get(params, "runs_per_scenario", 5)
    n_nodes = _get(params, "nodes", 4)
    topology = _get(params, "topology", "ring")
    messages = _get(params, "messages", 12)
    return ExperimentSpec(
        experiment="netfaults",
        seed=_get(params, "seed", 2003),
        runs=runs_per_scenario * len(scenarios),
        scenarios=tuple(ScenarioSpec(
            name=scenario, runs=runs_per_scenario,
            cluster=ClusterSpec(n_nodes=n_nodes, flavor="ftgm",
                                topology=topology, n_switches=2),
            workload=WorkloadSpec(kind="cross-pairs", messages=messages,
                                  message_bytes=512),
            fault=FaultSpec(kind=scenario))
            for scenario in scenarios))


def _netfaults_expand(spec: ExperimentSpec) -> List[NetFaultConfig]:
    configs: List[NetFaultConfig] = []
    run_id = 0
    for scenario in spec.scenarios:
        for _ in range(scenario.runs):
            configs.append(NetFaultConfig(
                run_id=run_id,
                seed=derive_run_seed(spec.seed, run_id),
                scenario=scenario.fault.kind,
                n_nodes=scenario.cluster.n_nodes,
                topology=scenario.cluster.topology,
                messages=scenario.workload.messages))
            run_id += 1
    return configs


def _netfaults_aggregate(spec, outcomes) -> NetFaultCampaignResult:
    return NetFaultCampaignResult(spec.seed, outcomes)


def _netfaults_summary(result: NetFaultCampaignResult) -> Dict[str, Any]:
    return {"counts": {scenario: dict(row)
                       for scenario, row in result.counts.items()}}


register(Experiment(
    name="netfaults",
    help="link/switch fault campaign with reroute recovery",
    build_spec=_netfaults_spec,
    expand=_netfaults_expand,
    run_one=run_netfault_injection,
    aggregate=_netfaults_aggregate,
    render=NetFaultCampaignResult.render,
    decode=typed_decoder(NetFaultOutcome),
    summarize=_netfaults_summary,
    options=(Option("runs_per_scenario", "--runs-per-scenario", int, 5,
                    "runs per scenario (default 5)",
                    legacy_flag="--runs"),
             Option("seed", "--seed", int, 2003, "campaign base seed"),
             Option("nodes", "--nodes", int, 4, "cluster size"),
             Option("topology", "--topology", str, "ring",
                    "fabric shape", choices=("ring", "tree"))),
    progress_every=4,
    progress_fmt="  ... %d runs done",
    boot=boot_netfault,
    resume=resume_netfault,
    boot_family=netfault_family,
    pause=_netfault_pause,
    brancher=_NETFAULT_BRANCHER,
))


# -- closfault: correlated faults on Clos/fat-tree fabrics ---------------------


def _closfault_spec(params: Dict[str, Any]) -> ExperimentSpec:
    # --scale small trims the grid to the CI smoke cell: one scenario,
    # FTGM only (explicit options win, as everywhere).
    scale = _get(params, "scale", "full")
    small = scale == "small"
    scenarios = tuple(_get(params, "scenarios",
                           ["rack-loss"] if small else CLOS_SCENARIOS))
    flavors: tuple = ("ftgm",) if small else ("ftgm", "gm")
    runs_per_cell = _get(params, "runs_per_cell", 1)
    n_nodes = _get(params, "nodes", 16)
    topology = _get(params, "topology", "fat-tree")
    radix = _get(params, "radix", 4)
    messages = _get(params, "messages", 6)
    n_pairs = _get(params, "pairs", 2)
    return ExperimentSpec(
        experiment="closfault",
        seed=_get(params, "seed", 2003),
        runs=runs_per_cell * len(scenarios) * len(flavors),
        scenarios=tuple(ScenarioSpec(
            name="%s/%s" % (scenario, flavor), runs=runs_per_cell,
            cluster=ClusterSpec(n_nodes=n_nodes, flavor=flavor,
                                topology=topology, n_switches=2,
                                radix=radix),
            workload=WorkloadSpec(kind="cross-fabric-pairs",
                                  messages=messages, message_bytes=512,
                                  params=freeze_params(
                                      {"pairs": n_pairs})),
            fault=FaultSpec(kind=scenario))
            for scenario in scenarios for flavor in flavors))


def _closfault_expand(spec: ExperimentSpec) -> List[ClosFaultConfig]:
    configs: List[ClosFaultConfig] = []
    run_id = 0
    for scenario in spec.scenarios:
        flavor = scenario.name.split("/")[1]
        cluster = scenario.cluster
        pairs = cross_fabric_pairs(
            cluster.n_nodes, topology=cluster.topology,
            radix=cluster.radix or 8, n_spines=cluster.n_switches or 2,
            n_pairs=thaw_params(scenario.workload.params).get("pairs", 2))
        for _ in range(scenario.runs):
            configs.append(ClosFaultConfig(
                run_id=run_id,
                seed=derive_run_seed(spec.seed, run_id),
                scenario=scenario.name,
                flavor=flavor,
                n_nodes=cluster.n_nodes,
                topology=cluster.topology,
                n_switches=cluster.n_switches,
                radix=cluster.radix,
                pairs=tuple(pairs),
                messages=scenario.workload.messages))
            run_id += 1
    return configs


def _closfault_aggregate(spec, outcomes) -> ClosFaultCampaignResult:
    return ClosFaultCampaignResult(spec.seed, outcomes)


def _closfault_summary(result: ClosFaultCampaignResult) -> Dict[str, Any]:
    return {"counts": {cell: dict(row)
                       for cell, row in result.counts.items()}}


register(Experiment(
    name="closfault",
    help="correlated fault campaign on a Clos/fat-tree fabric, "
         "FT on vs off",
    build_spec=_closfault_spec,
    expand=_closfault_expand,
    run_one=run_closfault_injection,
    aggregate=_closfault_aggregate,
    render=ClosFaultCampaignResult.render,
    decode=typed_decoder(NetFaultOutcome),
    summarize=_closfault_summary,
    options=(Option("runs_per_cell", "--runs-per-cell", int, 1,
                    "runs per scenario x flavor cell (default 1)",
                    legacy_flag="--runs"),
             Option("seed", "--seed", int, 2003, "campaign base seed"),
             Option("nodes", "--nodes", int, 16, "cluster size"),
             Option("radix", "--radix", int, 4,
                    "switch port count of the generated fabric"),
             Option("topology", "--topology", str, "fat-tree",
                    "fabric shape", choices=("fat-tree", "clos")),
             Option("pairs", "--pairs", int, 2,
                    "cross-fabric workload pairs"),
             Option("messages", "--messages", int, 6,
                    "messages per directed pair"),
             Option("scale", "--scale", str, "full",
                    "grid size; 'small' keeps rack-loss/ftgm only "
                    "(explicit options win)", ("small", "full"))),
    progress_every=2,
    progress_fmt="  ... %d/%d runs",
    boot=boot_closfault,
    resume=resume_closfault,
    boot_family=closfault_family,
    pause=_closfault_pause,
    brancher=_CLOSFAULT_BRANCHER,
))


# -- slo-chaos: SLO-graded load plane with netfault overlay --------------------


def _slo_chaos_spec(params: Dict[str, Any]) -> ExperimentSpec:
    # --scale small shrinks the sweep to the control cell plus one fault
    # scenario over a shorter profile (CI smoke); explicit options win.
    scale = _get(params, "scale", "full")
    small = scale == "small"
    scenarios = tuple(_get(params, "scenarios",
                           ["baseline", "link-cut"] if small
                           else SLO_SCENARIOS))
    runs_per_cell = _get(params, "runs_per_cell", 1)
    n_nodes = _get(params, "nodes", 4)
    topology = _get(params, "topology", "ring")
    clients = _get(params, "clients", 4 if small else 8)
    profile = _get(params, "profile", "staged-ramp")
    peak_rate = _get(params, "peak_rate", 800.0 if small else 1_500.0)
    duration_us = _get(params, "duration_us",
                       120_000.0 if small else 400_000.0)
    return ExperimentSpec(
        experiment="slo-chaos",
        seed=_get(params, "seed", 2003),
        runs=runs_per_cell * len(scenarios) * 2,
        scenarios=tuple(ScenarioSpec(
            name="%s/%s" % (scenario, flavor), runs=runs_per_cell,
            cluster=ClusterSpec(n_nodes=n_nodes, flavor=flavor,
                                topology=topology, n_switches=2),
            workload=WorkloadSpec(
                kind="open-loop", messages=0, message_bytes=0,
                params=freeze_params({
                    "clients": clients, "profile": profile,
                    "peak_rate": peak_rate,
                    "duration_us": duration_us})),
            fault=FaultSpec(kind=scenario))
            for scenario in scenarios for flavor in ("ftgm", "gm")),
        params=freeze_params({"slo": SloSpec().to_dict()}))


def _slo_chaos_expand(spec: ExperimentSpec) -> List[SloChaosConfig]:
    slo = SloSpec.from_dict(spec.param("slo", {}))
    configs: List[SloChaosConfig] = []
    run_id = 0
    for scenario in spec.scenarios:
        load = thaw_params(scenario.workload.params)
        for _ in range(scenario.runs):
            configs.append(SloChaosConfig(
                run_id=run_id,
                seed=derive_run_seed(spec.seed, run_id),
                scenario=scenario.fault.kind,
                flavor=scenario.cluster.flavor,
                n_nodes=scenario.cluster.n_nodes,
                topology=scenario.cluster.topology,
                n_switches=scenario.cluster.n_switches,
                clients=load.get("clients", 8),
                profile=load.get("profile", "staged-ramp"),
                peak_rate=load.get("peak_rate", 1_500.0),
                duration_us=load.get("duration_us", 400_000.0),
                slo=slo))
            run_id += 1
    return configs


def _slo_chaos_aggregate(spec, outcomes) -> SloChaosCampaignResult:
    return SloChaosCampaignResult(spec.seed, outcomes)


def _slo_chaos_summary(result: SloChaosCampaignResult) -> Dict[str, Any]:
    return {"verdicts": {cell: "pass" if all(r.verdict.passed
                                             for r in runs) else "fail"
                         for cell, runs in sorted(result.by_cell.items())}}


register(Experiment(
    name="slo-chaos",
    help="SLO-graded chaos: netfaults over open-loop load, FT on vs off",
    build_spec=_slo_chaos_spec,
    expand=_slo_chaos_expand,
    run_one=run_slo_chaos,
    aggregate=_slo_chaos_aggregate,
    render=SloChaosCampaignResult.render,
    decode=typed_decoder(SloChaosOutcome),
    summarize=_slo_chaos_summary,
    options=(Option("runs_per_cell", "--runs-per-cell", int, 1,
                    "runs per scenario x flavor cell (default 1)"),
             Option("seed", "--seed", int, 2003, "campaign base seed"),
             Option("nodes", "--nodes", int, 4, "cluster size"),
             Option("topology", "--topology", str, "ring",
                    "fabric shape", choices=("ring", "tree")),
             Option("clients", "--clients", int, None,
                    "load clients (default 8; 4 at --scale small)"),
             Option("peak_rate", "--peak-rate", float, None,
                    "plateau offered rate, msgs/s "
                    "(default 1500; 800 at --scale small)"),
             Option("profile", "--profile", str, "staged-ramp",
                    "load profile shape", choices=PROFILE_NAMES),
             Option("duration_us", "--duration-us", float, None,
                    "profile length in simulated us "
                    "(default 400000; 120000 at --scale small)"),
             Option("scale", "--scale", str, "full",
                    "sweep size; 'small' trims scenarios and profile "
                    "for smoke tests (explicit options win)",
                    ("small", "full"))),
    progress_every=2,
    progress_fmt="  ... %d/%d runs",
    boot=boot_slo_chaos,
    resume=resume_slo_chaos,
    boot_family=slo_chaos_family,
    pause=_slo_chaos_pause,
))


# -- table2: GM vs FTGM metric matrix ------------------------------------------

_TABLE2_TASKS = ("bandwidth/gm", "bandwidth/ftgm", "latency/gm",
                 "latency/ftgm", "util/gm", "util/ftgm")


def _table2_spec(params: Dict[str, Any]) -> ExperimentSpec:
    iterations = _get(params, "iterations", 25)
    return ExperimentSpec(
        experiment="table2", seed=0, runs=len(_TABLE2_TASKS),
        scenarios=tuple(ScenarioSpec(
            name=task, runs=1,
            cluster=ClusterSpec(n_nodes=2, flavor=task.split("/")[1]),
            workload=WorkloadSpec(kind=task.split("/")[0]))
            for task in _TABLE2_TASKS),
        params=freeze_params({"iterations": iterations}))


def _table2_expand(spec: ExperimentSpec) -> List[Dict[str, Any]]:
    iterations = spec.param("iterations", 25)
    return [{"task": task, "iterations": iterations}
            for task in _TABLE2_TASKS]


def _table2_run_one(config: Dict[str, Any]):
    from ..cluster import build_cluster_from_spec
    from ..workloads import measure_utilization, run_allsize, run_pingpong

    kind, flavor = config["task"].split("/")
    if kind == "bandwidth":
        return run_allsize(
            build_cluster_from_spec(ClusterSpec(flavor=flavor)),
            1 << 20, messages=5)
    if kind == "latency":
        return run_pingpong(
            build_cluster_from_spec(ClusterSpec(flavor=flavor)),
            64, iterations=config["iterations"])
    return measure_utilization(flavor, messages=60)


def _table2_aggregate(spec, outcomes):
    from ..analysis import Table2

    return Table2.from_outcomes(outcomes)


def _table2_summary(table) -> Dict[str, Any]:
    return {"rows": [list(row) for row in table.rows()]}


register(Experiment(
    name="table2",
    help="GM vs FTGM metrics",
    build_spec=_table2_spec,
    expand=_table2_expand,
    run_one=_table2_run_one,
    aggregate=_table2_aggregate,
    render=lambda table: table.render(),
    decode=typed_decoder(BandwidthResult, PingPongResult,
                         UtilizationResult),
    summarize=_table2_summary,
    options=(Option("iterations", "--iterations", int, 25,
                    "ping-pong iterations"),),
))


# -- table3 / fig9: controlled recovery experiments ----------------------------

_TABLE3_OFFSETS = (520.0, 610.0, 700.0, 790.0)


def _recovery_spec(name: str, offsets) -> ExperimentSpec:
    return ExperimentSpec(
        experiment=name, seed=0, runs=len(offsets),
        scenarios=tuple(ScenarioSpec(
            name="hang@%gus" % offset, runs=1,
            cluster=ClusterSpec(n_nodes=2, flavor="ftgm"),
            workload=WorkloadSpec(kind="stream", messages=30),
            fault=FaultSpec(kind="mcp-hang", params=freeze_params(
                {"hang_offset_us": offset})))
            for offset in offsets))


def _recovery_expand(spec: ExperimentSpec) -> List[Dict[str, Any]]:
    return [{"hang_offset_us": scenario.fault.params[0][1]}
            for scenario in spec.scenarios]


def _recovery_run_one(config: Dict[str, Any]) -> RecoveryExperiment:
    from ..workloads import run_recovery_experiment

    return run_recovery_experiment(hang_offset_us=config["hang_offset_us"])


def _table3_aggregate(spec, outcomes):
    from ..analysis import Table3

    return Table3.from_experiments(outcomes)


def _table3_summary(table) -> Dict[str, Any]:
    return {"rows": [list(row) for row in table.rows()],
            "total_us": table.total_us}


register(Experiment(
    name="table3",
    help="recovery-time components",
    build_spec=lambda params: _recovery_spec("table3", _TABLE3_OFFSETS),
    expand=_recovery_expand,
    run_one=_recovery_run_one,
    aggregate=_table3_aggregate,
    render=lambda table: table.render(),
    decode=typed_decoder(RecoveryExperiment),
    summarize=_table3_summary,
))


def _fig9_aggregate(spec, outcomes) -> str:
    from ..analysis import recovery_timeline, render_timeline

    experiment = outcomes[0]
    port_done = experiment.record.events_posted_at + experiment.per_port_us
    return render_timeline(recovery_timeline(experiment.fault_at,
                                             experiment.record, port_done))


register(Experiment(
    name="fig9",
    help="recovery timeline",
    build_spec=lambda params: _recovery_spec("fig9", (620.0,)),
    expand=_recovery_expand,
    run_one=_recovery_run_one,
    aggregate=_fig9_aggregate,
    render=_identity,
    decode=typed_decoder(RecoveryExperiment),
))


# -- fig7 / fig8: GM-vs-FTGM sweeps --------------------------------------------

_FIG7_SIZES = (256, 1024, 4096, 4097, 8192, 16384, 65536, 262144, 1048576)
_FIG8_SIZES = (1, 16, 64, 100, 256, 1024, 4096, 16384, 65536)


def _sweep_spec(name: str, sizes, knob: str, value: int) -> ExperimentSpec:
    return ExperimentSpec(
        experiment=name, seed=0, runs=2 * len(sizes),
        scenarios=tuple(ScenarioSpec(
            name=flavor, runs=len(sizes),
            cluster=ClusterSpec(n_nodes=2, flavor=flavor),
            workload=WorkloadSpec(
                kind="allsize" if name == "fig7" else "pingpong",
                params=freeze_params({"sizes": list(sizes), knob: value})))
            for flavor in ("gm", "ftgm")),
        params=freeze_params({knob: value}))


def _sweep_sizes(scenario: ScenarioSpec) -> List[int]:
    return thaw_params(scenario.workload.params)["sizes"]


def _fig7_expand(spec: ExperimentSpec) -> List[Dict[str, Any]]:
    messages = spec.param("messages", 20)
    return [{"series": scenario.cluster.flavor, "size": size,
             "messages": max(3, min(messages, (1 << 22) // max(size, 1)))}
            for scenario in spec.scenarios
            for size in _sweep_sizes(scenario)]


def _fig7_run_one(config: Dict[str, Any]) -> Dict[str, Any]:
    from ..cluster import build_cluster
    from ..workloads import run_allsize

    result = run_allsize(build_cluster(2, flavor=config["series"]),
                         config["size"], messages=config["messages"])
    return {"series": config["series"], "x": config["size"],
            "y": result.bandwidth_mb_s}


def _fig7_aggregate(spec, outcomes) -> str:
    from ..analysis import render_ascii, series_from_points, to_csv

    curves = series_from_points(outcomes)
    return render_ascii(curves, "Figure 7. Bandwidth GM vs FTGM",
                        "message length (bytes)", "MB/s") \
        + "\n\n" + to_csv(curves, "bytes")


register(Experiment(
    name="fig7",
    help="bandwidth curves",
    build_spec=lambda params: _sweep_spec(
        "fig7", _FIG7_SIZES, "messages", _get(params, "messages", 20)),
    expand=_fig7_expand,
    run_one=_fig7_run_one,
    aggregate=_fig7_aggregate,
    render=_identity,
    options=(Option("messages", "--messages", int, 20,
                    "messages per size"),),
))


def _fig8_expand(spec: ExperimentSpec) -> List[Dict[str, Any]]:
    iterations = spec.param("iterations", 25)
    return [{"series": scenario.cluster.flavor, "size": size,
             "iterations": iterations}
            for scenario in spec.scenarios
            for size in _sweep_sizes(scenario)]


def _fig8_run_one(config: Dict[str, Any]) -> Dict[str, Any]:
    from ..cluster import build_cluster
    from ..workloads import run_pingpong

    result = run_pingpong(build_cluster(2, flavor=config["series"]),
                          config["size"], iterations=config["iterations"])
    return {"series": config["series"], "x": config["size"],
            "y": result.half_rtt_us}


def _fig8_aggregate(spec, outcomes) -> str:
    from ..analysis import render_ascii, series_from_points, to_csv

    curves = series_from_points(outcomes)
    return render_ascii(curves, "Figure 8. Latency GM vs FTGM",
                        "message length (bytes)", "half-RTT (us)") \
        + "\n\n" + to_csv(curves, "bytes")


register(Experiment(
    name="fig8",
    help="latency curves",
    build_spec=lambda params: _sweep_spec(
        "fig8", _FIG8_SIZES, "iterations", _get(params, "iterations", 25)),
    expand=_fig8_expand,
    run_one=_fig8_run_one,
    aggregate=_fig8_aggregate,
    render=_identity,
    options=(Option("iterations", "--iterations", int, 25,
                    "ping-pong iterations"),),
))


# -- fig45: duplicate / lost message scenarios ---------------------------------

_FIG45_CASES = (
    ("Fig 4 duplicate, naive GM", 4, "gm"),
    ("Fig 4 duplicate, FTGM", 4, "ftgm"),
    ("Fig 5 lost message, naive GM", 5, "gm"),
    ("Fig 5 lost message, FTGM", 5, "ftgm"),
)


def _fig45_spec(params: Dict[str, Any]) -> ExperimentSpec:
    return ExperimentSpec(
        experiment="fig45", seed=0, runs=len(_FIG45_CASES),
        scenarios=tuple(ScenarioSpec(
            name=name, runs=1,
            cluster=ClusterSpec(n_nodes=2, flavor=flavor),
            fault=FaultSpec(kind="figure%d-crash" % figure))
            for name, figure, flavor in _FIG45_CASES))


def _fig45_expand(spec: ExperimentSpec) -> List[Dict[str, Any]]:
    return [{"name": name, "figure": figure, "flavor": flavor}
            for name, figure, flavor in _FIG45_CASES]


def _fig45_run_one(config: Dict[str, Any]) -> Dict[str, Any]:
    from ..faults.scenarios import run_figure4, run_figure5

    if config["figure"] == 4:
        bad = run_figure4(config["flavor"]).duplicate
    else:
        bad = run_figure5(config["flavor"]).lost
    return {"name": config["name"], "bad": bool(bad)}


def _fig45_aggregate(spec, outcomes) -> str:
    return "\n".join("%-32s %s" % (o["name"], "YES" if o["bad"] else "no")
                     for o in outcomes)


register(Experiment(
    name="fig45",
    help="duplicate/lost scenarios",
    build_spec=_fig45_spec,
    expand=_fig45_expand,
    run_one=_fig45_run_one,
    aggregate=_fig45_aggregate,
    render=_identity,
))


# -- perf: simulation-stack microbenchmarks ------------------------------------


def _perf_spec(params: Dict[str, Any]) -> ExperimentSpec:
    from .perfbench import BENCH_NAMES

    return ExperimentSpec(
        experiment="perf", seed=2003, runs=len(BENCH_NAMES),
        params=freeze_params({
            "campaign_runs": _get(params, "campaign_runs", 200),
            "campaign_workers": _get(params, "campaign_workers", 1),
            "quick": bool(_get(params, "quick", False)),
        }))


def _perf_expand(spec: ExperimentSpec) -> List[Dict[str, Any]]:
    from .perfbench import BENCH_NAMES

    return [{"bench": name,
             "quick": spec.param("quick", False),
             "campaign_runs": spec.param("campaign_runs", 200),
             "campaign_workers": spec.param("campaign_workers", 1)}
            for name in BENCH_NAMES]


def _perf_run_one(config: Dict[str, Any]) -> Dict[str, Any]:
    from .perfbench import run_bench

    return run_bench(config)


def _perf_aggregate(spec, outcomes) -> Dict[str, Any]:
    from .perfbench import BENCH_NAMES, environment_info

    results = dict(zip(BENCH_NAMES, outcomes))
    results.update(environment_info())
    return results


def _perf_render(results: Dict[str, Any]) -> str:
    from .perfbench import render_results

    return render_results(results)


def _perf_summary(results: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "kernel_timeouts_eps": results["kernel_timeouts"]["events_per_sec"],
        "kernel_wakeups_eps": results["kernel_wakeups"]["events_per_sec"],
        "lanai_instr_per_sec":
            results["lanai_interpreter"]["instr_per_sec"],
        "campaign_runs_per_sec": results["campaign"]["runs_per_sec"],
    }


register(Experiment(
    name="perf",
    help="simulation-stack microbenchmarks (timing, not paper data)",
    build_spec=_perf_spec,
    expand=_perf_expand,
    run_one=_perf_run_one,
    aggregate=_perf_aggregate,
    render=_perf_render,
    summarize=_perf_summary,
    options=(Option("campaign_runs", "--campaign-runs", int, 200,
                    "campaign benchmark size"),
             Option("campaign_workers", "--campaign-workers", int, 1,
                    "campaign benchmark pool size"),
             Option("quick", "--quick", bool, False,
                    "10x smaller sizes (CI smoke)")),
))
