"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the complete, frozen description of one
experiment: which registered experiment to run, the base seed, how many
runs, and (for matrix experiments) a tuple of :class:`ScenarioSpec`
entries each naming a cluster topology, a workload and a fault plan.
Specs round-trip losslessly through ``dict``/JSON — ``repro run
spec.json`` re-runs exactly what ``to_json()`` captured — and hash to a
stable :attr:`~ExperimentSpec.spec_hash` that run manifests and resume
journals use to pin results to the configuration that produced them.

Everything here is pure data: no simulator imports, no randomness.  The
expansion of a spec into per-run configs lives with each registered
experiment (:mod:`repro.exp.experiments`); the fan-out lives in
:mod:`repro.exp.runner`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Tuple

__all__ = [
    "ClusterSpec",
    "WorkloadSpec",
    "FaultSpec",
    "ScenarioSpec",
    "ExperimentSpec",
    "freeze_params",
    "thaw_params",
]

#: Hashable parameter bag: a sorted tuple of (name, value) pairs.
Params = Tuple[Tuple[str, Any], ...]


def _freeze_value(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze_value(v))
                            for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    return value


def _thaw_value(value: Any) -> Any:
    if isinstance(value, tuple):
        if value and all(isinstance(item, tuple) and len(item) == 2
                         and isinstance(item[0], str) for item in value):
            return {k: _thaw_value(v) for k, v in value}
        return [_thaw_value(v) for v in value]
    return value


def freeze_params(mapping: Mapping[str, Any]) -> Params:
    """A dict of JSON-able values -> hashable sorted tuple-of-pairs."""
    return tuple(sorted((str(k), _freeze_value(v))
                        for k, v in mapping.items()))


def thaw_params(params: Params) -> Dict[str, Any]:
    """Inverse of :func:`freeze_params` (tuples come back as lists)."""
    return {k: _thaw_value(v) for k, v in params}


@dataclass(frozen=True)
class ClusterSpec:
    """The cluster a run builds: shape, flavor, fabric topology."""

    n_nodes: int = 2
    flavor: str = "gm"                      # 'gm' | 'ftgm'
    topology: str = "star"       # 'star' | 'ring' | 'tree' | 'clos' | ...
    n_switches: int = 0                     # 0 = topology default
    interpreted_nodes: Tuple[int, ...] = ()
    radix: int = 0       # Clos/fat-tree switch port count; 0 = default

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "n_nodes": self.n_nodes,
            "flavor": self.flavor,
            "topology": self.topology,
            "n_switches": self.n_switches,
            "interpreted_nodes": list(self.interpreted_nodes),
        }
        # Emitted only when set: every spec predating the Clos/fat-tree
        # generators keeps its canonical JSON (and therefore spec_hash).
        if self.radix:
            data["radix"] = self.radix
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        return cls(
            n_nodes=data.get("n_nodes", 2),
            flavor=data.get("flavor", "gm"),
            topology=data.get("topology", "star"),
            n_switches=data.get("n_switches", 0),
            interpreted_nodes=tuple(data.get("interpreted_nodes", ())),
            radix=data.get("radix", 0),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """The traffic a run drives while the fault plan executes."""

    kind: str = "stream"        # stream | cross-pairs | allsize | pingpong...
    messages: int = 16
    message_bytes: int = 256
    params: Params = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "messages": self.messages,
            "message_bytes": self.message_bytes,
            "params": thaw_params(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        return cls(
            kind=data.get("kind", "stream"),
            messages=data.get("messages", 16),
            message_bytes=data.get("message_bytes", 256),
            params=freeze_params(data.get("params", {})),
        )


@dataclass(frozen=True)
class FaultSpec:
    """What gets broken, and how."""

    kind: str = "none"          # none | bitflip | link-cut | link-flap | ...
    params: Params = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": thaw_params(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(kind=data.get("kind", "none"),
                   params=freeze_params(data.get("params", {})))


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of an experiment matrix: cluster x workload x fault."""

    name: str = "default"
    runs: int = 1
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    fault: FaultSpec = field(default_factory=FaultSpec)
    params: Params = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "runs": self.runs,
            "cluster": self.cluster.to_dict(),
            "workload": self.workload.to_dict(),
            "fault": self.fault.to_dict(),
            "params": thaw_params(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            name=data.get("name", "default"),
            runs=data.get("runs", 1),
            cluster=ClusterSpec.from_dict(data.get("cluster", {})),
            workload=WorkloadSpec.from_dict(data.get("workload", {})),
            fault=FaultSpec.from_dict(data.get("fault", {})),
            params=freeze_params(data.get("params", {})),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """The full description of one experiment invocation.

    ``experiment`` names a registry entry; ``seed`` is the campaign base
    seed (run *i* derives its seed via
    :func:`repro.exp.runner.derive_run_seed`); ``runs`` is the total run
    count; ``scenarios`` carries the per-scenario matrix for sweep
    experiments; ``params`` holds experiment-specific knobs.
    """

    experiment: str
    seed: int = 0
    runs: int = 0
    scenarios: Tuple[ScenarioSpec, ...] = ()
    params: Params = ()

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return _thaw_value(value)
        return default

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "runs": self.runs,
            "scenarios": [s.to_dict() for s in self.scenarios],
            "params": thaw_params(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError("unknown ExperimentSpec fields: %s"
                             % ", ".join(sorted(unknown)))
        return cls(
            experiment=data["experiment"],
            seed=data.get("seed", 0),
            runs=data.get("runs", 0),
            scenarios=tuple(ScenarioSpec.from_dict(s)
                            for s in data.get("scenarios", ())),
            params=freeze_params(data.get("params", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) \
            + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    @property
    def spec_hash(self) -> str:
        """Stable 16-hex-digit digest of the canonical spec JSON."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
