"""The one deterministic fan-out every campaign, study and sweep uses.

:func:`run_many` owns the process-pool fan-out that
``faults.campaign._run_many`` and the netfaults campaign each used to
carry privately: every config runs hermetically (its own ``Simulator``,
its own seed), outcomes come back ordered by config index, and progress
is reported as **monotonic completed-count ticks** — ``1, 2, ..., N``
exactly once each — under ``workers=1`` and ``workers>1`` alike.

:func:`run_experiment` drives a whole declarative experiment: expand the
spec through its registry entry, fan the configs out, journal each
outcome as it completes (when given a journal path), aggregate, render,
and stamp a :class:`~repro.exp.results.RunManifest`.  A campaign killed
mid-flight resumes from its journal: re-invoking the same spec with the
same journal path skips the already-completed runs and finishes with
results byte-identical to an uninterrupted run.

Journal format (JSON lines)::

    {"journal": 1, "experiment": ..., "spec_hash": ..., "total": N}
    {"run": 0, "outcome": {...}}
    {"run": 3, "outcome": {...}}        # completion order, not run order

A torn final line (the process died mid-write) is ignored on load; a
header whose ``spec_hash`` does not match the spec being resumed raises
:class:`JournalMismatch` rather than silently mixing configurations.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from .results import ExperimentResult, RunManifest, encode_outcome
from .spec import ExperimentSpec

__all__ = [
    "derive_run_seed",
    "run_many",
    "run_experiment",
    "Journal",
    "JournalMismatch",
]

JOURNAL_VERSION = 1


def derive_run_seed(base_seed: int, run_id: int) -> int:
    """Per-run seed derivation: stable, collision-free, and identical to
    what the historic campaigns used, so same-seed results stay
    byte-identical across the refactor."""
    return base_seed + run_id


class JournalMismatch(ValueError):
    """The journal on disk belongs to a different spec."""


class Journal:
    """Append-only outcome journal backing resumable campaigns."""

    def __init__(self, path: str, spec: ExperimentSpec, total: int):
        self.path = path
        self.spec = spec
        self.total = total

    def load(self) -> Dict[int, Any]:
        """Encoded outcomes by run index; ``{}`` if no journal yet."""
        if not os.path.exists(self.path):
            return {}
        completed: Dict[int, Any] = {}
        with open(self.path) as fh:
            lines = fh.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except ValueError:
            raise JournalMismatch("journal %s has an unreadable header"
                                  % self.path)
        if header.get("journal") != JOURNAL_VERSION:
            raise JournalMismatch("journal %s has version %r, want %d"
                                  % (self.path, header.get("journal"),
                                     JOURNAL_VERSION))
        if header.get("spec_hash") != self.spec.spec_hash:
            raise JournalMismatch(
                "journal %s was written by spec %s; resuming spec %s "
                "would mix configurations — delete the journal or rerun "
                "the original spec"
                % (self.path, header.get("spec_hash"), self.spec.spec_hash))
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except ValueError:
                continue        # torn tail from a mid-write kill
            index = entry.get("run")
            if isinstance(index, int) and 0 <= index < self.total \
                    and "outcome" in entry:
                completed[index] = entry["outcome"]
        return completed

    def append(self, index: int, encoded_outcome: Any) -> None:
        new = not os.path.exists(self.path) \
            or os.path.getsize(self.path) == 0
        with open(self.path, "a") as fh:
            if new:
                fh.write(json.dumps({
                    "journal": JOURNAL_VERSION,
                    "experiment": self.spec.experiment,
                    "spec_hash": self.spec.spec_hash,
                    "total": self.total,
                }, sort_keys=True) + "\n")
            fh.write(json.dumps({"run": index,
                                 "outcome": encoded_outcome},
                                sort_keys=True) + "\n")
            fh.flush()


class _Ticker:
    """Serializes progress into strictly-increasing completed counts."""

    def __init__(self, progress: Optional[Callable[[int], None]],
                 already_done: int = 0):
        self.done = already_done
        self.progress = progress

    def tick(self) -> None:
        self.done += 1
        if self.progress is not None:
            self.progress(self.done)


def _invoke(runner: Callable[[Any], Any], item):
    index, config = item
    return index, runner(config)


def run_many(configs: Sequence[Any], runner: Callable[[Any], Any], *,
             workers: int = 1,
             progress: Optional[Callable[[int], None]] = None,
             completed: Optional[Dict[int, Any]] = None,
             on_outcome: Optional[Callable[[int, Any], None]] = None
             ) -> List[Any]:
    """Run every config through ``runner``; outcomes in config order.

    ``runner`` must be a picklable module-level function.  ``completed``
    maps config indices to already-known outcomes (a resumed journal);
    those configs are skipped.  ``on_outcome(index, outcome)`` fires in
    completion order for each *newly computed* outcome, before the
    progress tick for that run — so a journal line always lands before
    the tick that announces it.  ``progress(done)`` receives monotonic
    counts ``len(completed)+1 .. len(configs)`` in both serial and
    parallel modes.
    """
    completed = dict(completed or {})
    outcomes: List[Any] = [None] * len(configs)
    for index, outcome in completed.items():
        outcomes[index] = outcome
    pending = [(index, config) for index, config in enumerate(configs)
               if index not in completed]
    ticker = _Ticker(progress, already_done=len(configs) - len(pending))

    def record(index: int, outcome: Any) -> None:
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(index, outcome)
        ticker.tick()

    if workers <= 1 or len(pending) < 2:
        for index, config in pending:
            record(index, runner(config))
        return outcomes
    # fork (where available) shares the already-imported simulator
    # modules with the children; spawn re-imports and still works.
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else None
    ctx = multiprocessing.get_context(method)
    workers = min(workers, len(pending))
    chunksize = max(1, len(pending) // (workers * 4))
    with ctx.Pool(processes=workers) as pool:
        for index, outcome in pool.imap_unordered(
                partial(_invoke, runner), pending, chunksize):
            record(index, outcome)
    return outcomes


def run_experiment(spec: ExperimentSpec, *, workers: int = 1,
                   progress: Optional[Callable[[int], None]] = None,
                   journal_path: Optional[str] = None) -> ExperimentResult:
    """Expand, fan out, (optionally) journal, aggregate and render.

    With ``journal_path``, every completed run is appended to the
    journal as it finishes and an existing journal for the same spec is
    resumed — the combined result is byte-identical to a single
    uninterrupted run.  The journal file is left in place on completion
    so a finished campaign re-invokes as a pure cache hit.
    """
    from .registry import get_experiment

    experiment = get_experiment(spec.experiment)
    configs = experiment.expand(spec)
    completed: Dict[int, Any] = {}
    journal: Optional[Journal] = None
    if journal_path is not None:
        journal = Journal(journal_path, spec, total=len(configs))
        decode = experiment.decode or (lambda value: value)
        completed = {index: decode(encoded)
                     for index, encoded in journal.load().items()}
    on_outcome = None
    if journal is not None:
        def on_outcome(index: int, outcome: Any) -> None:
            journal.append(index, encode_outcome(outcome))
    started = time.perf_counter()
    outcomes = run_many(configs, experiment.run_one, workers=workers,
                        progress=progress, completed=completed,
                        on_outcome=on_outcome)
    wall = time.perf_counter() - started
    aggregate = experiment.aggregate(spec, outcomes)
    rendered = experiment.render(aggregate)
    summary = experiment.summarize(aggregate) \
        if experiment.summarize is not None else None
    manifest = RunManifest.collect(spec.spec_hash, spec.seed, wall)
    return ExperimentResult(spec=spec, manifest=manifest,
                            outcomes=outcomes, rendered=rendered,
                            summary=summary)
