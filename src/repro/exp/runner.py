"""The one deterministic fan-out every campaign, study and sweep uses.

:func:`run_many` owns the fan-out every campaign used to carry
privately: every config runs hermetically (its own ``Simulator``, its
own seed), outcomes come back ordered by config index, and progress is
reported as **monotonic completed-count ticks** — ``1, 2, ..., N``
exactly once each — under ``workers=1`` and ``workers>1`` alike.
Experiments that declare a :class:`ForkBoot` (a seed-independent shared
boot prefix plus a per-run resume) additionally run on a **fork-server**
where available: the prefix boots once per scenario family in a server
process and each run is an ``os.fork()`` copy-on-write child, which
amortizes identical cluster bring-up across hundreds of runs while
staying byte-identical to spawn-per-run.

:func:`run_experiment` drives a whole declarative experiment: expand the
spec through its registry entry, fan the configs out, journal each
outcome as it completes (when given a journal path), aggregate, render,
and stamp a :class:`~repro.exp.results.RunManifest`.  A campaign killed
mid-flight resumes from its journal: re-invoking the same spec with the
same journal path skips the already-completed runs and finishes with
results byte-identical to an uninterrupted run.

Journal format (JSON lines)::

    {"journal": 1, "experiment": ..., "spec_hash": ..., "total": N}
    {"run": 0, "outcome": {...}}
    {"run": 3, "outcome": {...}}        # completion order, not run order

A torn final line (the process died mid-write) is ignored on load; a
header whose ``spec_hash`` does not match the spec being resumed raises
:class:`JournalMismatch` rather than silently mixing configurations.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import selectors
import struct
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..sim.shard import SCHEDULES
from .results import ExperimentResult, RunManifest, encode_outcome
from .spec import ExperimentSpec

__all__ = [
    "derive_run_seed",
    "run_many",
    "run_branched",
    "run_experiment",
    "branch_supported",
    "ForkBoot",
    "forkserver_available",
    "Journal",
    "JournalMismatch",
]

JOURNAL_VERSION = 1


def derive_run_seed(base_seed: int, run_id: int) -> int:
    """Per-run seed derivation: stable, collision-free, and identical to
    what the historic campaigns used, so same-seed results stay
    byte-identical across the refactor."""
    return base_seed + run_id


class JournalMismatch(ValueError):
    """The journal on disk belongs to a different spec."""


class Journal:
    """Append-only outcome journal backing resumable campaigns."""

    def __init__(self, path: str, spec: ExperimentSpec, total: int):
        self.path = path
        self.spec = spec
        self.total = total

    def load(self) -> Dict[int, Any]:
        """Encoded outcomes by run index; ``{}`` if no journal yet."""
        if not os.path.exists(self.path):
            return {}
        completed: Dict[int, Any] = {}
        with open(self.path) as fh:
            lines = fh.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except ValueError:
            raise JournalMismatch("journal %s has an unreadable header"
                                  % self.path)
        if header.get("journal") != JOURNAL_VERSION:
            raise JournalMismatch("journal %s has version %r, want %d"
                                  % (self.path, header.get("journal"),
                                     JOURNAL_VERSION))
        if header.get("spec_hash") != self.spec.spec_hash:
            raise JournalMismatch(
                "journal %s was written by spec %s; resuming spec %s "
                "would mix configurations — delete the journal or rerun "
                "the original spec"
                % (self.path, header.get("spec_hash"), self.spec.spec_hash))
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except ValueError:
                continue        # torn tail from a mid-write kill
            index = entry.get("run")
            if isinstance(index, int) and 0 <= index < self.total \
                    and "outcome" in entry:
                completed[index] = entry["outcome"]
        return completed

    def append(self, index: int, encoded_outcome: Any) -> None:
        new = not os.path.exists(self.path) \
            or os.path.getsize(self.path) == 0
        with open(self.path, "a") as fh:
            if new:
                fh.write(json.dumps({
                    "journal": JOURNAL_VERSION,
                    "experiment": self.spec.experiment,
                    "spec_hash": self.spec.spec_hash,
                    "total": self.total,
                }, sort_keys=True) + "\n")
            fh.write(json.dumps({"run": index,
                                 "outcome": encoded_outcome},
                                sort_keys=True) + "\n")
            fh.flush()


class _Ticker:
    """Serializes progress into strictly-increasing completed counts."""

    def __init__(self, progress: Optional[Callable[[int], None]],
                 already_done: int = 0):
        self.done = already_done
        self.progress = progress

    def tick(self) -> None:
        self.done += 1
        if self.progress is not None:
            self.progress(self.done)


def _invoke(runner: Callable[[Any], Any], item):
    index, config = item
    return index, runner(config)


# -- telemetry wrapping --------------------------------------------------------
#
# When the CLI asks for metrics (`repro metrics`) or per-run traces
# (`--trace`), run_experiment swaps the registered run_one/resume for
# these wrappers via functools.partial — run_many itself is untouched,
# and with telemetry off no wrapper exists at all, so the hot path is
# byte-for-byte the pre-telemetry code.


class _TelemetryEnvelope:
    """A run's outcome plus its telemetry sidecar.

    Picklable (it crosses the pool and fork-server pipes) and
    unambiguous: no experiment outcome is an instance of this class, so
    unwrapping is a plain isinstance check.  Journal-resumed outcomes
    are *not* enveloped — their runs were computed in an earlier
    process, so their telemetry is absent by construction.
    """

    __slots__ = ("outcome", "snapshot", "trace", "timeseries", "flight")

    def __init__(self, outcome: Any, snapshot: Any, trace: Any,
                 timeseries: Any = None, flight: Any = None):
        self.outcome = outcome
        self.snapshot = snapshot
        self.trace = trace
        self.timeseries = timeseries
        self.flight = flight


def _unwrap_outcome(outcome: Any) -> Any:
    if isinstance(outcome, _TelemetryEnvelope):
        return outcome.outcome
    return outcome


def _flight_payload(flight_dir: Optional[str],
                    outcome: Any) -> Optional[Dict[str, Any]]:
    """Classify the finished run; a triggered ring report or None.

    Runs in the run's own process (serial, pool worker or forked
    child), where the ring and the outcome both live; the parent takes
    the anomaly-instant snapshot later, from the report's ``at_us``.
    """
    if flight_dir is None:
        return None
    from ..obs import runtime as obs_runtime
    from ..obs.flightrec import classify_anomaly

    recorder = obs_runtime.active_flight()
    if recorder is None:
        return None
    reason = classify_anomaly(outcome)
    if reason is None:
        return None
    return recorder.report(reason)


def _flight_exception(flight_dir: Optional[str], config: Any,
                      exc: BaseException) -> None:
    """Best-effort ring dump for a run that raised (child side)."""
    if flight_dir is None:
        return
    from ..obs import runtime as obs_runtime
    from ..obs.flightrec import dump_exception

    recorder = obs_runtime.active_flight()
    if recorder is None:
        return
    try:
        dump_exception(flight_dir, config, recorder, exc)
    except OSError:
        pass


def _telemetry_invoke(run_one: Callable[[Any], Any], metrics: bool,
                      tracing: bool, sample_every: Optional[float],
                      flight_dir: Optional[str],
                      config: Any) -> "_TelemetryEnvelope":
    """run_one, bracketed by a per-run telemetry scope."""
    from ..obs import runtime as obs_runtime

    obs_runtime.configure(metrics=metrics, tracing=tracing,
                          sample_every=sample_every, flight_dir=flight_dir)
    obs_runtime.begin_run()
    try:
        outcome = run_one(config)
    except BaseException as exc:
        _flight_exception(flight_dir, config, exc)
        raise
    return _TelemetryEnvelope(outcome, obs_runtime.collect(),
                              obs_runtime.take_trace(),
                              obs_runtime.take_timeseries(),
                              _flight_payload(flight_dir, outcome))


def _telemetry_resume(resume: Callable[[Any, Any], Any], metrics: bool,
                      tracing: bool, sample_every: Optional[float],
                      flight_dir: Optional[str], state: Any,
                      config: Any) -> "_TelemetryEnvelope":
    """Fork-server counterpart of :func:`_telemetry_invoke`."""
    from ..obs import runtime as obs_runtime

    obs_runtime.configure(metrics=metrics, tracing=tracing,
                          sample_every=sample_every, flight_dir=flight_dir)
    obs_runtime.begin_run()
    try:
        outcome = resume(state, config)
    except BaseException as exc:
        _flight_exception(flight_dir, config, exc)
        raise
    return _TelemetryEnvelope(outcome, obs_runtime.collect(),
                              obs_runtime.take_trace(),
                              obs_runtime.take_timeseries(),
                              _flight_payload(flight_dir, outcome))


# -- fork-server execution -----------------------------------------------------


@dataclass
class ForkBoot:
    """The forkable shared prefix of an experiment's runs.

    Every run of a scenario family performs an identical, seed-independent
    boot (cluster build, MCP load, port bring-up) before anything
    seed-dependent happens.  A fork-server boots that prefix **once** per
    family and ``os.fork()``\\ s a copy-on-write child per run; the child
    seeds its per-run RNG from its own config and finishes the run.  For
    this to be byte-identical to spawn-per-run, ``boot`` must depend only
    on the family key — never on the per-run seed — and must not consume
    any per-run randomness or simulation ids.

    ``family(config)`` maps a config to the hashable key naming its boot.
    ``boot(config)`` builds the shared state (run in the server process).
    ``resume(state, config)`` completes one run (run in a forked child).
    """

    family: Callable[[Any], Any]
    boot: Callable[[Any], Any]
    resume: Callable[[Any, Any], Any]


def forkserver_available() -> bool:
    """True when the fork-server executor can and may be used here.

    ``REPRO_FORKSERVER=0`` disables it (the ``--no-forkserver`` escape
    hatch); ``REPRO_MP_START_METHOD=spawn`` forces the portable
    spawn-per-run path (the CI fallback leg); otherwise any POSIX with
    ``os.fork`` qualifies.
    """
    if os.environ.get("REPRO_FORKSERVER", "1") == "0":
        return False
    if os.environ.get("REPRO_MP_START_METHOD", "fork") != "fork":
        return False
    return hasattr(os, "fork")


def _write_frame(fd: int, obj: Any) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    os.write(fd, struct.pack("!I", len(payload)) + payload)


def _read_exact(fd: int, n: int) -> bytes:
    chunks = []
    while n:
        chunk = os.read(fd, n)
        if not chunk:
            raise EOFError("fork-server pipe closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _read_frame(fd: int) -> Optional[Any]:
    """Next frame from ``fd``, or None on a clean EOF."""
    try:
        header = _read_exact(fd, 4)
    except EOFError:
        return None
    (length,) = struct.unpack("!I", header)
    return pickle.loads(_read_exact(fd, length))


def _child_run(fork_boot: ForkBoot, state: Any, index: int, config: Any,
               out_fd: int) -> None:
    """Forked child: finish one run, ship the outcome, exit hard.

    ``os._exit`` skips atexit/GC teardown that belongs to the server —
    the child's only side effect must be the frame it writes.
    """
    try:
        outcome = fork_boot.resume(state, config)
        frame = (index, "ok", outcome)
    except BaseException as exc:  # noqa: BLE001 — relayed to the parent
        frame = (index, "err", "%s: %s" % (type(exc).__name__, exc))
    try:
        _write_frame(out_fd, frame)
    finally:
        os.close(out_fd)
        os._exit(0)


def _serve_family(items: List, fork_boot: ForkBoot, workers: int,
                  result_fd: int) -> None:
    """Fork-server body: boot once, fork one child per pending run.

    Children write to per-run pipes; the server relays completed frames
    to the parent in completion order.  Up to ``workers`` children run
    concurrently.
    """
    state = fork_boot.boot(items[0][1])
    sel = selectors.DefaultSelector()
    buffers: Dict[int, List[bytes]] = {}
    pids: Dict[int, int] = {}
    live = 0
    queue = list(items)

    def launch(index: int, config: Any) -> None:
        nonlocal live
        r_fd, w_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            sel.close()
            os.close(r_fd)
            os.close(result_fd)
            _child_run(fork_boot, state, index, config, w_fd)
        os.close(w_fd)
        buffers[r_fd] = []
        pids[r_fd] = pid
        sel.register(r_fd, selectors.EVENT_READ)
        live += 1

    def reap(r_fd: int) -> None:
        nonlocal live
        sel.unregister(r_fd)
        os.close(r_fd)
        os.waitpid(pids.pop(r_fd), 0)
        live -= 1
        data = b"".join(buffers.pop(r_fd))
        if data:
            os.write(result_fd, data)
        else:       # child died before writing its frame
            _write_frame(result_fd, (-1, "err", "fork-server child died "
                                     "without reporting an outcome"))

    while queue or live:
        while queue and live < max(1, workers):
            index, config = queue.pop(0)
            launch(index, config)
        for key, _events in sel.select():
            chunk = os.read(key.fd, 1 << 16)
            if chunk:
                buffers[key.fd].append(chunk)
            else:
                reap(key.fd)
    sel.close()


def _run_forkserver(pending: List, fork_boot: ForkBoot, workers: int,
                    record: Callable[[int, Any], None]) -> None:
    """Group pending runs by boot family; one fork-server per family."""
    families: Dict[Any, List] = {}
    for index, config in pending:
        families.setdefault(fork_boot.family(config),
                            []).append((index, config))
    for items in families.values():
        r_fd, w_fd = os.pipe()
        server_pid = os.fork()
        if server_pid == 0:
            status = 1
            try:
                os.close(r_fd)
                _serve_family(items, fork_boot, workers, w_fd)
                status = 0
            finally:
                os.close(w_fd)
                os._exit(status)
        os.close(w_fd)
        got = 0
        try:
            while True:
                frame = _read_frame(r_fd)
                if frame is None:
                    break
                index, tag, payload = frame
                if tag != "ok":
                    raise RuntimeError("fork-server run %d failed: %s"
                                       % (index, payload))
                record(index, payload)
                got += 1
        finally:
            os.close(r_fd)
            os.waitpid(server_pid, 0)
        if got != len(items):
            raise RuntimeError(
                "fork-server family returned %d of %d outcomes"
                % (got, len(items)))


# -- branch-at-injection execution ---------------------------------------------


def branch_supported(experiment) -> bool:
    """True when ``experiment`` can run branch-at-injection here."""
    from ..ckpt.branch import branching_available

    return (experiment.brancher is not None
            and experiment.boot is not None
            and branching_available())


def _serve_branch_group(items: List, experiment, workers: int,
                        result_fd: int, telemetry: bool,
                        trace: bool) -> None:
    """Branch-group server body: boot once, run the shared live prefix,
    fork one copy-on-write child per run at its gate.

    The parent process *is* the shared prefix: it executes the gated
    resume with the group's template config, never injecting anything,
    and ``BranchController`` forks a child per plan at that run's gate.
    Children finish their runs naturally, spool their outcome frames
    (atomic rename — no pipe to deadlock against a parent that is deep
    inside the simulation), and the parent relays reaped frames to
    ``result_fd`` in completion order.
    """
    import shutil
    import tempfile

    from ..ckpt.branch import BranchController

    brancher = experiment.brancher
    template = items[0][1]
    state = experiment.boot(template)
    plans = brancher.plan(state, items)
    spool_dir = tempfile.mkdtemp(prefix="repro-branch-")
    ctl = BranchController(plans, workers, spool_dir)
    ctl.on_frame = lambda data: os.write(result_fd, data)
    telemetry_on = telemetry or trace
    if telemetry_on:
        from ..obs import runtime as obs_runtime
        obs_runtime.configure(metrics=telemetry, tracing=trace)
        obs_runtime.begin_run()
    try:
        outcome = brancher.parent(state, template, ctl)
    except BaseException as exc:  # noqa: BLE001 — relayed to the parent
        if ctl.child_plan is not None:
            ctl.ship_and_exit("err", "%s: %s"
                              % (type(exc).__name__, exc))
        raise
    if ctl.child_plan is not None:
        # Forked child: ship this run's real outcome and exit hard.
        payload = outcome
        if telemetry_on:
            from ..obs import runtime as obs_runtime
            payload = _TelemetryEnvelope(outcome, obs_runtime.collect(),
                                         obs_runtime.take_trace())
        ctl.ship_and_exit("ok", payload)
    # Parent: its clean, fault-free outcome is discarded by design.
    ctl.drain()
    shutil.rmtree(spool_dir, ignore_errors=True)


def _run_branched(pending: List, experiment, workers: int,
                  record: Callable[[int, Any], None], telemetry: bool,
                  trace: bool) -> None:
    """Group pending runs by branch group; one group server per group."""
    brancher = experiment.brancher
    groups: Dict[Any, List] = {}
    for index, config in pending:
        groups.setdefault(brancher.group(config),
                          []).append((index, config))
    for items in groups.values():
        r_fd, w_fd = os.pipe()
        server_pid = os.fork()
        if server_pid == 0:
            status = 1
            try:
                os.close(r_fd)
                _serve_branch_group(items, experiment, workers, w_fd,
                                    telemetry, trace)
                status = 0
            finally:
                os.close(w_fd)
                os._exit(status)
        os.close(w_fd)
        got = 0
        try:
            while True:
                frame = _read_frame(r_fd)
                if frame is None:
                    break
                index, tag, payload = frame
                if tag != "ok":
                    raise RuntimeError("branch run %d failed: %s"
                                       % (index, payload))
                record(index, payload)
                got += 1
        finally:
            os.close(r_fd)
            os.waitpid(server_pid, 0)
        if got != len(items):
            raise RuntimeError(
                "branch group returned %d of %d outcomes"
                % (got, len(items)))


def run_branched(configs: Sequence[Any], experiment, *, workers: int = 1,
                 progress: Optional[Callable[[int], None]] = None,
                 completed: Optional[Dict[int, Any]] = None,
                 on_outcome: Optional[Callable[[int, Any], None]] = None,
                 telemetry: bool = False, trace: bool = False
                 ) -> List[Any]:
    """Branch-at-injection counterpart of :func:`run_many`.

    Same contract — outcomes in config order, monotonic progress ticks,
    ``completed`` runs skipped, ``on_outcome`` in completion order — but
    runs execute as copy-on-write branches forked from each group's
    shared live prefix at the injection point.  Outcomes are
    byte-identical to the serial/pool/fork-server paths.
    """
    completed = dict(completed or {})
    outcomes: List[Any] = [None] * len(configs)
    for index, outcome in completed.items():
        outcomes[index] = outcome
    pending = [(index, config) for index, config in enumerate(configs)
               if index not in completed]
    ticker = _Ticker(progress, already_done=len(configs) - len(pending))

    def record(index: int, outcome: Any) -> None:
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(index, outcome)
        ticker.tick()

    if pending:
        _run_branched(pending, experiment, workers, record, telemetry,
                      trace)
    return outcomes


def run_many(configs: Sequence[Any], runner: Callable[[Any], Any], *,
             workers: int = 1,
             progress: Optional[Callable[[int], None]] = None,
             completed: Optional[Dict[int, Any]] = None,
             on_outcome: Optional[Callable[[int, Any], None]] = None,
             fork_boot: Optional[ForkBoot] = None
             ) -> List[Any]:
    """Run every config through ``runner``; outcomes in config order.

    ``runner`` must be a picklable module-level function.  ``completed``
    maps config indices to already-known outcomes (a resumed journal);
    those configs are skipped.  ``on_outcome(index, outcome)`` fires in
    completion order for each *newly computed* outcome, before the
    progress tick for that run — so a journal line always lands before
    the tick that announces it.  ``progress(done)`` receives monotonic
    counts ``len(completed)+1 .. len(configs)`` in both serial and
    parallel modes.

    ``fork_boot`` describes the experiment's shared boot prefix; when
    given and :func:`forkserver_available`, runs execute on the
    fork-server (boot once per family, fork a copy-on-write child per
    run) instead of the pool/serial paths.  Outcomes are byte-identical
    either way.
    """
    completed = dict(completed or {})
    outcomes: List[Any] = [None] * len(configs)
    for index, outcome in completed.items():
        outcomes[index] = outcome
    pending = [(index, config) for index, config in enumerate(configs)
               if index not in completed]
    ticker = _Ticker(progress, already_done=len(configs) - len(pending))

    def record(index: int, outcome: Any) -> None:
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(index, outcome)
        ticker.tick()

    if fork_boot is not None and pending and forkserver_available():
        _run_forkserver(pending, fork_boot, workers, record)
        return outcomes
    if workers <= 1 or len(pending) < 2:
        for index, config in pending:
            record(index, runner(config))
        return outcomes
    # fork (where available) shares the already-imported simulator
    # modules with the children; spawn re-imports and still works.
    # REPRO_MP_START_METHOD overrides the choice (the CI spawn leg).
    method = os.environ.get("REPRO_MP_START_METHOD") or (
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else None)
    ctx = multiprocessing.get_context(method)
    workers = min(workers, len(pending))
    chunksize = max(1, len(pending) // (workers * 4))
    with ctx.Pool(processes=workers) as pool:
        for index, outcome in pool.imap_unordered(
                partial(_invoke, runner), pending, chunksize):
            record(index, outcome)
    return outcomes


def run_experiment(spec: ExperimentSpec, *, workers: int = 1,
                   progress: Optional[Callable[[int], None]] = None,
                   journal_path: Optional[str] = None,
                   forkserver: bool = True,
                   telemetry: bool = False,
                   trace: bool = False,
                   sample_every: Optional[float] = None,
                   flight_dir: Optional[str] = None,
                   shards: Optional[int] = None,
                   shard_schedule: Optional[str] = None,
                   branch: bool = False,
                   from_snapshot: Optional[str] = None) -> ExperimentResult:
    """Expand, fan out, (optionally) journal, aggregate and render.

    With ``journal_path``, every completed run is appended to the
    journal as it finishes and an existing journal for the same spec is
    resumed — the combined result is byte-identical to a single
    uninterrupted run.  The journal file is left in place on completion
    so a finished campaign re-invokes as a pure cache hit.

    Experiments registered with a boot/resume split run on the
    fork-server when available; ``forkserver=False`` (the CLI's
    ``--no-forkserver``) forces the historic spawn-per-run path.

    ``telemetry`` collects a per-run :class:`MetricsSnapshot` and merges
    them (deterministically — the merge is commutative and runs fold in
    config order) onto the result; ``trace`` captures each run's trace
    records for Chrome-trace export.  Both leave the experiment outcomes
    byte-identical to a plain run; journal-resumed runs carry no
    telemetry (they were computed in an earlier process).

    ``sample_every`` (µs of simulated time) arms the continuous
    sampler: every run's clusters carry a :class:`TimeSeriesSampler`
    and the result grows a ``"timeseries"`` key with one track document
    per run, assembled in config order so serial, pool, fork-server and
    sharded execution produce identical documents.  ``flight_dir`` arms
    the flight recorder: anomalous runs (SLO breach, deadlock outcome,
    exception) dump their trace ring plus an anomaly-instant ``ckpt``
    snapshot into that directory; the written paths land on
    ``result.flight_dumps`` (never in the serialized doc).  Both follow
    the telemetry discipline — outcomes stay byte-identical — and both
    fall back from the branch executor to the normal paths (a sampler's
    timer chain crosses the branch gate; recorder rings are per-child).

    ``shards``/``shard_schedule`` select the sharded-simulator execution
    mode (the CLI's ``--shards``/``--shard-schedule``).  Like telemetry,
    sharding is pure execution mode: results are byte-identical at equal
    seeds, so it never appears in the spec.  It travels through the
    ``REPRO_SHARDS``/``REPRO_SHARD_SCHEDULE`` environment so pool and
    fork-server children inherit it.

    ``branch`` (the CLI's ``--branch-at injection``) runs the campaign
    on the branch-at-injection executor where the experiment registered
    a brancher: each group boots once, runs its live prefix once, and
    forks a copy-on-write child per run at the injection point.  Like
    sharding it is pure execution mode — outcomes are byte-identical —
    and experiments without a brancher (or windowed/threaded shard
    schedules, whose wheels cannot be single-stepped to an exact
    instant) silently fall back to the normal executors.

    ``from_snapshot`` restores a snapshot file (``repro snapshot``)
    whose spec must match, finishes the checkpointed run from its
    restored instant, and computes the remaining runs normally — the
    combined result is byte-identical to a cold-boot campaign.
    """
    from .registry import get_experiment

    experiment = get_experiment(spec.experiment)
    configs = experiment.expand(spec)
    telemetry_on = telemetry or trace \
        or sample_every is not None or flight_dir is not None
    runner = experiment.run_one
    resume = experiment.resume
    if telemetry_on:
        runner = partial(_telemetry_invoke, experiment.run_one,
                         telemetry, trace, sample_every, flight_dir)
        if resume is not None:
            resume = partial(_telemetry_resume, experiment.resume,
                             telemetry, trace, sample_every, flight_dir)
    fork_boot = None
    if forkserver and experiment.boot is not None \
            and experiment.resume is not None:
        fork_boot = ForkBoot(family=experiment.boot_family or (lambda c: 0),
                             boot=experiment.boot,
                             resume=resume)
    completed: Dict[int, Any] = {}
    journal: Optional[Journal] = None
    if journal_path is not None:
        journal = Journal(journal_path, spec, total=len(configs))
        decode = experiment.decode or (lambda value: value)
        completed = {index: decode(encoded)
                     for index, encoded in journal.load().items()}
    if from_snapshot is not None:
        from ..ckpt import SnapshotMismatch, load_snapshot, restore_snapshot

        snap = load_snapshot(from_snapshot)
        if ExperimentSpec.from_dict(snap.spec).spec_hash != spec.spec_hash:
            raise SnapshotMismatch(
                "snapshot %s pins spec %s; running spec %s from it would "
                "mix configurations" % (from_snapshot,
                                        ExperimentSpec.from_dict(
                                            snap.spec).spec_hash,
                                        spec.spec_hash))
        if snap.run_index not in completed:
            completed[snap.run_index] = restore_snapshot(snap).finish()
    on_outcome = None
    if journal is not None:
        def on_outcome(index: int, outcome: Any) -> None:
            journal.append(index, encode_outcome(_unwrap_outcome(outcome)))
    started = time.perf_counter()
    if telemetry_on:
        # Fork-server servers boot clusters *before* the per-run resume
        # wrapper runs, and build_cluster consults the runtime flags to
        # install the forced tracer — so the parent sets the flags now
        # and the servers inherit them through fork.
        from ..obs import runtime as obs_runtime
        obs_runtime.configure(metrics=telemetry, tracing=trace,
                              sample_every=sample_every,
                              flight_dir=flight_dir)
    shard_env: Dict[str, Optional[str]] = {}
    if shards is not None or shard_schedule is not None:
        # build_cluster reads these at boot time, in this process and in
        # every pool/fork-server child (which inherit the environment).
        if shard_schedule is not None and shard_schedule not in SCHEDULES:
            raise ValueError("unknown shard schedule %r (choose from %s)"
                             % (shard_schedule, ", ".join(SCHEDULES)))
        updates = {"REPRO_SHARDS": str(shards) if shards is not None else None,
                   "REPRO_SHARD_SCHEDULE": shard_schedule}
        for key, value in updates.items():
            if value is None:
                continue
            shard_env[key] = os.environ.get(key)
            os.environ[key] = value
    try:
        if branch and branch_supported(experiment) \
                and shard_schedule in (None, "merged") \
                and sample_every is None and flight_dir is None:
            outcomes = run_branched(configs, experiment, workers=workers,
                                    progress=progress, completed=completed,
                                    on_outcome=on_outcome,
                                    telemetry=telemetry, trace=trace)
        else:
            outcomes = run_many(configs, runner, workers=workers,
                                progress=progress, completed=completed,
                                on_outcome=on_outcome, fork_boot=fork_boot)
    finally:
        if telemetry_on:
            obs_runtime.reset()
        for key, prior in shard_env.items():
            if prior is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = prior
    wall = time.perf_counter() - started
    snapshot = None
    traces: Optional[List] = None
    timeseries = None
    flight_dumps: List[str] = []
    if telemetry_on:
        snapshots = []
        traces = []
        unwrapped = []
        series_runs = []
        flight_reports = []
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, _TelemetryEnvelope):
                if outcome.snapshot is not None:
                    snapshots.append(outcome.snapshot)
                if outcome.trace is not None:
                    traces.append((index, outcome.trace))
                if outcome.timeseries is not None:
                    series_runs.append([index, outcome.timeseries])
                if outcome.flight is not None:
                    flight_reports.append((index, outcome.flight))
                unwrapped.append(outcome.outcome)
            else:       # resumed from a journal: plain outcome
                unwrapped.append(outcome)
        outcomes = unwrapped
        if telemetry:
            from ..obs.metrics import MetricsSnapshot
            snapshot = MetricsSnapshot.merged(snapshots)
        if series_runs:
            # Enumeration above walks config order, so the document is
            # identical whichever executor (or completion order)
            # produced the envelopes.
            from ..obs.timeseries import TIMESERIES_SCHEMA
            timeseries = {"schema": TIMESERIES_SCHEMA,
                          "sample_every_us": float(sample_every),
                          "runs": series_runs}
        if flight_reports:
            # The runtime was reset in the finally above, so these
            # replays run exactly like restore_flight_dump's — plain
            # telemetry-off executions to the anomaly instant.
            from ..obs.flightrec import write_flight_dumps
            flight_dumps = write_flight_dumps(flight_dir, spec,
                                              flight_reports)
    aggregate = experiment.aggregate(spec, outcomes)
    rendered = experiment.render(aggregate)
    summary = experiment.summarize(aggregate) \
        if experiment.summarize is not None else None
    manifest = RunManifest.collect(spec.spec_hash, spec.seed, wall)
    return ExperimentResult(spec=spec, manifest=manifest,
                            outcomes=outcomes, rendered=rendered,
                            summary=summary, telemetry=snapshot,
                            traces=traces, timeseries=timeseries,
                            flight_dumps=flight_dumps)
