"""The one result schema every experiment emits.

A finished experiment is an :class:`ExperimentResult`: the spec that
produced it, a :class:`RunManifest` (spec hash, seed, git revision, wall
time) pinning the result to an exact configuration and tree, the ordered
per-run outcomes, the rendered table/figure text, and an optional small
summary.  ``to_doc()`` serializes all of that to the JSON document that
``repro run --out`` writes and that :func:`validate_result` checks in
CI.

Outcome objects stay ordinary dataclasses (``InjectionOutcome``,
``NetFaultOutcome``, workload results...).  :func:`encode_outcome` turns
any of them into a JSON-able dict and :func:`typed_decoder` rebuilds
them — recursing through nested dataclasses and re-tupling
``Tuple[...]`` fields from type hints — so a journaled outcome decodes
``==``-equal to the object the run produced.  That equality is what
makes resumed campaigns byte-identical to uninterrupted ones.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import time
import typing
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from .spec import ExperimentSpec

__all__ = [
    "RESULT_SCHEMA",
    "RunManifest",
    "ExperimentResult",
    "git_revision",
    "encode_outcome",
    "decode_dataclass",
    "typed_decoder",
    "validate_result",
]

RESULT_SCHEMA = "repro.exp.result/1"


def git_revision(cwd: Optional[str] = None) -> str:
    """The working tree's HEAD commit, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, timeout=5,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, check=True)
        return out.stdout.decode("ascii", "replace").strip() or "unknown"
    except Exception:
        return "unknown"


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one experiment run: what, from where, how long."""

    spec_hash: str
    seed: int
    git_rev: str
    wall_time_s: float
    recorded_at: str

    @classmethod
    def collect(cls, spec_hash: str, seed: int,
                wall_time_s: float) -> "RunManifest":
        return cls(spec_hash=spec_hash, seed=seed,
                   git_rev=git_revision(),
                   wall_time_s=round(wall_time_s, 3),
                   recorded_at=time.strftime("%Y-%m-%dT%H:%M:%S"))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        return cls(**{f.name: data[f.name]
                      for f in dataclasses.fields(cls)})


# -- outcome (de)serialization -------------------------------------------------


def encode_outcome(outcome: Any) -> Any:
    """Outcome object -> JSON-able value.

    Dataclasses become dicts tagged with ``__type__``; plain dicts (and
    other JSON-able values) pass through unchanged.
    """
    if dataclasses.is_dataclass(outcome) and not isinstance(outcome, type):
        data = dataclasses.asdict(outcome)
        data["__type__"] = type(outcome).__name__
        return data
    return outcome


def _coerce(hint: Any, value: Any) -> Any:
    """Rebuild ``value`` (fresh from JSON) to match the type ``hint``."""
    if value is None or hint is None:
        return value
    if dataclasses.is_dataclass(hint) and isinstance(value, dict):
        return decode_dataclass(hint, value)
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin is Union:
        non_none = [a for a in args if a is not type(None)]
        if len(non_none) == 1:
            return _coerce(non_none[0], value)
        return value
    if origin in (list, List) and isinstance(value, list):
        item = args[0] if args else None
        return [_coerce(item, v) for v in value]
    if origin is tuple and isinstance(value, (list, tuple)):
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_coerce(args[0], v) for v in value)
        if args:
            return tuple(_coerce(a, v) for a, v in zip(args, value))
        return tuple(value)
    if isinstance(value, dict):
        # Dict[...] values may carry typed items (rare); recurse values.
        if origin in (dict, Dict) and len(args) == 2:
            return {k: _coerce(args[1], v) for k, v in value.items()}
    return value


def decode_dataclass(cls: type, data: Dict[str, Any]) -> Any:
    """Rebuild a dataclass instance from :func:`encode_outcome` output.

    ``init=False`` fields (e.g. a classifier-filled ``category``) are
    restored verbatim rather than recomputed, so a decode is faithful to
    what the run recorded even if classification logic later changes.
    """
    hints = typing.get_type_hints(cls)
    init_kwargs: Dict[str, Any] = {}
    post: Dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        value = _coerce(hints.get(f.name), data[f.name])
        if f.init:
            init_kwargs[f.name] = value
        else:
            post[f.name] = value
    obj = cls(**init_kwargs)
    for name, value in post.items():
        object.__setattr__(obj, name, value)
    return obj


def typed_decoder(*classes: type) -> Callable[[Any], Any]:
    """A decoder resolving ``__type__`` tags against ``classes``.

    Untagged values (plain-dict outcomes) pass through unchanged.
    """
    by_name = {cls.__name__: cls for cls in classes}

    def decode(value: Any) -> Any:
        if isinstance(value, dict) and "__type__" in value:
            name = value["__type__"]
            if name not in by_name:
                raise ValueError("outcome type %r not decodable here "
                                 "(known: %s)"
                                 % (name, sorted(by_name)))
            data = {k: v for k, v in value.items() if k != "__type__"}
            return decode_dataclass(by_name[name], data)
        return value

    return decode


# -- the result document -------------------------------------------------------


@dataclass
class ExperimentResult:
    """One finished experiment: spec + manifest + outcomes + rendering.

    ``telemetry`` (a merged :class:`repro.obs.metrics.MetricsSnapshot`)
    is present only when the run collected metrics; the document then
    carries a ``"telemetry"`` key — absent otherwise, so telemetry-off
    results are byte-identical to pre-telemetry ones.  ``traces`` holds
    per-run ``(index, records)`` pairs for Chrome-trace export and is
    never serialized into the result document (the CLI writes it to its
    own file).

    ``timeseries`` (the continuous sampler's per-run track documents)
    follows the telemetry discipline: a ``"timeseries"`` key appears
    only when sampling was armed, so sampling-off results stay
    byte-identical to pre-sampling ones.  ``flight_dumps`` lists the
    flight-dump paths written for this campaign's anomalous runs; like
    ``traces`` it never enters the document (the dumps are their own
    files).
    """

    spec: ExperimentSpec
    manifest: RunManifest
    outcomes: List[Any]
    rendered: str
    summary: Optional[Dict[str, Any]] = None
    telemetry: Optional[Any] = None
    traces: Optional[List[Any]] = None
    timeseries: Optional[Dict[str, Any]] = None
    flight_dumps: Optional[List[str]] = None

    def to_doc(self) -> Dict[str, Any]:
        doc = {
            "schema": RESULT_SCHEMA,
            "spec": self.spec.to_dict(),
            "manifest": self.manifest.to_dict(),
            "outcomes": [encode_outcome(o) for o in self.outcomes],
            "rendered": self.rendered,
            "summary": self.summary,
        }
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry.to_doc()
        if self.timeseries is not None:
            doc["timeseries"] = self.timeseries
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), indent=2, sort_keys=True) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())


def validate_result(doc: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed result JSON."""
    problems = []
    if doc.get("schema") != RESULT_SCHEMA:
        problems.append("schema is %r, want %r"
                        % (doc.get("schema"), RESULT_SCHEMA))
    spec_data = doc.get("spec")
    if not isinstance(spec_data, dict):
        problems.append("spec missing or not an object")
        spec = None
    else:
        try:
            spec = ExperimentSpec.from_dict(spec_data)
        except Exception as exc:
            problems.append("spec does not parse: %s" % exc)
            spec = None
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        problems.append("manifest missing or not an object")
    else:
        for key, kind in (("spec_hash", str), ("seed", int),
                          ("git_rev", str), ("wall_time_s", (int, float)),
                          ("recorded_at", str)):
            if not isinstance(manifest.get(key), kind):
                problems.append("manifest.%s missing or mistyped" % key)
        if spec is not None and isinstance(manifest.get("spec_hash"), str) \
                and manifest["spec_hash"] != spec.spec_hash:
            problems.append("manifest.spec_hash %r != hash of spec %r"
                            % (manifest["spec_hash"], spec.spec_hash))
    if not isinstance(doc.get("outcomes"), list):
        problems.append("outcomes missing or not a list")
    elif spec is not None and spec.runs \
            and len(doc["outcomes"]) != spec.runs:
        problems.append("outcomes has %d entries, spec.runs is %d"
                        % (len(doc["outcomes"]), spec.runs))
    if not isinstance(doc.get("rendered"), str):
        problems.append("rendered missing or not a string")
    if "telemetry" in doc:      # optional; validated only when present
        telemetry = doc["telemetry"]
        if not isinstance(telemetry, dict):
            problems.append("telemetry present but not an object")
        else:
            for key in ("counters", "gauges", "histograms"):
                if not isinstance(telemetry.get(key), dict):
                    problems.append("telemetry.%s missing or mistyped" % key)
    if "timeseries" in doc:     # optional; validated only when present
        series = doc["timeseries"]
        if not isinstance(series, dict):
            problems.append("timeseries present but not an object")
        else:
            if not isinstance(series.get("sample_every_us"), (int, float)):
                problems.append("timeseries.sample_every_us missing "
                                "or mistyped")
            runs = series.get("runs")
            if not isinstance(runs, list):
                problems.append("timeseries.runs missing or not a list")
            else:
                for entry in runs:
                    if (not isinstance(entry, list) or len(entry) != 2
                            or not isinstance(entry[0], int)
                            or not isinstance(entry[1], dict)):
                        problems.append("timeseries.runs entries must be "
                                        "[run_index, track_doc] pairs")
                        break
                    t = entry[1].get("t")
                    tracks = entry[1].get("tracks")
                    if not isinstance(t, list) \
                            or not isinstance(tracks, dict):
                        problems.append("timeseries run %s missing t/tracks"
                                        % entry[0])
                        break
                    if any(not isinstance(track, list)
                           or len(track) != len(t)
                           for track in tracks.values()):
                        problems.append("timeseries run %s has tracks not "
                                        "spanning t" % entry[0])
                        break
    if problems:
        raise ValueError("invalid result document: " + "; ".join(problems))
