"""The declarative experiment engine.

One spine for every campaign, study and benchmark in the repo:

* :mod:`repro.exp.spec` — frozen ``ExperimentSpec``/``ScenarioSpec``
  descriptions with JSON round-trip and a stable spec hash.
* :mod:`repro.exp.runner` — the shared deterministic fan-out
  (``run_many``), checkpoint journals, and ``run_experiment``.
* :mod:`repro.exp.results` — the unified result schema: outcome codecs,
  run manifests, result documents and their validator.
* :mod:`repro.exp.registry` — named experiments; every CLI verb is a
  registration (:mod:`repro.exp.experiments`).
* :mod:`repro.exp.perfbench` — the simulation-stack microbenchmarks,
  registered as the ``perf`` experiment.

Importing this package is cheap: experiment definitions (and the
simulator modules they drag in) load lazily on first registry access.
"""

from .registry import (
    Experiment,
    Option,
    all_experiments,
    experiment_names,
    get_experiment,
    register,
)
from .results import (
    ExperimentResult,
    RunManifest,
    encode_outcome,
    typed_decoder,
    validate_result,
)
from .runner import (
    Journal,
    JournalMismatch,
    derive_run_seed,
    run_experiment,
    run_many,
)
from .spec import (
    ClusterSpec,
    ExperimentSpec,
    FaultSpec,
    ScenarioSpec,
    WorkloadSpec,
    freeze_params,
    thaw_params,
)

__all__ = [
    "ClusterSpec",
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "FaultSpec",
    "Journal",
    "JournalMismatch",
    "Option",
    "RunManifest",
    "ScenarioSpec",
    "WorkloadSpec",
    "all_experiments",
    "derive_run_seed",
    "encode_outcome",
    "experiment_names",
    "freeze_params",
    "get_experiment",
    "register",
    "run_experiment",
    "run_many",
    "thaw_params",
    "typed_decoder",
    "validate_result",
]
