"""Microbenchmarks for the simulation-stack fast paths.

Three numbers capture the cost of everything this project does:

* **kernel events/sec** — raw discrete-event throughput: processes
  yielding timeouts, the pattern every host, NIC, DMA engine and daemon
  reduces to.
* **LANai instructions/sec** — interpreted firmware throughput: a tight
  ALU/branch loop on :class:`~repro.lanai.cpu.LanaiCpu`, the engine
  behind every interpreted ``send_chunk`` in the fault-injection study.
* **campaign runs/sec** — end-to-end wall clock of a Table 1 style
  fault-injection campaign (the dominant cost of the reproduction).

These used to live in ``benchmarks/perf/perf_harness.py``; they moved
into the package so the experiment engine can register them (``repro
run perf``) and the harness script became a thin wrapper that merges
results (plus a run manifest) into ``BENCH_perf.json``.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Dict

__all__ = [
    "bench_kernel_events",
    "bench_kernel_wakeups",
    "bench_lanai_interpreter",
    "bench_campaign",
    "bench_netfaults",
    "bench_loadgen",
    "bench_slo_chaos",
    "bench_fabric_scaling",
    "bench_closfault",
    "bench_snapshot",
    "bench_branch_latefault",
    "run_bench",
    "run_all",
    "environment_info",
    "render_results",
    "BENCH_NAMES",
]

BENCH_NAMES = ("kernel_timeouts", "kernel_wakeups", "lanai_interpreter",
               "campaign", "snapshot")


def bench_kernel_events(total_yields: int = 200_000,
                        procs: int = 100) -> dict:
    """Events/sec: ``procs`` processes each yielding timeouts."""
    from ..sim import Simulator

    sim = Simulator()
    per_proc = total_yields // procs

    def worker():
        timeout = sim.timeout
        for _ in range(per_proc):
            yield timeout(1.0)

    for _ in range(procs):
        sim.spawn(worker())
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    yields = per_proc * procs
    return {
        "yields": yields,
        "wall_s": round(wall, 4),
        "events_per_sec": round(yields / wall, 1),
    }


def bench_kernel_wakeups(total_yields: int = 100_000) -> dict:
    """Events/sec for the event/succeed ping-pong (Store-style wakeups)."""
    from ..sim import Simulator

    sim = Simulator()
    box = {"ev": None}

    def producer():
        for _ in range(total_yields):
            yield sim.timeout(1.0)
            if box["ev"] is not None:
                box["ev"].succeed("item")
                box["ev"] = None

    def consumer():
        while True:
            box["ev"] = sim.event()
            got = yield box["ev"]
            if got is None:  # pragma: no cover - defensive
                return

    sim.spawn(producer())
    sim.spawn(consumer())
    t0 = time.perf_counter()
    sim.run(until=total_yields + 1.0)
    wall = time.perf_counter() - t0
    return {
        "yields": total_yields,
        "wall_s": round(wall, 4),
        "events_per_sec": round(2 * total_yields / wall, 1),
    }


_LOOP_ITERS = 20_000
_LOOP_ENTRY = 0x100


def _loop_program():
    """A 7-instruction ALU/branch loop, ``_LOOP_ITERS`` iterations."""
    from ..lanai import isa

    Ins = isa.Instruction
    ops = isa.BY_MNEMONIC
    words = [
        Ins(ops["addi"], rd=1, ra=0, imm=_LOOP_ITERS),   # r1 = N
        # loop:
        Ins(ops["addi"], rd=2, ra=2, imm=1),             # r2 += 1
        Ins(ops["xor"], rd=3, ra=2, rb=1),
        Ins(ops["add"], rd=4, ra=3, rb=2),
        Ins(ops["sub"], rd=5, ra=4, rb=3),
        Ins(ops["slt"], rd=6, ra=5, rb=1),
        Ins(ops["addi"], rd=1, ra=1, imm=-1),            # r1 -= 1
        Ins(ops["bne"], ra=1, rb=0, imm=-7),             # -> loop
        Ins(ops["jr"], ra=15),                           # return
    ]
    return [isa.encode(w) for w in words]


def bench_lanai_interpreter(repeats: int = 3) -> dict:
    """Interpreted instructions/sec on a steady-state firmware loop."""
    from ..hw.sram import Sram
    from ..lanai.bus import MemoryBus
    from ..lanai.cpu import LanaiCpu
    from ..sim import Simulator

    sim = Simulator()
    sram = Sram(64 * 1024)
    sram.write_words(_LOOP_ENTRY, _loop_program())
    cpu = LanaiCpu(sim, MemoryBus(sram))

    executed = 0
    t0 = time.perf_counter()
    for _ in range(repeats):
        outcomes = []

        def run():
            outcome = yield from cpu.run_routine(_LOOP_ENTRY,
                                                 fuel=10 * _LOOP_ITERS)
            outcomes.append(outcome)

        sim.spawn(run())
        sim.run()
        assert outcomes and outcomes[0].status == "done", outcomes
        executed += outcomes[0].instructions
    wall = time.perf_counter() - t0
    return {
        "instructions": executed,
        "wall_s": round(wall, 4),
        "instr_per_sec": round(executed / wall, 1),
    }


def _shard_env(shards, shard_schedule):
    """Resolve the shard axes and the env overrides that select them.

    Sharding is pure execution mode (never part of a spec), so the
    benchmarks thread it through ``REPRO_SHARDS``/``REPRO_SHARD_SCHEDULE``
    exactly like the runner does; ``None`` inherits whatever the caller's
    environment already says.
    """
    from ..sim.shard import shards_from_env

    env_shards, env_schedule = shards_from_env()
    shards = env_shards if shards is None else shards
    shard_schedule = env_schedule if shard_schedule is None \
        else shard_schedule
    overrides = {"REPRO_SHARDS": str(shards),
                 "REPRO_SHARD_SCHEDULE": shard_schedule}
    return shards, shard_schedule, overrides


class _env_overrides:
    """Temporarily set environment variables (pool children inherit)."""

    def __init__(self, overrides):
        self.overrides = overrides
        self.saved = {}

    def __enter__(self):
        for key, value in self.overrides.items():
            self.saved[key] = os.environ.get(key)
            os.environ[key] = value

    def __exit__(self, *exc):
        for key, prior in self.saved.items():
            if prior is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = prior


def bench_campaign(runs: int = 200, workers: int = 1, seed: int = 2003,
                   messages: int = 16, shards: int = None,
                   shard_schedule: str = None,
                   branch: bool = False) -> dict:
    """Wall clock of a Table 1 campaign (the paper-scale workload).

    ``branch=True`` runs the same campaign through the branch-at-
    injection executor (one shared live prefix per group, one forked
    child per run) — same outcomes, the A side of the pr9 ledger entry.
    """
    from ..faults import run_campaign

    shards, shard_schedule, overrides = _shard_env(shards, shard_schedule)
    t0 = time.perf_counter()
    with _env_overrides(overrides):
        result = run_campaign(runs=runs, seed=seed, messages=messages,
                              workers=workers, branch=branch)
    wall = time.perf_counter() - t0
    return {
        "runs": runs,
        "workers": workers,
        "shards": shards,
        "shard_schedule": shard_schedule,
        "branch": branch,
        "wall_s": round(wall, 3),
        "runs_per_sec": round(runs / wall, 3),
        "counts": dict(result.counts),
    }


def bench_netfaults(runs_per_scenario: int = 1, workers: int = 1,
                    nodes: int = 4, shards: int = None,
                    shard_schedule: str = None) -> dict:
    """Wall clock of the §6 network-fault campaign at a shard count.

    This is the sharding benchmark: a 4-node cluster with per-node
    wheels is the workload the shard scheduler was built for, so the
    1/2/4/8-shard scaling curve in ``BENCH_perf.json`` comes from here.
    """
    from .registry import get_experiment
    from .runner import run_experiment

    experiment = get_experiment("netfaults")
    spec = experiment.build_spec({"runs_per_scenario": runs_per_scenario,
                                  "nodes": nodes})
    shards, shard_schedule, _ = _shard_env(shards, shard_schedule)
    t0 = time.perf_counter()
    result = run_experiment(spec, workers=workers, shards=shards,
                            shard_schedule=shard_schedule)
    wall = time.perf_counter() - t0
    counts = {scenario: sum(row.values())
              for scenario, row in result.summary["counts"].items()}
    return {
        "runs": spec.runs,
        "workers": workers,
        "shards": shards,
        "shard_schedule": shard_schedule,
        "branch": False,
        "nodes": nodes,
        "wall_s": round(wall, 3),
        "runs_per_sec": round(spec.runs / wall, 3),
        "scenario_runs": counts,
    }


def bench_loadgen(clients: int = 8, nodes: int = 4,
                  peak_rate: float = 4_000.0,
                  duration_us: float = 400_000.0,
                  shards: int = None, shard_schedule: str = None) -> dict:
    """Load-generator throughput: schedule expansion + one driven run.

    Reports the pure :func:`~repro.load.generator.build_schedule`
    expansion rate and the end-to-end offered-message rate of driving
    that schedule through a booted FTGM cluster (the load plane's unit
    of work in an ``slo-chaos`` cell).
    """
    from ..cluster import build_cluster
    from ..load.generator import LoadConfig, build_schedule, run_load

    config = LoadConfig(seed=2003, n_nodes=nodes, clients=clients,
                        peak_rate=peak_rate, duration_us=duration_us,
                        drain_us=200_000.0)
    shards, shard_schedule, overrides = _shard_env(shards, shard_schedule)
    t0 = time.perf_counter()
    schedule = build_schedule(config)
    schedule_wall = time.perf_counter() - t0
    with _env_overrides(overrides):
        cluster = build_cluster(n_nodes=nodes, flavor="ftgm")
        t1 = time.perf_counter()
        result = run_load(cluster, config, schedule=schedule)
        drive_wall = time.perf_counter() - t1
    offered = len(schedule.ops)
    return {
        "clients": clients,
        "nodes": nodes,
        "offered_msgs": offered,
        "delivered_msgs": len(result.first_delivery),
        "shards": shards,
        "shard_schedule": shard_schedule,
        "schedule_wall_s": round(schedule_wall, 4),
        "schedule_msgs_per_sec": round(offered / schedule_wall, 1),
        "drive_wall_s": round(drive_wall, 3),
        "driven_msgs_per_sec": round(offered / drive_wall, 1),
    }


def bench_slo_chaos(runs_per_cell: int = 1, workers: int = 1,
                    shards: int = None, shard_schedule: str = None) -> dict:
    """Wall clock of the full 10-cell SLO-graded chaos campaign."""
    from .registry import get_experiment
    from .runner import run_experiment

    experiment = get_experiment("slo-chaos")
    spec = experiment.build_spec({"runs_per_cell": runs_per_cell})
    shards, shard_schedule, _ = _shard_env(shards, shard_schedule)
    t0 = time.perf_counter()
    result = run_experiment(spec, workers=workers, shards=shards,
                            shard_schedule=shard_schedule)
    wall = time.perf_counter() - t0
    return {
        "runs": spec.runs,
        "workers": workers,
        "shards": shards,
        "shard_schedule": shard_schedule,
        "branch": False,
        "wall_s": round(wall, 3),
        "runs_per_sec": round(spec.runs / wall, 3),
        "verdicts": dict(result.summary["verdicts"]),
    }


def bench_fabric_scaling(sizes=(8, 64, 128, 256), radix: int = 8,
                         idle_us: float = 1_000_000.0) -> dict:
    """Boot+map+idle wall clock as the fabric scales (the lazy-model win).

    Each point builds an FTGM cluster (the paper's single-switch star at
    8 nodes, a three-tier fat-tree above), boots and maps it, then runs
    the simulation one simulated second with nothing to do.  Above the
    lazy auto-threshold every idle MCP parks off the event wheel, so the
    idle leg of a 256-node fabric costs (near) nothing and the
    boot+map+idle total stays within ~10x of the 8-node cluster instead
    of scaling with ``nodes x housekeeping ticks``.

    Every cluster is released (and the cyclic GC run) before the next
    point, and the cyclic collector is paused *during* each point: a
    256-node boot allocates half a gigabyte of SRAM images, and with a
    big ambient heap (say, after a 200-run campaign in the same
    process) the collector would otherwise fire hundreds of times
    mid-boot and charge that heap's scanning cost to this benchmark.
    """
    import gc

    from ..cluster import build_cluster

    points = {}
    for n in sizes:
        topology = "star" if n <= 8 else "fat-tree"
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()
            cluster = build_cluster(
                n, flavor="ftgm", seed=2003, topology=topology,
                radix=radix if topology == "fat-tree" else None)
            t1 = time.perf_counter()
            cluster.sim.run(until=cluster.sim.now + idle_us)
            t2 = time.perf_counter()
        finally:
            if was_enabled:
                gc.enable()
        parked = sum(1 for node in cluster.nodes
                     if getattr(node.driver.mcp, "_parked", False))
        points[str(n)] = {
            "nodes": n,
            "topology": topology,
            "boot_wall_s": round(t1 - t0, 4),
            "idle_wall_s": round(t2 - t1, 4),
            "total_wall_s": round(t2 - t0, 4),
            "parked_nodes": parked,
        }
        del cluster
    base = points[str(sizes[0])]["total_wall_s"] or 1e-9
    for point in points.values():
        point["ratio_vs_%d" % sizes[0]] = round(
            point["total_wall_s"] / base, 2)
    return {
        "idle_sim_us": idle_us,
        "radix": radix,
        "points": points,
    }


def bench_closfault(runs_per_cell: int = 1, workers: int = 1,
                    nodes: int = 64, radix: int = 8,
                    scale: str = "full", shards: int = None,
                    shard_schedule: str = None,
                    branch: bool = False) -> dict:
    """Wall clock of the correlated-fault campaign on a fat-tree fabric.

    The large-fabric analogue of :func:`bench_netfaults`: compound
    scenarios (rack loss, spine loss, cascades, repair flaps) on a
    multi-tier fabric, dominated by the 3-tier boot+map and the
    detector-driven recovery rather than by raw packet counts.
    ``branch=True`` shares one booted fabric + pre-fault prefix per
    branch group and forks each run at its fault time (the pr9 A side).
    """
    from .registry import get_experiment
    from .runner import run_experiment

    experiment = get_experiment("closfault")
    spec = experiment.build_spec({"runs_per_cell": runs_per_cell,
                                  "nodes": nodes, "radix": radix,
                                  "scale": scale})
    shards, shard_schedule, _ = _shard_env(shards, shard_schedule)
    t0 = time.perf_counter()
    result = run_experiment(spec, workers=workers, shards=shards,
                            shard_schedule=shard_schedule, branch=branch)
    wall = time.perf_counter() - t0
    counts = {scenario: sum(row.values())
              for scenario, row in result.summary["counts"].items()}
    return {
        "runs": spec.runs,
        "workers": workers,
        "shards": shards,
        "shard_schedule": shard_schedule,
        "branch": branch,
        "nodes": nodes,
        "radix": radix,
        "wall_s": round(wall, 3),
        "runs_per_sec": round(spec.runs / wall, 3),
        "scenario_runs": counts,
    }


def bench_snapshot(sizes=(8, 64, 256), at_us: float = 4_000.0) -> dict:
    """Snapshot/restore cost vs fabric size (the ckpt layer's price tag).

    Each point pauses run 0 of a one-cell closfault spec at ``at_us``,
    captures the canonical state, then restores it from the in-memory
    snapshot (boot + prefix replay + verifying re-capture) — the two
    legs of the ``repro snapshot`` / ``--from-snapshot`` workflow.
    ``state_bytes`` is the canonical-JSON size of the hashed state
    section, i.e. what a snapshot file costs on disk before the recipe.
    """
    from ..ckpt.capture import canonical_json
    from ..ckpt.snapshot import restore_snapshot, take_snapshot
    from .registry import get_experiment

    experiment = get_experiment("closfault")
    points = {}
    for n in sizes:
        spec = experiment.build_spec({
            "scale": "small", "nodes": n,
            "radix": 4 if n <= 16 else 8})
        t0 = time.perf_counter()
        snapshot = take_snapshot(spec, at_us, run_index=0)
        t1 = time.perf_counter()
        restore_snapshot(snapshot)
        t2 = time.perf_counter()
        points[str(n)] = {
            "nodes": n,
            "snapshot_wall_s": round(t1 - t0, 4),
            "restore_wall_s": round(t2 - t1, 4),
            "state_bytes": len(canonical_json(snapshot.capture["state"])),
            "state_hash": snapshot.state_hash[:16],
        }
    return {"at_us": at_us, "points": points}


def bench_branch_latefault(runs: int = 6, nodes: int = 64,
                           radix: int = 8, n_pairs: int = 8,
                           messages: int = 30,
                           message_gap_us: float = 1_500.0,
                           fault_at_us: float = 42_000.0) -> dict:
    """Branch-at-injection in its design regime: busy fabric, late fault.

    One rack-loss/ftgm cell where the pre-fault window is genuinely
    expensive — ``n_pairs`` cross-fabric flows pace ``messages``
    messages each over a big fat-tree and the fault lands near the end
    of the stream — measured cold (fork-server, the pr8 executor) and
    branched (one shared live prefix, a forked child per run) over the
    same configs.  Both legs produce byte-identical outcomes; on the
    default closfault/table1 grids the pre-fault window is already
    nearly free (tickless fold + lazy parking), so this is where the
    executor's prefix sharing actually shows up on the clock.
    """
    from ..faults.campaign import derive_run_seed
    from ..netfaults.clos import ClosFaultConfig, cross_fabric_pairs
    from .registry import get_experiment
    from .runner import ForkBoot, run_branched, run_many

    experiment = get_experiment("closfault")
    pairs = tuple(cross_fabric_pairs(nodes, "fat-tree", radix,
                                     n_pairs=n_pairs))
    configs = [ClosFaultConfig(run_id=i, seed=derive_run_seed(2003, i),
                               scenario="rack-loss/ftgm", flavor="ftgm",
                               n_nodes=nodes, topology="fat-tree",
                               radix=radix, pairs=pairs,
                               messages=messages,
                               message_gap_us=message_gap_us,
                               fault_at_us=fault_at_us)
               for i in range(runs)]
    fork_boot = ForkBoot(family=experiment.boot_family or (lambda c: 0),
                         boot=experiment.boot, resume=experiment.resume)
    t0 = time.perf_counter()
    run_many(configs, experiment.run_one, workers=1, fork_boot=fork_boot)
    t1 = time.perf_counter()
    run_branched(configs, experiment)
    t2 = time.perf_counter()
    cold_wall, branch_wall = t1 - t0, t2 - t1
    return {
        "runs": runs,
        "workers": 1,
        "shards": 1,
        "branch": True,
        "nodes": nodes,
        "fault_at_us": fault_at_us,
        "cold_wall_s": round(cold_wall, 3),
        "branch_wall_s": round(branch_wall, 3),
        "cold_runs_per_sec": round(runs / cold_wall, 3),
        "runs_per_sec": round(runs / branch_wall, 3),
        "speedup": round(cold_wall / branch_wall, 2),
    }


def _best(bench, rate_key: str, samples: int = 3) -> dict:
    """Best-of-N: the machine's fastest run is its least-disturbed one."""
    results = [bench() for _ in range(samples)]
    best = max(results, key=lambda r: r[rate_key])
    best["samples"] = samples
    return best


def run_bench(config: Dict[str, Any]) -> dict:
    """Run one named benchmark (the engine's per-run function).

    ``config``: ``{"bench": <BENCH_NAMES entry>, "quick": bool,
    "campaign_runs": int, "campaign_workers": int}``.
    """
    name = config["bench"]
    quick = bool(config.get("quick", False))
    scale = 10 if quick else 1
    samples = 1 if quick else 3
    if name == "kernel_timeouts":
        return _best(lambda: bench_kernel_events(200_000 // scale),
                     "events_per_sec", samples)
    if name == "kernel_wakeups":
        return _best(lambda: bench_kernel_wakeups(100_000 // scale),
                     "events_per_sec", samples)
    if name == "lanai_interpreter":
        return _best(lambda: bench_lanai_interpreter(
            repeats=1 if quick else 3), "instr_per_sec", samples)
    if name == "campaign":
        return bench_campaign(config.get("campaign_runs", 200),
                              config.get("campaign_workers", 1))
    if name == "snapshot":
        return bench_snapshot(sizes=(8,) if quick else (8, 64, 256))
    if name == "branch_latefault":
        return bench_branch_latefault(runs=2 if quick else 6,
                                      nodes=16 if quick else 64,
                                      radix=4 if quick else 8)
    raise ValueError("unknown benchmark %r (have: %s)"
                     % (name, ", ".join(BENCH_NAMES)))


def environment_info() -> Dict[str, Any]:
    info: Dict[str, Any] = {
        "python": "%d.%d.%d" % sys.version_info[:3]}
    try:
        info["cpus"] = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        info["cpus"] = os.cpu_count()
    return info


def run_all(campaign_runs: int = 200, workers: int = 1,
            quick: bool = False) -> dict:
    results = {
        name: run_bench({"bench": name, "quick": quick,
                         "campaign_runs": campaign_runs,
                         "campaign_workers": workers})
        for name in BENCH_NAMES
    }
    results.update(environment_info())
    return results


def render_results(results: Dict[str, Any]) -> str:
    lines = []
    for name in ("kernel_timeouts", "kernel_wakeups"):
        lines.append("%-18s %12.0f events/sec"
                     % (name, results[name]["events_per_sec"]))
    lines.append("%-18s %12.0f instr/sec"
                 % ("lanai_interpreter",
                    results["lanai_interpreter"]["instr_per_sec"]))
    campaign = results["campaign"]
    lines.append("%-18s %12.2f runs/sec (%d runs, workers=%d, %.1fs)"
                 % ("campaign", campaign["runs_per_sec"],
                    campaign["runs"], campaign["workers"],
                    campaign["wall_s"]))
    snapshot = results.get("snapshot")
    if snapshot:
        for point in snapshot["points"].values():
            lines.append(
                "%-18s %4d nodes: snapshot %.2fs, restore %.2fs, "
                "%.1f KiB state"
                % ("snapshot", point["nodes"], point["snapshot_wall_s"],
                   point["restore_wall_s"], point["state_bytes"] / 1024.0))
    latefault = results.get("branch_latefault")
    if latefault:
        lines.append(
            "%-18s cold %.2f runs/sec, branched %.2f runs/sec (%.2fx, "
            "%d runs on %d nodes)"
            % ("branch_latefault", latefault["cold_runs_per_sec"],
               latefault["runs_per_sec"], latefault["speedup"],
               latefault["runs"], latefault["nodes"]))
    return "\n".join(lines)
