"""Message payload abstraction.

Payloads travel from a sender's pinned buffer, over DMA into LANai SRAM,
through the fabric, and back out to a receiver's pinned buffer.  Tests
need *real bytes* so corruption is observable end-to-end; performance
sweeps move megabytes per simulated second and must not copy real memory.
:class:`Payload` supports both:

* **concrete** payloads wrap real ``bytes``;
* **phantom** payloads carry only (size, fingerprint), where the
  fingerprint is a stable 64-bit token standing in for the content.

Both kinds support slicing (fragmentation), concatenation (reassembly)
and deterministic corruption, and both feed the CRC calculation, so the
protocol stack is oblivious to which kind it is moving.  Phantom slices
remember their lineage so that a complete in-order reassembly yields a
payload equal to the original — exactly-once delivery checks therefore
work in both modes.
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence, Tuple

__all__ = ["Payload"]

_U64 = 2**64 - 1


def _mix(a: int, b: int) -> int:
    """Cheap 64-bit hash combiner (splitmix-style)."""
    x = (a ^ (b + 0x9E3779B97F4A7C15 + ((a << 6) & _U64) + (a >> 2))) & _U64
    x ^= x >> 31
    x = (x * 0xBF58476D1CE4E5B9) & _U64
    x ^= x >> 27
    return x


class Payload:
    """Immutable message content, concrete or phantom."""

    __slots__ = ("size", "_data", "_fingerprint", "_lineage")

    def __init__(self, size: int, data: Optional[bytes] = None,
                 fingerprint: Optional[int] = None,
                 lineage: Optional[Tuple[int, int]] = None):
        if size < 0:
            raise ValueError("negative payload size")
        if data is not None and len(data) != size:
            raise ValueError("data length %d != size %d" % (len(data), size))
        self.size = size
        self._data = data
        # lineage = (parent_fingerprint, offset) for phantom slices, enabling
        # lossless reassembly without concrete bytes.
        self._lineage = lineage
        if data is not None:
            self._fingerprint = zlib.crc32(data) | (size << 32)
        elif fingerprint is not None:
            self._fingerprint = fingerprint
        else:
            self._fingerprint = _mix(size, 0xDEADBEEF)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes) -> "Payload":
        return cls(len(data), data=data)

    @classmethod
    def phantom(cls, size: int, tag: int = 0) -> "Payload":
        """A contents-free payload of ``size`` bytes identified by ``tag``."""
        return cls(size, fingerprint=_mix(size, tag))

    @classmethod
    def pattern(cls, size: int, seed: int = 0) -> "Payload":
        """A concrete payload with a cheap deterministic byte pattern."""
        if size == 0:
            return cls.from_bytes(b"")
        block = bytes((seed + i) & 0xFF for i in range(min(size, 256)))
        reps = size // len(block) + 1
        return cls.from_bytes((block * reps)[:size])

    # -- properties ------------------------------------------------------------

    @property
    def is_concrete(self) -> bool:
        return self._data is not None

    @property
    def data(self) -> bytes:
        if self._data is None:
            raise ValueError("phantom payload has no concrete bytes")
        return self._data

    @property
    def fingerprint(self) -> int:
        """Stable token covering size and content; fed to the packet CRC."""
        return self._fingerprint

    # -- transformations -------------------------------------------------------

    def slice(self, offset: int, length: int) -> "Payload":
        """Sub-payload (used by 4 KB fragmentation)."""
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError("slice [%d:%d) outside payload of %d bytes"
                             % (offset, offset + length, self.size))
        if self._data is not None:
            return Payload.from_bytes(self._data[offset:offset + length])
        if offset == 0 and length == self.size:
            return self
        return Payload(
            length,
            fingerprint=_mix(self._fingerprint, _mix(offset, length)),
            lineage=(self._fingerprint, offset))

    @classmethod
    def concat(cls, parts: Sequence["Payload"]) -> "Payload":
        """Reassemble fragments (inverse of repeated ``slice``).

        If the parts are contiguous phantom slices of one parent starting
        at offset 0, the parent payload is reconstituted exactly.
        """
        parts = list(parts)
        if len(parts) == 1:
            return parts[0]
        if all(p.is_concrete for p in parts):
            return cls.from_bytes(b"".join(p.data for p in parts))
        size = sum(p.size for p in parts)
        parent = cls._common_parent(parts)
        if parent is not None:
            return cls(size, fingerprint=parent)
        fp = 0x5EED
        for p in parts:
            fp = _mix(fp, p.fingerprint)
        return cls(size, fingerprint=fp)

    @staticmethod
    def _common_parent(parts: Sequence["Payload"]) -> Optional[int]:
        """Parent fingerprint if parts tile a single phantom from offset 0."""
        parent = None
        expected_offset = 0
        for p in parts:
            if p._lineage is None:
                return None
            parent_fp, offset = p._lineage
            if parent is None:
                parent = parent_fp
            if parent_fp != parent or offset != expected_offset:
                return None
            expected_offset += p.size
        return parent

    def corrupt(self, bit_offset: int = 0) -> "Payload":
        """A corrupted copy: one bit flipped (or fingerprint perturbed)."""
        if self._data is not None and self.size > 0:
            mutated = bytearray(self._data)
            byte_addr, bit = divmod(bit_offset % (self.size * 8), 8)
            mutated[byte_addr] ^= 1 << bit
            return Payload.from_bytes(bytes(mutated))
        return Payload(self.size,
                       fingerprint=_mix(self._fingerprint, bit_offset + 1))

    def truncate(self, length: int) -> "Payload":
        """First ``length`` bytes (a corrupted DMA length manifests so)."""
        return self.slice(0, min(length, self.size))

    # -- comparison ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        return (self.size == other.size
                and self._fingerprint == other._fingerprint)

    def __hash__(self) -> int:
        return hash((self.size, self._fingerprint))

    def __repr__(self) -> str:
        kind = "concrete" if self.is_concrete else "phantom"
        return "Payload(%s, %d bytes, fp=0x%x)" % (
            kind, self.size, self._fingerprint)
