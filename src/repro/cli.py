"""Command-line experiment driver: ``python -m repro <experiment>``.

Every verb resolves through the experiment registry
(:mod:`repro.exp.registry`) — the legacy spellings keep working and two
engine verbs drive anything registered::

    python -m repro list
    python -m repro run table1 --runs 300 --workers 4 --out t1.json
    python -m repro run table1 --scale small --trace t1.trace.json
    python -m repro run netfaults --runs-per-scenario 2 \\
        --journal nf.journal            # kill it; rerun to resume
    python -m repro run slo-chaos --scale small --workers 2
    python -m repro run slo-chaos --peak-rate 2500 --profile spike-train
    python -m repro run spec.json       # re-run a saved spec exactly
    python -m repro metrics table1 --scale small --workers 4
    python -m repro metrics --from t1.json --json
    python -m repro run slo-chaos --scale small --sample-every 5000 \\
        --flight-recorder flights/ --out slo.json
    python -m repro report slo.json
    python -m repro run table1 --scale small --branch-at injection
    python -m repro snapshot netfaults --runs-per-scenario 1 \\
        --at 4000 --run 2 --out nf.snapshot.json
    python -m repro run netfaults --runs-per-scenario 1 \\
        --from-snapshot nf.snapshot.json    # splice the restored run in

    python -m repro table1 --runs 300
    python -m repro table2
    python -m repro table3
    python -m repro fig7 --messages 30
    python -m repro fig8 --iterations 40
    python -m repro fig9
    python -m repro fig45
    python -m repro effectiveness --runs 120
    python -m repro netfaults --runs 5 --workers 4

``--out`` writes the unified result JSON (spec + manifest + outcomes +
rendered text; see ``docs/EXPERIMENTS_ENGINE.md``); ``--journal`` makes
the campaign checkpointed and resumable.  ``--trace`` writes a
Chrome-trace JSON of every run's events (spans, message flows) and
``repro metrics <name>`` prints the aggregated telemetry report — see
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, List, Optional

__all__ = ["main"]


def _progress_printer(experiment, total: int) -> Optional[Callable]:
    """stderr progress lines at the experiment's historic cadence."""
    every = experiment.progress_every
    if not every:
        return None
    fmt = experiment.progress_fmt
    two_fields = fmt.count("%d") == 2

    def progress(done: int) -> None:
        if done % every == 0:
            message = fmt % (done, total) if two_fields else fmt % done
            print(message, file=sys.stderr)

    return progress


def _execute(experiment, spec, *, workers: int,
             out: Optional[str] = None,
             journal: Optional[str] = None,
             forkserver: bool = True,
             telemetry: bool = False,
             trace: Optional[str] = None,
             sample_every: Optional[float] = None,
             flight_dir: Optional[str] = None,
             shards: Optional[int] = None,
             shard_schedule: Optional[str] = None,
             branch: bool = False,
             from_snapshot: Optional[str] = None):
    from .ckpt.snapshot import SnapshotMismatch
    from .exp.runner import JournalMismatch, run_experiment

    try:
        result = run_experiment(
            spec, workers=workers,
            progress=_progress_printer(experiment, spec.runs),
            journal_path=journal, forkserver=forkserver,
            telemetry=telemetry, trace=trace is not None,
            sample_every=sample_every, flight_dir=flight_dir,
            shards=shards, shard_schedule=shard_schedule,
            branch=branch, from_snapshot=from_snapshot)
    except (JournalMismatch, SnapshotMismatch) as exc:
        raise SystemExit("error: %s" % exc)
    if out:
        result.write(out)
        print("wrote %s" % out, file=sys.stderr)
    for path in result.flight_dumps or []:
        print("flight dump: %s" % path, file=sys.stderr)
    if trace:
        import json

        from .sim.trace import chrome_trace_doc

        runs = [("run%d" % index, records)
                for index, records in (result.traces or [])]
        with open(trace, "w") as fh:
            json.dump(chrome_trace_doc(runs), fh, sort_keys=True)
        print("wrote %s (%d runs traced; load in Perfetto or "
              "chrome://tracing)" % (trace, len(runs)), file=sys.stderr)
    return result


def _run_registered(experiment, args) -> str:
    """Legacy-verb handler: CLI namespace -> spec -> engine."""
    params = {option.dest: getattr(args, option.dest)
              for option in experiment.options}
    spec = experiment.build_spec(params)
    trace = getattr(args, "trace", None)
    result = _execute(experiment, spec,
                      workers=getattr(args, "workers", 1),
                      out=getattr(args, "out", None),
                      journal=getattr(args, "journal", None),
                      forkserver=not getattr(args, "no_forkserver", False),
                      trace=trace,
                      sample_every=getattr(args, "sample_every", None),
                      flight_dir=getattr(args, "flight_recorder", None),
                      shards=getattr(args, "shards", None),
                      shard_schedule=getattr(args, "shard_schedule", None),
                      branch=getattr(args, "branch_at", None) == "injection",
                      from_snapshot=getattr(args, "from_snapshot", None))
    return result.rendered


def _add_common_options(parser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel runner processes (default 1)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the result JSON here")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="checkpoint outcomes here; rerunning the "
                             "same spec resumes from it")
    parser.add_argument("--no-forkserver", action="store_true",
                        dest="no_forkserver",
                        help="force the spawn-per-run path instead of "
                             "the fork-server boot snapshots "
                             "(REPRO_FORKSERVER=0 does the same)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="capture per-run event traces and write a "
                             "Chrome-trace JSON here (load in Perfetto "
                             "or chrome://tracing)")
    parser.add_argument("--sample-every", type=float, default=None,
                        dest="sample_every", metavar="T_US",
                        help="sample hot-loop counters every T_US of "
                             "simulated time into per-run timeseries "
                             "tracks (a 'timeseries' key in --out; "
                             "Perfetto counter plots with --trace)")
    parser.add_argument("--flight-recorder", default=None,
                        dest="flight_recorder", metavar="DIR",
                        help="arm the flight recorder: anomalous runs "
                             "(SLO breach, deadlock, exception) dump "
                             "their recent-event ring plus an anomaly-"
                             "instant snapshot into DIR")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard each simulated cluster across N "
                             "per-node event wheels (execution mode "
                             "only: results are byte-identical at "
                             "equal seeds; REPRO_SHARDS does the same)")
    parser.add_argument("--shard-schedule", default=None,
                        dest="shard_schedule",
                        choices=("merged", "windowed", "threads"),
                        help="how sharded wheels are driven: merged "
                             "(deterministic single-process, default), "
                             "windowed (conservative lookahead rounds), "
                             "or threads (windowed on a thread pool)")
    parser.add_argument("--branch-at", default=None, dest="branch_at",
                        choices=("injection", "stage"),
                        help="fan runs out from one shared live prefix: "
                             "'injection' boots each branch group once "
                             "and forks every run at its fault gate "
                             "(byte-identical results; experiments "
                             "without a brancher fall back), 'stage' "
                             "keeps the fork-server boot sharing")
    parser.add_argument("--from-snapshot", default=None,
                        dest="from_snapshot", metavar="PATH",
                        help="restore this snapshot's pinned run from "
                             "its checkpoint instead of re-running it "
                             "(must match the spec); other runs execute "
                             "normally")


def _cmd_list(argv: List[str]) -> int:
    from .exp.registry import all_experiments

    if argv:
        print("repro list takes no arguments", file=sys.stderr)
        return 2
    experiments = all_experiments()
    width = max(len(e.name) for e in experiments)
    print("Registered experiments (run with: repro run <name> [options]):")
    for experiment in experiments:
        print("  %-*s  %s" % (width, experiment.name, experiment.help))
    return 0


def _parse_engine_argv(prog: str, argv: List[str],
                       add_options: Callable = _add_common_options):
    """Shared target/options parsing for the engine verbs
    (``run``/``metrics``/``snapshot``)."""
    from .exp.registry import experiment_names, get_experiment
    from .exp.spec import ExperimentSpec

    base = argparse.ArgumentParser(
        prog=prog,
        description="Run a registered experiment or a saved spec JSON.")
    base.add_argument("target",
                      help="experiment name (see 'repro list') or a "
                           "spec .json path")
    add_options(base)
    ns, rest = base.parse_known_args(argv)

    if ns.target.endswith(".json") or os.path.exists(ns.target):
        if rest:
            base.error("spec-file runs take no experiment options "
                       "(got %s); edit the spec instead" % " ".join(rest))
        with open(ns.target) as fh:
            spec = ExperimentSpec.from_json(fh.read())
        try:
            experiment = get_experiment(spec.experiment)
        except KeyError as exc:
            base.error(str(exc))
    else:
        try:
            experiment = get_experiment(ns.target)
        except KeyError:
            base.error("unknown experiment %r (have: %s)"
                       % (ns.target, ", ".join(experiment_names())))
        options = argparse.ArgumentParser(
            prog="%s %s" % (prog, experiment.name))
        for option in experiment.options:
            option.add_to(options)
        opts = options.parse_args(rest)
        spec = experiment.build_spec(vars(opts))
    return experiment, spec, ns


def _cmd_run(argv: List[str]) -> int:
    experiment, spec, ns = _parse_engine_argv("repro run", argv)
    result = _execute(experiment, spec, workers=ns.workers, out=ns.out,
                      journal=ns.journal,
                      forkserver=not ns.no_forkserver,
                      trace=ns.trace,
                      sample_every=ns.sample_every,
                      flight_dir=ns.flight_recorder,
                      shards=ns.shards, shard_schedule=ns.shard_schedule,
                      branch=ns.branch_at == "injection",
                      from_snapshot=ns.from_snapshot)
    print(result.rendered)
    return 0


def _add_snapshot_options(parser) -> None:
    parser.add_argument("--at", type=float, required=True, dest="at_us",
                        metavar="T_US",
                        help="simulated instant (us) to pause and "
                             "checkpoint the run at")
    parser.add_argument("--run", type=int, default=0, dest="run_index",
                        metavar="N",
                        help="run index within the expanded spec "
                             "(default 0)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="snapshot file to write (default "
                             "<experiment>-run<N>.snapshot.json)")


def _cmd_snapshot(argv: List[str]) -> int:
    """Checkpoint one run of an experiment at a simulated instant."""
    from .ckpt.snapshot import (SnapshotMismatch, take_snapshot,
                                write_snapshot)

    experiment, spec, ns = _parse_engine_argv(
        "repro snapshot", argv, add_options=_add_snapshot_options)
    out = ns.out or "%s-run%d.snapshot.json" % (experiment.name,
                                                ns.run_index)
    try:
        snapshot = take_snapshot(spec, ns.at_us, run_index=ns.run_index)
    except SnapshotMismatch as exc:
        raise SystemExit("error: %s" % exc)
    write_snapshot(snapshot, out)
    print("wrote %s (run %d of %s at %.1f us, state %s)"
          % (out, ns.run_index, experiment.name, snapshot.at_us,
             snapshot.state_hash[:16]))
    return 0


def _add_metrics_options(parser) -> None:
    _add_common_options(parser)
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the report as JSON instead of text")


def _print_metrics(snapshot, title: str, as_json: bool) -> None:
    from .obs.report import metrics_report_doc, render_metrics_report

    if as_json:
        import json

        print(json.dumps(metrics_report_doc(snapshot, title=title),
                         indent=2, sort_keys=True))
    else:
        print(render_metrics_report(snapshot, title=title))


def _cmd_metrics(argv: List[str]) -> int:
    """Run an experiment with metrics on and print the telemetry report.

    ``--from result.json`` re-renders the report from a saved result
    document's ``telemetry`` key instead of re-running the campaign.
    """
    if "--from" in argv:
        import json

        from .obs.metrics import MetricsSnapshot

        parser = argparse.ArgumentParser(
            prog="repro metrics",
            description="Re-render the telemetry report from a saved "
                        "result document.")
        parser.add_argument("--from", dest="from_path", required=True,
                            metavar="RESULT_JSON",
                            help="result file written by --out")
        parser.add_argument("--json", action="store_true", dest="as_json",
                            help="print the report as JSON instead of text")
        ns = parser.parse_args(argv)
        with open(ns.from_path) as fh:
            doc = json.load(fh)
        telemetry = doc.get("telemetry")
        if telemetry is None:
            raise SystemExit(
                "error: %s has no 'telemetry' key — write it with "
                "'repro metrics <name> --out %s' (telemetry must be on "
                "when the campaign runs)" % (ns.from_path, ns.from_path))
        title = "%s (%d runs, from %s)" % (
            (doc.get("spec", {}) or {}).get("experiment", "?"),
            len(doc.get("outcomes", [])), ns.from_path)
        _print_metrics(MetricsSnapshot.from_doc(telemetry), title,
                       ns.as_json)
        return 0

    experiment, spec, ns = _parse_engine_argv(
        "repro metrics", argv, add_options=_add_metrics_options)
    result = _execute(experiment, spec, workers=ns.workers, out=ns.out,
                      journal=ns.journal,
                      forkserver=not ns.no_forkserver,
                      telemetry=True, trace=ns.trace,
                      sample_every=ns.sample_every,
                      flight_dir=ns.flight_recorder,
                      shards=ns.shards, shard_schedule=ns.shard_schedule,
                      branch=ns.branch_at == "injection",
                      from_snapshot=ns.from_snapshot)
    _print_metrics(result.telemetry,
                   "%s (%d runs)" % (experiment.name, spec.runs),
                   ns.as_json)
    return 0


def _cmd_report(argv: List[str]) -> int:
    """Campaign-level report: CDFs, SLO attribution, latency summaries.

    The target is either a result JSON written by ``--out`` (reported
    as-is, no execution) or an experiment name/spec — then the campaign
    runs with telemetry on first, exactly like ``repro metrics``.
    """
    import json

    from .exp.results import RESULT_SCHEMA
    from .obs.report import campaign_report_doc, render_campaign_report

    saved_doc = None
    if argv and not argv[0].startswith("-") and os.path.exists(argv[0]):
        with open(argv[0]) as fh:
            candidate = json.load(fh)
        if candidate.get("schema") == RESULT_SCHEMA:
            saved_doc = candidate
            parser = argparse.ArgumentParser(prog="repro report")
            parser.add_argument("target")
            parser.add_argument("--json", action="store_true",
                                dest="as_json",
                                help="print the report as JSON")
            ns = parser.parse_args(argv)
        # Not a result document: fall through — a spec .json runs below.
    if saved_doc is None:
        experiment, spec, ns = _parse_engine_argv(
            "repro report", argv, add_options=_add_metrics_options)
        result = _execute(experiment, spec, workers=ns.workers,
                          out=ns.out, journal=ns.journal,
                          forkserver=not ns.no_forkserver,
                          telemetry=True, trace=ns.trace,
                          sample_every=ns.sample_every,
                          flight_dir=ns.flight_recorder,
                          shards=ns.shards,
                          shard_schedule=ns.shard_schedule,
                          branch=ns.branch_at == "injection",
                          from_snapshot=ns.from_snapshot)
        saved_doc = result.to_doc()
    report = campaign_report_doc(saved_doc)
    if ns.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_campaign_report(report))
    return 0


def _cmd_topo(argv: List[str]) -> int:
    """Summarize (and optionally plot) a fabric shape without booting."""
    from .net.topo import summarize, to_dot

    parser = argparse.ArgumentParser(
        prog="repro topo",
        description="Summarize a fabric topology: switches per tier, "
                    "link counts and path redundancy, computed from the "
                    "same generators the cluster builder cables — no "
                    "NICs, no SRAM, no boot.")
    parser.add_argument("topology",
                        choices=("star", "ring", "tree", "clos",
                                 "fat-tree"),
                        help="fabric shape (as build_cluster's topology)")
    parser.add_argument("--nodes", type=int, default=16,
                        help="host count (default 16)")
    parser.add_argument("--switches", type=int, default=None,
                        help="ring/tree switch count or Clos spine count")
    parser.add_argument("--radix", type=int, default=None,
                        help="Clos/fat-tree switch port count (default 8)")
    parser.add_argument("--dot", default=None, metavar="PATH",
                        help="also write a Graphviz DOT file here "
                             "('-' for stdout)")
    args = parser.parse_args(argv)
    try:
        print(summarize(args.nodes, args.topology,
                        n_switches=args.switches, radix=args.radix))
        if args.dot:
            doc = to_dot(args.nodes, args.topology,
                         n_switches=args.switches, radix=args.radix)
            if args.dot == "-":
                print(doc)
            else:
                with open(args.dot, "w") as fh:
                    fh.write(doc + "\n")
                print("wrote %s" % args.dot, file=sys.stderr)
    except ValueError as exc:
        raise SystemExit("error: %s" % exc)
    return 0


def _legacy_parser() -> argparse.ArgumentParser:
    from .exp.registry import all_experiments

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiments from 'Low Overhead Fault Tolerant "
                    "Networking in Myrinet' (DSN 2003)",
        epilog="Engine verbs: 'repro list' shows every registered "
               "experiment; 'repro run <name|spec.json> [options]' runs "
               "one with --out/--journal/--trace support; 'repro "
               "metrics <name|spec.json>' runs with telemetry on and "
               "prints the aggregated metrics report ('--from "
               "result.json' re-renders a saved one); 'repro report "
               "<name|result.json>' prints the campaign-level report "
               "(CDFs, SLO attribution); both take --json.")
    sub = parser.add_subparsers(dest="command", required=True)
    for experiment in all_experiments():
        verb = sub.add_parser(experiment.name, help=experiment.help)
        for option in experiment.options:
            option.add_to(verb, legacy=True)
        _add_common_options(verb)
        verb.set_defaults(experiment=experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "list":
        return _cmd_list(argv[1:])
    if argv and argv[0] == "run":
        return _cmd_run(argv[1:])
    if argv and argv[0] == "metrics":
        return _cmd_metrics(argv[1:])
    if argv and argv[0] == "report":
        return _cmd_report(argv[1:])
    if argv and argv[0] == "snapshot":
        return _cmd_snapshot(argv[1:])
    if argv and argv[0] == "topo":
        return _cmd_topo(argv[1:])
    args = _legacy_parser().parse_args(argv)
    print(_run_registered(args.experiment, args))
    return 0
