"""Command-line experiment driver: ``python -m repro <experiment>``.

Every verb resolves through the experiment registry
(:mod:`repro.exp.registry`) — the legacy spellings keep working and two
engine verbs drive anything registered::

    python -m repro list
    python -m repro run table1 --runs 300 --workers 4 --out t1.json
    python -m repro run netfaults --runs-per-scenario 2 \\
        --journal nf.journal            # kill it; rerun to resume
    python -m repro run spec.json       # re-run a saved spec exactly

    python -m repro table1 --runs 300
    python -m repro table2
    python -m repro table3
    python -m repro fig7 --messages 30
    python -m repro fig8 --iterations 40
    python -m repro fig9
    python -m repro fig45
    python -m repro effectiveness --runs 120
    python -m repro netfaults --runs 5 --workers 4

``--out`` writes the unified result JSON (spec + manifest + outcomes +
rendered text; see ``docs/EXPERIMENTS_ENGINE.md``); ``--journal`` makes
the campaign checkpointed and resumable.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, List, Optional

__all__ = ["main"]


def _progress_printer(experiment, total: int) -> Optional[Callable]:
    """stderr progress lines at the experiment's historic cadence."""
    every = experiment.progress_every
    if not every:
        return None
    fmt = experiment.progress_fmt
    two_fields = fmt.count("%d") == 2

    def progress(done: int) -> None:
        if done % every == 0:
            message = fmt % (done, total) if two_fields else fmt % done
            print(message, file=sys.stderr)

    return progress


def _execute(experiment, spec, *, workers: int,
             out: Optional[str] = None,
             journal: Optional[str] = None,
             forkserver: bool = True) -> str:
    from .exp.runner import JournalMismatch, run_experiment

    try:
        result = run_experiment(
            spec, workers=workers,
            progress=_progress_printer(experiment, spec.runs),
            journal_path=journal, forkserver=forkserver)
    except JournalMismatch as exc:
        raise SystemExit("error: %s" % exc)
    if out:
        result.write(out)
        print("wrote %s" % out, file=sys.stderr)
    return result.rendered


def _run_registered(experiment, args) -> str:
    """Legacy-verb handler: CLI namespace -> spec -> engine."""
    params = {option.dest: getattr(args, option.dest)
              for option in experiment.options}
    spec = experiment.build_spec(params)
    return _execute(experiment, spec,
                    workers=getattr(args, "workers", 1),
                    out=getattr(args, "out", None),
                    journal=getattr(args, "journal", None),
                    forkserver=not getattr(args, "no_forkserver", False))


def _add_common_options(parser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel runner processes (default 1)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the result JSON here")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="checkpoint outcomes here; rerunning the "
                             "same spec resumes from it")
    parser.add_argument("--no-forkserver", action="store_true",
                        dest="no_forkserver",
                        help="force the spawn-per-run path instead of "
                             "the fork-server boot snapshots "
                             "(REPRO_FORKSERVER=0 does the same)")


def _cmd_list(argv: List[str]) -> int:
    from .exp.registry import all_experiments

    if argv:
        print("repro list takes no arguments", file=sys.stderr)
        return 2
    experiments = all_experiments()
    width = max(len(e.name) for e in experiments)
    print("Registered experiments (run with: repro run <name> [options]):")
    for experiment in experiments:
        print("  %-*s  %s" % (width, experiment.name, experiment.help))
    return 0


def _cmd_run(argv: List[str]) -> int:
    from .exp.registry import experiment_names, get_experiment
    from .exp.spec import ExperimentSpec

    base = argparse.ArgumentParser(
        prog="repro run",
        description="Run a registered experiment or a saved spec JSON.")
    base.add_argument("target",
                      help="experiment name (see 'repro list') or a "
                           "spec .json path")
    _add_common_options(base)
    ns, rest = base.parse_known_args(argv)

    if ns.target.endswith(".json") or os.path.exists(ns.target):
        if rest:
            base.error("spec-file runs take no experiment options "
                       "(got %s); edit the spec instead" % " ".join(rest))
        with open(ns.target) as fh:
            spec = ExperimentSpec.from_json(fh.read())
        try:
            experiment = get_experiment(spec.experiment)
        except KeyError as exc:
            base.error(str(exc))
    else:
        try:
            experiment = get_experiment(ns.target)
        except KeyError:
            base.error("unknown experiment %r (have: %s)"
                       % (ns.target, ", ".join(experiment_names())))
        options = argparse.ArgumentParser(
            prog="repro run %s" % experiment.name)
        for option in experiment.options:
            option.add_to(options)
        opts = options.parse_args(rest)
        spec = experiment.build_spec(vars(opts))

    print(_execute(experiment, spec, workers=ns.workers, out=ns.out,
                   journal=ns.journal,
                   forkserver=not ns.no_forkserver))
    return 0


def _legacy_parser() -> argparse.ArgumentParser:
    from .exp.registry import all_experiments

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiments from 'Low Overhead Fault Tolerant "
                    "Networking in Myrinet' (DSN 2003)",
        epilog="Engine verbs: 'repro list' shows every registered "
               "experiment; 'repro run <name|spec.json> [options]' runs "
               "one with --out/--journal support.")
    sub = parser.add_subparsers(dest="command", required=True)
    for experiment in all_experiments():
        verb = sub.add_parser(experiment.name, help=experiment.help)
        for option in experiment.options:
            option.add_to(verb, legacy=True)
        _add_common_options(verb)
        verb.set_defaults(experiment=experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "list":
        return _cmd_list(argv[1:])
    if argv and argv[0] == "run":
        return _cmd_run(argv[1:])
    args = _legacy_parser().parse_args(argv)
    print(_run_registered(args.experiment, args))
    return 0
