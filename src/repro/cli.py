"""Command-line experiment driver: ``python -m repro <experiment>``.

Runs any of the paper's experiments without pytest and prints the
rendered table/figure.  Handy for exploring parameter changes::

    python -m repro table1 --runs 300
    python -m repro table2
    python -m repro table3
    python -m repro fig7 --messages 30
    python -m repro fig8 --iterations 40
    python -m repro fig9
    python -m repro fig45
    python -m repro effectiveness --runs 120
    python -m repro netfaults --runs 5 --workers 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_table1(args) -> str:
    from .faults import run_campaign

    done = {"n": 0}

    def progress(n):
        done["n"] = n
        if n % 25 == 0:
            print("  ... %d/%d runs" % (n, args.runs), file=sys.stderr)

    result = run_campaign(runs=args.runs, seed=args.seed,
                          progress=progress, workers=args.workers)
    return result.render()


def _cmd_table2(args) -> str:
    from .analysis import Table2
    from .cluster import build_cluster
    from .workloads import measure_utilization, run_allsize, run_pingpong

    table = Table2(
        gm_bandwidth=run_allsize(build_cluster(2, flavor="gm"),
                                 1 << 20, messages=5),
        ftgm_bandwidth=run_allsize(build_cluster(2, flavor="ftgm"),
                                   1 << 20, messages=5),
        gm_latency=run_pingpong(build_cluster(2, flavor="gm"), 64,
                                iterations=args.iterations),
        ftgm_latency=run_pingpong(build_cluster(2, flavor="ftgm"), 64,
                                  iterations=args.iterations),
        gm_util=measure_utilization("gm", messages=60),
        ftgm_util=measure_utilization("ftgm", messages=60),
    )
    return table.render()


def _cmd_table3(args) -> str:
    from .analysis import Table3
    from .workloads import run_recovery_experiment

    experiments = [run_recovery_experiment(hang_offset_us=offset)
                   for offset in (520.0, 610.0, 700.0, 790.0)]
    detection = sum(e.detection_us for e in experiments) / len(experiments)
    exp = experiments[0]
    return Table3(detection_us=detection, record=exp.record,
                  per_port_us=exp.per_port_us).render()


def _cmd_fig7(args) -> str:
    from .analysis import Series, render_ascii, to_csv
    from .cluster import build_cluster
    from .workloads import run_allsize

    sizes = [256, 1024, 4096, 4097, 8192, 16384, 65536, 262144, 1048576]
    curves = []
    for flavor in ("gm", "ftgm"):
        series = Series(flavor)
        for size in sizes:
            n = max(3, min(args.messages, (1 << 22) // max(size, 1)))
            series.add(size, run_allsize(build_cluster(2, flavor=flavor),
                                         size, messages=n).bandwidth_mb_s)
        curves.append(series)
    return render_ascii(curves, "Figure 7. Bandwidth GM vs FTGM",
                        "message length (bytes)", "MB/s") \
        + "\n\n" + to_csv(curves, "bytes")


def _cmd_fig8(args) -> str:
    from .analysis import Series, render_ascii, to_csv
    from .cluster import build_cluster
    from .workloads import run_pingpong

    sizes = [1, 16, 64, 100, 256, 1024, 4096, 16384, 65536]
    curves = []
    for flavor in ("gm", "ftgm"):
        series = Series(flavor)
        for size in sizes:
            series.add(size,
                       run_pingpong(build_cluster(2, flavor=flavor), size,
                                    iterations=args.iterations).half_rtt_us)
        curves.append(series)
    return render_ascii(curves, "Figure 8. Latency GM vs FTGM",
                        "message length (bytes)", "half-RTT (us)") \
        + "\n\n" + to_csv(curves, "bytes")


def _cmd_fig9(args) -> str:
    from .analysis import recovery_timeline, render_timeline
    from .workloads import run_recovery_experiment

    exp = run_recovery_experiment(hang_offset_us=620.0)
    port_done = exp.record.events_posted_at + exp.per_port_us
    return render_timeline(recovery_timeline(exp.fault_at, exp.record,
                                             port_done))


def _cmd_fig45(args) -> str:
    from .faults.scenarios import run_figure4, run_figure5

    rows = [
        ("Fig 4 duplicate, naive GM", run_figure4("gm").duplicate),
        ("Fig 4 duplicate, FTGM", run_figure4("ftgm").duplicate),
        ("Fig 5 lost message, naive GM", run_figure5("gm").lost),
        ("Fig 5 lost message, FTGM", run_figure5("ftgm").lost),
    ]
    return "\n".join("%-32s %s" % (name, "YES" if bad else "no")
                     for name, bad in rows)


def _cmd_effectiveness(args) -> str:
    from .faults import run_effectiveness_study

    result = run_effectiveness_study(runs=args.runs, seed=args.seed,
                                     workers=args.workers)
    return result.render()


def _cmd_surface(args) -> str:
    from .faults import run_campaign
    from .faults.surface import analyze_surface

    campaign = run_campaign(runs=args.runs, seed=args.seed,
                            workers=args.workers)
    return campaign.render() + "\n\n" \
        + analyze_surface(campaign.outcomes).render()


def _cmd_netfaults(args) -> str:
    from .netfaults import run_netfaults_campaign

    def progress(n):
        if n % 4 == 0:
            print("  ... %d runs done" % n, file=sys.stderr)

    result = run_netfaults_campaign(
        runs_per_scenario=args.runs, seed=args.seed, n_nodes=args.nodes,
        topology=args.topology, progress=progress, workers=args.workers)
    return result.render()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiments from 'Low Overhead Fault Tolerant "
                    "Networking in Myrinet' (DSN 2003)")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="fault-injection campaign")
    table1.add_argument("--runs", type=int, default=150)
    table1.add_argument("--seed", type=int, default=2003)
    table1.add_argument("--workers", type=int, default=1,
                        help="parallel injection processes (default 1)")
    table1.set_defaults(fn=_cmd_table1)

    table2 = sub.add_parser("table2", help="GM vs FTGM metrics")
    table2.add_argument("--iterations", type=int, default=25)
    table2.set_defaults(fn=_cmd_table2)

    table3 = sub.add_parser("table3", help="recovery-time components")
    table3.set_defaults(fn=_cmd_table3)

    fig7 = sub.add_parser("fig7", help="bandwidth curves")
    fig7.add_argument("--messages", type=int, default=20)
    fig7.set_defaults(fn=_cmd_fig7)

    fig8 = sub.add_parser("fig8", help="latency curves")
    fig8.add_argument("--iterations", type=int, default=25)
    fig8.set_defaults(fn=_cmd_fig8)

    fig9 = sub.add_parser("fig9", help="recovery timeline")
    fig9.set_defaults(fn=_cmd_fig9)

    fig45 = sub.add_parser("fig45", help="duplicate/lost scenarios")
    fig45.set_defaults(fn=_cmd_fig45)

    effectiveness = sub.add_parser(
        "effectiveness", help="FTGM recovery coverage (section 5.2)")
    effectiveness.add_argument("--runs", type=int, default=80)
    effectiveness.add_argument("--seed", type=int, default=7001)
    effectiveness.add_argument("--workers", type=int, default=1,
                               help="parallel injection processes")
    effectiveness.set_defaults(fn=_cmd_effectiveness)

    surface = sub.add_parser(
        "surface", help="fault outcomes by corrupted instruction field")
    surface.add_argument("--runs", type=int, default=150)
    surface.add_argument("--seed", type=int, default=6007)
    surface.add_argument("--workers", type=int, default=1,
                         help="parallel injection processes")
    surface.set_defaults(fn=_cmd_surface)

    netfaults = sub.add_parser(
        "netfaults", help="link/switch fault campaign with reroute recovery")
    netfaults.add_argument("--runs", type=int, default=5,
                           help="runs per scenario (default 5)")
    netfaults.add_argument("--seed", type=int, default=2003)
    netfaults.add_argument("--nodes", type=int, default=4)
    netfaults.add_argument("--topology", default="ring",
                           choices=["ring", "tree"])
    netfaults.add_argument("--workers", type=int, default=1,
                           help="parallel injection processes (default 1)")
    netfaults.set_defaults(fn=_cmd_netfaults)

    args = parser.parse_args(argv)
    print(args.fn(args))
    return 0
