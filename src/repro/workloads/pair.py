"""Validation shared by workloads that name explicit cluster nodes.

The measurement workloads historically assumed the paper's 2-node
testbed; with multi-switch topologies they take explicit ``a``/``b``
node ids — and the load plane takes arbitrary fan-in target sets — so a
bad node id should fail loudly up front instead of deep in the port
machinery.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["check_nodes", "check_pair", "fan_in_pairs"]


def check_nodes(cluster, nodes: Iterable[int],
                names: Optional[Sequence[str]] = None,
                distinct: bool = False) -> None:
    """Raise ValueError unless every id in ``nodes`` is a cluster node.

    ``names`` optionally labels each position for the error message
    (``a``/``b`` for the classic pair workloads); ``distinct`` also
    rejects repeated ids, which pairwise workloads require but fan-in
    target sets (several clients aiming at one hotspot) do not.
    """
    nodes = list(nodes)
    n = len(cluster)
    for position, node in enumerate(nodes):
        name = names[position] if names else "#%d" % position
        if not 0 <= node < n:
            raise ValueError(
                "workload node %s=%d outside cluster of %d nodes"
                % (name, node, n))
    if distinct and len(set(nodes)) != len(nodes):
        raise ValueError(
            "workload needs distinct nodes, got %s" % (nodes,))


def check_pair(cluster, a: int, b: int) -> None:
    """Raise ValueError unless ``a`` and ``b`` are two distinct nodes."""
    check_nodes(cluster, (a, b), names=("a", "b"))
    if a == b:
        raise ValueError(
            "workload needs two distinct nodes, got a == b == %d" % a)


def fan_in_pairs(cluster, hotspot: int, n_clients: int,
                 stride: int = 1) -> List[Tuple[int, int]]:
    """Directed (client, hotspot) pairs converging on one node.

    The fan-in shape the load plane's ``hotspot_node`` weighting
    approximates stochastically, as an explicit deterministic pair
    list: ``n_clients`` distinct senders, picked by walking the node
    ids from the hotspot in ``stride`` steps (mod cluster size) —
    ``stride = hosts-per-rack`` spreads the clients one per rack, which
    makes every flow cross the spine/core stage.
    """
    n = len(cluster)
    check_nodes(cluster, (hotspot,), names=("hotspot",))
    if stride < 1:
        raise ValueError("stride must be >= 1, got %d" % stride)
    if not 1 <= n_clients < n:
        raise ValueError(
            "fan-in of %d clients impossible with %d nodes"
            % (n_clients, n))
    clients: List[int] = []
    taken = {hotspot}
    node = hotspot
    while len(clients) < n_clients:
        node = (node + stride) % n
        while node in taken:
            # Stride orbit closed (gcd(stride, n) > 1) or revisited a
            # client; slide to the next free id — n_clients < n
            # guarantees one exists.
            node = (node + 1) % n
        taken.add(node)
        clients.append(node)
    return [(client, hotspot) for client in clients]
