"""Validation shared by workloads that run between two cluster nodes.

The measurement workloads historically assumed the paper's 2-node
testbed; with multi-switch topologies they take explicit ``a``/``b``
node ids, and a bad pair should fail loudly up front instead of deep in
the port machinery.
"""

from __future__ import annotations

__all__ = ["check_pair"]


def check_pair(cluster, a: int, b: int) -> None:
    """Raise ValueError unless ``a`` and ``b`` are two distinct nodes."""
    n = len(cluster)
    for name, node in (("a", a), ("b", b)):
        if not 0 <= node < n:
            raise ValueError(
                "workload node %s=%d outside cluster of %d nodes"
                % (name, node, n))
    if a == b:
        raise ValueError(
            "workload needs two distinct nodes, got a == b == %d" % a)
