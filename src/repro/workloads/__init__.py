"""Measurement workloads: ping-pong, allsize streaming, utilization."""

from .allsize import BandwidthResult, allsize_sweep, run_allsize
from .pingpong import PingPongResult, pingpong_sweep, run_pingpong
from .recovery import RecoveryExperiment, run_recovery_experiment
from .utilization import UtilizationResult, measure_utilization

__all__ = [
    "BandwidthResult",
    "PingPongResult",
    "RecoveryExperiment",
    "UtilizationResult",
    "allsize_sweep",
    "measure_utilization",
    "pingpong_sweep",
    "run_allsize",
    "run_pingpong",
    "run_recovery_experiment",
]
