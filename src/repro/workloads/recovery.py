"""Controlled recovery experiments (Table 3, Figure 9).

Runs light traffic on an FTGM pair, hangs the receiver's LANai at a
chosen moment, and extracts the three recovery-time components the paper
reports: detection (fault -> FATAL interrupt), FTD time (wakeup ->
FAULT_DETECTED posted), and per-process handler time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cluster import build_cluster
from ..ftgm.ftd import RecoveryRecord
from ..obs.harvest import harvest_cluster
from ..payload import Payload

__all__ = ["RecoveryExperiment", "run_recovery_experiment"]


@dataclass
class RecoveryExperiment:
    """One instrumented fault-recovery run."""

    fault_at: float
    record: RecoveryRecord
    port_recovery_times: List[float]  # per-handler durations ("took")
    last_port_done_at: float          # absolute time of the final handler
    completed_after_recovery: bool

    @property
    def detection_us(self) -> float:
        return self.record.interrupt_at - self.fault_at

    @property
    def per_port_us(self) -> float:
        """Mean handler duration.  With several open ports the handlers
        serialize on the host CPU, so later handlers' durations include
        queueing — use :attr:`total_us` for end-to-end claims."""
        if not self.port_recovery_times:
            return 0.0
        return sum(self.port_recovery_times) / len(self.port_recovery_times)

    @property
    def total_us(self) -> float:
        """Fault occurrence to the last port fully recovered."""
        return self.last_port_done_at - self.fault_at


def run_recovery_experiment(open_ports: int = 1, hang_offset_us: float = 650.0,
                            messages: int = 30,
                            seed: int = 0) -> RecoveryExperiment:
    """Hang the receiver mid-stream; measure every recovery component."""
    cluster = build_cluster(2, flavor="ftgm", seed=seed, trace=True)
    sim = cluster.sim
    state = {"recv": 0, "sent": 0, "fault_at": None}

    # Phase 1: open every port up front (port opens go through L_timer;
    # a crash while an open is pending would wedge the application on a
    # request the dead MCP never answers — not the scenario under test).
    opened = {}

    def opener(node, port_id):
        opened[(node, port_id)] = yield from \
            cluster[node].driver.open_port(port_id)

    cluster[0].host.spawn(opener(0, 1), "open-s")
    cluster[1].host.spawn(opener(1, 2), "open-r")
    for extra in range(open_ports - 1):
        cluster[1].host.spawn(opener(1, 3 + extra), "open-i%d" % extra)
    want = 2 + (open_ports - 1)
    while len(opened) < want:
        sim.step()

    # Phase 2: traffic + fault.
    def sender():
        port = opened[(0, 1)]
        payload = Payload.phantom(256, tag=3)
        for _ in range(messages):
            yield from port.send_and_wait(payload, 1, 2)
            state["sent"] += 1
            yield sim.timeout(20.0)

    def receiver():
        port = opened[(1, 2)]
        for _ in range(8):
            yield from port.provide_receive_buffer(256)
        while state["recv"] < messages:
            event = yield from port.receive_message()
            state["recv"] += 1
            if state["recv"] <= messages - 8:
                yield from port.provide_receive_buffer(256)

    def idler(port_index):
        """Poll an idle port so its FAULT_DETECTED gets handled."""
        port = opened[(1, 3 + port_index)]

        def body():
            while True:
                yield from port.receive(timeout=5_000.0)
        return body

    def crasher():
        yield sim.timeout(hang_offset_us)
        state["fault_at"] = sim.now
        cluster[1].mcp.die("recovery-experiment")

    cluster[1].host.spawn(receiver(), "recv")
    cluster[0].host.spawn(sender(), "send")
    for extra in range(open_ports - 1):
        cluster[1].host.spawn(idler(extra)(), "idle%d" % extra)
    sim.spawn(crasher())

    deadline = sim.now + 60_000_000.0
    ftd = cluster[1].driver.ftd

    def finished():
        if state["recv"] < messages or state["sent"] < messages:
            return False
        done = [r for r in cluster.tracer.records
                if r.kind == "port_recovery_done"]
        return len(done) >= open_ports

    while not finished() and sim.peek() <= deadline:
        sim.step()
    sim.run(until=min(sim.now + 10_000.0, deadline))

    done_records = [r for r in cluster.tracer.records
                    if r.kind == "port_recovery_done"]
    if not ftd.recoveries:
        raise RuntimeError("no recovery happened; hang_offset too late?")
    harvest_cluster(cluster, fault_at=state["fault_at"])
    return RecoveryExperiment(
        fault_at=state["fault_at"],
        record=ftd.recoveries[0],
        port_recovery_times=[r.details["took"] for r in done_records],
        last_port_done_at=max((r.time for r in done_records),
                              default=ftd.recoveries[0].events_posted_at),
        completed_after_recovery=(state["recv"] >= messages),
    )
