"""Bidirectional streaming bandwidth (Figure 7, Table 2 "Bandwidth").

"The workload for these experiments involved both the hosts sending and
receiving messages at the maximum rate possible (as in gm_allsize).  For
each message length, a large number of messages were sent repeatedly and
results averaged."

Each side keeps as many sends outstanding as its token pool allows and
recycles receive buffers as messages land; sustained bandwidth is the
per-direction goodput over the measurement interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cluster import MyrinetCluster, build_cluster
from ..gm import constants as C
from ..payload import Payload
from .pair import check_pair

__all__ = ["BandwidthResult", "run_allsize", "allsize_sweep"]


@dataclass
class BandwidthResult:
    size: int
    messages_per_side: int
    elapsed_us: float
    delivered_bytes_per_side: int

    @property
    def bandwidth_mb_s(self) -> float:
        """Sustained per-direction data rate (bytes/us == MB/s)."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.delivered_bytes_per_side / self.elapsed_us


def run_allsize(cluster: MyrinetCluster, size: int, messages: int = 50,
                a: int = 0, b: int = 1) -> BandwidthResult:
    """Bidirectional stream of ``messages`` x ``size`` bytes each way.

    ``a``/``b`` may be any two distinct nodes of the cluster.
    """
    check_pair(cluster, a, b)
    sim = cluster.sim
    state = {"recv": {a: 0, b: 0}, "start": None, "end": None, "done": 0}
    payload = Payload.phantom(size, tag=0xF10)
    outstanding_limit = C.SEND_TOKENS_PER_PORT
    buffers_target = min(messages, C.RECV_TOKENS_PER_PORT)

    def side(me: int, peer: int, port_id: int):
        port = yield from cluster[me].driver.open_port(port_id)
        for _ in range(buffers_target):
            yield from port.provide_receive_buffer(max(size, 1))
        if state["start"] is None:
            state["start"] = sim.now
        sent = {"posted": 0, "done": 0}

        def on_sent(outcome):
            sent["done"] += 1

        received = 0
        provided = buffers_target
        # Keep the pipe full: post sends while tokens allow, consume
        # receive events as they arrive.
        while sent["done"] < messages or received < messages:
            while (sent["posted"] < messages
                   and sent["posted"] - sent["done"] < outstanding_limit
                   and port.send_tokens > 0):
                yield from port.send(payload, peer, port_id,
                                     callback=on_sent)
                sent["posted"] += 1
            event = yield from port.receive()
            if event is not None and event.etype == "received":
                received += 1
                state["recv"][me] += event.size
                if provided < messages:
                    yield from port.provide_receive_buffer(max(size, 1))
                    provided += 1
        state["done"] += 1
        state["end"] = sim.now

    cluster[a].host.spawn(side(a, b, 3), "allsize-a")
    cluster[b].host.spawn(side(b, a, 3), "allsize-b")
    deadline = sim.now + 600_000_000.0
    while state["done"] < 2 and sim.peek() <= deadline:
        sim.step()
    if state["done"] < 2:
        raise RuntimeError("allsize did not finish (size=%d)" % size)
    elapsed = state["end"] - state["start"]
    return BandwidthResult(size, messages, elapsed,
                           messages * size)


def allsize_sweep(flavor: str, sizes: List[int], messages: int = 40,
                  seed: int = 0) -> List[BandwidthResult]:
    results = []
    for size in sizes:
        cluster = build_cluster(2, flavor=flavor, seed=seed)
        results.append(run_allsize(cluster, size, messages))
    return results
