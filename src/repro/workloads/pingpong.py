"""Ping-pong latency workload (Figure 8, Table 2 "Latency").

"The measurement was performed as a repetitive ping-pong exchange of
messages between processes in the two machines, with the one-way latency
for each message length plotted as half of the average round-trip time."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..cluster import MyrinetCluster
from ..payload import Payload
from .pair import check_pair

__all__ = ["PingPongResult", "run_pingpong", "pingpong_sweep"]


@dataclass
class PingPongResult:
    size: int
    iterations: int
    rtts: List[float] = field(default_factory=list)

    @property
    def half_rtt_us(self) -> float:
        return (sum(self.rtts) / len(self.rtts)) / 2.0 if self.rtts else 0.0

    @property
    def min_half_rtt_us(self) -> float:
        return min(self.rtts) / 2.0 if self.rtts else 0.0


def run_pingpong(cluster: MyrinetCluster, size: int, iterations: int = 50,
                 warmup: int = 3, a: int = 0, b: int = 1) -> PingPongResult:
    """Run one ping-pong series on an already-booted cluster.

    ``a``/``b`` may be any two distinct nodes — on a multi-switch
    topology, picking nodes on different switches measures cross-fabric
    latency.
    """
    check_pair(cluster, a, b)
    sim = cluster.sim
    result = PingPongResult(size, iterations)
    state = {"done": False}
    ping = Payload.phantom(size, tag=0xA)
    pong = Payload.phantom(size, tag=0xB)

    def initiator():
        port = yield from cluster[a].driver.open_port()
        for i in range(warmup + iterations):
            yield from port.provide_receive_buffer(max(size, 1))
            start = sim.now
            yield from port.send(ping, b, _PONG_PORT, context=i)
            event = yield from port.receive_message()
            assert event is not None
            if i >= warmup:
                result.rtts.append(sim.now - start)
        state["done"] = True

    def responder():
        port = yield from cluster[b].driver.open_port(_PONG_PORT)
        for _ in range(warmup + iterations):
            yield from port.provide_receive_buffer(max(size, 1))
            event = yield from port.receive_message()
            assert event is not None
            yield from port.send(pong, a, event.sender_port)

    _PONG_PORT = 5
    cluster[b].host.spawn(responder(), "pong")
    cluster[a].host.spawn(initiator(), "ping")
    deadline = sim.now + 60_000_000.0
    while not state["done"] and sim.peek() <= deadline:
        sim.step()
    if not state["done"]:
        raise RuntimeError("ping-pong did not finish (size=%d)" % size)
    return result


def pingpong_sweep(flavor: str, sizes: List[int], iterations: int = 30,
                   seed: int = 0) -> List[PingPongResult]:
    """One fresh cluster per flavor, reused across all sizes."""
    from ..cluster import build_cluster

    results = []
    for size in sizes:
        # A fresh cluster per size keeps ports/token pools pristine and
        # runs are independent (the paper also measured per length).
        cluster = build_cluster(2, flavor=flavor, seed=seed)
        results.append(run_pingpong(cluster, size, iterations))
    return results
