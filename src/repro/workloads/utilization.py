"""Host-CPU and LANai utilization probes (Table 2 rows 3-5).

* **Host util. (send/recv)** — CPU time the host burns per message in
  the library's send and receive paths; measured from the host's
  per-category CPU accounting over a one-way stream.
* **LANai util.** — LANai occupancy per small message, split into
  send-side and receive-side busy time (the paper reports the sum).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import build_cluster
from ..payload import Payload

__all__ = ["UtilizationResult", "measure_utilization"]


@dataclass
class UtilizationResult:
    messages: int
    size: int
    host_send_us: float      # per message
    host_recv_us: float
    lanai_send_us: float
    lanai_recv_us: float

    @property
    def lanai_total_us(self) -> float:
        return self.lanai_send_us + self.lanai_recv_us


def measure_utilization(flavor: str, messages: int = 100, size: int = 64,
                        seed: int = 0) -> UtilizationResult:
    """One-way stream of small messages; read the cost meters."""
    cluster = build_cluster(2, flavor=flavor, seed=seed)
    sim = cluster.sim
    state = {"recv": 0, "sent": 0}

    def sender():
        port = yield from cluster[0].driver.open_port(1)
        payload = Payload.phantom(size, tag=0x11)
        for _ in range(messages):
            yield from port.send_and_wait(payload, 1, 2)
            state["sent"] += 1

    def receiver():
        port = yield from cluster[1].driver.open_port(2)
        for _ in range(8):
            yield from port.provide_receive_buffer(max(size, 1))
        while state["recv"] < messages:
            event = yield from port.receive_message()
            state["recv"] += 1
            if state["recv"] <= messages - 8:
                yield from port.provide_receive_buffer(max(size, 1))

    # Zero the meters that boot-time activity already touched.
    cluster[0].host.cpu_time.clear()
    cluster[1].host.cpu_time.clear()

    cluster[1].host.spawn(receiver(), "util-r")
    cluster[0].host.spawn(sender(), "util-s")
    deadline = sim.now + 120_000_000.0
    while (state["sent"] < messages or state["recv"] < messages) \
            and sim.peek() <= deadline:
        sim.step()

    send_cpu = cluster[0].host.cpu_time.get("send", 0.0)
    recv_cpu = cluster[1].host.cpu_time.get("recv", 0.0)
    mcp_tx = cluster[0].mcp
    mcp_rx = cluster[1].mcp
    return UtilizationResult(
        messages=messages,
        size=size,
        host_send_us=send_cpu / messages,
        host_recv_us=recv_cpu / messages,
        lanai_send_us=mcp_tx.send_busy_time
        / max(mcp_tx.stats["packets_sent"], 1),
        lanai_recv_us=mcp_rx.recv_busy_time
        / max(mcp_rx.stats["packets_received"], 1),
    )
