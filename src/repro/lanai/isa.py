"""Instruction-set architecture of our LANai stand-in.

The real LANai is a custom 32-bit RISC core; its exact encoding is not
given in the paper, so we define a compact fixed-width 32-bit ISA with
the properties that matter for the fault-injection study:

* **dense but not full opcode space** — a single bit flip in the opcode
  field sometimes yields a different valid instruction (subtle state
  corruption) and sometimes an invalid one (decode trap, i.e. processor
  hang), mirroring the failure-mode mix of Table 1;
* **don't-care bits** — R-format instructions ignore their low 14 bits,
  so a share of injected flips is architecturally invisible ("No
  Impact");
* **big-endian words** in SRAM, like the LANai.

Formats (bit 31 is the MSB)::

    R: opcode[31:26] rd[25:22] ra[21:18] rb[17:14] pad[13:0]
    I: opcode[31:26] rd[25:22] ra[21:18] imm18[17:0]   (signed)
    B: opcode[31:26] ra[25:22] rb[21:18] imm18[17:0]   (signed word offset)
    J: opcode[31:26] imm26[25:0]                        (word address)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import InvalidInstruction

__all__ = [
    "Format",
    "Op",
    "Instruction",
    "encode",
    "decode",
    "disassemble",
    "compile_instruction",
    "compile_run",
    "FUSABLE_KINDS",
    "TERMINATOR_KINDS",
    "NUM_REGS",
    "IMM18_MIN",
    "IMM18_MAX",
    "KIND_EXEC",
    "KIND_BRANCH",
    "KIND_LOAD",
    "KIND_STORE",
    "KIND_JUMP",
    "KIND_JAL",
    "KIND_JR",
    "KIND_NOP",
    "KIND_HALT",
]

NUM_REGS = 16
IMM18_MIN = -(1 << 17)
IMM18_MAX = (1 << 17) - 1
_IMM18_MASK = (1 << 18) - 1
_IMM26_MASK = (1 << 26) - 1


class Format:
    R = "R"
    I = "I"  # noqa: E741 - canonical RISC format letter
    B = "B"
    J = "J"


@dataclass(frozen=True)
class Op:
    """One opcode: mnemonic, 6-bit code, format, cycle cost."""

    mnemonic: str
    code: int
    fmt: str
    cycles: int = 1


# The opcode table.  Gaps are deliberate: they are the invalid encodings
# that a bit flip can land on.
_OPS = [
    Op("nop", 0x00, Format.R),
    Op("add", 0x01, Format.R),
    Op("sub", 0x02, Format.R),
    Op("and", 0x03, Format.R),
    Op("or", 0x04, Format.R),
    Op("xor", 0x05, Format.R),
    Op("sll", 0x06, Format.R),
    Op("srl", 0x07, Format.R),
    Op("slt", 0x08, Format.R),
    Op("addi", 0x09, Format.I),
    Op("andi", 0x0A, Format.I),
    Op("ori", 0x0B, Format.I),
    Op("xori", 0x0C, Format.I),
    Op("lui", 0x0D, Format.I),
    Op("lw", 0x0E, Format.I, cycles=2),
    Op("sw", 0x0F, Format.I, cycles=2),
    Op("beq", 0x10, Format.B),
    Op("bne", 0x11, Format.B),
    Op("blt", 0x12, Format.B),
    Op("bge", 0x13, Format.B),
    Op("j", 0x14, Format.J),
    Op("jal", 0x15, Format.J),
    Op("jr", 0x16, Format.R),
    Op("halt", 0x17, Format.R),
]

BY_MNEMONIC: Dict[str, Op] = {op.mnemonic: op for op in _OPS}
BY_CODE: Dict[int, Op] = {op.code: op for op in _OPS}


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction."""

    op: Op
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0

    def __str__(self) -> str:
        return disassemble_instruction(self)


def _sext18(value: int) -> int:
    value &= _IMM18_MASK
    if value & (1 << 17):
        value -= 1 << 18
    return value


def encode(instr: Instruction) -> int:
    """Encode to a 32-bit word."""
    op = instr.op
    word = op.code << 26
    for reg, name in ((instr.rd, "rd"), (instr.ra, "ra"), (instr.rb, "rb")):
        if not 0 <= reg < NUM_REGS:
            raise ValueError("%s out of range: %d" % (name, reg))
    if op.fmt == Format.R:
        word |= instr.rd << 22 | instr.ra << 18 | instr.rb << 14
    elif op.fmt == Format.I:
        if not IMM18_MIN <= instr.imm <= IMM18_MAX:
            raise ValueError("imm18 out of range: %d" % instr.imm)
        word |= (instr.rd << 22 | instr.ra << 18
                 | (instr.imm & _IMM18_MASK))
    elif op.fmt == Format.B:
        if not IMM18_MIN <= instr.imm <= IMM18_MAX:
            raise ValueError("imm18 out of range: %d" % instr.imm)
        word |= (instr.ra << 22 | instr.rb << 18
                 | (instr.imm & _IMM18_MASK))
    elif op.fmt == Format.J:
        if not 0 <= instr.imm <= _IMM26_MASK:
            raise ValueError("imm26 out of range: %d" % instr.imm)
        word |= instr.imm
    else:  # pragma: no cover - table is static
        raise AssertionError("unknown format %r" % op.fmt)
    return word


def decode(word: int, pc: int = 0) -> Instruction:
    """Decode a 32-bit word; raises InvalidInstruction on a bad opcode."""
    code = (word >> 26) & 0x3F
    op = BY_CODE.get(code)
    if op is None:
        raise InvalidInstruction(word, pc)
    if op.fmt == Format.R:
        return Instruction(op, rd=(word >> 22) & 0xF, ra=(word >> 18) & 0xF,
                           rb=(word >> 14) & 0xF)
    if op.fmt == Format.I:
        return Instruction(op, rd=(word >> 22) & 0xF, ra=(word >> 18) & 0xF,
                           imm=_sext18(word))
    if op.fmt == Format.B:
        return Instruction(op, ra=(word >> 22) & 0xF, rb=(word >> 18) & 0xF,
                           imm=_sext18(word))
    return Instruction(op, imm=word & _IMM26_MASK)


def disassemble_instruction(instr: Instruction) -> str:
    op = instr.op
    if op.mnemonic in ("nop", "halt"):
        return op.mnemonic
    if op.mnemonic == "jr":
        return "jr r%d" % instr.ra
    if op.fmt == Format.R:
        return "%s r%d, r%d, r%d" % (op.mnemonic, instr.rd, instr.ra, instr.rb)
    if op.fmt == Format.I:
        if op.mnemonic == "lui":
            return "lui r%d, %d" % (instr.rd, instr.imm)
        if op.mnemonic in ("lw", "sw"):
            return "%s r%d, %d(r%d)" % (op.mnemonic, instr.rd, instr.imm,
                                        instr.ra)
        return "%s r%d, r%d, %d" % (op.mnemonic, instr.rd, instr.ra, instr.imm)
    if op.fmt == Format.B:
        return "%s r%d, r%d, %d" % (op.mnemonic, instr.ra, instr.rb, instr.imm)
    return "%s 0x%x" % (op.mnemonic, instr.imm)


def disassemble(word: int, pc: int = 0) -> str:
    """Best-effort one-line disassembly (for fault-analysis reports)."""
    try:
        return disassemble_instruction(decode(word, pc))
    except InvalidInstruction:
        return ".invalid 0x%08x" % (word & 0xFFFFFFFF)


# -- compiled execution entries ----------------------------------------------
#
# The interpreter caches each decoded word as a compiled entry
# ``(kind, cycles, arg)``; KIND_EXEC/KIND_BRANCH carry a specialized
# closure over the decoded register fields, the rest carry plain data the
# CPU loop consumes directly.  ``_COMPILERS`` is the per-opcode dispatch
# table that replaced the interpreter's mnemonic if/elif chain.

KIND_EXEC = 0     # arg(regs) -> None; falls through to pc + 4
KIND_BRANCH = 1   # arg(regs, pc) -> next_pc
KIND_LOAD = 2     # arg = (rd, ra, imm)
KIND_STORE = 3    # arg = (rd, ra, imm)
KIND_JUMP = 4     # arg = target address
KIND_JAL = 5      # arg = target address; link in r15
KIND_JR = 6       # arg = ra
KIND_NOP = 7
KIND_HALT = 8


def _s32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & (1 << 31) else value


def _c_add(i):
    rd, ra, rb = i.rd, i.ra, i.rb

    def fn(regs):
        regs[rd] = (regs[ra] + regs[rb]) & 0xFFFFFFFF
    return fn


def _c_sub(i):
    rd, ra, rb = i.rd, i.ra, i.rb

    def fn(regs):
        regs[rd] = (regs[ra] - regs[rb]) & 0xFFFFFFFF
    return fn


def _c_and(i):
    rd, ra, rb = i.rd, i.ra, i.rb

    def fn(regs):
        regs[rd] = regs[ra] & regs[rb]
    return fn


def _c_or(i):
    rd, ra, rb = i.rd, i.ra, i.rb

    def fn(regs):
        regs[rd] = regs[ra] | regs[rb]
    return fn


def _c_xor(i):
    rd, ra, rb = i.rd, i.ra, i.rb

    def fn(regs):
        regs[rd] = regs[ra] ^ regs[rb]
    return fn


def _c_sll(i):
    rd, ra, rb = i.rd, i.ra, i.rb

    def fn(regs):
        regs[rd] = (regs[ra] << (regs[rb] & 31)) & 0xFFFFFFFF
    return fn


def _c_srl(i):
    rd, ra, rb = i.rd, i.ra, i.rb

    def fn(regs):
        regs[rd] = regs[ra] >> (regs[rb] & 31)
    return fn


def _c_slt(i):
    rd, ra, rb = i.rd, i.ra, i.rb

    def fn(regs):
        regs[rd] = int(_s32(regs[ra]) < _s32(regs[rb]))
    return fn


def _c_addi(i):
    rd, ra, imm = i.rd, i.ra, i.imm

    def fn(regs):
        regs[rd] = (regs[ra] + imm) & 0xFFFFFFFF
    return fn


def _c_andi(i):
    rd, ra, imm = i.rd, i.ra, i.imm & 0xFFFFFFFF

    def fn(regs):
        regs[rd] = regs[ra] & imm
    return fn


def _c_ori(i):
    rd, ra, imm = i.rd, i.ra, i.imm & 0x3FFFF

    def fn(regs):
        regs[rd] = regs[ra] | imm
    return fn


def _c_xori(i):
    rd, ra, imm = i.rd, i.ra, i.imm & 0x3FFFF

    def fn(regs):
        regs[rd] = regs[ra] ^ imm
    return fn


def _c_lui(i):
    rd, value = i.rd, (i.imm << 14) & 0xFFFFFFFF

    def fn(regs):
        regs[rd] = value
    return fn


def _c_beq(i):
    ra, rb = i.ra, i.rb
    taken, fallthrough = 4 + i.imm * 4, 4

    def fn(regs, pc):
        return pc + (taken if regs[ra] == regs[rb] else fallthrough)
    return fn


def _c_bne(i):
    ra, rb = i.ra, i.rb
    taken, fallthrough = 4 + i.imm * 4, 4

    def fn(regs, pc):
        return pc + (taken if regs[ra] != regs[rb] else fallthrough)
    return fn


def _c_blt(i):
    ra, rb = i.ra, i.rb
    taken, fallthrough = 4 + i.imm * 4, 4

    def fn(regs, pc):
        return pc + (taken if _s32(regs[ra]) < _s32(regs[rb])
                     else fallthrough)
    return fn


def _c_bge(i):
    ra, rb = i.ra, i.rb
    taken, fallthrough = 4 + i.imm * 4, 4

    def fn(regs, pc):
        return pc + (taken if _s32(regs[ra]) >= _s32(regs[rb])
                     else fallthrough)
    return fn


_COMPILERS = {
    "nop": (KIND_NOP, None),
    "halt": (KIND_HALT, None),
    "add": (KIND_EXEC, _c_add),
    "sub": (KIND_EXEC, _c_sub),
    "and": (KIND_EXEC, _c_and),
    "or": (KIND_EXEC, _c_or),
    "xor": (KIND_EXEC, _c_xor),
    "sll": (KIND_EXEC, _c_sll),
    "srl": (KIND_EXEC, _c_srl),
    "slt": (KIND_EXEC, _c_slt),
    "addi": (KIND_EXEC, _c_addi),
    "andi": (KIND_EXEC, _c_andi),
    "ori": (KIND_EXEC, _c_ori),
    "xori": (KIND_EXEC, _c_xori),
    "lui": (KIND_EXEC, _c_lui),
    "lw": (KIND_LOAD, lambda i: (i.rd, i.ra, i.imm)),
    "sw": (KIND_STORE, lambda i: (i.rd, i.ra, i.imm)),
    "beq": (KIND_BRANCH, _c_beq),
    "bne": (KIND_BRANCH, _c_bne),
    "blt": (KIND_BRANCH, _c_blt),
    "bge": (KIND_BRANCH, _c_bge),
    "j": (KIND_JUMP, lambda i: i.imm * 4),
    "jal": (KIND_JAL, lambda i: i.imm * 4),
    "jr": (KIND_JR, lambda i: i.ra),
}


def compile_instruction(instr: Instruction):
    """Compile to a ``(kind, cycles, arg)`` decode-cache entry."""
    kind, build = _COMPILERS[instr.op.mnemonic]
    return (kind, instr.op.cycles, build(instr) if build else None)


# Kinds that a basic-block translator may fuse: register-only work with
# no control transfer, no memory traffic and no way to trap, so a fused
# run is externally indistinguishable from stepping it one instruction
# at a time.  TERMINATOR_KINDS may additionally close a block: their
# next-pc computation folds to constants (or a register read) at
# translation time, and none of them can trap either.
FUSABLE_KINDS = frozenset((KIND_EXEC, KIND_NOP))
TERMINATOR_KINDS = frozenset((KIND_BRANCH, KIND_JUMP, KIND_JAL, KIND_JR))


def _exec_src(instr: Instruction) -> str:
    """Source line for one fusable instruction, fields constant-folded."""
    m = instr.op.mnemonic
    rd, ra, rb, imm = instr.rd, instr.ra, instr.rb, instr.imm
    if m == "add":
        return "regs[%d] = (regs[%d] + regs[%d]) & 0xFFFFFFFF" % (rd, ra, rb)
    if m == "sub":
        return "regs[%d] = (regs[%d] - regs[%d]) & 0xFFFFFFFF" % (rd, ra, rb)
    if m == "and":
        return "regs[%d] = regs[%d] & regs[%d]" % (rd, ra, rb)
    if m == "or":
        return "regs[%d] = regs[%d] | regs[%d]" % (rd, ra, rb)
    if m == "xor":
        return "regs[%d] = regs[%d] ^ regs[%d]" % (rd, ra, rb)
    if m == "sll":
        return ("regs[%d] = (regs[%d] << (regs[%d] & 31)) & 0xFFFFFFFF"
                % (rd, ra, rb))
    if m == "srl":
        return "regs[%d] = regs[%d] >> (regs[%d] & 31)" % (rd, ra, rb)
    if m == "slt":
        return "regs[%d] = int(_s32(regs[%d]) < _s32(regs[%d]))" % (rd, ra, rb)
    if m == "addi":
        return "regs[%d] = (regs[%d] + %d) & 0xFFFFFFFF" % (rd, ra, imm)
    if m == "andi":
        return "regs[%d] = regs[%d] & %d" % (rd, ra, imm & 0xFFFFFFFF)
    if m == "ori":
        return "regs[%d] = regs[%d] | %d" % (rd, ra, imm & 0x3FFFF)
    if m == "xori":
        return "regs[%d] = regs[%d] ^ %d" % (rd, ra, imm & 0x3FFFF)
    if m == "lui":
        return "regs[%d] = %d" % (rd, (imm << 14) & 0xFFFFFFFF)
    raise AssertionError("not fusable: %s" % m)  # pragma: no cover


_BRANCH_CMP = {"beq": "regs[%d] == regs[%d]",
               "bne": "regs[%d] != regs[%d]",
               "blt": "_s32(regs[%d]) < _s32(regs[%d])",
               "bge": "_s32(regs[%d]) >= _s32(regs[%d])"}


def _tail_src(tail, tail_pc: int, end_pc: int) -> str:
    """Source for the block's next-pc computation (terminator folded)."""
    if tail is None:
        return "return %d" % (end_pc & 0xFFFFFFFF)
    instr, (kind, _cycles, arg) = tail
    if kind == KIND_JUMP:
        return "return %d" % (arg & 0xFFFFFFFF)
    if kind == KIND_JAL:
        return ("regs[15] = %d\n    return %d"
                % (tail_pc + 4, arg & 0xFFFFFFFF))
    if kind == KIND_JR:
        return "return regs[%d]" % arg
    taken = (tail_pc + 4 + instr.imm * 4) & 0xFFFFFFFF
    fallthrough = (tail_pc + 4) & 0xFFFFFFFF
    cond = _BRANCH_CMP[instr.op.mnemonic] % (instr.ra, instr.rb)
    return "return %d if %s else %d" % (taken, cond, fallthrough)


def compile_run(run, tail=None, tail_pc: int = 0, end_pc: int = 0):
    """Fuse a straight-line run into one generated-code superinstruction.

    ``run`` is a list of ``(instruction, entry)`` pairs of FUSABLE
    instructions (``entry`` being the :func:`compile_instruction`
    result); ``tail`` is an optional terminating ``(instruction, entry)``
    from TERMINATOR_KINDS at address ``tail_pc``, and ``end_pc`` is the
    fall-through address used when there is no tail.  Returns
    ``(n_instr, cycles, fn)`` where ``fn(regs)`` executes the whole block
    and returns the next pc.  The body is generated Python source
    compiled once via ``exec`` — no per-instruction dispatch, no closure
    call per op.  NOPs and writes to the hardwired-zero r0 contribute
    cycles but no source line, which is also why a fused block needs no
    per-instruction ``regs[0] = 0`` reset (nothing in it can make r0
    nonzero).  Branch/jump targets and the r15 link value fold to
    constants, already masked to 32 bits like the interpreter does.
    """
    cycles = 0
    lines = []
    for instr, (kind, op_cycles, _arg) in run:
        cycles += op_cycles
        if kind == KIND_NOP or instr.rd == 0:
            continue
        lines.append(_exec_src(instr))
    n = len(run)
    if tail is not None:
        cycles += tail[1][1]
        n += 1
    lines.append(_tail_src(tail, tail_pc, end_pc))
    src = "def _block(regs):\n    " + "\n    ".join(lines)
    namespace = {"_s32": _s32}
    exec(src, namespace)
    return (n, cycles, namespace["_block"])
