"""The LANai RISC core interpreter.

The CPU executes firmware routines on demand: GM's MCP is event-driven,
so the dispatch loop (modelled natively for speed) invokes routines such
as ``send_chunk`` at an entry point and the routine returns via ``jr r15``
to a sentinel link address.  The interpreter:

* charges simulated time per instruction (132 MHz core clock, matching
  LANai9);
* turns decode failures and bus errors into a **hung** processor — once
  hung, the core never executes again until the card is reset and the
  MCP reloaded, exactly the failure mode the paper's watchdog detects;
* detects runaway loops with an instruction-budget guard ("fuel") and
  classifies them as hangs too (an infinitely looping LANai and a
  stopped LANai are indistinguishable from the host);
* reports a **restart** when control reaches the reset vector (address
  0) — Table 1's rare "MCP Restart" outcome.

Blocking device reads (a read handler returning an Event) park the CPU on
the event, modelling a spin-wait without simulating each poll.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..errors import BusError, InvalidInstruction
from ..sim import Event, Simulator, Tracer
from . import isa
from .bus import MemoryBus

__all__ = ["LanaiCpu", "RoutineOutcome", "CYCLE_US", "RETURN_SENTINEL"]

CYCLE_US = 1.0 / 132.0       # LANai9 runs at 132 MHz
RETURN_SENTINEL = 0xFFFF_FFFC  # link value meaning "routine complete"
_TIME_CHUNK = 512            # instructions per simulated-time flush


@dataclass
class RoutineOutcome:
    """Result of one ``run_routine`` invocation."""

    status: str                  # "done" | "hung" | "restart"
    reason: Optional[str] = None
    pc: int = 0
    instructions: int = 0
    faulting_word: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "done"


class LanaiCpu:
    """Interpreter state: 16 registers, a PC, and a hang latch."""

    def __init__(self, sim: Simulator, bus: MemoryBus,
                 tracer: Optional[Tracer] = None, name: str = "lanai"):
        self.sim = sim
        self.bus = bus
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.name = name
        self.regs = [0] * isa.NUM_REGS
        self.pc = 0
        self.hung = False
        self.hang_reason: Optional[str] = None
        self.instructions_retired = 0
        self.busy_time = 0.0

    def reset(self) -> None:
        """Power-on state (cleared by card reset + MCP reload)."""
        self.regs = [0] * isa.NUM_REGS
        self.pc = 0
        self.hung = False
        self.hang_reason = None

    def _hang(self, reason: str, pc: int) -> None:
        self.hung = True
        self.hang_reason = reason
        self.tracer.emit(self.sim.now, self.name, "lanai_hang",
                         reason=reason, pc=pc)

    def run_routine(self, entry: int, args: Optional[Dict[int, int]] = None,
                    fuel: int = 20000) -> Generator:
        """Process: execute from ``entry`` until ``jr r15`` (sentinel).

        ``args`` preloads registers (e.g. a pointer to the token block).
        Returns a :class:`RoutineOutcome`; on a hang the CPU latch is set
        and subsequent invocations return immediately.
        """
        if self.hung:
            return RoutineOutcome("hung", self.hang_reason, self.pc)
        self.regs = [0] * isa.NUM_REGS
        if args:
            for reg, value in args.items():
                self.regs[reg] = value & 0xFFFFFFFF
        self.regs[15] = RETURN_SENTINEL
        self.pc = entry
        executed = 0
        cycles = 0
        regs = self.regs
        bus = self.bus
        sram = bus.sram
        sram_size = sram.size
        # The decode cache is owned by the SRAM: any write through the
        # SRAM API (including injected bit flips and DMA landing mid
        # spin-wait) drops the stale entry, so the next fetch re-decodes
        # the corrupted word — persistent-flip semantics preserved.
        cache = sram.decode_cache
        cache_get = cache.get
        timeout = self.sim.timeout
        K_EXEC = isa.KIND_EXEC
        K_BRANCH = isa.KIND_BRANCH
        K_LOAD = isa.KIND_LOAD
        K_STORE = isa.KIND_STORE
        K_JUMP = isa.KIND_JUMP
        K_JAL = isa.KIND_JAL
        K_JR = isa.KIND_JR
        K_NOP = isa.KIND_NOP
        while True:
            if executed >= fuel:
                yield timeout(cycles * CYCLE_US)
                self.busy_time += cycles * CYCLE_US
                self._hang("infinite-loop", self.pc)
                return RoutineOutcome("hung", "infinite-loop", self.pc,
                                      executed)
            pc = self.pc
            if pc == 0:
                yield timeout(cycles * CYCLE_US)
                self.busy_time += cycles * CYCLE_US
                self.tracer.emit(self.sim.now, self.name, "mcp_restart", pc=pc)
                return RoutineOutcome("restart", "jumped-to-reset-vector",
                                      pc, executed)
            if pc == RETURN_SENTINEL:
                yield timeout(cycles * CYCLE_US)
                self.busy_time += cycles * CYCLE_US
                self.instructions_retired += executed
                return RoutineOutcome("done", pc=pc, instructions=executed)
            if pc % 4 or not 0 <= pc < sram_size:
                yield timeout(cycles * CYCLE_US)
                self.busy_time += cycles * CYCLE_US
                self._hang("pc-out-of-bounds", pc)
                return RoutineOutcome("hung", "pc-out-of-bounds", pc, executed)
            entry_ = cache_get(pc)
            if entry_ is None:
                word = sram.read_word(pc)
                try:
                    entry_ = isa.compile_instruction(isa.decode(word, pc))
                except InvalidInstruction:
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    self._hang("invalid-instruction", pc)
                    return RoutineOutcome("hung", "invalid-instruction", pc,
                                          executed, faulting_word=word)
                cache[pc] = entry_
            kind, op_cycles, arg = entry_
            executed += 1
            cycles += op_cycles
            next_pc = pc + 4
            if kind == K_EXEC:
                arg(regs)
            elif kind == K_BRANCH:
                next_pc = arg(regs, pc)
            elif kind == K_LOAD:
                rd, ra, imm = arg
                addr = (regs[ra] + imm) & 0xFFFFFFFF
                try:
                    result = bus.read_word(addr)
                except BusError as exc:
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    self._hang("bus-error:0x%x" % exc.address, pc)
                    return RoutineOutcome("hung", "bus-error", pc, executed)
                if isinstance(result, Event):
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    cycles = 0
                    result = yield result
                regs[rd] = int(result) & 0xFFFFFFFF
            elif kind == K_STORE:
                rd, ra, imm = arg
                addr = (regs[ra] + imm) & 0xFFFFFFFF
                try:
                    block = bus.write_word(addr, regs[rd])
                except BusError as exc:
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    self._hang("bus-error:0x%x" % exc.address, pc)
                    return RoutineOutcome("hung", "bus-error", pc, executed)
                if isinstance(block, Event):
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    cycles = 0
                    yield block
            elif kind == K_JUMP:
                next_pc = arg
            elif kind == K_JAL:
                regs[15] = pc + 4
                next_pc = arg
            elif kind == K_JR:
                next_pc = regs[arg]
            elif kind == K_NOP:
                pass
            else:  # KIND_HALT
                yield timeout(cycles * CYCLE_US)
                self.busy_time += cycles * CYCLE_US
                self._hang("halt-instruction", pc)
                return RoutineOutcome("hung", "halt-instruction", pc,
                                      executed)
            regs[0] = 0  # r0 is hardwired to zero
            self.pc = next_pc & 0xFFFFFFFF
            if executed % _TIME_CHUNK == 0:
                yield timeout(cycles * CYCLE_US)
                self.busy_time += cycles * CYCLE_US
                cycles = 0
