"""The LANai RISC core interpreter.

The CPU executes firmware routines on demand: GM's MCP is event-driven,
so the dispatch loop (modelled natively for speed) invokes routines such
as ``send_chunk`` at an entry point and the routine returns via ``jr r15``
to a sentinel link address.  The interpreter:

* charges simulated time per instruction (132 MHz core clock, matching
  LANai9);
* turns decode failures and bus errors into a **hung** processor — once
  hung, the core never executes again until the card is reset and the
  MCP reloaded, exactly the failure mode the paper's watchdog detects;
* detects runaway loops with an instruction-budget guard ("fuel") and
  classifies them as hangs too (an infinitely looping LANai and a
  stopped LANai are indistinguishable from the host);
* reports a **restart** when control reaches the reset vector (address
  0) — Table 1's rare "MCP Restart" outcome.

Blocking device reads (a read handler returning an Event) park the CPU on
the event, modelling a spin-wait without simulating each poll.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..errors import BusError, InvalidInstruction
from ..sim import Event, Simulator, Tracer
from . import isa
from .bus import MemoryBus

__all__ = ["LanaiCpu", "RoutineOutcome", "CYCLE_US", "RETURN_SENTINEL"]

CYCLE_US = 1.0 / 132.0       # LANai9 runs at 132 MHz
RETURN_SENTINEL = 0xFFFF_FFFC  # link value meaning "routine complete"
_TIME_CHUNK = 512            # instructions per simulated-time flush
_BLOCK_CAP = 64              # longest straight-line run fused into a block


@dataclass
class RoutineOutcome:
    """Result of one ``run_routine`` invocation."""

    status: str                  # "done" | "hung" | "restart"
    reason: Optional[str] = None
    pc: int = 0
    instructions: int = 0
    faulting_word: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "done"


class LanaiCpu:
    """Interpreter state: 16 registers, a PC, and a hang latch."""

    def __init__(self, sim: Simulator, bus: MemoryBus,
                 tracer: Optional[Tracer] = None, name: str = "lanai"):
        self.sim = sim
        self.bus = bus
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.name = name
        self.regs = [0] * isa.NUM_REGS
        self.pc = 0
        self.hung = False
        self.hang_reason: Optional[str] = None
        self.instructions_retired = 0
        self.busy_time = 0.0
        self.block_hits = 0          # fused-block fast-path executions
        self.blocks_translated = 0   # straight-line runs compiled

    def reset(self) -> None:
        """Power-on state (cleared by card reset + MCP reload)."""
        self.regs = [0] * isa.NUM_REGS
        self.pc = 0
        self.hung = False
        self.hang_reason = None

    def ckpt_state(self) -> dict:
        """Snapshot contract: architectural state plus retire accounting.

        The fused-block counters (``block_hits``/``blocks_translated``)
        are cache effectiveness metrics, not architectural state — a
        restore drops the caches, so they are excluded for the same
        reason the SRAM excludes its decode caches.
        """
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "hung": self.hung,
            "hang_reason": self.hang_reason,
            "instructions_retired": self.instructions_retired,
            "busy_time": self.busy_time,
        }

    def _hang(self, reason: str, pc: int) -> None:
        self.hung = True
        self.hang_reason = reason
        self.tracer.emit(self.sim.now, self.name, "lanai_hang",
                         reason=reason, pc=pc)

    @staticmethod
    def _translate_block(sram, cache, pc: int):
        """Translate the straight-line fusable run starting at ``pc``.

        Decodes forward until the first non-fusable instruction, invalid
        word, SRAM end or :data:`_BLOCK_CAP`; a terminating branch/jump
        (TERMINATOR_KINDS) is folded into the block so a whole loop body
        becomes one generated superinstruction.  The fused block — or a
        ``None`` "nothing to fuse" marker for trivial runs — is
        registered in the SRAM-owned block cache, and every covered word
        (terminator included) is entered into the SRAM's block index so
        *any* write path (stores, DMA, firmware reload, ``flip_bit``)
        invalidates the whole block.

        Blocks execute atomically inside one generator step of
        :meth:`run_routine` (fused runs contain no yield points), so a
        write can only land between executions — where the cache lookup
        re-checks — never mid-block.
        """
        fusable = isa.FUSABLE_KINDS
        terminators = isa.TERMINATOR_KINDS
        sram_size = sram.size
        run = []
        tail = None
        scan = pc
        while len(run) < _BLOCK_CAP and scan < sram_size:
            word = sram.read_word(scan)
            try:
                instr = isa.decode(word, scan)
            except InvalidInstruction:
                break
            entry = cache.get(scan)
            if entry is None:
                entry = isa.compile_instruction(instr)
                cache[scan] = entry
            kind = entry[0]
            if kind not in fusable:
                if kind in terminators:
                    tail = (instr, entry)
                break
            run.append((instr, entry))
            scan += 4
        index = sram.block_index
        if not run or (len(run) < 2 and tail is None):
            block = None            # marker: translated, nothing to fuse
            covered = range(pc, pc + 4)
        else:
            block = isa.compile_run(run, tail, scan, scan)
            covered = range(pc, scan + (4 if tail is not None else 0), 4)
        sram.block_cache[pc] = block
        for word_addr in covered:
            starts = index.get(word_addr)
            if starts is None:
                index[word_addr] = [pc]
            elif pc not in starts:
                starts.append(pc)
        return block

    def run_routine(self, entry: int, args: Optional[Dict[int, int]] = None,
                    fuel: int = 20000) -> Generator:
        """Process: execute from ``entry`` until ``jr r15`` (sentinel).

        ``args`` preloads registers (e.g. a pointer to the token block).
        Returns a :class:`RoutineOutcome`; on a hang the CPU latch is set
        and subsequent invocations return immediately.
        """
        if self.hung:
            return RoutineOutcome("hung", self.hang_reason, self.pc)
        self.regs = [0] * isa.NUM_REGS
        if args:
            for reg, value in args.items():
                self.regs[reg] = value & 0xFFFFFFFF
        self.regs[15] = RETURN_SENTINEL
        self.pc = entry
        executed = 0
        cycles = 0
        regs = self.regs
        bus = self.bus
        sram = bus.sram
        sram_size = sram.size
        # The decode cache is owned by the SRAM: any write through the
        # SRAM API (including injected bit flips and DMA landing mid
        # spin-wait) drops the stale entry, so the next fetch re-decodes
        # the corrupted word — persistent-flip semantics preserved.  The
        # block cache rides the same ownership: a write anywhere inside
        # a fused run drops the whole block via the SRAM's block index.
        cache = sram.decode_cache
        cache_get = cache.get
        bcache = sram.block_cache
        bcache_get = bcache.get
        translate = self._translate_block
        timeout = self.sim.timeout
        K_EXEC = isa.KIND_EXEC
        K_BRANCH = isa.KIND_BRANCH
        K_LOAD = isa.KIND_LOAD
        K_STORE = isa.KIND_STORE
        K_JUMP = isa.KIND_JUMP
        K_JAL = isa.KIND_JAL
        K_JR = isa.KIND_JR
        K_NOP = isa.KIND_NOP
        hits = 0
        try:
            while True:
                if executed >= fuel:
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    self._hang("infinite-loop", self.pc)
                    return RoutineOutcome("hung", "infinite-loop", self.pc,
                                          executed)
                pc = self.pc
                if pc == 0:
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    self.tracer.emit(self.sim.now, self.name, "mcp_restart", pc=pc)
                    return RoutineOutcome("restart", "jumped-to-reset-vector",
                                          pc, executed)
                if pc == RETURN_SENTINEL:
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    self.instructions_retired += executed
                    return RoutineOutcome("done", pc=pc, instructions=executed)
                if pc % 4 or not 0 <= pc < sram_size:
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    self._hang("pc-out-of-bounds", pc)
                    return RoutineOutcome("hung", "pc-out-of-bounds", pc, executed)
                # Fused-block fast path: execute a whole straight-line run in
                # one dispatch when it fits inside the current fuel budget
                # and time chunk (otherwise the per-instruction path below
                # reproduces the exact hang/flush semantics).
                blk = bcache_get(pc)
                if blk is not None:
                    n, blk_cycles, fn = blk
                    if (n <= _TIME_CHUNK - executed % _TIME_CHUNK
                            and executed + n <= fuel):
                        self.pc = fn(regs)
                        executed += n
                        cycles += blk_cycles
                        hits += 1
                        if executed % _TIME_CHUNK == 0:
                            yield timeout(cycles * CYCLE_US)
                            self.busy_time += cycles * CYCLE_US
                            cycles = 0
                        continue
                entry_ = cache_get(pc)
                if entry_ is None:
                    word = sram.read_word(pc)
                    try:
                        entry_ = isa.compile_instruction(isa.decode(word, pc))
                    except InvalidInstruction:
                        yield timeout(cycles * CYCLE_US)
                        self.busy_time += cycles * CYCLE_US
                        self._hang("invalid-instruction", pc)
                        return RoutineOutcome("hung", "invalid-instruction", pc,
                                              executed, faulting_word=word)
                    cache[pc] = entry_
                kind, op_cycles, arg = entry_
                if (kind == K_EXEC or kind == K_NOP) and blk is None \
                        and pc not in bcache:
                    # Fusable instruction with no block translated here yet —
                    # includes jumps into the middle of an already-decoded
                    # region.  Translate, then retry via the fast path.
                    if translate(sram, cache, pc) is not None:
                        self.blocks_translated += 1
                        continue
                executed += 1
                cycles += op_cycles
                next_pc = pc + 4
                if kind == K_EXEC:
                    arg(regs)
                elif kind == K_BRANCH:
                    next_pc = arg(regs, pc)
                elif kind == K_LOAD:
                    rd, ra, imm = arg
                    addr = (regs[ra] + imm) & 0xFFFFFFFF
                    try:
                        result = bus.read_word(addr)
                    except BusError as exc:
                        yield timeout(cycles * CYCLE_US)
                        self.busy_time += cycles * CYCLE_US
                        self._hang("bus-error:0x%x" % exc.address, pc)
                        return RoutineOutcome("hung", "bus-error", pc, executed)
                    if isinstance(result, Event):
                        yield timeout(cycles * CYCLE_US)
                        self.busy_time += cycles * CYCLE_US
                        cycles = 0
                        result = yield result
                    regs[rd] = int(result) & 0xFFFFFFFF
                elif kind == K_STORE:
                    rd, ra, imm = arg
                    addr = (regs[ra] + imm) & 0xFFFFFFFF
                    try:
                        block = bus.write_word(addr, regs[rd])
                    except BusError as exc:
                        yield timeout(cycles * CYCLE_US)
                        self.busy_time += cycles * CYCLE_US
                        self._hang("bus-error:0x%x" % exc.address, pc)
                        return RoutineOutcome("hung", "bus-error", pc, executed)
                    if isinstance(block, Event):
                        yield timeout(cycles * CYCLE_US)
                        self.busy_time += cycles * CYCLE_US
                        cycles = 0
                        yield block
                elif kind == K_JUMP:
                    next_pc = arg
                elif kind == K_JAL:
                    regs[15] = pc + 4
                    next_pc = arg
                elif kind == K_JR:
                    next_pc = regs[arg]
                elif kind == K_NOP:
                    pass
                else:  # KIND_HALT
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    self._hang("halt-instruction", pc)
                    return RoutineOutcome("hung", "halt-instruction", pc,
                                          executed)
                regs[0] = 0  # r0 is hardwired to zero
                self.pc = next_pc & 0xFFFFFFFF
                if executed % _TIME_CHUNK == 0:
                    yield timeout(cycles * CYCLE_US)
                    self.busy_time += cycles * CYCLE_US
                    cycles = 0
        finally:
            # Flushed once per routine (incl. kill mid-yield on
            # card reset), keeping the fast path free of
            # attribute traffic.
            self.block_hits += hits
