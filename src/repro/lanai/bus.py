"""The LANai memory bus: SRAM plus memory-mapped device registers.

Word accesses below the SRAM size hit SRAM; accesses at or above
:data:`MMIO_BASE` hit registered device registers (DMA engine, packet
interface, timers).  Everything else is a bus error, which the CPU turns
into a fatal trap — one of the organic paths from a corrupted address to
a "Local Interface Hung" outcome.

A device read handler may return either an ``int`` (immediate value) or a
:class:`~repro.sim.core.Event`; in the latter case the CPU parks on the
event and uses its value — this models firmware spinning on a status
register without simulating every poll iteration.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..errors import BusError
from ..hw.sram import Sram
from ..sim import Event

__all__ = ["MemoryBus", "MMIO_BASE"]

MMIO_BASE = 0x00F0_0000  # device registers live here, beyond any SRAM size

ReadHandler = Callable[[], Union[int, Event]]
WriteHandler = Callable[[int], Optional[Event]]


class MemoryBus:
    """Routes CPU word accesses to SRAM or device registers."""

    def __init__(self, sram: Sram):
        self.sram = sram
        self._readers: Dict[int, ReadHandler] = {}
        self._writers: Dict[int, WriteHandler] = {}

    def map_register(self, address: int,
                     read: Optional[ReadHandler] = None,
                     write: Optional[WriteHandler] = None) -> None:
        """Attach device handlers at an MMIO address."""
        if address < MMIO_BASE:
            raise ValueError("MMIO register below MMIO_BASE: 0x%x" % address)
        if address % 4:
            raise ValueError("MMIO register not word aligned: 0x%x" % address)
        if read is not None:
            self._readers[address] = read
        if write is not None:
            self._writers[address] = write

    def unmap_all(self) -> None:
        self._readers.clear()
        self._writers.clear()

    def read_word(self, address: int) -> Union[int, Event]:
        if 0 <= address < self.sram.size:
            return self.sram.read_word(address)
        handler = self._readers.get(address)
        if handler is None:
            raise BusError(address, 4, what="LANai bus (read)")
        return handler()

    def write_word(self, address: int, value: int) -> Optional[Event]:
        if 0 <= address < self.sram.size:
            self.sram.write_word(address, value)
            return None
        handler = self._writers.get(address)
        if handler is None:
            raise BusError(address, 4, what="LANai bus (write)")
        return handler(value & 0xFFFFFFFF)
