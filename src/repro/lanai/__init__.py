"""The LANai processor stand-in: ISA, assembler, interpreter, firmware."""

from .assembler import Program, assemble
from .bus import MMIO_BASE, MemoryBus
from .cpu import CYCLE_US, RETURN_SENTINEL, LanaiCpu, RoutineOutcome
from .firmware import (
    CODE_BASE,
    MAGIC_WORD_ADDR,
    MMIO,
    SEND_CHUNK_SOURCE,
    TOKEN_BASE,
    TOKEN_FIELDS,
    Firmware,
    build_firmware,
)
from .isa import Instruction, Op, decode, disassemble, encode

__all__ = [
    "CODE_BASE",
    "CYCLE_US",
    "Firmware",
    "Instruction",
    "LanaiCpu",
    "MAGIC_WORD_ADDR",
    "MMIO",
    "MMIO_BASE",
    "MemoryBus",
    "Op",
    "Program",
    "RETURN_SENTINEL",
    "RoutineOutcome",
    "SEND_CHUNK_SOURCE",
    "TOKEN_BASE",
    "TOKEN_FIELDS",
    "assemble",
    "build_firmware",
    "decode",
    "disassemble",
    "encode",
]
