"""The MCP firmware image and its interpreted ``send_chunk`` routine.

The paper injects faults into one section of GM's Myrinet Control
Program — ``send_chunk``, "a serial piece of code that is executed by the
LANai each time a message is sent out" — chosen so every injected fault
is activated.  We therefore write ``send_chunk`` in real (interpreted)
assembly; the rest of the MCP's behaviour is modelled natively by
:mod:`repro.gm.mcp` with calibrated costs.

``send_chunk`` per fragment:

1. read the send-token block the dispatch loop staged at ``TOKEN_BASE``;
2. program the E-bus DMA engine (host address, SRAM address, length) and
   spin on its status register;
3. compute a header checksum over the token words;
4. program the packet-interface TX registers (destination, length,
   sequence number, ports, type, checksum) and fire.

Every value flowing to the hardware passes through registers computed by
this code, so a flipped bit corrupts exactly what it would corrupt on a
real card: DMA lengths, host addresses, sequence numbers, branch targets,
or the instruction encoding itself.

SRAM layout::

    0x0000          reset vector (execution reaching here == MCP restart)
    0x0100          image header: MAGIC_WORD slot, version, build id
    0x1000          code (send_chunk lives here)
    0x8000          staged send-token block (written by the dispatch loop)
    0x9000          scratch
    0x10000         packet buffers (modelled, not byte-addressed)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .assembler import Program, assemble

__all__ = [
    "Firmware",
    "build_firmware",
    "SEND_CHUNK_SOURCE",
    "CODE_BASE",
    "TOKEN_BASE",
    "MAGIC_WORD_ADDR",
    "HEADER_BASE",
    "MMIO",
    "TOKEN_FIELDS",
]

CODE_BASE = 0x1000
TOKEN_BASE = 0x8000
HEADER_BASE = 0x0100
MAGIC_WORD_ADDR = HEADER_BASE  # the FTD's liveness-probe location
VERSION_ADDR = HEADER_BASE + 4
PACKET_BUFFER_BASE = 0x10000

FIRMWARE_VERSION = 0x0151  # "GM-1.5.1", the version the paper modified


class MMIO:
    """Device-register offsets from :data:`repro.lanai.bus.MMIO_BASE`."""

    BASE = 0x00F0_0000
    BASE_LUI = BASE >> 14  # value for `lui` to materialize BASE

    DMA_HOST_ADDR = BASE + 0x00
    DMA_SRAM_ADDR = BASE + 0x04
    DMA_LEN = BASE + 0x08
    DMA_GO = BASE + 0x0C
    DMA_WAIT = BASE + 0x10
    TX_DEST = BASE + 0x20
    TX_LEN = BASE + 0x24
    TX_SEQ = BASE + 0x28
    TX_PORTS = BASE + 0x2C
    TX_TYPE = BASE + 0x30
    TX_SRAM_ADDR = BASE + 0x34
    TX_GO = BASE + 0x38
    TX_WAIT = BASE + 0x3C
    TX_CSUM = BASE + 0x40
    TX_MSGID = BASE + 0x44
    TX_OFFSET = BASE + 0x48
    TX_TOTAL = BASE + 0x4C


# Field offsets (bytes) within the staged send-token block at TOKEN_BASE.
TOKEN_FIELDS: Dict[str, int] = {
    "host_addr": 0,
    "sram_addr": 4,
    "length": 8,
    "dest_node": 12,
    "seq": 16,
    "ports": 20,     # (src_port << 8) | dst_port
    "type": 24,
    "msg_id": 28,
    "offset": 32,
    "total": 36,
    "priority": 44,
    "result": 48,    # routine writes 1 on success, 0 on DMA failure
}


SEND_CHUNK_SOURCE = """
# --- send_chunk: DMA one fragment from host memory and transmit it ---
# Structure mirrors a real firmware send routine: staging-buffer
# rotation, an alignment guard with a cold bounce path, diagnostics
# counters, a software header checksum, a priority (expedite) branch,
# and byte accounting.  The cold paths and bookkeeping matter for the
# fault-injection study: they are the instructions whose corruption is
# survivable, the mass behind Table 1's "No Impact" row.
.equ TOKEN      0x8000
.equ SCRATCH    0x9000
.equ MMIO_HI    %(mmio_hi)d

send_chunk:
    lui  r14, MMIO_HI           # r14 -> device registers
    lw   r1, TOKEN+0(r0)        # host DMA address
    lw   r2, TOKEN+4(r0)        # SRAM staging address
    lw   r3, TOKEN+8(r0)        # fragment length

    # double-buffer rotation: alternate staging area per invocation
    lw   r4, SCRATCH+0(r0)      # staging selector bit
    xori r4, r4, 1
    sw   r4, SCRATCH+0(r0)
    beq  r4, r0, sc_buf_ready
    addi r2, r2, 0x1000         # odd invocations use the second buffer
sc_buf_ready:

    # E-bus alignment guard (DMA descriptors must be word aligned)
    andi r5, r1, 3
    bne  r5, r0, sc_unaligned   # cold: pinned pages are page-aligned
sc_aligned:

    # program the E-bus DMA engine: host -> SRAM
    sw   r1, 0x00(r14)          # DMA_HOST_ADDR
    sw   r2, 0x04(r14)          # DMA_SRAM_ADDR
    sw   r3, 0x08(r14)          # DMA_LEN
    addi r5, r0, 1
    sw   r5, 0x0C(r14)          # DMA_GO (1 = host to SRAM)
    lw   r6, 0x10(r14)          # DMA_WAIT: spin until done, 1=ok
    beq  r6, r0, sc_fail
    nop                         # E-bus settle slot

    # diagnostics: fragments-staged counter
    lw   r7, SCRATCH+4(r0)
    addi r7, r7, 1
    sw   r7, SCRATCH+4(r0)

    # header checksum over the wire-visible token words
    # (len, dest, seq, ports, type, msg_id, offset, total)
    addi r10, r0, 0             # acc = 0
    addi r11, r0, TOKEN+8
    addi r12, r0, 8             # 8 words starting at token.length
sc_csum:
    lw   r13, 0(r11)
    add  r10, r10, r13
    addi r11, r11, 4
    addi r12, r12, -1
    bne  r12, r0, sc_csum

    # priority handling: high-priority fragments set the expedite flag
    lw   r8, TOKEN+44(r0)       # priority (0 = low for bulk data)
    beq  r8, r0, sc_lowpri
    addi r9, r0, 1              # cold: mark expedited
    sw   r9, SCRATCH+8(r0)
sc_lowpri:

    # program the packet interface and fire
    lw   r4, TOKEN+12(r0)       # destination node
    sw   r4, 0x20(r14)          # TX_DEST
    sw   r3, 0x24(r14)          # TX_LEN
    lw   r7, TOKEN+16(r0)       # sequence number
    sw   r7, 0x28(r14)          # TX_SEQ
    lw   r8, TOKEN+20(r0)       # (src_port << 8) | dst_port
    sw   r8, 0x2C(r14)          # TX_PORTS
    lw   r9, TOKEN+24(r0)       # packet type
    sw   r9, 0x30(r14)          # TX_TYPE
    lw   r4, TOKEN+28(r0)       # message id
    sw   r4, 0x44(r14)          # TX_MSGID
    lw   r4, TOKEN+32(r0)       # fragment offset
    sw   r4, 0x48(r14)          # TX_OFFSET
    lw   r4, TOKEN+36(r0)       # message total length
    sw   r4, 0x4C(r14)          # TX_TOTAL
    sw   r2, 0x34(r14)          # TX_SRAM_ADDR (staged fragment)
    sw   r10, 0x40(r14)         # TX_CSUM (header checksum)
    sw   r5, 0x38(r14)          # TX_GO
    lw   r6, 0x3C(r14)          # TX_WAIT: spin until wire accepts
    nop                         # packet-interface settle slot

    # diagnostics: bytes-sent accounting
    lw   r11, SCRATCH+12(r0)
    add  r11, r11, r3
    sw   r11, SCRATCH+12(r0)

    addi r5, r0, 1
    sw   r5, TOKEN+48(r0)       # token.result = success
    jr   r15

sc_unaligned:                   # cold: bounce via the aligned shadow
    sub  r6, r1, r5             # round the host address down
    or   r1, r6, r0
    lw   r7, SCRATCH+16(r0)     # count the bounce
    addi r7, r7, 1
    sw   r7, SCRATCH+16(r0)
    j    sc_aligned

sc_fail:
    lw   r7, SCRATCH+20(r0)     # DMA-error counter
    addi r7, r7, 1
    sw   r7, SCRATCH+20(r0)
    sw   r0, TOKEN+48(r0)       # token.result = failure
    jr   r15
send_chunk_end:
""" % {"mmio_hi": MMIO.BASE_LUI}


@dataclass
class Firmware:
    """An assembled MCP image ready to load into SRAM."""

    program: Program
    version: int = FIRMWARE_VERSION

    @property
    def entry_send_chunk(self) -> int:
        return self.program.symbol("send_chunk")

    @property
    def send_chunk_extent(self) -> Tuple[int, int]:
        """Byte range of the fault-injection target section."""
        return self.program.extent("send_chunk")

    @property
    def image_end(self) -> int:
        return self.program.base + self.program.size

    def load_into(self, sram) -> None:
        """Write the image (header + code) into SRAM."""
        sram.write_word(MAGIC_WORD_ADDR, 0)
        sram.write_word(VERSION_ADDR, self.version)
        sram.write_bytes(self.program.base, self.program.code)

    def source_line(self, byte_addr: int) -> str:
        """Source text at a code byte address (for fault reports)."""
        return self.program.lines.get(byte_addr - self.program.base, "?")


def build_firmware() -> Firmware:
    """Assemble the MCP image (deterministic; safe to cache per-module)."""
    return Firmware(assemble(SEND_CHUNK_SOURCE, base=CODE_BASE))
