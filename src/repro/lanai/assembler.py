"""A two-pass assembler for the LANai stand-in ISA.

Grammar (one statement per line)::

    .equ NAME expr          # define a constant
    .org expr               # set the location counter (word-aligned bytes)
    .word expr [, expr ...] # emit literal data words
    label:                  # define a label (may precede an instruction)
    mnemonic operands       # see repro.lanai.isa for formats

Operands:

* registers ``r0`` .. ``r15``;
* immediate expressions: integers (decimal or ``0x`` hex), ``.equ``
  names, labels, combined with ``+``/``-`` (left-to-right; no parens);
* loads/stores accept both ``lw rd, imm(ra)`` and ``lw rd, ra, imm``.

Branch targets are labels (or expressions) holding *byte* addresses; the
assembler converts them to the PC-relative word offsets the hardware
wants.  ``j``/``jal`` likewise take byte addresses and emit word
addresses.

Comments start with ``#`` or ``;``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import AssemblerError
from . import isa

__all__ = ["Program", "assemble"]

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_OPERAND_RE = re.compile(r"^(.+)\((r\d+)\)$")


@dataclass
class Program:
    """Assembled output: code bytes plus symbol and line tables."""

    code: bytes
    base: int
    symbols: Dict[str, int]
    # byte offset (from base) -> source line, for fault-analysis reports
    lines: Dict[int, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.code)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblerError("unknown symbol %r" % name)

    def extent(self, name: str) -> Tuple[int, int]:
        """(start, end) byte addresses of the region between ``name`` and
        ``name_end`` symbols — used to aim fault injection at a section."""
        return self.symbol(name), self.symbol(name + "_end")


class _Assembler:
    def __init__(self, source: str, base: int):
        self.source = source
        self.base = base
        self.symbols: Dict[str, int] = {}
        self.lines: Dict[int, str] = {}

    def assemble(self) -> Program:
        statements = self._parse()
        # Pass 1 assigned symbols; pass 2 encodes with them resolved.
        words: List[Tuple[int, int]] = []  # (byte offset, word)
        size = 0
        for loc, lineno, text, kind, payload in statements:
            if kind == "word":
                words.append((loc, self._expr(payload, lineno)))
                size = max(size, loc + 4)
            elif kind == "instr":
                word = self._encode(payload, loc, lineno)
                words.append((loc, word))
                self.lines[loc] = text
                size = max(size, loc + 4)
        code = bytearray(size)
        for loc, word in words:
            code[loc:loc + 4] = (word & 0xFFFFFFFF).to_bytes(4, "big")
        return Program(bytes(code), self.base, dict(self.symbols), self.lines)

    # -- parsing / pass 1 ------------------------------------------------------

    def _parse(self):
        statements = []
        loc = 0
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split("#")[0].split(";")[0].strip()
            if not line:
                continue
            match = _LABEL_RE.match(line)
            while match:
                self._define(match.group(1), self.base + loc, lineno)
                line = line[match.end():].strip()
                match = _LABEL_RE.match(line)
            if not line:
                continue
            if line.startswith(".equ"):
                parts = line.split(None, 2)
                if len(parts) != 3:
                    self._err(lineno, ".equ NAME expr")
                self._define(parts[1], None, lineno, defer=parts[2])
                continue
            if line.startswith(".org"):
                loc = self._expr(line.split(None, 1)[1], lineno) - self.base
                if loc < 0 or loc % 4:
                    self._err(lineno, "misaligned or negative .org")
                continue
            if line.startswith(".word"):
                for expr in line.split(None, 1)[1].split(","):
                    statements.append((loc, lineno, line, "word", expr.strip()))
                    loc += 4
                continue
            statements.append((loc, lineno, line, "instr", line))
            loc += 4
        # Resolve deferred .equ expressions now that labels are known.
        for name, value in list(self.symbols.items()):
            if isinstance(value, str):
                self.symbols[name] = self._expr(value, 0)
        return statements

    def _define(self, name: str, value, lineno: int, defer: str = None):
        if name in self.symbols:
            self._err(lineno, "duplicate symbol %r" % name)
        self.symbols[name] = defer if defer is not None else value

    # -- expressions -----------------------------------------------------------

    def _expr(self, text: str, lineno: int) -> int:
        tokens = re.findall(r"0x[0-9A-Fa-f]+|\d+|[A-Za-z_][A-Za-z0-9_]*|[+\-]",
                            text.replace(" ", ""))
        if not tokens or "".join(tokens) != text.replace(" ", ""):
            self._err(lineno, "cannot parse expression %r" % text)
        value, op = 0, "+"
        expecting_term = True
        for token in tokens:
            if token in "+-":
                if expecting_term and token == "-":
                    # unary minus: flip the sign of the pending operator
                    op = "-" if op == "+" else "+"
                    continue
                if expecting_term:
                    self._err(lineno, "misplaced operator in %r" % text)
                op, expecting_term = token, True
                continue
            term = self._term(token, lineno)
            value = value + term if op == "+" else value - term
            expecting_term = False
        if expecting_term:
            self._err(lineno, "dangling operator in %r" % text)
        return value

    def _term(self, token: str, lineno: int) -> int:
        if token.startswith("0x"):
            return int(token, 16)
        if token.isdigit():
            return int(token)
        if token in self.symbols:
            value = self.symbols[token]
            if isinstance(value, str):
                value = self._expr(value, lineno)
                self.symbols[token] = value
            return value
        self._err(lineno, "undefined symbol %r" % token)

    # -- encoding / pass 2 -------------------------------------------------------

    def _encode(self, text: str, loc: int, lineno: int) -> int:
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        op = isa.BY_MNEMONIC.get(mnemonic)
        if op is None:
            self._err(lineno, "unknown mnemonic %r" % mnemonic)
        operands = [p.strip() for p in parts[1].split(",")] if len(parts) > 1 \
            else []
        try:
            instr = self._build(op, operands, loc, lineno)
            return isa.encode(instr)
        except (ValueError, AssemblerError) as exc:
            self._err(lineno, str(exc))

    def _build(self, op: isa.Op, operands: List[str], loc: int,
               lineno: int) -> isa.Instruction:
        def reg(text: str) -> int:
            if not re.match(r"^r\d+$", text):
                raise AssemblerError("expected register, got %r" % text)
            index = int(text[1:])
            if not 0 <= index < isa.NUM_REGS:
                raise AssemblerError("no such register %r" % text)
            return index

        name = op.mnemonic
        if name == "nop" or name == "halt":
            self._arity(operands, 0, lineno, name)
            return isa.Instruction(op)
        if name == "jr":
            self._arity(operands, 1, lineno, name)
            return isa.Instruction(op, ra=reg(operands[0]))
        if op.fmt == isa.Format.R:
            self._arity(operands, 3, lineno, name)
            return isa.Instruction(op, rd=reg(operands[0]),
                                   ra=reg(operands[1]), rb=reg(operands[2]))
        if name == "lui":
            self._arity(operands, 2, lineno, name)
            return isa.Instruction(op, rd=reg(operands[0]),
                                   imm=self._expr(operands[1], lineno))
        if name in ("lw", "sw"):
            if len(operands) == 2:  # lw rd, imm(ra)
                match = _MEM_OPERAND_RE.match(operands[1])
                if not match:
                    raise AssemblerError(
                        "expected imm(ra) operand, got %r" % operands[1])
                imm = self._expr(match.group(1), lineno)
                return isa.Instruction(op, rd=reg(operands[0]),
                                       ra=reg(match.group(2)), imm=imm)
            self._arity(operands, 3, lineno, name)
            return isa.Instruction(op, rd=reg(operands[0]),
                                   ra=reg(operands[1]),
                                   imm=self._expr(operands[2], lineno))
        if op.fmt == isa.Format.I:
            self._arity(operands, 3, lineno, name)
            return isa.Instruction(op, rd=reg(operands[0]),
                                   ra=reg(operands[1]),
                                   imm=self._expr(operands[2], lineno))
        if op.fmt == isa.Format.B:
            self._arity(operands, 3, lineno, name)
            target = self._expr(operands[2], lineno)
            offset = (target - (self.base + loc + 4)) // 4
            return isa.Instruction(op, ra=reg(operands[0]),
                                   rb=reg(operands[1]), imm=offset)
        if op.fmt == isa.Format.J:
            self._arity(operands, 1, lineno, name)
            target = self._expr(operands[0], lineno)
            if target % 4:
                raise AssemblerError("jump target not word aligned")
            return isa.Instruction(op, imm=target // 4)
        raise AssemblerError("unhandled op %r" % name)  # pragma: no cover

    def _arity(self, operands: List[str], want: int, lineno: int,
               name: str) -> None:
        if len(operands) != want:
            self._err(lineno, "%s takes %d operand(s), got %d"
                      % (name, want, len(operands)))

    def _err(self, lineno: int, message: str):
        raise AssemblerError("line %d: %s" % (lineno, message))


def assemble(source: str, base: int = 0) -> Program:
    """Assemble ``source`` with its first byte at address ``base``."""
    return _Assembler(source, base).assemble()
