"""Reproduction of "Low Overhead Fault Tolerant Networking in Myrinet"
(Lakamraju, Koren, Krishna - DSN 2003).

The package rebuilds the paper's whole stack in a discrete-event
simulation: LANai-class NIC hardware (:mod:`repro.hw`,
:mod:`repro.lanai`), the Myrinet fabric and mapper (:mod:`repro.net`),
the GM messaging system (:mod:`repro.gm`), the paper's FTGM fault
tolerance (:mod:`repro.ftgm`), a fault-injection framework
(:mod:`repro.faults`), a mini-MPI (:mod:`repro.middleware`), and the
measurement workloads and analysis used by the benchmark harness
(:mod:`repro.workloads`, :mod:`repro.analysis`).

Most users start from :func:`repro.build_cluster`::

    from repro import build_cluster, Payload

    cluster = build_cluster(2, flavor="ftgm")
"""

from .cluster import MyrinetCluster, Node, build_cluster
from .errors import (
    GmError,
    GmNoTokens,
    GmPortClosed,
    GmSendError,
    HostCrashed,
    MpiFatalError,
    ReproError,
)
from .payload import Payload

__version__ = "1.0.0"

__all__ = [
    "GmError",
    "GmNoTokens",
    "GmPortClosed",
    "GmSendError",
    "HostCrashed",
    "MpiFatalError",
    "MyrinetCluster",
    "Node",
    "Payload",
    "ReproError",
    "build_cluster",
    "__version__",
]
