"""Host-side sequence-number generation (FTGM §4.1).

FTGM moves sequence-number ownership from the MCP to the host so the
numbers survive an MCP reload.  Two designs are possible:

* **Per-port streams** (what the paper implements): each process
  generates an independent stream per (local port, remote node).  No
  cross-process synchronization; the receiver must track ACK numbers per
  (connection, port) — cheap, since GM allows only 8 ports per node.
* **Synchronized per-connection streams** (what the paper rejects): all
  processes on a node sending to the same remote share one stream, which
  preserves the original GM wire protocol but "can introduce unnecessary
  overhead" for the inter-process lock.

Both are implemented here — the rejected design is exercised by the A3
ablation benchmark to quantify the overhead the paper avoided.
"""

from __future__ import annotations

from typing import Dict, Generator

from ..sim import Resource, Simulator

__all__ = ["PortSequenceStreams", "SharedConnectionStreams",
           "SYNC_LOCK_COST_US"]

# Cost of the cross-process lock in the rejected design: futex-style
# uncontended acquire/release on a 2003-era host.
SYNC_LOCK_COST_US = 0.45


class PortSequenceStreams:
    """Per-(port, remote node) streams; lock-free (the paper's design)."""

    def __init__(self, port_id: int):
        self.port_id = port_id
        self._next: Dict[int, int] = {}   # remote node -> next seq

    def alloc(self, dest_node: int, count: int) -> Generator:
        """Process: reserve ``count`` sequence numbers toward a node.

        A generator for interface parity with the synchronized variant;
        completes without yielding.
        """
        base = self._next.get(dest_node, 0)
        self._next[dest_node] = base + count
        return base
        yield  # pragma: no cover

    def peek(self, dest_node: int) -> int:
        return self._next.get(dest_node, 0)

    def snapshot(self) -> Dict[int, int]:
        return dict(self._next)


class SharedConnectionStreams:
    """Node-wide per-connection streams behind a lock (rejected design).

    All ports/processes of a node share one generator per remote node;
    every allocation pays a lock round-trip, and concurrent senders
    serialize on it.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._next: Dict[int, int] = {}
        self._locks: Dict[int, Resource] = {}
        self.lock_waits = 0

    def _lock(self, dest_node: int) -> Resource:
        lock = self._locks.get(dest_node)
        if lock is None:
            lock = self._locks[dest_node] = Resource(self.sim)
        return lock

    def alloc(self, dest_node: int, count: int) -> Generator:
        """Process: reserve ``count`` numbers; pays the sync cost."""
        lock = self._lock(dest_node)
        if lock.in_use:
            self.lock_waits += 1
        req = lock.request()
        yield req
        try:
            yield self.sim.timeout(SYNC_LOCK_COST_US)
            base = self._next.get(dest_node, 0)
            self._next[dest_node] = base + count
        finally:
            lock.release()
        return base

    def peek(self, dest_node: int) -> int:
        return self._next.get(dest_node, 0)
