"""The FTGM user library: same API as GM, recovery hidden inside it.

"It is important to see how our design requires no changes to be made to
previously-written GM applications" — an application (or middleware)
linked against this library is byte-for-byte the same code as against
:class:`repro.gm.library.Port`; the fault-tolerance work happens in the
hooks GM already routes through (`gm_send` internals, `gm_receive`
internals, and above all ``gm_unknown()``).

The continuous-backup costs charged here are the measured overheads of
the paper (§5.1): ~0.25 µs extra per send (token copy + sequence
generation) and ~0.4 µs extra per receive (two hash-table updates: the
recv-token copy and the per-stream ACK number).
"""

from __future__ import annotations

from typing import Generator

from ..gm import constants as C
from ..gm.events import EventType, GmEvent
from ..gm.library import Port
from ..gm.tokens import RecvToken, SendToken
from ..sim import Tracer
from .seqgen import PortSequenceStreams
from .shadow import ShadowState

__all__ = ["FtgmPort", "FTGM_SEND_EXTRA_US", "FTGM_RECV_EXTRA_US"]

FTGM_SEND_EXTRA_US = 0.25   # "around 0.25us for the send"
FTGM_RECV_EXTRA_US = 0.40   # "around 0.4us for the receive"


class FtgmPort(Port):
    """A GM port with continuous host-side state backup."""

    def __init__(self, sim, host, driver, mcp, port_id):
        super().__init__(sim, host, driver, mcp, port_id)
        self.shadow = ShadowState(port_id)
        self.seq_streams = PortSequenceStreams(port_id)
        self.recoveries = 0
        self.route_changes = 0
        self.recovery_times: list = []   # per-handler durations (us)

    # -- event sink ----------------------------------------------------------------

    def _event_sink(self, event: GmEvent) -> None:
        """The LANai's event DMA lands in host memory; the ACK-table and
        recv-token copies update *here*, at post time — "the LANai needs
        to notify the host of the sequence number ... by including the
        sequence number as part of the event posted" — not when the
        application eventually polls.  Recovery therefore never trusts a
        stale copy for anything the LANai already ACKed."""
        if event.etype == EventType.RECEIVED:
            self.shadow.record_delivery(event.sender_node,
                                        event.sender_port, event.seq)
            self.shadow.drop_recv_token(event.recv_token_id)
        super()._event_sink(event)

    # -- continuous backup hooks ----------------------------------------------------

    def _prepare_send(self, token: SendToken) -> Generator:
        """Generate the message's sequence range and copy the token."""
        base = yield from self.seq_streams.alloc(
            token.dest_node, token.fragment_count(C.GM_MTU))
        token.seq_base = base
        self.shadow.save_send_token(token)
        yield from self.host.cpu_execute(FTGM_SEND_EXTRA_US, "send")

    def _prepare_receive(self, token: RecvToken) -> Generator:
        self.shadow.save_recv_token(token)
        return
        yield  # the copy cost is folded into the receive-side 0.4us

    def _on_received(self, event: GmEvent) -> Generator:
        """Charge the two hash updates per receive (ACK table +
        recv-token copy; the updates themselves happen at event-post
        time in :meth:`_event_sink` — the cost is the host's either
        way)."""
        yield from self.host.cpu_execute(FTGM_RECV_EXTRA_US, "recv")

    def _on_sent(self, event: GmEvent) -> Generator:
        """"The copy of the send token is removed just before the
        callback function for that send token is invoked."""
        self.shadow.drop_send_token(event.msg_id)
        return
        yield  # cost folded into the send-side 0.25us

    # -- transparent recovery (§4.4) -----------------------------------------------

    def unknown(self, event: GmEvent) -> Generator:
        if event.etype == EventType.FAULT_DETECTED:
            yield from self._recover_port()
        elif event.etype == EventType.ROUTE_CHANGED:
            yield from self._on_route_changed()

    def _on_route_changed(self) -> Generator:
        """Netfault reroute: fresh routes were installed on a *live* MCP.

        Unlike FAULT_DETECTED, the LANai kept all its protocol state, so
        most of the card-reset recovery is unnecessary.  Two things
        matter: (a) any shadow-tokened send the MCP no longer knows
        about (it errored out while the path was dead) is re-posted with
        its original host-generated sequence numbers — the receiver's
        per-stream ACK state makes the replay exactly-once; (b) streams
        that *are* still queued get a retransmit kick so Go-Back-N
        resumes over the new routes immediately instead of waiting out a
        backed-off timer.
        """
        tracer: Tracer = self.driver.tracer
        source = "port%d@%s" % (self.port_id, self.host.name)
        self.route_changes += 1
        replayed = 0
        for token in self.shadow.outstanding_sends():
            key = self.mcp.tx_stream_key(token)
            stream = self.mcp.tx_streams.get(key)
            if stream is None or token.msg_id not in stream.msgs:
                self.mcp.doorbell_send(token)
                replayed += 1
        self.mcp.host_request(("retx_now", self.port_id))
        yield from self.host.cpu_execute(1.0, "route-change")
        tracer.emit(self.sim.now, source, "port_route_changed",
                    replayed=replayed)

    def _recover_port(self) -> Generator:
        """The FAULT_DETECTED handler: restore this port's LANai state.

        Order per the paper: cursory checks; restore send and receive
        token queues from the backup; update the LANai with the last
        sequence number received on each stream; clear the receive
        queue; notify the LANai to "reopen" the port.
        """
        tracer: Tracer = self.driver.tracer
        started = self.sim.now
        source = "port%d@%s" % (self.port_id, self.host.name)
        tracer.emit(started, source, "port_recovery_start",
                    sends=len(self.shadow.send_tokens),
                    recvs=len(self.shadow.recv_tokens))

        # Restore the LANai's receive-token queue from our copies.
        for token in self.shadow.outstanding_recvs():
            self.mcp.doorbell_recv(token)

        # Tell the LANai the last sequence number the *host* saw per
        # stream, "so the LANai ACKs the right messages and NACKs those
        # that arrive out-of-order".
        for key, last_seq in self.shadow.stream_restore_points().items():
            self.mcp.host_request(("restore_rx", key, last_seq))

        # Re-post the unacknowledged sends (the tokens carry their
        # original host-generated sequence numbers, so the remote side
        # recognises duplicates).
        for token in self.shadow.outstanding_sends():
            self.mcp.doorbell_send(token)

        # Clear the receive queue — but salvage RECEIVED events first:
        # their payload DMA completed before the fault (FTGM only ACKs
        # after the DMA) and the LANai may have ACKed them, so the
        # sender will never resend them.  Dropping them would lose
        # delivered-and-acknowledged data; everything else in the queue
        # is stale per the paper.
        stale = self.recv_queue.drain()
        for event in stale:
            if event.etype == EventType.RECEIVED:
                self.recv_queue.put(event)

        # ...and reopen the port (the MCP starts serving it again only
        # after the restore requests queued above are processed: both go
        # through L_timer's FIFO request queue).
        done = self.sim.event()
        self.mcp.host_request(("reopen", self.port_id, done))
        yield done

        # The handler's measured cost dominates per-process recovery
        # (~900 ms in the paper); charge the calibrated remainder.
        elapsed = self.sim.now - started
        remainder = max(C.PER_PORT_RECOVERY_US - elapsed, 0.0)
        yield from self.host.cpu_execute(remainder, "recovery")
        self.recoveries += 1
        self.recovery_times.append(self.sim.now - started)
        tracer.emit(self.sim.now, source, "port_recovery_done",
                    took=self.sim.now - started)
