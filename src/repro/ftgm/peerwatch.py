"""Peer-assisted hang detection (extension beyond the paper).

The paper's watchdog (§4.2) relies on the hung LANai's own interval
timer and interrupt logic still working: "this assumption cannot be
proved to be correct, [but] our experimental results show that this is
most often the case."  When the assumption fails — a fault that stops
the timers along with the processor — IT1 never expires and the node
stays dead silently.

This module adds the natural complement the paper leaves as an
assumption: a **peer watchdog**.  Each node's daemon probes a buddy
node's interface with heartbeat packets; after ``misses_threshold``
consecutive unanswered probes it declares the buddy's interface hung
and pokes the buddy's FTD over the management network (REE-class
systems, the paper's motivating platform, have one).  The FTD's own
magic-word confirmation still gates recovery, so a false peer verdict
(e.g. network congestion) degrades to a harmless false alarm.

Detection latency is ``interval * misses`` — milliseconds instead of the
local watchdog's sub-millisecond, which is why this is a *fallback*, not
a replacement.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..net.packet import Packet, PacketType
from ..sim import Simulator, Tracer

__all__ = ["PeerWatchdog", "MGMT_CHANNEL_LATENCY_US"]

# One-way latency of the out-of-band management network.
MGMT_CHANNEL_LATENCY_US = 50.0


class PeerWatchdog:
    """Runs on ``driver``'s host; watches ``buddy_driver``'s interface."""

    def __init__(self, driver, buddy_driver,
                 interval_us: float = 2_000.0,
                 misses_threshold: int = 3,
                 tracer: Optional[Tracer] = None):
        self.sim: Simulator = driver.sim
        self.driver = driver
        self.buddy = buddy_driver
        self.interval_us = interval_us
        self.misses_threshold = misses_threshold
        self.tracer = tracer if tracer is not None else driver.tracer
        self.name = "peerwatch%d->%d" % (driver.nic.node_id,
                                         buddy_driver.nic.node_id)
        self._seq = 0
        self._last_reply_seq = -1
        self.probes_sent = 0
        self.detections = 0
        self.running = False
        self._proc = None

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.driver.mcp.heartbeat_listener = self._on_reply
        self._proc = self.driver.host.spawn(self._run(), self.name)

    def stop(self) -> None:
        self.running = False

    def _on_reply(self, pkt: Packet) -> None:
        if pkt.src_node == self.buddy.nic.node_id:
            self._last_reply_seq = max(self._last_reply_seq, pkt.seq)

    def _probe(self) -> int:
        """Send one heartbeat via our (healthy) interface."""
        self._seq += 1
        mcp = self.driver.mcp
        # Our own MCP may have been reloaded since start(); keep the
        # listener pointed at the live instance.
        mcp.heartbeat_listener = self._on_reply
        route = mcp.routing_table.get(self.buddy.nic.node_id)
        if route is None:
            return self._seq
        probe = Packet(ptype=PacketType.HEARTBEAT,
                       src_node=self.driver.nic.node_id,
                       dest_node=self.buddy.nic.node_id,
                       route=list(route), seq=self._seq)
        mcp._transmit(probe.seal())
        self.probes_sent += 1
        return self._seq

    def _run(self) -> Generator:
        misses = 0
        while self.running:
            sent_seq = self._probe()
            yield self.sim.timeout(self.interval_us)
            if self._last_reply_seq >= sent_seq:
                misses = 0
                continue
            misses += 1
            if misses < self.misses_threshold:
                continue
            misses = 0
            self.detections += 1
            self.tracer.emit(self.sim.now, self.name, "peer_hang_detected",
                             buddy=self.buddy.nic.node_id)
            # Poke the buddy's FTD over the management network.  The
            # FTD's magic-word probe confirms (or refutes) the verdict.
            yield self.sim.timeout(MGMT_CHANNEL_LATENCY_US)
            if getattr(self.buddy, "ftd", None) is not None \
                    and not self.buddy.host.crashed:
                self.buddy.ftd.notify()
            # Back off while the buddy recovers (reload takes ~765 ms).
            yield self.sim.timeout(2_000_000.0)
