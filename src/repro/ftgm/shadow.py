"""The host-resident backup of NIC state (FTGM §4.1).

"The user keeps a copy of the required LANai state that is not
implicitly stored in the host memory": outstanding send tokens,
forfeited receive tokens, and the last-received sequence number per
(connection, port) stream.  The copies are maintained *continuously* —
updated on every send/provide/receive, not snapshotted — which is what
keeps the overhead at a fraction of a microsecond instead of a classical
checkpoint's cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..gm.tokens import RecvToken, SendToken

__all__ = ["ShadowState"]

# Rough per-entry host-memory accounting, for the paper's ~20 KB figure.
_SEND_COPY_BYTES = 64
_RECV_COPY_BYTES = 32
_ACK_ENTRY_BYTES = 16


class ShadowState:
    """Backup copies for one port."""

    def __init__(self, port_id: int):
        self.port_id = port_id
        # msg_id -> send token (removed just before the callback fires).
        self.send_tokens: Dict[int, SendToken] = {}
        # recv token id -> recv token (removed when the message arrives).
        self.recv_tokens: Dict[int, RecvToken] = {}
        # (sender node, sender port) -> last sequence number delivered to
        # the host.  "The receiver now has to keep an ACK number for
        # every (connection, port) pair."
        self.ack_table: Dict[Tuple[int, int], int] = {}

    # -- maintenance (the continuous "checkpointing") ---------------------------

    def save_send_token(self, token: SendToken) -> None:
        self.send_tokens[token.msg_id] = token

    def drop_send_token(self, msg_id: int) -> Optional[SendToken]:
        return self.send_tokens.pop(msg_id, None)

    def save_recv_token(self, token: RecvToken) -> None:
        self.recv_tokens[token.token_id] = token

    def drop_recv_token(self, token_id: int) -> Optional[RecvToken]:
        return self.recv_tokens.pop(token_id, None)

    def record_delivery(self, sender_node: int, sender_port: int,
                        seq: Optional[int]) -> None:
        if seq is None:
            return
        key = (sender_node, sender_port)
        if seq > self.ack_table.get(key, -1):
            self.ack_table[key] = seq

    # -- recovery reads -----------------------------------------------------------

    def outstanding_sends(self) -> List[SendToken]:
        """Unacknowledged sends, oldest first (by host sequence base)."""
        return sorted(self.send_tokens.values(),
                      key=lambda t: (t.seq_base if t.seq_base is not None
                                     else 0, t.msg_id))

    def outstanding_recvs(self) -> List[RecvToken]:
        return sorted(self.recv_tokens.values(), key=lambda t: t.token_id)

    def stream_restore_points(self) -> Dict[Tuple[int, int], int]:
        return dict(self.ack_table)

    # -- accounting ----------------------------------------------------------------

    def memory_bytes(self) -> int:
        return (len(self.send_tokens) * _SEND_COPY_BYTES
                + len(self.recv_tokens) * _RECV_COPY_BYTES
                + len(self.ack_table) * _ACK_ENTRY_BYTES)

    def __repr__(self) -> str:
        return ("ShadowState(port=%d, sends=%d, recvs=%d, streams=%d)"
                % (self.port_id, len(self.send_tokens),
                   len(self.recv_tokens), len(self.ack_table)))
