"""The FTGM control program: GM's MCP with the paper's modifications.

Four deviations from stock GM, all in §4.1 of the paper:

1. **Per-(port, remote node) sequence streams** (Figure 6b) — the host
   generates sequence numbers and passes them through the send token;
   the MCP "simply uses these sequence numbers rather than generating
   its own".
2. **Receiver ACK state per (connection, port)** — the receiver
   acknowledges per-port streams instead of per-connection.
3. **Delayed commit point** — the final fragment of a message is ACKed
   only after its DMA into the user buffer completes; intermediate
   fragments still ACK immediately so multi-packet messages keep the
   pipe full.
4. **Sequence reporting** — events posted to the host carry the last
   ACKed sequence number so the host's ACK-table copy stays current.

Plus §4.2's watchdog support in ``L_timer()``: reset the spare interval
timer IT1 and clear the FTD's magic probe word on every invocation.
"""

from __future__ import annotations

from typing import Optional

from ..gm.mcp import Mcp
from ..gm.streams import RxStream, StreamKey, TxStream
from ..gm.tokens import SendToken
from ..gm import constants as C
from ..lanai.firmware import MAGIC_WORD_ADDR
from ..net.packet import Packet

__all__ = ["FtgmMcp"]


class FtgmMcp(Mcp):
    """GM-1.5.1 MCP with the FTGM modifications applied."""

    name_prefix = "ftgm-mcp"

    # Telemetry counters; class attributes so plain instance increments
    # work without overriding Mcp.__init__.
    watchdog_arms = 0
    seq_rewinds = 0

    # Overridable per instance — the watchdog-interval ablation (A2)
    # sweeps this.
    watchdog_interval_us = C.WATCHDOG_INTERVAL_US
    # Sequence bookkeeping + per-(connection, port) ACK table cost on the
    # LANai (Table 2: LANai util 6.0 -> 6.8us per small message).
    lanai_send_extra_us = 0.40
    lanai_recv_extra_us = 0.40

    def ckpt_state(self) -> dict:
        """Snapshot contract: GM state plus the FTGM watchdog additions."""
        state = super().ckpt_state()
        state["watchdog_arms"] = self.watchdog_arms
        state["seq_rewinds"] = self.seq_rewinds
        state["watchdog_interval_us"] = self.watchdog_interval_us
        return state

    # -- deviation 1 & 2: stream keying ------------------------------------------

    def tx_stream_key(self, token: SendToken) -> StreamKey:
        """Independent stream per (remote node, local port) — Fig. 6b."""
        return (token.dest_node, token.src_port)

    def rx_stream_key(self, pkt: Packet) -> StreamKey:
        return (pkt.src_node, pkt.src_port)

    def ack_stream_key(self, pkt: Packet) -> StreamKey:
        # ACK/NACK packets preserve the data packet's src_port, which is
        # the *sender's* port: exactly our tx-stream discriminator.
        return (pkt.src_node, pkt.src_port)

    def assign_seq_base(self, stream: TxStream, token: SendToken) -> None:
        """The host generated token.seq_base; the MCP keeps it."""
        if token.seq_base is None:
            # A host that failed to stamp the token is a library bug —
            # fall back to MCP numbering (logged) rather than corrupting
            # the stream.
            self.tracer.emit(self.sim.now, self.name, "missing_seq_base",
                             msg_id=token.msg_id)

    # -- deviation 3: the commit point -------------------------------------------------

    def ack_after_dma(self, is_final: bool) -> bool:
        """Delay the ACK past the DMA for final fragments only."""
        return is_final

    # -- deviation 4: sequence reporting ------------------------------------------------

    def event_seq_field(self, stream: RxStream) -> Optional[int]:
        return stream.last_acked

    # -- netfault reroute support -------------------------------------------------

    def _handle_host_request(self, request):
        if request[0] == "retx_now":
            # The library saw ROUTE_CHANGED: kick every stalled stream of
            # that port so Go-Back-N retransmits over the freshly
            # installed routes now instead of waiting out a backed-off
            # deadline from the dead-path era.  Routes are read at
            # packet-build time, so the rewound fragments pick up the new
            # paths automatically.
            _, port_id = request
            now = self.sim.now
            for key, stream in self.tx_streams.items():
                if len(key) > 1 and key[1] != port_id:
                    continue
                if stream.has_unacked():
                    stream.rewind_for_reroute()
                    stream.note_progress(now)
                    self.seq_rewinds += 1
            yield from self._charge(0.5, "retx-now")
            return
        yield from super()._handle_host_request(request)

    # -- watchdog support (§4.2) ----------------------------------------------------

    def _l_timer_extra(self) -> None:
        """Reset IT1 and clear the FTD's magic word.

        "The L_timer() routine is modified to reset IT1 whenever it is
        called.  So, during normal operation, L_timer() resets IT1 just
        in time to avoid an interrupt from being raised."
        """
        self.nic.timers[1].set_us(self.watchdog_interval_us)
        self.watchdog_arms += 1
        if self.nic.sram.read_word(MAGIC_WORD_ADDR) != 0:
            self.nic.sram.write_word(MAGIC_WORD_ADDR, 0)

    # -- lazy parking (watchdog side) ------------------------------------------

    def _park_timers(self) -> None:
        """Stop IT1 for the parked span.

        A parked MCP does not tick, so a counting IT1 would expire and
        raise a FATAL for a perfectly healthy idle card.  With IT1
        stopped the FTD never probes either (its wakeups are IT1-driven),
        so the whole fault-domain sleeps with the node.
        """
        self.nic.timers[1].stop()

    def _replay_windows(self, count: int) -> None:
        """Each replayed window's L_timer would have re-armed IT1."""
        self.watchdog_arms += count

    def sample_stats(self, now: float) -> dict:
        """Add the watchdog track to the read-only projection.

        Only whole parked windows re-arm IT1 in the replay
        (``_replay_windows``); a straddled window's front half counts an
        invocation but its arm rides the tail callback, so the
        projection mirrors that split exactly.
        """
        stats = super().sample_stats(now)
        arms = self.watchdog_arms
        if self._parked:
            whole, _mid = self._parked_projection(now)
            arms += whole
        stats["watchdog_arms"] = arms
        return stats

    def _unpark_timers(self, prev_window_end: float) -> None:
        """Restore IT1 exactly where the live chain would have left it.

        The last completed housekeeping window re-armed the watchdog at
        its end; subsequent (live or replayed-tail) windows take over
        from there.
        """
        self.nic.timers[1].set_deadline(
            prev_window_end + self.watchdog_interval_us)

    # FTGM ticks do observable work even when the dispatch loop is idle:
    # every L_timer re-arms the watchdog (IT1) and clears the FTD's magic
    # probe word, and both the FTD and the peer watchdog may poke that
    # state from outside the event heap (daemon wakeups, test harness
    # calls between sim.run() slices).  Folding idle ticks into
    # arithmetic would let a committed skip outlive such a poke and miss
    # the clears the real cadence guarantees, so FTGM keeps every tick
    # live (the fused callback path still applies).
    _idle_skip = False
