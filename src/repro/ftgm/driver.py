"""The FTGM host driver: GM's driver plus watchdog wiring and the FTD.

Additions over plain GM:

* at MCP load, unmask IT1 in the interrupt mask register and arm the
  timer — "the IMR provided by the Myrinet HIC is modified to raise an
  interrupt when IT1 expires";
* the FATAL interrupt handler wakes the FTD (it cannot recover inline:
  "functions such as sleep() and malloc() ... cannot be called in an
  interrupt handler").
"""

from __future__ import annotations

from typing import Optional

from ..gm.driver import GmDriver
from ..hw.registers import IsrBits
from ..sim import Simulator, Tracer
from .ftd import FaultToleranceDaemon
from .library import FtgmPort
from .mcp import FtgmMcp

__all__ = ["FtgmDriver"]


class FtgmDriver(GmDriver):
    """GM driver with fault-tolerance support."""

    mcp_class = FtgmMcp
    port_class = FtgmPort

    def __init__(self, sim: Simulator, host, nic,
                 tracer: Optional[Tracer] = None, interpreted: bool = False):
        super().__init__(sim, host, nic, tracer, interpreted)
        self.ftd = FaultToleranceDaemon(sim, self, self.tracer)
        self.fatal_interrupts = 0

    def ckpt_state(self) -> dict:
        """Snapshot contract: GM driver state plus the FT additions."""
        state = super().ckpt_state()
        state["fatal_interrupts"] = self.fatal_interrupts
        state["ftd"] = self.ftd.ckpt_state()
        return state

    def start_ftd(self) -> None:
        """Launch the daemon ("run anytime before fault recovery")."""
        self.ftd.start()

    def _after_mcp_start(self, mcp: FtgmMcp) -> None:
        """Arm the software watchdog: IT1 + its IMR bit."""
        self.nic.status.enable_interrupt(IsrBits.IT1_EXPIRED)
        self.nic.timers[1].set_us(mcp.watchdog_interval_us)

    def _irq_handler(self, cause) -> None:
        """The FATAL interrupt: wake the FTD (never recover inline)."""
        if isinstance(cause, int) and cause & IsrBits.IT1_EXPIRED:
            self.fatal_interrupts += 1
            self.tracer.emit(self.sim.now, self.trace_source,
                             "fatal_interrupt")
            # Mask further IT1 edges until recovery re-arms the watchdog.
            self.nic.status.disable_interrupt(IsrBits.IT1_EXPIRED)
            self.nic.status.clear_bits(IsrBits.IT1_EXPIRED)
            self.ftd.notify()
