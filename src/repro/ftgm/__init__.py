"""FTGM: the paper's fault-tolerant GM (this package is the
contribution under reproduction)."""

from .driver import FtgmDriver
from .ftd import MAGIC_WORD, FaultToleranceDaemon, RecoveryRecord, RerouteRecord
from .library import FTGM_RECV_EXTRA_US, FTGM_SEND_EXTRA_US, FtgmPort
from .mcp import FtgmMcp
from .peerwatch import MGMT_CHANNEL_LATENCY_US, PeerWatchdog
from .seqgen import (
    SYNC_LOCK_COST_US,
    PortSequenceStreams,
    SharedConnectionStreams,
)
from .shadow import ShadowState

__all__ = [
    "FTGM_RECV_EXTRA_US",
    "FTGM_SEND_EXTRA_US",
    "FaultToleranceDaemon",
    "FtgmDriver",
    "FtgmMcp",
    "FtgmPort",
    "MAGIC_WORD",
    "MGMT_CHANNEL_LATENCY_US",
    "PeerWatchdog",
    "PortSequenceStreams",
    "RecoveryRecord",
    "RerouteRecord",
    "SYNC_LOCK_COST_US",
    "SharedConnectionStreams",
    "ShadowState",
]
