"""The Fault Tolerance Daemon (FTD), §4.3 of the paper.

The FATAL interrupt handler cannot sleep or allocate, so recovery runs
in a daemon process the driver wakes: confirm the hang with a magic-word
probe, reset the card, clear the SRAM, reload the MCP, restore the page
hash table pointer and the routing tables, and post ``FAULT_DETECTED``
into every open port's receive queue — then rewind and stand guard for
the next fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..gm import constants as C
from ..gm.events import EventType, GmEvent
from ..lanai.firmware import MAGIC_WORD_ADDR
from ..sim import Simulator, Store, Tracer

__all__ = ["FaultToleranceDaemon", "RecoveryRecord", "RerouteRecord",
           "MAGIC_WORD"]

MAGIC_WORD = 0xFEEDFACE


@dataclass
class RecoveryRecord:
    """Timeline of one recovery, for Table 3 / Figure 9."""

    interrupt_at: float
    woken_at: float = 0.0
    confirmed_at: float = 0.0
    reset_at: float = 0.0
    reloaded_at: float = 0.0
    tables_restored_at: float = 0.0
    events_posted_at: float = 0.0
    ports_notified: int = 0
    false_alarm: bool = False

    @property
    def ftd_time(self) -> float:
        return self.events_posted_at - self.woken_at

    def segments(self) -> List:
        return [
            ("daemon wakeup", self.interrupt_at, self.woken_at),
            ("hang confirmation", self.woken_at, self.confirmed_at),
            ("card reset + SRAM clear", self.confirmed_at, self.reset_at),
            ("MCP reload", self.reset_at, self.reloaded_at),
            ("table restore", self.reloaded_at, self.tables_restored_at),
            ("FAULT_DETECTED posting", self.tables_restored_at,
             self.events_posted_at),
        ]


@dataclass
class RerouteRecord:
    """Timeline of one path-fault reroute (the Table 3 analogue for the
    netfault recovery path — no card reset, no MCP reload)."""

    verdict_at: float            # detector delivered the path-dead verdict
    dest_node: int               # the peer whose path died
    woken_at: float = 0.0
    mapped_at: float = 0.0       # scout flood settled (discovery done)
    installed_at: float = 0.0    # every surviving interface CONFIG-acked
    events_posted_at: float = 0.0  # local install + ROUTE_CHANGED queued
    nodes_reached: int = 0
    nodes_lost: int = 0
    failed: bool = False         # discovery found nobody (no reroute)

    @property
    def reroute_time(self) -> float:
        return self.events_posted_at - self.woken_at

    def segments(self) -> List:
        return [
            ("daemon wakeup", self.verdict_at, self.woken_at),
            ("mapper discovery", self.woken_at, self.mapped_at),
            ("table distribution", self.mapped_at, self.installed_at),
            ("ROUTE_CHANGED posting", self.installed_at,
             self.events_posted_at),
        ]


class FaultToleranceDaemon:
    """One per node; "run anytime before fault recovery is to be
    achieved"."""

    # Ignore repeat path-fault verdicts arriving hot on the heels of a
    # completed reroute: the detector re-suspects on stale stall clocks
    # for a sweep or two until traffic flows again.
    MIN_REROUTE_GAP_US = 50_000.0

    def __init__(self, sim: Simulator, driver,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.driver = driver
        self.host = driver.host
        self.nic = driver.nic
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.name = "ftd%d" % self.nic.node_id
        self._wakeups: Store = Store(sim)
        self.recoveries: List[RecoveryRecord] = []
        self.reroutes: List[RerouteRecord] = []
        self.false_alarms = 0
        self.running = False
        self.rerouting = False
        self._last_reroute_at = float("-inf")
        self._proc = None

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._proc = self.host.spawn(self._run(), self.name)

    def ckpt_state(self) -> dict:
        """Snapshot contract: daemon latches and recovery history sizes."""
        return {
            "running": self.running,
            "rerouting": self.rerouting,
            "false_alarms": self.false_alarms,
            "recoveries": len(self.recoveries),
            "reroutes": len(self.reroutes),
            "last_reroute_at": self._last_reroute_at,
            "wakeups": self._wakeups.ckpt_state(),
        }

    def notify(self) -> None:
        """Called from the driver's FATAL interrupt handler."""
        self._wakeups.put(self.sim.now)

    def notify_path_fault(self, dest_node: int) -> None:
        """Called by the path detector on a path-dead verdict.

        The card is healthy — it must NOT be reset; the daemon re-runs
        the mapper instead and installs fresh routes everywhere.
        """
        if self.rerouting:
            return
        if self.sim.now - self._last_reroute_at < self.MIN_REROUTE_GAP_US:
            return
        self._wakeups.put(("path", dest_node, self.sim.now))

    # -- the daemon loop -----------------------------------------------------------

    def _run(self) -> Generator:
        while True:
            item = yield self._wakeups.get()
            yield self.sim.timeout(C.FTD_WAKEUP_US)
            if isinstance(item, tuple) and item[0] == "path":
                _tag, dest_node, verdict_at = item
                yield from self._reroute(dest_node, verdict_at)
                # Collapse queued duplicate path verdicts; keep genuine
                # FATAL wakeups (plain floats) for the next iteration.
                leftover = [x for x in self._wakeups.drain()
                            if not (isinstance(x, tuple)
                                    and x[0] == "path")]
                for x in leftover:
                    self._wakeups.put(x)
                continue
            interrupt_at = item
            record = RecoveryRecord(interrupt_at=interrupt_at,
                                    woken_at=self.sim.now)
            self.tracer.emit(self.sim.now, self.name, "ftd_woken")
            yield from self._recover(record)
            self.recoveries.append(record)
            # Collapse duplicate wakeups raised before we disabled
            # interrupts (the ISR edge may fire more than once).
            while len(self._wakeups):
                self._wakeups.try_get()

    # -- the reroute path (netfaults) ---------------------------------------------

    def _reroute(self, dest_node: int, verdict_at: float) -> Generator:
        """Path-dead recovery: mapper re-run + fresh tables, card alive.

        Best-effort (``strict=False``): interfaces that the new fabric
        can no longer reach are skipped, not fatal.  The local install
        at the end of the round makes the live MCP announce
        ROUTE_CHANGED to every open port (see Mcp._install_routes), so
        the library layer replays shadow-tokened sends over new routes.
        """
        from ..net.mapper import MappingFailed, make_mapper
        self.rerouting = True
        record = RerouteRecord(verdict_at=verdict_at, dest_node=dest_node,
                               woken_at=self.sim.now)
        self.tracer.emit(self.sim.now, self.name, "ftd_reroute_start",
                         dest=dest_node)
        # Multi-tier fabrics re-map hierarchically (a flat flood on a
        # fat-tree visits every equal-cost path); the builder stamps the
        # flag on the driver at cluster construction.
        mapper = make_mapper(
            self.driver.mcp.mapper_agent,
            hierarchical=getattr(self.driver, "hierarchical_mapper", False),
            strict=False, abort_on_empty=True)
        try:
            found = yield from mapper.run()
        except MappingFailed as exc:
            record.failed = True
            found = []
            self.tracer.emit(self.sim.now, self.name, "ftd_reroute_failed",
                             reason=str(exc))
        record.mapped_at = mapper.phase_times.get("discovered", self.sim.now)
        record.installed_at = mapper.phase_times.get("distributed",
                                                     self.sim.now)
        record.nodes_reached = len(found)
        record.nodes_lost = len(mapper.unreached)
        record.events_posted_at = self.sim.now
        self.reroutes.append(record)
        self.rerouting = False
        self._last_reroute_at = self.sim.now
        self.tracer.emit(self.sim.now, self.name, "ftd_reroute_done",
                         reached=record.nodes_reached,
                         lost=record.nodes_lost,
                         failed=record.failed)

    def _recover(self, record: RecoveryRecord) -> Generator:
        # 1. Confirm the hang: write a magic word the healthy L_timer()
        #    would clear; if it survives the settle window, the LANai is
        #    gone.
        self.nic.sram.write_word(MAGIC_WORD_ADDR, MAGIC_WORD)
        yield self.sim.timeout(C.MAGIC_WORD_SETTLE_US)
        if self.nic.sram.read_word(MAGIC_WORD_ADDR) != MAGIC_WORD:
            record.false_alarm = True
            record.confirmed_at = self.sim.now
            record.events_posted_at = self.sim.now
            self.false_alarms += 1
            self.tracer.emit(self.sim.now, self.name, "ftd_false_alarm")
            # The interface is alive: re-enable the FATAL interrupt the
            # driver masked (L_timer keeps re-arming IT1 itself) and
            # stand down.
            from ..hw.registers import IsrBits
            self.nic.status.enable_interrupt(IsrBits.IT1_EXPIRED)
            return
        record.confirmed_at = self.sim.now
        self.tracer.emit(self.sim.now, self.name, "ftd_hang_confirmed")

        # 2. Disable interrupts, unmap I/O, reset the card; "it is
        #    assumed that the fault causing the upset is transient and
        #    that a card reset will cause all the components on the card
        #    to reset to a non-faulty state."
        self.nic.status.disable_interrupt(0xFFFFFFFF)
        if self.driver.mcp is not None:
            self.driver.mcp.stop("ftd-reset")
        self.nic.reset()
        # 3. Clear the SRAM (this is what erases the flipped bit) and
        #    charge the reset/clear portion of the recovery budget.
        self.nic.sram.clear()
        yield self.sim.timeout(C.FTD_RESET_CLEAR_US)
        record.reset_at = self.sim.now
        self.tracer.emit(self.sim.now, self.name, "ftd_card_reset")

        # 4. Reload the MCP ("~500000us being spent in reloading the
        #    MCP"), restart the DMA engine, re-enable interrupts — the
        #    driver's load path does all three.
        yield self.sim.timeout(C.MCP_RELOAD_US)
        self.driver.load_mcp()
        record.reloaded_at = self.sim.now
        self.tracer.emit(self.sim.now, self.name, "ftd_mcp_reloaded")

        # 5. Hand the reloaded MCP the page-hash-table location (host
        #    memory survives, so a pointer suffices) and restore the
        #    mapping/routing tables from the driver's copies.
        self.driver.mcp.install_routes_from_host(self.driver.host_routes)
        yield self.sim.timeout(C.FTD_TABLE_RESTORE_US)
        record.tables_restored_at = self.sim.now
        self.tracer.emit(self.sim.now, self.name, "ftd_tables_restored")

        # 6. Post FAULT_DETECTED into every open port's receive queue,
        #    re-bind their event sinks to the fresh MCP.
        for port_id, port in sorted(self.driver.ports.items()):
            port.mcp = self.driver.mcp
            self.driver.mcp.event_sinks[port_id] = port._event_sink
            port._event_sink(GmEvent(EventType.FAULT_DETECTED, port_id))
            record.ports_notified += 1
        yield self.sim.timeout(C.FTD_EVENT_POST_US)
        record.events_posted_at = self.sim.now
        self.tracer.emit(self.sim.now, self.name, "ftd_recovery_done",
                         ports=record.ports_notified)
