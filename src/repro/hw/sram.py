"""LANai local SRAM.

The Myrinet host interface stores the Myrinet Control Program (MCP) and
its packet buffers in fast local SRAM (512 KB - 8 MB on real cards; the
LANai9 PCI64B boards in the paper carry 2 MB).  We model it as a flat
byte-addressable array with 32-bit big-endian word access — the LANai is
a big-endian processor — plus bounds checking that raises
:class:`~repro.errors.BusError`, which is how a corrupted firmware address
turns into a processor hang.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import BusError

__all__ = ["Sram", "WORD_SIZE"]

WORD_SIZE = 4


class Sram:
    """Byte-addressable memory with word (32-bit, big-endian) accessors."""

    def __init__(self, size: int = 2 * 1024 * 1024):
        if size <= 0 or size % WORD_SIZE:
            raise ValueError("SRAM size must be a positive multiple of 4")
        self.size = size
        self._mem = bytearray(size)
        # Decoded-instruction cache, owned by the memory so that *every*
        # write path invalidates the stale decode — a bit flip injected
        # through any of these APIs must corrupt all subsequent
        # executions until the MCP is reloaded (persistent-flip
        # semantics of the paper's SWIFI experiments).  Keys are word
        # addresses; values are opaque to the SRAM (the LANai
        # interpreter stores compiled entries).
        self.decode_cache: dict = {}
        # Fused basic-block cache (same ownership rationale): start
        # address -> translated straight-line run, with a word-address ->
        # [block starts] reverse index so a write landing *anywhere*
        # inside a translated block (stores, DMA, firmware reload,
        # flip_bit) drops the whole block, not just the word's decode.
        # Values are opaque to the SRAM; the LANai interpreter stores
        # ``(n_instr, cycles, fns, end_pc)`` tuples or a None marker
        # meaning "translated, nothing to fuse here".
        self.block_cache: dict = {}
        self.block_index: dict = {}
        self.invalidations = 0   # decode/block cache entries dropped

    def _check(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size:
            raise BusError(address, length, what="SRAM")

    def _invalidate(self, address: int, length: int) -> None:
        """Drop cached decodes and fused blocks overlapping the write."""
        cache = self.decode_cache
        index = self.block_index
        if not cache and not index:
            return
        blocks = self.block_cache
        before = len(cache) + len(blocks)
        start = address & ~3
        end = address + length
        if end - start <= 4 * (len(cache) + len(index)):
            for word in range(start, end, WORD_SIZE):
                cache.pop(word, None)
                starts = index.pop(word, None)
                if starts:
                    for block_start in starts:
                        blocks.pop(block_start, None)
        else:  # bulk write (e.g. firmware image): scan the caches instead
            for word in [w for w in cache if start <= w < end]:
                del cache[word]
            for word in [w for w in index if start <= w < end]:
                for block_start in index.pop(word):
                    blocks.pop(block_start, None)
        self.invalidations += before - (len(cache) + len(blocks))

    # -- byte access ---------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        self._check(address, length)
        return bytes(self._mem[address:address + length])

    def write_bytes(self, address: int, data: bytes) -> None:
        self._check(address, len(data))
        self._invalidate(address, len(data))
        self._mem[address:address + len(data)] = data

    # -- word access -----------------------------------------------------------

    def read_word(self, address: int) -> int:
        """Read an unsigned 32-bit big-endian word."""
        self._check(address, WORD_SIZE)
        return int.from_bytes(self._mem[address:address + WORD_SIZE], "big")

    def write_word(self, address: int, value: int) -> None:
        self._check(address, WORD_SIZE)
        self._invalidate(address, WORD_SIZE)
        self._mem[address:address + WORD_SIZE] = (
            value & 0xFFFFFFFF).to_bytes(WORD_SIZE, "big")

    def read_words(self, address: int, count: int) -> list:
        return [self.read_word(address + i * WORD_SIZE) for i in range(count)]

    def write_words(self, address: int, values: Iterable[int]) -> None:
        for i, value in enumerate(values):
            self.write_word(address + i * WORD_SIZE, value)

    # -- bulk operations -------------------------------------------------------

    def clear(self) -> None:
        """Zero the whole SRAM (the FTD does this before reloading the MCP)."""
        self._mem = bytearray(self.size)
        self.decode_cache.clear()
        self.block_cache.clear()
        self.block_index.clear()

    def flip_bit(self, bit_offset: int) -> int:
        """Flip a single bit; returns the byte address touched.

        This is the fault-injection primitive: the paper flips random bits
        in the ``send_chunk`` section of the MCP code segment.  The flip
        goes through the same invalidation as a write: a cached decode of
        the corrupted word must not survive it.
        """
        byte_addr, bit = divmod(bit_offset, 8)
        self._check(byte_addr, 1)
        self._invalidate(byte_addr, 1)
        self._mem[byte_addr] ^= 1 << (7 - bit)  # bit 0 = MSB, matching BE words
        return byte_addr

    def snapshot(self, address: int = 0, length: int = None) -> bytes:
        """Copy of a region (defaults to the whole SRAM)."""
        if length is None:
            length = self.size - address
        return self.read_bytes(address, length)

    def ckpt_state(self) -> dict:
        """Snapshot contract: the bytes (as a digest) and write accounting.

        The decode/block caches are deliberately absent: they are pure
        functions of the memory content, dropped by a checkpoint and
        rebuilt lazily as the restored interpreter re-executes — caching
        state must never make two captures of identical memory unequal.
        """
        import hashlib

        return {
            "size": self.size,
            "mem_sha256": hashlib.sha256(bytes(self._mem)).hexdigest(),
            "invalidations": self.invalidations,
        }
