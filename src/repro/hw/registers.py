"""LANai special-function registers: ISR, IMR and friends.

The LANai exposes an Interface Status Register (ISR) whose bits record
pending conditions (timer expiry, packet arrival, DMA completion, host
doorbells) and an Interrupt Mask Register (IMR) selecting which ISR bits
raise an interrupt to the *host* over the E-bus.  The MCP's dispatch loop
polls the ISR; the host watchdog of the paper works by enabling the IT1
bit in the IMR so that a timer the firmware fails to re-arm interrupts
the host.
"""

from __future__ import annotations

from typing import Callable, List

__all__ = ["IsrBits", "StatusRegister"]


class IsrBits:
    """Bit assignments for the Interface Status Register.

    The numbering is ours (the real LANai layout is not public in the
    paper); only the *roles* matter for the reproduction.
    """

    IT0_EXPIRED = 1 << 0        # MCP housekeeping timer (drives L_timer())
    IT1_EXPIRED = 1 << 1        # spare timer used by the FTGM watchdog
    IT2_EXPIRED = 1 << 2        # second spare timer (unused, as on real GM)
    SEND_POSTED = 1 << 3        # host wrote a send token doorbell
    RECV_POSTED = 1 << 4        # host provided a receive buffer
    PACKET_ARRIVED = 1 << 5     # packet interface deposited a packet in SRAM
    HOST_DMA_DONE = 1 << 6      # E-bus DMA engine finished a transfer
    HOST_REQUEST = 1 << 7       # host wants attention (open/close/pause port)
    FATAL = 1 << 8              # used by the driver to flag a fatal condition

    ALL = (1 << 9) - 1

    NAMES = {
        IT0_EXPIRED: "IT0_EXPIRED",
        IT1_EXPIRED: "IT1_EXPIRED",
        IT2_EXPIRED: "IT2_EXPIRED",
        SEND_POSTED: "SEND_POSTED",
        RECV_POSTED: "RECV_POSTED",
        PACKET_ARRIVED: "PACKET_ARRIVED",
        HOST_DMA_DONE: "HOST_DMA_DONE",
        HOST_REQUEST: "HOST_REQUEST",
        FATAL: "FATAL",
    }

    @classmethod
    def describe(cls, mask: int) -> str:
        names = [name for bit, name in cls.NAMES.items() if mask & bit]
        return "|".join(names) if names else "0"


class StatusRegister:
    """An ISR/IMR pair with set/clear semantics and change listeners.

    ``listeners`` fire on every ISR *set*; the native MCP dispatch loop
    registers one to wake up, and the host-interrupt logic registers one
    to deliver E-bus interrupts for bits enabled in the IMR.
    """

    def __init__(self):
        self.isr = 0
        self.imr = 0
        self._listeners: List[Callable[[int], None]] = []
        # Immutable snapshot iterated by set_bits: listeners added or
        # removed synchronously *during* a notification (IRQ handlers can
        # run under set_bits) must not perturb the in-flight iteration,
        # and a tuple rebuilt on mutation is cheaper than copying the
        # list on every set (set_bits is the hottest register path).
        self._notify: tuple = ()

    def add_listener(self, fn: Callable[[int], None]) -> None:
        self._listeners.append(fn)
        self._notify = tuple(self._listeners)

    def remove_listener(self, fn: Callable[[int], None]) -> None:
        self._listeners.remove(fn)
        self._notify = tuple(self._listeners)

    def set_bits(self, mask: int) -> None:
        """OR ``mask`` into the ISR and notify listeners."""
        self.isr |= mask
        for listener in self._notify:
            listener(mask)

    def clear_bits(self, mask: int) -> None:
        self.isr &= ~mask

    def test(self, mask: int) -> bool:
        return bool(self.isr & mask)

    def enable_interrupt(self, mask: int) -> None:
        self.imr |= mask

    def disable_interrupt(self, mask: int) -> None:
        self.imr &= ~mask

    def pending_interrupts(self) -> int:
        """ISR bits that are both set and unmasked."""
        return self.isr & self.imr

    def reset(self) -> None:
        """Power-on state; listeners survive (they model soldered wires)."""
        self.isr = 0
        self.imr = 0

    def ckpt_state(self) -> dict:
        """Snapshot contract: both registers plus wired-listener count."""
        return {"isr": self.isr, "imr": self.imr,
                "listeners": len(self._listeners)}
