"""The Myrinet host interface card (NIC) assembly.

One :class:`Nic` bundles what sits on a real LANai9 board: the SRAM, the
LANai's interval timers and status registers, the E-bus DMA engine, and
the packet interface toward the fabric.  The control program (native or
interpreted MCP) and the link are attached by the driver and the fabric
respectively.

The watchdog mechanics of the paper live in the *wiring* here: interval
timers are hardware, so they keep counting when the firmware hangs; a
timer expiry sets its ISR bit, and if the IMR unmasks that bit the board
interrupts the host.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import Simulator, Store, Tracer
from .dma import DmaEngine
from .host import Host
from .pci import PciBus
from .registers import IsrBits, StatusRegister
from .sram import Sram
from .timers import IntervalTimer

__all__ = ["Nic", "RECV_RING_SLOTS"]

# SRAM packet buffering is finite; GM sizes its receive ring to a handful
# of MTU-sized slots.  Arrivals beyond this are dropped (and recovered by
# the Go-Back-N sender), which is Myrinet's backpressure-at-the-edge.
RECV_RING_SLOTS = 32


class Nic:
    """A host interface card plugged into one host and one link."""

    IRQ_LINE = 9  # conventional; any free line would do

    def __init__(self, sim: Simulator, host: Host, node_id: int,
                 sram_size: int = 2 * 1024 * 1024,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.host = host
        self.node_id = node_id
        self.name = "nic%d" % node_id
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)

        self.sram = Sram(sram_size)
        self.status = StatusRegister()
        self.timers = [IntervalTimer(sim, i) for i in range(3)]
        for timer in self.timers:
            timer.on_expire = self._timer_expired
        self.pci = PciBus(sim)
        self.dma = DmaEngine(sim, host, self.pci, self.status, tracer,
                             name="%s.dma" % self.name)

        self.link = None  # set by the fabric when cabled
        self.recv_ring: Store = Store(sim, capacity=RECV_RING_SLOTS)
        self.dropped_arrivals = 0

        self.mcp: Optional[Any] = None     # control program (driver-loaded)
        self.powered = True
        self.resets = 0
        self.timers_functional = True

        # Deliver a host interrupt whenever an unmasked ISR bit is set.
        self.status.add_listener(self._isr_changed)

    # -- interrupt plumbing ------------------------------------------------------

    def _isr_changed(self, set_mask: int) -> None:
        if set_mask & self.status.imr:
            self.raise_host_interrupt(set_mask & self.status.imr)

    def _timer_expired(self, timer: IntervalTimer) -> None:
        if not self.timers_functional:
            return
        bit = (IsrBits.IT0_EXPIRED, IsrBits.IT1_EXPIRED,
               IsrBits.IT2_EXPIRED)[timer.index]
        if self.tracer.enabled:  # hot path: ~2k expiries per simulated ms
            self.tracer.emit(self.sim.now, self.name, "timer_expired",
                             timer=timer.index)
        self.status.set_bits(bit)

    def kill_timers(self) -> None:
        """Model a fault that takes the timer/interrupt logic down too.

        The paper's watchdog "assumes that a network interface hang does
        not affect the timer or the interrupt logic" — this is the case
        where that assumption fails.  A card reset restores the logic.
        """
        self.timers_functional = False
        for timer in self.timers:
            timer.stop()

    def raise_host_interrupt(self, cause: Any) -> None:
        self.host.raise_irq(self.IRQ_LINE, cause)

    # -- packet interface ------------------------------------------------------

    def deliver_packet(self, packet: Any) -> bool:
        """Called by the attached link when a packet arrives off the wire.

        Returns False (and drops) when the SRAM receive ring is full —
        wormhole backpressure ends at the edge; GM recovers via Go-Back-N.
        """
        if not self.powered:
            return False
        if self.recv_ring.full:
            self.dropped_arrivals += 1
            self.tracer.emit(self.sim.now, self.name, "recv_ring_drop")
            return False
        self.recv_ring.put(packet)
        self.status.set_bits(IsrBits.PACKET_ARRIVED)
        return True

    def send_packet(self, packet: Any):
        """Process: push a packet onto the wire (blocks for wire time).

        ``self.link`` is the fabric attachment point (a ``NicPort``);
        returns True once the packet has cleared the wire (delivery
        completes one wire latency later on the receiver's wheel).
        """
        if self.link is None:
            raise RuntimeError("%s is not cabled to a link" % self.name)
        ok = yield from self.link.send(packet)
        return ok

    def ckpt_state(self) -> dict:
        """Snapshot contract: the whole board below the control program.

        The MCP itself is captured separately by the node walker (it is
        firmware, not board hardware); the attached link belongs to the
        fabric section.
        """
        return {
            "name": self.name,
            "powered": self.powered,
            "resets": self.resets,
            "timers_functional": self.timers_functional,
            "dropped_arrivals": self.dropped_arrivals,
            "status": self.status.ckpt_state(),
            "timers": [timer.ckpt_state() for timer in self.timers],
            "sram": self.sram.ckpt_state(),
            "dma": self.dma.ckpt_state(),
            "pci": self.pci.ckpt_state(),
            "recv_ring": self.recv_ring.ckpt_state(),
        }

    # -- lifecycle ------------------------------------------------------------------

    def reset(self) -> None:
        """Card reset: everything on the board returns to power-on state.

        The SRAM content is *not* cleared by reset (SRAM retains data);
        the FTD explicitly clears it before reloading the MCP, as in the
        paper.  The attached link and the host-side page hash table are
        untouched.
        """
        self.resets += 1
        self.status.reset()
        self.timers_functional = True
        for timer in self.timers:
            timer.stop()
        self.dma.reset()
        self.recv_ring.drain()
        self.mcp = None
        self.tracer.emit(self.sim.now, self.name, "card_reset",
                         count=self.resets)
