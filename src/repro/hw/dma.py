"""The E-bus DMA engine: moves payloads between host memory and LANai SRAM.

The engine validates host addresses against the pinned-region map.  Three
outcomes are possible for a (possibly firmware-corrupted) descriptor:

* address maps to a pinned region — the transfer proceeds and moves that
  region's content (or a slice of it);
* address is in **kernel space** (below ``USER_DMA_BASE``) — the rogue
  bus-master transaction corrupts the host: :meth:`Host.crash` fires.
  This is the Table 1 "Host Computer Crash" propagation path;
* address is unmapped user space — the transaction master-aborts; the
  engine flags an error and no data moves (the firmware's error path —
  or its hang — takes it from there).

Transfers are processes; they hold the PCI bus for the transfer time and
then set ``HOST_DMA_DONE`` in the ISR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..payload import Payload
from ..sim import Simulator, Tracer
from .host import Host
from .pci import PciBus
from .registers import IsrBits, StatusRegister

__all__ = ["DmaEngine", "DmaResult"]


@dataclass
class DmaResult:
    """Outcome of one DMA transaction."""

    ok: bool
    error: Optional[str] = None
    payload: Optional[Payload] = None
    moved: int = 0


class DmaEngine:
    """Host <-> SRAM mover, one transaction at a time."""

    def __init__(self, sim: Simulator, host: Host, pci: PciBus,
                 status: StatusRegister, tracer: Optional[Tracer] = None,
                 name: str = "dma"):
        self.sim = sim
        self.host = host
        self.pci = pci
        self.status = status
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.name = name
        self.enabled = True
        self.transactions = 0
        self.errors = 0

    def reset(self) -> None:
        self.enabled = True
        self.transactions = 0
        self.errors = 0

    def ckpt_state(self) -> dict:
        """Snapshot contract: engine flag and transaction accounting."""
        return {"enabled": self.enabled, "transactions": self.transactions,
                "errors": self.errors}

    def _validate(self, host_addr: int, length: int) -> Optional[DmaResult]:
        """Common address checks; returns a failure result or None if OK."""
        if not self.enabled:
            return DmaResult(ok=False, error="dma-disabled")
        if length < 0:
            return DmaResult(ok=False, error="bad-length")
        if self.host.is_kernel_address(host_addr):
            # A bus-master write/read into kernel space takes the host down.
            self.host.crash("rogue DMA at 0x%x from %s" % (host_addr, self.name))
            return DmaResult(ok=False, error="host-crash")
        return None

    def read_from_host(self, host_addr: int, length: int) -> Generator:
        """Process: DMA ``length`` bytes from host memory into SRAM.

        Returns a :class:`DmaResult` whose ``payload`` is the content
        fetched (a slice of the pinned region at ``host_addr``).
        """
        failure = self._validate(host_addr, length)
        if failure is not None:
            self.errors += 1
            return failure
        try:
            region = self.host.region_at(host_addr, max(length, 1))
        except Exception:
            self.errors += 1
            self.tracer.emit(self.sim.now, self.name, "dma_master_abort",
                             addr=host_addr, length=length, dir="read")
            return DmaResult(ok=False, error="master-abort")
        yield from self.pci.transfer(length)
        self.transactions += 1
        offset = host_addr - region.addr
        if region.payload is None:
            payload = Payload.phantom(length, tag=region.region_id)
        else:
            end = min(offset + length, region.payload.size)
            if offset >= region.payload.size:
                payload = Payload.phantom(length, tag=0xBAD)
            else:
                payload = region.payload.slice(offset, end - offset)
        self.status.set_bits(IsrBits.HOST_DMA_DONE)
        return DmaResult(ok=True, payload=payload, moved=length)

    def write_to_host(self, host_addr: int, payload: Payload) -> Generator:
        """Process: DMA ``payload`` from SRAM into host memory."""
        failure = self._validate(host_addr, payload.size)
        if failure is not None:
            self.errors += 1
            return failure
        try:
            region = self.host.region_at(host_addr, max(payload.size, 1))
        except Exception:
            self.errors += 1
            self.tracer.emit(self.sim.now, self.name, "dma_master_abort",
                             addr=host_addr, length=payload.size, dir="write")
            return DmaResult(ok=False, error="master-abort")
        yield from self.pci.transfer(payload.size)
        self.transactions += 1
        offset = host_addr - region.addr
        if offset == 0:
            region.payload = payload
        elif region.payload is not None and region.payload.is_concrete \
                and payload.is_concrete:
            base = bytearray(region.payload.data.ljust(region.size, b"\x00"))
            base[offset:offset + payload.size] = payload.data
            region.payload = Payload.from_bytes(bytes(base))
        else:
            region.payload = payload  # best-effort for phantom partials
        self.status.set_bits(IsrBits.HOST_DMA_DONE)
        return DmaResult(ok=True, payload=payload, moved=payload.size)
