"""The PCI bus between host memory and the NIC.

The paper's testbed uses 33 MHz PCI (64-bit slots, LANai9 PCI64B cards).
At this abstraction a DMA transaction holds the bus for
``setup + bytes / bandwidth``; send-side and receive-side DMAs of the
same host contend for the one bus, which is what bends the bidirectional
bandwidth curve of Figure 7 toward its ~92 MB/s asymptote.

Bandwidth is in bytes/µs (== MB/s).  The default effective bandwidth is
deliberately below the 264 MB/s theoretical peak of 33 MHz x 64-bit PCI —
real DMA engines lose cycles to arbitration, retries and descriptor
fetches; the value is calibrated against Table 2.
"""

from __future__ import annotations

from ..sim import Pipe, Simulator

__all__ = ["PciBus"]


class PciBus(Pipe):
    """A shared, serialized PCI segment."""

    def __init__(self, sim: Simulator, bandwidth: float = 228.0,
                 setup: float = 0.55):
        super().__init__(sim, bandwidth=bandwidth, setup=setup, capacity=1)

    def pio_cost(self) -> float:
        """Cost of one programmed-I/O access (doorbell write, register read).

        PIO over PCI is uncached and serializing; ~0.3 µs at 33 MHz.
        """
        return 0.3
