"""LANai interval timers.

The LANai chip has three 32-bit interval timers decremented every 0.5 µs.
GM's MCP uses IT0 to drive its housekeeping routine ``L_timer()``; the
paper's watchdog appropriates a spare timer (IT1) that ``L_timer()``
re-arms on every invocation, so a firmware hang lets IT1 expire and—with
the corresponding IMR bit enabled—interrupt the host.

Crucially, the timers are *hardware*: they keep counting even when the
LANai processor is hung.  We model each timer as a scheduled expiry event
guarded by a generation counter so that re-arming cancels the previous
expiry.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator

__all__ = ["IntervalTimer", "TIMER_TICK_US"]

TIMER_TICK_US = 0.5  # the LANai decrements interval timers every 1/2 us


class IntervalTimer:
    """One 32-bit down-counter with expiry callback.

    ``set_count(n)`` arms the timer for ``n`` ticks (n * 0.5 µs);
    ``set_us(t)`` is the convenience equivalent in microseconds.  On
    expiry the timer calls ``on_expire(self)`` — wired by the NIC to set
    the matching ISR bit — and stays idle until re-armed (the MCP is
    responsible for re-arming, which is exactly the behaviour the
    watchdog exploits).
    """

    MAX_COUNT = 0xFFFFFFFF

    def __init__(self, sim: Simulator, index: int):
        self.sim = sim
        self.index = index
        self.on_expire = None  # type: Optional[callable]
        self._armed = False
        self._deadline = None  # type: Optional[float]
        # Identity of the pending expiry timeout: re-arming replaces it,
        # which cancels the stale expiry without a per-arm closure (the
        # MCP re-arms IT0 every L_timer, so this path is hot).
        self._pending = None
        self._fire_cb = self._fire

    @property
    def armed(self) -> bool:
        return self._armed

    @property
    def deadline(self) -> Optional[float]:
        """Absolute simulation time of the pending expiry, if armed."""
        return self._deadline if self._armed else None

    def set_count(self, ticks: int) -> None:
        """Arm (or re-arm) the timer for ``ticks`` half-microsecond ticks."""
        if not 0 < ticks <= self.MAX_COUNT:
            raise ValueError("timer count out of range: %r" % (ticks,))
        self.set_us(ticks * TIMER_TICK_US)

    def set_us(self, interval_us: float) -> None:
        """Arm (or re-arm) the timer to expire ``interval_us`` from now."""
        if interval_us <= 0:
            raise ValueError("timer interval must be positive")
        old = self._pending
        self._armed = True
        self._deadline = self.sim.now + interval_us
        timeout = self.sim.timeout(interval_us)
        self._pending = timeout
        timeout.callbacks.append(self._fire_cb)
        if old is not None:
            # The replaced expiry stays in the event heap but can no
            # longer do anything; mark it so the tickless fast-forward
            # scan ignores it.
            self.sim.inert.add(old)

    def set_deadline(self, when: float) -> None:
        """Arm to expire at an absolute simulation time.

        The tickless fast-forward uses this to land the expiry on the
        bitwise-exact float the periodic re-arm chain would have
        produced (``set_us`` recomputes ``now + interval``, which is not
        guaranteed to reproduce an accumulated deadline).
        """
        old = self._pending
        self._armed = True
        self._deadline = when
        timeout = self.sim.timeout_at(when)
        self._pending = timeout
        timeout.callbacks.append(self._fire_cb)
        if old is not None:
            self.sim.inert.add(old)

    @property
    def pending_event(self):
        """The scheduled expiry timeout, if armed (tickless scan hook)."""
        return self._pending

    def _fire(self, event) -> None:
        self.sim.inert.discard(event)
        if event is not self._pending or not self._armed:
            return  # re-armed or stopped since scheduling
        self._armed = False
        self._deadline = None
        self._pending = None
        if self.on_expire is not None:
            self.on_expire(self)

    def stop(self) -> None:
        """Disarm without firing (used on card reset)."""
        if self._pending is not None:
            self.sim.inert.add(self._pending)
        self._armed = False
        self._deadline = None
        self._pending = None

    def ckpt_state(self) -> dict:
        """Snapshot contract: armed flag and the absolute deadline."""
        return {"index": self.index, "armed": self._armed,
                "deadline": self._deadline}
