"""The host computer: pinned DMA memory, CPU accounting, interrupts, crash.

GM's zero-copy model requires user processes to allocate *pinned* (DMA-able)
pages; the driver records the virtual-to-DMA mapping in a **page hash
table** kept in host memory, which the MCP caches into LANai SRAM.  We
model the pinned address space directly: :class:`DmaRegion` objects live at
simulated DMA addresses above :data:`USER_DMA_BASE` and carry
:class:`~repro.payload.Payload` content.  Anything below the base is
"kernel space" — a NIC DMA aimed there crashes the host, which is how the
paper's fault-propagation-to-host failures (Table 1, "Host Computer
Crash") arise in our model.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..errors import BusError, HostCrashed
from ..payload import Payload
from ..sim import Process, Resource, Simulator, Tracer

__all__ = ["DmaRegion", "PageHashTable", "Host", "USER_DMA_BASE", "PAGE_SIZE"]

PAGE_SIZE = 4096
USER_DMA_BASE = 0x1000_0000  # DMA addresses below this are kernel space


class DmaRegion:
    """A pinned, DMA-able buffer owned by one port.

    ``payload`` holds the buffer's current content.  Senders fill it
    before posting a send token; the NIC fills it when delivering a
    message into a receive buffer.
    """

    def __init__(self, region_id: int, addr: int, size: int, owner_port: int):
        self.region_id = region_id
        self.addr = addr
        self.size = size
        self.owner_port = owner_port
        self.payload: Optional[Payload] = None

    def contains(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.addr + self.size

    def __repr__(self) -> str:
        return "DmaRegion(id=%d, addr=0x%x, size=%d, port=%d)" % (
            self.region_id, self.addr, self.size, self.owner_port)


class PageHashTable:
    """Host-resident map of (port, virtual page) -> DMA address.

    It is big (the paper: "it is big, so it is stored in host memory and
    the MCP caches entries into the LANai SRAM"), and it survives NIC
    failures, which is why the FTD merely re-tells the reloaded MCP where
    the table lives rather than rebuilding it.
    """

    def __init__(self):
        self._entries: Dict[Tuple[int, int], int] = {}

    def insert(self, port: int, virtual_page: int, dma_addr: int) -> None:
        self._entries[(port, virtual_page)] = dma_addr

    def remove_port(self, port: int) -> None:
        stale = [k for k in self._entries if k[0] == port]
        for key in stale:
            del self._entries[key]

    def lookup(self, port: int, virtual_page: int) -> Optional[int]:
        return self._entries.get((port, virtual_page))

    def __len__(self) -> int:
        return len(self._entries)


class Host:
    """A host machine: CPU, pinned memory, interrupt lines, daemons.

    The CPU is a single :class:`Resource`; library code charges CPU time
    through :meth:`cpu_execute`, which both advances simulated time and
    accumulates per-category utilisation figures (Table 2's host-CPU
    columns come from these counters).
    """

    def __init__(self, sim: Simulator, name: str, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.name = name
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.cpu = Resource(sim, capacity=1)
        self.page_hash_table = PageHashTable()
        self.crashed = False
        self.crash_reason: Optional[str] = None
        self._regions: Dict[int, DmaRegion] = {}
        self._by_id: Dict[int, DmaRegion] = {}
        self._next_addr = USER_DMA_BASE
        self._next_region_id = 1
        self._irq_handlers: Dict[int, Callable[[Any], None]] = {}
        self._processes: List[Process] = []
        self.cpu_time: Dict[str, float] = {}

    # -- memory management -----------------------------------------------------

    def alloc_dma(self, size: int, owner_port: int) -> DmaRegion:
        """Allocate a pinned buffer and register its pages in the hash table."""
        self._check_alive()
        if size <= 0:
            raise ValueError("allocation size must be positive")
        # Round the *address space* up to whole pages; the region keeps its
        # exact size for bounds checking.
        pages = -(-size // PAGE_SIZE)
        region = DmaRegion(self._next_region_id, self._next_addr, size,
                           owner_port)
        self._next_region_id += 1
        self._next_addr += pages * PAGE_SIZE
        self._regions[region.addr] = region
        self._by_id[region.region_id] = region
        for page in range(pages):
            self.page_hash_table.insert(
                owner_port, region.addr // PAGE_SIZE + page,
                region.addr + page * PAGE_SIZE)
        return region

    def free_dma(self, region: DmaRegion) -> None:
        self._regions.pop(region.addr, None)
        self._by_id.pop(region.region_id, None)

    def region_at(self, addr: int, length: int = 1) -> DmaRegion:
        """Resolve a DMA address to its region; raise BusError if unmapped."""
        for region in self._regions.values():
            if region.contains(addr, length):
                return region
        raise BusError(addr, length, what="host DMA space")

    def region_by_id(self, region_id: int) -> Optional[DmaRegion]:
        return self._by_id.get(region_id)

    def is_kernel_address(self, addr: int) -> bool:
        return addr < USER_DMA_BASE

    # -- CPU accounting ----------------------------------------------------------

    def cpu_execute(self, cost_us: float, category: str = "other") -> Generator:
        """Process helper: occupy the CPU for ``cost_us``, tallied by category."""
        self._check_alive()
        if cost_us < 0:
            raise ValueError("negative CPU cost")
        req = self.cpu.request()
        yield req
        try:
            yield self.sim.timeout(cost_us)
            self.cpu_time[category] = self.cpu_time.get(category, 0.0) + cost_us
        finally:
            self.cpu.release()

    # -- interrupts ----------------------------------------------------------------

    def register_irq_handler(self, line: int,
                             handler: Callable[[Any], None]) -> None:
        """Install an interrupt handler (the GM driver does this at load)."""
        self._irq_handlers[line] = handler

    def raise_irq(self, line: int, cause: Any = None) -> None:
        """Deliver an interrupt.  Handlers run in interrupt context —
        synchronously, no sleeping — matching the paper's point that the
        recovery work must be deferred to a daemon."""
        if self.crashed:
            return
        handler = self._irq_handlers.get(line)
        if handler is not None:
            handler(cause)
            self.tracer.emit(self.sim.now, self.name, "irq",
                             line=line, cause=str(cause))

    # -- processes & crash --------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Run a process on this host; it dies if the host crashes."""
        self._check_alive()
        proc = self.sim.spawn(gen, name="%s/%s" % (self.name, name))
        self._processes.append(proc)
        return proc

    def crash(self, reason: str) -> None:
        """Crash the machine: all host processes are interrupted."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_reason = reason
        self.tracer.emit(self.sim.now, self.name, "host_crash", reason=reason)
        for proc in self._processes:
            if proc.is_alive:
                proc.interrupt(HostCrashed(reason))

    def _check_alive(self) -> None:
        if self.crashed:
            raise HostCrashed(self.crash_reason or "host crashed")

    def ckpt_state(self) -> dict:
        """Snapshot contract: crash state, CPU, pinned memory, processes."""
        regions = [
            {
                "id": region.region_id,
                "addr": region.addr,
                "size": region.size,
                "port": region.owner_port,
                "payload_size": region.payload.size
                if region.payload is not None else None,
                "payload_fp": region.payload.fingerprint
                if region.payload is not None else None,
            }
            for addr, region in sorted(self._regions.items())
        ]
        return {
            "name": self.name,
            "crashed": self.crashed,
            "crash_reason": self.crash_reason,
            "cpu": self.cpu.ckpt_state(),
            "cpu_time": dict(sorted(self.cpu_time.items())),
            "page_table_entries": len(self.page_hash_table),
            "regions": regions,
            "next_addr": self._next_addr,
            "next_region_id": self._next_region_id,
            "irq_lines": sorted(self._irq_handlers),
            "processes_alive": sum(1 for p in self._processes if p.is_alive),
        }
