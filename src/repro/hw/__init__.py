"""Simulated hardware: SRAM, timers, registers, PCI, DMA, host, NIC."""

from .dma import DmaEngine, DmaResult
from .host import PAGE_SIZE, USER_DMA_BASE, DmaRegion, Host, PageHashTable
from .nic import RECV_RING_SLOTS, Nic
from .pci import PciBus
from .registers import IsrBits, StatusRegister
from .sram import WORD_SIZE, Sram
from .timers import TIMER_TICK_US, IntervalTimer

__all__ = [
    "DmaEngine",
    "DmaRegion",
    "DmaResult",
    "Host",
    "IntervalTimer",
    "IsrBits",
    "Nic",
    "PAGE_SIZE",
    "PageHashTable",
    "PciBus",
    "RECV_RING_SLOTS",
    "Sram",
    "StatusRegister",
    "TIMER_TICK_US",
    "USER_DMA_BASE",
    "WORD_SIZE",
]
