"""Fault-surface analysis: which bits break what.

The Table 1 campaign flips random bits; this module explains the
distribution by attributing every injected bit to the instruction
*field* it lives in (opcode / register selector / immediate / don't-care
pad) and the firmware *region* (hot path, checksum loop, diagnostics,
cold path), then cross-tabulating field × outcome.  Stott et al. (the
FTCS'97 study the paper compares against) did this kind of breakdown for
the original Myrinet; it is also the evidence for our EXPERIMENTS.md
claim that the category split tracks the ISA's encoding density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..lanai import isa
from ..lanai.firmware import Firmware, build_firmware
from .outcomes import CATEGORY_ORDER, InjectionOutcome

__all__ = ["FieldKind", "classify_bit", "SurfaceReport", "analyze_surface"]


class FieldKind:
    OPCODE = "opcode"
    REGISTER = "register"
    IMMEDIATE = "immediate"
    PAD = "pad (don't care)"

    ORDER = [OPCODE, REGISTER, IMMEDIATE, PAD]


def classify_bit(firmware: Firmware, bit_offset: int) -> Tuple[str, str]:
    """(field kind, source line) for a bit offset into send_chunk.

    Bit numbering matches :meth:`Sram.flip_bit`: bit 0 is the MSB of the
    section's first byte, i.e. bit 31 of the first instruction word.
    """
    start, end = firmware.send_chunk_extent
    byte_addr = start + bit_offset // 8
    word_addr = byte_addr - byte_addr % 4
    word = int.from_bytes(
        firmware.program.code[word_addr - firmware.program.base:
                              word_addr - firmware.program.base + 4],
        "big")
    # Position within the 32-bit word, MSB-first: bit 31 is the MSB.
    bit_in_word = 31 - (bit_offset % 8 + (byte_addr - word_addr) * 8)
    line = firmware.source_line(word_addr)
    try:
        instr = isa.decode(word)
    except Exception:
        return FieldKind.IMMEDIATE, line  # data word (none in practice)
    fmt = instr.op.fmt
    if bit_in_word >= 26:
        return FieldKind.OPCODE, line
    if fmt == isa.Format.R:
        if bit_in_word >= 14:
            return FieldKind.REGISTER, line
        return FieldKind.PAD, line
    if fmt == isa.Format.I:
        if bit_in_word >= 18:
            return FieldKind.REGISTER, line
        return FieldKind.IMMEDIATE, line
    if fmt == isa.Format.B:
        if bit_in_word >= 18:
            return FieldKind.REGISTER, line
        return FieldKind.IMMEDIATE, line
    return FieldKind.IMMEDIATE, line  # J-format: all target bits


@dataclass
class SurfaceReport:
    """field-kind x outcome-category contingency table."""

    table: Dict[str, Dict[str, int]]
    total: int

    def field_total(self, field: str) -> int:
        return sum(self.table.get(field, {}).values())

    def rate(self, field: str, category: str) -> float:
        total = self.field_total(field)
        if not total:
            return 0.0
        return self.table[field].get(category, 0) / total

    def render(self) -> str:
        short = {c: c.split()[0] for c in CATEGORY_ORDER}
        lines = ["Fault surface: outcome distribution by corrupted "
                 "instruction field (%d runs)" % self.total,
                 "%-18s %6s | %s" % ("field", "flips", " ".join(
                     "%9s" % short[c] for c in CATEGORY_ORDER))]
        for field in FieldKind.ORDER:
            total = self.field_total(field)
            if not total:
                continue
            cells = " ".join("%8.0f%%" % (100 * self.rate(field, c))
                             for c in CATEGORY_ORDER)
            lines.append("%-18s %6d | %s" % (field, total, cells))
        return "\n".join(lines)


def analyze_surface(outcomes: List[InjectionOutcome],
                    firmware: Firmware = None) -> SurfaceReport:
    """Cross-tabulate a campaign's outcomes by corrupted field."""
    firmware = firmware or build_firmware()
    table: Dict[str, Dict[str, int]] = {}
    for outcome in outcomes:
        field, _line = classify_bit(firmware, outcome.bit_offset)
        table.setdefault(field, {})
        table[field][outcome.category] = \
            table[field].get(outcome.category, 0) + 1
    return SurfaceReport(table, len(outcomes))
