"""Failure categories and outcome classification (Table 1).

The paper buckets 1000 injections into: Local Interface Hung, Messages
Corrupted, Remote Interface Hung, MCP Restart, Host Computer Crash,
Other Errors, No Impact.  Classification here is **observational** — we
look at what the system did (watchdog state, delivered payloads,
processor latches, host crash flags), never at the injected bit itself —
mirroring how the original experimenters classified runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Category", "InjectionOutcome", "classify", "CATEGORY_ORDER"]


class Category:
    LOCAL_HANG = "Local Interface Hung"
    CORRUPTED = "Messages Corrupted"
    REMOTE_HANG = "Remote Interface Hung"
    MCP_RESTART = "MCP Restart"
    HOST_CRASH = "Host Computer Crash"
    OTHER = "Other Errors"
    NO_IMPACT = "No Impact"


CATEGORY_ORDER = [
    Category.LOCAL_HANG,
    Category.CORRUPTED,
    Category.REMOTE_HANG,
    Category.MCP_RESTART,
    Category.HOST_CRASH,
    Category.OTHER,
    Category.NO_IMPACT,
]


@dataclass
class InjectionOutcome:
    """Everything observed during one injection run."""

    run_id: int
    bit_offset: int
    injected_at: float
    faulting_source_line: str = ""
    # Observations.
    local_hung: bool = False
    hang_reason: Optional[str] = None
    remote_hung: bool = False
    mcp_restarts: int = 0
    host_crashed: bool = False
    messages_expected: int = 0
    messages_delivered_ok: int = 0
    messages_corrupted: int = 0
    sends_errored: int = 0
    workload_completed: bool = False
    # FTGM-specific (recovery effectiveness, §5.2).
    watchdog_fired: bool = False
    recovery_attempted: bool = False
    recovered_fully: bool = False
    category: str = field(default="", init=False)

    def finalize(self) -> "InjectionOutcome":
        self.category = classify(self)
        return self


def classify(outcome: InjectionOutcome) -> str:
    """Priority-ordered bucketing into the paper's categories.

    "Messages Corrupted" covers data damage *and* data loss without a
    hang — the paper groups these ("interface hangs and
    dropped/corrupted messages account for more than 90% of the
    failures"); the Stott et al. study it compares against calls the
    bucket dropped/corrupted messages.
    """
    if outcome.host_crashed:
        return Category.HOST_CRASH
    if outcome.remote_hung:
        return Category.REMOTE_HANG
    if outcome.local_hung:
        return Category.LOCAL_HANG
    if outcome.mcp_restarts > 0:
        return Category.MCP_RESTART
    if outcome.messages_corrupted > 0 \
            or outcome.messages_delivered_ok < outcome.messages_expected:
        return Category.CORRUPTED
    if outcome.workload_completed and outcome.sends_errored == 0:
        return Category.NO_IMPACT
    return Category.OTHER


def tabulate(outcomes: List[InjectionOutcome]) -> Dict[str, int]:
    counts = {category: 0 for category in CATEGORY_ORDER}
    for outcome in outcomes:
        counts[outcome.category] += 1
    return counts
