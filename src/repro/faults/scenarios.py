"""The paper's Figure 4 and Figure 5 scenarios as runnable experiments.

Figure 4 (duplicate messages): the sender's NIC crashes with an ACK in
transit; after recovery the resent message must not be accepted twice.
Figure 5 (lost messages): plain GM ACKs before the receive DMA; a crash
in that window loses the message while the sender believes it arrived.

Each runner returns a small result object; the tests assert the bugs
REPRODUCE under plain GM + naive reload and are ABSENT under FTGM, and
the Fig. 4/5 benchmark prints both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import build_cluster
from ..payload import Payload
from .naive import naive_reload

__all__ = ["Fig4Result", "Fig5Result", "run_figure4", "run_figure5"]


def _run_until(cluster, predicate, limit=120_000_000.0):
    sim = cluster.sim
    deadline = sim.now + limit
    while not predicate() and sim.peek() <= deadline:
        sim.step()
    return predicate()


def _open(cluster, node, port_id):
    box = {}

    def opener():
        box["port"] = yield from cluster[node].driver.open_port(port_id)

    cluster[node].host.spawn(opener(), "open")
    assert _run_until(cluster, lambda: "port" in box)
    return box["port"]


@dataclass
class Fig4Result:
    flavor: str
    deliveries_of_msg5: int
    sender_completed: bool

    @property
    def duplicate(self) -> bool:
        return self.deliveries_of_msg5 > 1


def run_figure4(flavor: str) -> Fig4Result:
    """Sender crash with ACK in transit, then recovery + resend."""
    cluster = build_cluster(2, flavor=flavor)
    sim = cluster.sim
    sport = _open(cluster, 0, 1)
    rport = _open(cluster, 1, 2)
    state = {"recv": [], "cb": []}

    def receiver():
        for _ in range(10):
            yield from rport.provide_receive_buffer(256)
        while True:
            event = yield from rport.receive_message()
            state["recv"].append(event.payload.data)

    def sender():
        for i in range(5):
            yield from sport.send_and_wait(
                Payload.from_bytes(b"msg-%d" % i), 1, 2)
        cluster[0].mcp.hang_before_ack_processing = True
        yield from sport.send(Payload.from_bytes(b"msg-5"), 1, 2,
                              callback=lambda o: state["cb"].append(o))
        while not state["cb"]:
            if flavor == "gm" and cluster[0].mcp.hung:
                return
            yield from sport.receive(timeout=1_000.0)

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    assert _run_until(cluster,
                      lambda: cluster[0].mcp.hung or bool(state["cb"]))

    if flavor == "gm":
        def recover_and_resend():
            yield from naive_reload(cluster[0].driver)
            yield from sport.send_and_wait(Payload.from_bytes(b"msg-5"),
                                           1, 2)
            state["cb"].append("resent-ok")

        cluster[0].host.spawn(recover_and_resend(), "naive")
    assert _run_until(cluster, lambda: bool(state["cb"]))
    sim.run(until=sim.now + 100_000.0)
    return Fig4Result(flavor, state["recv"].count(b"msg-5"),
                      bool(state["cb"]))


@dataclass
class Fig5Result:
    flavor: str
    sender_told_success: bool
    receiver_got_message: bool

    @property
    def lost(self) -> bool:
        return self.sender_told_success and not self.receiver_got_message


def run_figure5(flavor: str) -> Fig5Result:
    """Receiver crash in the ACK/DMA commit window."""
    cluster = build_cluster(2, flavor=flavor)
    sim = cluster.sim
    sport = _open(cluster, 0, 1)
    rport = _open(cluster, 1, 2)
    state = {"recv": [], "send_ok": None}
    if flavor == "gm":
        cluster[1].mcp.hang_after_ack_before_dma = True
    else:
        cluster[1].mcp.hang_after_dma_before_ack = True

    def receiver():
        yield from rport.provide_receive_buffer(256)
        while True:
            event = yield from rport.receive_message()
            state["recv"].append(event.payload.data)

    def sender():
        try:
            yield from sport.send_and_wait(
                Payload.from_bytes(b"precious"), 1, 2)
            state["send_ok"] = True
        except Exception:
            state["send_ok"] = False

    cluster[1].host.spawn(receiver(), "r")
    cluster[0].host.spawn(sender(), "s")
    assert _run_until(cluster,
                      lambda: cluster[1].mcp.hung or bool(state["recv"]))

    if flavor == "gm":
        def recover():
            yield from naive_reload(cluster[1].driver)

        cluster[1].host.spawn(recover(), "naive")
        sim.run(until=sim.now + 30_000_000.0)
    else:
        _run_until(cluster, lambda: bool(state["recv"])
                   and state["send_ok"] is not None)
    return Fig5Result(flavor, bool(state["send_ok"]), bool(state["recv"]))
