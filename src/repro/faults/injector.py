"""Single-fault injection experiments.

The paper's method: "one section of the MCP code, namely send_chunk, was
selected and for each experiment, a fault was injected at a random bit
location in this section while it was handling some network
communication.  Since send_chunk corresponds to a serial piece of code
that is executed by the LANai each time a message is sent out, we are
assured that all the faults are activated."

One experiment here: build a fresh 2-node cluster with the target node's
MCP in interpreted mode, start a message stream from the target, flip
one random bit inside the assembled ``send_chunk`` section at a random
moment mid-stream, observe until the workload resolves (or a horizon
passes), and record everything the classifier needs.  The flip persists
in SRAM until the MCP is reloaded — exactly like the original SWIFI
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster import build_cluster
from ..obs.harvest import harvest_cluster
from ..payload import Payload
from ..sim import SeededRng
from .outcomes import InjectionOutcome

try:
    import numpy as _np
except ImportError:                      # pragma: no cover
    _np = None

__all__ = ["InjectionConfig", "run_injection", "boot_injection",
           "resume_injection", "injection_family", "injection_group",
           "plan_injection_runs", "classify_deliveries"]


def classify_deliveries(received, expected) -> "tuple[int, int]":
    """Count exact-match vs corrupted deliveries, batched.

    ``received`` maps message index -> observed :class:`Payload`;
    ``expected`` maps index -> the payload that was sent.  A delivery is
    OK exactly when the observed payload equals the expected one —
    :class:`Payload` equality is ``(size, fingerprint)``, so the whole
    campaign observation reduces to comparing two integer pairs per
    message.  The numpy path stacks those pairs into ``(n, 2)`` uint64
    arrays and compares them in one shot; the scalar fallback is the
    historic per-item loop.  Both yield identical counts (sizes and
    fingerprints are 64-bit by construction), so campaign outcomes are
    byte-for-byte independent of which path ran.
    """
    items = list(received.items())
    if not items:
        return 0, 0
    pairs = [(payload, expected.get(index)) for index, payload in items]
    matched = [(got, want) for got, want in pairs if want is not None]
    delivered_ok = 0
    if matched:
        if _np is not None:
            try:
                got = _np.array([(p.size, p.fingerprint)
                                 for p, _ in matched], dtype=_np.uint64)
                want = _np.array([(p.size, p.fingerprint)
                                  for _, p in matched], dtype=_np.uint64)
                delivered_ok = int((got == want).all(axis=1).sum())
            except OverflowError:        # fingerprint outside uint64
                delivered_ok = sum(1 for got, want in matched
                                   if got == want)
        else:
            delivered_ok = sum(1 for got, want in matched if got == want)
    return delivered_ok, len(items) - delivered_ok


@dataclass
class InjectionConfig:
    """Parameters of one injection run."""

    run_id: int
    seed: int
    flavor: str = "gm"          # 'ftgm' for the §5.2 effectiveness study
    messages: int = 16          # stream length during which the flip lands
    message_bytes: int = 256
    inject_after_messages: Optional[int] = None  # None: random position
    bit_offset: Optional[int] = None             # None: random in section
    observe_horizon_us: float = 12_000_000.0


def injection_family(config: InjectionConfig):
    """Key of the boot all runs with this config's shape can share."""
    return (config.flavor,)


def injection_group(config: InjectionConfig):
    """Key of the live prefix all runs in a branch group can share.

    Everything that shapes the pre-injection trajectory must match; the
    parent process runs one un-injected stream and forks each run off at
    its gate.  The per-run ``seed`` is deliberately absent: boot never
    draws the cluster rng, stream payloads are keyed by message index,
    and the seed feeds only the run's private injection draws — which the
    planner resolves per run and each child adopts at its gate.  (The
    fork-server's ``injection_family`` leans on the same independence.)
    """
    return (config.flavor, config.messages,
            config.message_bytes, config.observe_horizon_us)


def plan_injection_runs(cluster, items):
    """Resolve each pending run's branch gate against the booted cluster.

    Materializes the lazily-drawn parameters in **cold draw order** (bit
    first, then the injection index — the exact `randrange` sequence
    :func:`resume_injection` performs) so a forked child that adopts the
    resolved config holds precisely the values its cold run would have
    drawn.  The draws touch only the run's private RNG stream, never the
    simulation, so resolving them here is invisible to the prefix.
    """
    from dataclasses import replace

    from ..ckpt.branch import BranchPlan

    firmware = cluster[0].mcp.firmware
    start, end = firmware.send_chunk_extent
    section_bits = (end - start) * 8
    plans = []
    for index, config in items:
        rng = SeededRng(config.seed, "inject/%d" % config.run_id)
        bit = config.bit_offset if config.bit_offset is not None \
            else rng.randrange(section_bits)
        inject_after = config.inject_after_messages \
            if config.inject_after_messages is not None \
            else rng.randrange(1, config.messages)
        resolved = replace(config, bit_offset=bit,
                           inject_after_messages=inject_after)
        plans.append(BranchPlan(index, resolved, inject_after))
    return plans


def boot_injection(config: InjectionConfig):
    """Build and boot the shared pre-fault prefix of an injection run.

    Everything here is independent of the per-run seed (the cluster's
    rng is constructed but never drawn during boot), so a fork-server
    can boot once per :func:`injection_family` and fork a copy-on-write
    child per run — :func:`resume_injection` picks up from the exact
    state a fresh per-run boot would produce.
    """
    return build_cluster(2, flavor=config.flavor,
                         interpreted_nodes=[0],
                         seed=config.seed)


def run_injection(config: InjectionConfig) -> InjectionOutcome:
    """Run one fault-injection experiment and classify the outcome."""
    return resume_injection(boot_injection(config), config)


def resume_injection(cluster, config: InjectionConfig,
                     branch=None, pause_at: Optional[float] = None):
    """Inject, observe and classify on an already-booted cluster.

    ``branch`` (a :class:`repro.ckpt.branch.BranchController`) turns
    this into the gated prefix of a branch group: the parent streams
    without ever injecting, forking one child per run at its gate; each
    child adopts its resolved config and continues exactly as a cold run
    would.  ``pause_at`` instead parks the run at a simulated instant
    and returns a :class:`repro.ckpt.PausedRun` (snapshot/time-travel).
    """
    rng = SeededRng(config.seed, "inject/%d" % config.run_id)
    sim = cluster.sim
    target = cluster[0]
    peer = cluster[1]
    mcp = target.mcp
    firmware = mcp.firmware
    start, end = firmware.send_chunk_extent
    section_bits = (end - start) * 8
    if branch is not None:
        # The branch parent never injects; children adopt their resolved
        # (bit, inject_after) at the gate.  Cold runs draw here — the
        # draws touch only this run's private stream, so skipping them
        # in the parent is invisible to the shared prefix.
        bit = None
        inject_after = None
    else:
        bit = config.bit_offset if config.bit_offset is not None \
            else rng.randrange(section_bits)
        inject_after = config.inject_after_messages \
            if config.inject_after_messages is not None \
            else rng.randrange(1, config.messages)

    state = {
        "recv": {},          # index -> payload
        "send_done": 0,
        "send_err": 0,
        "injected_at": None,
        "sender_alive": True,
    }
    expected = {
        i: Payload.pattern(config.message_bytes, seed=i)
        for i in range(config.messages)
    }

    def sender():
        nonlocal config, bit, inject_after, branch
        port = yield from target.driver.open_port(1)

        def make_cb(index):
            def cb(outcome):
                if outcome.ok:
                    state["send_done"] += 1
                else:
                    state["send_err"] += 1
            return cb

        for i in range(config.messages):
            if branch is not None:
                # Fork every run branching at this message index; the
                # gate is a synchronous call — no yield, no event, no
                # draw — so the wheel never sees it.
                adopted = branch.gate(i)
                if adopted is not None:
                    # Forked child: become this run.  The injection
                    # check below fires with the adopted values at this
                    # very index, exactly like the cold run.
                    config = adopted.config
                    bit = config.bit_offset
                    inject_after = config.inject_after_messages
                    branch = None
            if i == inject_after and state["injected_at"] is None:
                # Flip the bit mid-stream, right before this send.
                target.nic.sram.flip_bit(start * 8 + bit)
                state["injected_at"] = sim.now
            try:
                yield from port.send(expected[i], 1, 2, callback=make_cb(i),
                                     context=i)
            except Exception:
                state["sender_alive"] = False
                return
            # Poll so callbacks/FAULT_DETECTED are serviced; pace the
            # stream a little so the flip lands between packets too.
            yield from port.receive(timeout=5.0)
        # Drain events until everything resolves or the horizon hits.
        while (state["send_done"] + state["send_err"] < config.messages
               and sim.now < config.observe_horizon_us):
            yield from port.receive(timeout=10_000.0)

    def receiver():
        port = yield from peer.driver.open_port(2)
        for _ in range(min(config.messages, 8)):
            yield from port.provide_receive_buffer(config.message_bytes)
        provided = min(config.messages, 8)
        received = 0
        while received < config.messages \
                and sim.now < config.observe_horizon_us:
            event = yield from port.receive_message(timeout=500_000.0)
            if event is None:
                continue
            state["recv"][received] = event.payload
            received += 1
            if provided < config.messages:
                yield from port.provide_receive_buffer(config.message_bytes)
                provided += 1

    target.host.spawn(sender(), "inject-sender")
    peer.host.spawn(receiver(), "inject-receiver")

    def _done() -> bool:
        if target.host.crashed or peer.host.crashed:
            return False  # let the horizon expire; nothing more happens
        resolved = (state["send_done"] + state["send_err"]
                    >= config.messages)
        all_received = len(state["recv"]) >= config.messages
        return resolved and all_received

    # Advance in 1 ms slices through run()'s inlined event loop and poll
    # _done() once per slice instead of once per event — every outcome
    # field is frozen by the time _done() turns true (all sends resolved,
    # all receives recorded, no further activity), so observing up to a
    # slice past that instant classifies identically.
    def drive(limit: float) -> None:
        while not _done():
            next_at = sim.peek()
            if next_at > limit:
                break
            sim.run(until=min(next_at + 1_000.0, limit))

    def finish():
        drive(config.observe_horizon_us)
        # Small grace period so trailing events (late ACKs) settle.
        sim.run(until=min(sim.now + 10_000.0, config.observe_horizon_us))

        # -- observe and classify ----------------------------------------------

        delivered_ok, corrupted = classify_deliveries(state["recv"],
                                                      expected)

        outcome = InjectionOutcome(
            run_id=config.run_id,
            bit_offset=bit if bit is not None else -1,
            injected_at=state["injected_at"] or -1.0,
            faulting_source_line=(
                firmware.source_line(start + bit // 8 - (bit // 8) % 4)
                if bit is not None else None),
            local_hung=mcp.hung or (mcp.cpu is not None and mcp.cpu.hung),
            hang_reason=mcp.dead_reason or (mcp.cpu.hang_reason
                                            if mcp.cpu else None),
            remote_hung=peer.mcp.hung,
            mcp_restarts=mcp.stats["mcp_restarts"],
            host_crashed=target.host.crashed or peer.host.crashed,
            messages_expected=config.messages,
            messages_delivered_ok=delivered_ok,
            messages_corrupted=corrupted,
            sends_errored=state["send_err"],
            workload_completed=(state["send_done"] == config.messages
                                and len(state["recv"]) == config.messages),
        )
        if config.flavor == "ftgm":
            driver = target.driver
            outcome.watchdog_fired = driver.fatal_interrupts > 0
            outcome.recovery_attempted = bool(driver.ftd.recoveries)
            # Full recovery: the stream finished exactly-once after
            # reload.
            outcome.recovered_fully = (
                outcome.recovery_attempted
                and outcome.workload_completed
                and corrupted == 0
                and delivered_ok == config.messages)
        harvest_cluster(cluster, fault_at=state["injected_at"])
        return outcome.finalize()

    if pause_at is not None:
        limit = min(pause_at, config.observe_horizon_us)
        drive(limit)
        sim.run(until=limit)
        from ..ckpt.pause import PausedRun
        return PausedRun(cluster, config, None, finish)
    return finish()
