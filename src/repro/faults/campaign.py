"""Fault-injection campaigns: Table 1 and the §5.2 effectiveness study.

Every injection run builds its own :class:`~repro.sim.Simulator` from its
own seed and shares nothing with its siblings, so campaigns are
embarrassingly parallel: pass ``workers=N`` to fan runs out over a
``multiprocessing`` pool.  ``workers=1`` (the default) keeps the historic
serial path.  Either way the outcome list is ordered by ``run_id`` and
every run's result depends only on its config — a parallel campaign is
byte-identical to a serial one.

The fan-out itself lives in :func:`repro.exp.runner.run_many`, the
experiment engine's shared pool runner; these campaign entry points are
also registered as the ``table1`` and ``effectiveness`` experiments
(``repro run table1``), which adds journaling/resume and result
manifests on top of the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exp.runner import derive_run_seed, run_many
from .injector import InjectionConfig, run_injection
from .outcomes import CATEGORY_ORDER, InjectionOutcome, tabulate
from .reference import IYER_TABLE1, PAPER_TABLE1

__all__ = ["CampaignResult", "run_campaign", "EffectivenessResult",
           "run_effectiveness_study", "aggregate_effectiveness"]


@dataclass
class CampaignResult:
    """Aggregate of one Table 1 style campaign."""

    runs: int
    outcomes: List[InjectionOutcome]
    counts: Dict[str, int] = field(init=False)

    def __post_init__(self):
        self.counts = tabulate(self.outcomes)

    def percentage(self, category: str) -> float:
        return 100.0 * self.counts[category] / self.runs if self.runs else 0.0

    def rows(self) -> List[tuple]:
        """(category, ours %, paper %, Iyer %) rows in Table 1 order."""
        return [(category, self.percentage(category),
                 PAPER_TABLE1[category], IYER_TABLE1[category])
                for category in CATEGORY_ORDER]

    def render(self) -> str:
        lines = [
            "Table 1. Results of fault injection on a Myrinet system "
            "(%d runs)" % self.runs,
            "%-24s %10s %10s %12s" % ("Failure Category", "measured",
                                      "paper", "Iyer et al."),
        ]
        for category, measured, paper, iyer in self.rows():
            lines.append("%-24s %9.1f%% %9.1f%% %11.1f%%"
                         % (category, measured, paper, iyer))
        return "\n".join(lines)


def run_campaign(runs: int = 200, seed: int = 2003, flavor: str = "gm",
                 messages: int = 16,
                 progress: Optional[Callable[[int], None]] = None,
                 workers: int = 1, branch: bool = False) -> CampaignResult:
    """Flip one random ``send_chunk`` bit per run; classify each run.

    ``workers > 1`` fans the runs out over a process pool; the result is
    identical to the serial campaign (same outcomes, same order).
    ``branch=True`` instead boots one shared prefix per branch group and
    forks each run off at its injection gate (byte-identical again;
    falls back to the pool when fork-based branching is unavailable).
    """
    configs = [InjectionConfig(run_id=run_id,
                               seed=derive_run_seed(seed, run_id),
                               flavor=flavor, messages=messages)
               for run_id in range(runs)]
    if branch:
        from ..exp.registry import get_experiment
        from ..exp.runner import branch_supported, run_branched

        experiment = get_experiment("table1")
        if branch_supported(experiment):
            return CampaignResult(runs, run_branched(
                configs, experiment, workers=workers, progress=progress))
    return CampaignResult(runs, run_many(configs, run_injection,
                                         workers=workers,
                                         progress=progress))


@dataclass
class EffectivenessResult:
    """§5.2: detection and recovery coverage over the hang population."""

    runs: int
    hangs: int
    detected: int
    recovered: int

    @property
    def detection_rate(self) -> float:
        return self.detected / self.hangs if self.hangs else 1.0

    @property
    def recovery_rate(self) -> float:
        return self.recovered / self.hangs if self.hangs else 1.0

    def render(self) -> str:
        return ("Recovery effectiveness over %d injections: "
                "%d hangs, %d detected (%.1f%%), %d fully recovered "
                "(%.1f%%); paper: 286 hangs, all detected, 281 recovered "
                "(98.3%%)"
                % (self.runs, self.hangs, self.detected,
                   100 * self.detection_rate, self.recovered,
                   100 * self.recovery_rate))


def run_effectiveness_study(runs: int = 120, seed: int = 42,
                            messages: int = 16,
                            progress: Optional[Callable[[int], None]] = None,
                            workers: int = 1) -> EffectivenessResult:
    """Repeat the injection campaign under FTGM (§5.2).

    Counts, over the runs whose fault hung the interface, how many hangs
    the watchdog detected and how many recovered to exactly-once
    completion of the workload.  ``workers > 1`` parallelizes the runs;
    the aggregate is identical to the serial study.
    """
    configs = [InjectionConfig(run_id=run_id,
                               seed=derive_run_seed(seed, run_id),
                               flavor="ftgm", messages=messages)
               for run_id in range(runs)]
    return aggregate_effectiveness(runs, run_many(configs, run_injection,
                                                  workers=workers,
                                                  progress=progress))


def aggregate_effectiveness(runs: int,
                            outcomes: List[InjectionOutcome]
                            ) -> EffectivenessResult:
    """Fold a §5.2 campaign's outcomes into the coverage counts."""
    hangs = detected = recovered = 0
    for outcome in outcomes:
        if outcome.local_hung:
            hangs += 1
            if outcome.watchdog_fired:
                detected += 1
            if outcome.recovered_fully:
                recovered += 1
    return EffectivenessResult(runs, hangs, detected, recovered)
