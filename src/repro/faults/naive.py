"""Naive recovery: what you can do about a hung NIC *without* FTGM.

Section 3 of the paper: "The driver could be reloaded and the
application restarted from a safe checkpoint (if there is one).  But ...
this does not always ensure correct recovery."  This module implements
that strawman faithfully — reset the card, reload a fresh MCP, restore
routes from the driver's copy, re-bind the ports — and nothing else: no
sequence-number restore, no token re-posting, no commit-point fix.  The
Figure 4 (duplicate) and Figure 5 (lost message) experiments run this
baseline against FTGM.
"""

from __future__ import annotations

from typing import Generator

from ..gm import constants as C
from ..gm.driver import GmDriver
from ..sim import Tracer

__all__ = ["naive_reload"]


def naive_reload(driver: GmDriver) -> Generator:
    """Process: reload the MCP after a hang, plain-GM style.

    Takes the same card-handling time as the FTD path (the mechanics are
    identical); what differs is everything that *isn't* restored.
    Applications must then re-issue whatever work they know to be
    incomplete — with fresh (wrong) sequence numbers, since those lived
    only in the dead LANai.
    """
    sim = driver.sim
    tracer: Tracer = driver.tracer
    tracer.emit(sim.now, "naive%d" % driver.nic.node_id, "naive_reload_start")
    if driver.mcp is not None:
        driver.mcp.stop("naive-reload")
    driver.nic.reset()
    driver.nic.sram.clear()
    yield sim.timeout(C.FTD_RESET_CLEAR_US)
    yield sim.timeout(C.MCP_RELOAD_US)
    driver.load_mcp()
    driver.mcp.install_routes_from_host(driver.host_routes)
    yield sim.timeout(C.FTD_TABLE_RESTORE_US)
    # Re-bind existing ports to the fresh MCP so applications can keep
    # using their handles (the LANai-side port state starts empty).
    for port_id, port in sorted(driver.ports.items()):
        port.mcp = driver.mcp
        driver.mcp.event_sinks[port_id] = port._event_sink
        done = sim.event()
        driver.mcp.host_request(("open", port_id, done))
        yield done
    tracer.emit(sim.now, "naive%d" % driver.nic.node_id, "naive_reload_done")
