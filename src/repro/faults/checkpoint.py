"""Classical interface checkpointing — the strawman the paper rejects.

Section 4: "A crude way to achieve this is by periodically
'checkpointing' both the application and the network interface state and
retracting back to the last checkpoint in the case of a network failure.
Such a scheme however involves a great deal of overhead and in many ways
can work against the very basis of using a high-speed network."

This module implements that scheme faithfully enough to measure it: a
host daemon periodically pauses the LANai (through the L_timer request
path GM actually provides for pausing), drains the moment, copies the
interface state over the PCI bus into host memory, and resumes.  The
:mod:`benchmarks.test_ablation_checkpoint` ablation compares its cost
against FTGM's continuous sub-microsecond copies and reproduces the
paper's motivating argument quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List

from ..sim import Simulator

__all__ = ["CheckpointDaemon", "DEFAULT_STATE_BYTES"]

# What a whole-interface checkpoint must copy: the MCP's working state —
# connection/sequence tables, token queues, packet buffers.  GM keeps
# several hundred KB of live state in SRAM; we use a conservative 256 KB
# (checkpointing the full 2 MB SRAM would be even worse for the scheme).
DEFAULT_STATE_BYTES = 256 * 1024


@dataclass
class CheckpointStats:
    checkpoints: int = 0
    pause_time_total: float = 0.0
    pause_times: List[float] = field(default_factory=list)

    @property
    def mean_pause_us(self) -> float:
        return (self.pause_time_total / self.checkpoints
                if self.checkpoints else 0.0)


class CheckpointDaemon:
    """Pause-copy-resume the NIC every ``interval_us``."""

    def __init__(self, driver, interval_us: float = 100_000.0,
                 state_bytes: int = DEFAULT_STATE_BYTES):
        self.sim: Simulator = driver.sim
        self.driver = driver
        self.interval_us = interval_us
        self.state_bytes = state_bytes
        self.stats = CheckpointStats()
        self.running = False
        self._proc = None

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._proc = self.driver.host.spawn(
            self._run(), "ckpt%d" % self.driver.nic.node_id)

    def stop(self) -> None:
        self.running = False

    def checkpoint_once(self) -> Generator:
        """One pause-copy-resume cycle; returns the pause duration."""
        mcp = self.driver.mcp
        if mcp is None or not mcp.running:
            return 0.0
        started = self.sim.now
        done = self.sim.event()
        mcp.host_request(("pause", done))
        yield done
        # Copy the interface state to host memory over the PCI bus —
        # this is the cost FTGM's "just the right amount of state"
        # design avoids paying in bulk.
        yield from self.driver.nic.pci.transfer(self.state_bytes)
        resume_done = self.sim.event()
        mcp.host_request(("resume", resume_done))
        yield resume_done
        pause = self.sim.now - started
        self.stats.checkpoints += 1
        self.stats.pause_time_total += pause
        self.stats.pause_times.append(pause)
        return pause

    def _run(self) -> Generator:
        while self.running:
            yield self.sim.timeout(self.interval_us)
            if not self.running:
                return
            yield from self.checkpoint_once()

    def overhead_fraction(self, elapsed_us: float) -> float:
        """Fraction of wall time the interface spent frozen."""
        return self.stats.pause_time_total / elapsed_us \
            if elapsed_us > 0 else 0.0
