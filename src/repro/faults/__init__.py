"""Fault injection: bit flips in the MCP code segment, campaigns,
outcome classification, and the naive-recovery baseline."""

from .campaign import (
    CampaignResult,
    EffectivenessResult,
    aggregate_effectiveness,
    run_campaign,
    run_effectiveness_study,
)
from .checkpoint import DEFAULT_STATE_BYTES, CheckpointDaemon
from .injector import InjectionConfig, run_injection
from .naive import naive_reload
from .outcomes import CATEGORY_ORDER, Category, InjectionOutcome, classify
from .reference import (
    IYER_TABLE1,
    PAPER_HANGS,
    PAPER_TABLE1,
    PAPER_UNRECOVERED_HANGS,
)

__all__ = [
    "CATEGORY_ORDER",
    "CampaignResult",
    "Category",
    "CheckpointDaemon",
    "DEFAULT_STATE_BYTES",
    "EffectivenessResult",
    "IYER_TABLE1",
    "InjectionConfig",
    "InjectionOutcome",
    "PAPER_HANGS",
    "PAPER_TABLE1",
    "PAPER_UNRECOVERED_HANGS",
    "aggregate_effectiveness",
    "classify",
    "naive_reload",
    "run_campaign",
    "run_effectiveness_study",
    "run_injection",
]
