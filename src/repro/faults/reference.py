"""Published fault-injection numbers for comparison (Table 1).

Two columns from the paper: the authors' own 1000-run campaign on
LANai9/GM-1.5.1, and the earlier study by Stott, Hsueh, Ries and Iyer
(FTCS'97) on older Myrinet hardware.
"""

from __future__ import annotations

from .outcomes import Category

__all__ = ["PAPER_TABLE1", "IYER_TABLE1", "PAPER_RUNS",
           "PAPER_HANGS", "PAPER_UNRECOVERED_HANGS"]

PAPER_RUNS = 1000

# "% of Injections" — our work column.
PAPER_TABLE1 = {
    Category.LOCAL_HANG: 28.6,
    Category.CORRUPTED: 18.3,
    Category.REMOTE_HANG: 0.0,
    Category.MCP_RESTART: 0.0,
    Category.HOST_CRASH: 0.6,
    Category.OTHER: 1.2,
    Category.NO_IMPACT: 51.3,
}

# "% of Injections" — Iyer et al. (FTCS'97) column.
IYER_TABLE1 = {
    Category.LOCAL_HANG: 23.4,
    Category.CORRUPTED: 12.7,
    Category.REMOTE_HANG: 1.2,
    Category.MCP_RESTART: 3.1,
    Category.HOST_CRASH: 0.4,
    Category.OTHER: 1.1,
    Category.NO_IMPACT: 58.1,
}

# §5.2: "there was only five cases out of the 286 hangs that FTGM was
# not able to properly recover from."
PAPER_HANGS = 286
PAPER_UNRECOVERED_HANGS = 5
