"""Figure-series generation: CSV emission and ASCII plots.

Every figure benchmark produces a :class:`Series` per curve (GM, FTGM);
``render_ascii`` draws them side by side on a log-x grid the way the
paper's Figures 7 and 8 are read — close-tracking curves with a small,
consistent gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["Series", "render_ascii", "series_from_points", "to_csv"]


@dataclass
class Series:
    """One labelled curve of (x, y) points."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def xs(self) -> List[float]:
        return [p[0] for p in self.points]

    def ys(self) -> List[float]:
        return [p[1] for p in self.points]

    def y_at(self, x: float) -> Optional[float]:
        for px, py in self.points:
            if px == x:
                return py
        return None


def series_from_points(points: Sequence[dict]) -> List[Series]:
    """Fold the experiment engine's sweep outcomes into curves.

    Each point is a ``{"series": label, "x": ..., "y": ...}`` dict (the
    unified outcome shape the fig7/fig8 experiments emit); curves keep
    first-appearance order so renders are deterministic.
    """
    curves = {}
    order = []
    for point in points:
        label = point["series"]
        if label not in curves:
            curves[label] = Series(label)
            order.append(label)
        curves[label].add(point["x"], point["y"])
    return [curves[label] for label in order]


def to_csv(series_list: Sequence[Series], x_name: str = "x") -> str:
    """Merge curves on shared x into CSV text."""
    xs = sorted({x for series in series_list for x in series.xs()})
    header = [x_name] + [series.label for series in series_list]
    lines = [",".join(header)]
    for x in xs:
        row = [repr(x)]
        for series in series_list:
            y = series.y_at(x)
            row.append("" if y is None else "%.6g" % y)
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def render_ascii(series_list: Sequence[Series], title: str,
                 x_label: str, y_label: str,
                 width: int = 68, height: int = 18,
                 log_x: bool = True) -> str:
    """A terminal plot good enough to eyeball curve shapes."""
    markers = "ox+*#@"
    points_all = [(x, y) for series in series_list for x, y in series.points]
    if not points_all:
        return "%s\n(no data)" % title
    xs = [p[0] for p in points_all]
    ys = [p[1] for p in points_all]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    y_lo = min(y_lo, 0.0) if y_lo > 0 and y_lo < 0.2 * y_hi else y_lo

    def x_pos(x: float) -> int:
        if log_x and x_lo > 0:
            frac = (math.log(x) - math.log(x_lo)) \
                / max(math.log(x_hi) - math.log(x_lo), 1e-12)
        else:
            frac = (x - x_lo) / max(x_hi - x_lo, 1e-12)
        return min(int(frac * (width - 1)), width - 1)

    def y_pos(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(int(frac * (height - 1)), height - 1)

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(series_list):
        mark = markers[index % len(markers)]
        for x, y in series.points:
            row = height - 1 - y_pos(y)
            grid[row][x_pos(x)] = mark

    lines = [title]
    for i, row in enumerate(grid):
        y_value = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append("%10.1f |%s" % (y_value, "".join(row)))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + "%-.10g%s%.10g   (%s, %s)" % (
        x_lo, " " * max(width - 24, 1), x_hi,
        "log-x" if log_x else "lin-x", x_label))
    legend = "   ".join("%s = %s" % (markers[i % len(markers)], s.label)
                        for i, s in enumerate(series_list))
    lines.append(" " * 12 + legend + "   [y: %s]" % y_label)
    return "\n".join(lines)
