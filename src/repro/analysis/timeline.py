"""The recovery timeline (Figure 9)."""

from __future__ import annotations

from typing import List, Tuple

from ..ftgm.ftd import RecoveryRecord

__all__ = ["recovery_timeline", "render_timeline"]


def recovery_timeline(fault_at: float, record: RecoveryRecord,
                      port_done_at: float) -> List[Tuple[str, float, float]]:
    """(segment, start, end) triples from fault occurrence to full
    recovery — the paper's Figure 9 shape: detection, FTD, per-process."""
    segments = [("fault -> FATAL interrupt (detection)",
                 fault_at, record.interrupt_at)]
    segments.extend(record.segments())
    segments.append(("per-process FAULT_DETECTED handling",
                     record.events_posted_at, port_done_at))
    return segments


def render_timeline(segments: List[Tuple[str, float, float]],
                    width: int = 60) -> str:
    """Draw proportional bars for each timeline segment."""
    t0 = segments[0][1]
    t_end = max(end for _, _, end in segments)
    span = max(t_end - t0, 1e-9)
    lines = ["Figure 9. The timeline of the fault recovery process",
             "t=0 is the fault; total %.0f us (%.3f s)"
             % (span, span / 1e6)]
    for name, start, end in segments:
        left = int((start - t0) / span * width)
        bar = max(int((end - start) / span * width), 1)
        lines.append("%-38s |%s%s| %10.0f us"
                     % (name, " " * left, "#" * bar, end - start))
    return "\n".join(lines)
