"""Result aggregation: paper tables, figure series, ASCII rendering."""

from .figures import Series, render_ascii, series_from_points, to_csv
from .tables import PAPER_TABLE2, PAPER_TABLE3, Table2, Table3
from .timeline import recovery_timeline, render_timeline

__all__ = [
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "Series",
    "Table2",
    "Table3",
    "recovery_timeline",
    "render_ascii",
    "render_timeline",
    "series_from_points",
    "to_csv",
]
