"""Renderers for the paper's tables (2 and 3) with paper-vs-measured."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..ftgm.ftd import RecoveryRecord
from ..workloads.allsize import BandwidthResult
from ..workloads.pingpong import PingPongResult
from ..workloads.utilization import UtilizationResult

__all__ = ["Table2", "Table3", "PAPER_TABLE2", "PAPER_TABLE3"]

# Table 2 of the paper: metric -> (GM, FTGM).
PAPER_TABLE2 = {
    "Bandwidth (MB/s)": (92.4, 92.0),
    "Latency (us)": (11.5, 13.0),
    "Host util. send (us)": (0.30, 0.55),
    "Host util. recv (us)": (0.75, 1.15),
    "LANai util. (us)": (6.0, 6.8),
}

# Table 3 of the paper: component -> value (us).
PAPER_TABLE3 = {
    "Fault Detection Time": 800.0,
    "FTD Recovery Time": 765_000.0,
    "Per-process Recovery Time": 900_000.0,
}


@dataclass
class Table2:
    """Measured GM-vs-FTGM metrics beside the paper's Table 2."""

    gm_bandwidth: BandwidthResult
    ftgm_bandwidth: BandwidthResult
    gm_latency: PingPongResult
    ftgm_latency: PingPongResult
    gm_util: UtilizationResult
    ftgm_util: UtilizationResult

    @classmethod
    def from_outcomes(cls, outcomes: List) -> "Table2":
        """Build from the ``table2`` experiment's ordered outcome list:
        ``[gm_bw, ftgm_bw, gm_lat, ftgm_lat, gm_util, ftgm_util]`` — the
        engine's unified result shape rather than six keyword args."""
        gm_bw, ftgm_bw, gm_lat, ftgm_lat, gm_util, ftgm_util = outcomes
        return cls(gm_bandwidth=gm_bw, ftgm_bandwidth=ftgm_bw,
                   gm_latency=gm_lat, ftgm_latency=ftgm_lat,
                   gm_util=gm_util, ftgm_util=ftgm_util)

    def rows(self) -> List[Tuple[str, float, float, float, float]]:
        """(metric, GM measured, FTGM measured, GM paper, FTGM paper)."""
        measured = {
            "Bandwidth (MB/s)": (self.gm_bandwidth.bandwidth_mb_s,
                                 self.ftgm_bandwidth.bandwidth_mb_s),
            "Latency (us)": (self.gm_latency.half_rtt_us,
                             self.ftgm_latency.half_rtt_us),
            "Host util. send (us)": (self.gm_util.host_send_us,
                                     self.ftgm_util.host_send_us),
            "Host util. recv (us)": (self.gm_util.host_recv_us,
                                     self.ftgm_util.host_recv_us),
            "LANai util. (us)": (self.gm_util.lanai_total_us,
                                 self.ftgm_util.lanai_total_us),
        }
        return [(metric, m[0], m[1], p[0], p[1])
                for (metric, m), (_, p)
                in zip(measured.items(), PAPER_TABLE2.items())]

    def render(self) -> str:
        lines = [
            "Table 2. Comparison of various performance metrics between "
            "GM and FTGM",
            "%-22s | %9s %9s | %9s %9s" % ("Performance Metric",
                                           "GM", "FTGM",
                                           "GM(paper)", "FTGM(paper)"),
        ]
        for metric, gm_m, ftgm_m, gm_p, ftgm_p in self.rows():
            lines.append("%-22s | %9.2f %9.2f | %9.2f %9.2f"
                         % (metric, gm_m, ftgm_m, gm_p, ftgm_p))
        return "\n".join(lines)


@dataclass
class Table3:
    """Measured recovery-time components beside the paper's Table 3."""

    detection_us: float
    record: RecoveryRecord
    per_port_us: float

    @classmethod
    def from_experiments(cls, experiments: List) -> "Table3":
        """Build from the ``table3`` experiment's outcome list (one
        :class:`~repro.workloads.recovery.RecoveryExperiment` per hang
        offset): detection averages over the offsets, the component
        breakdown comes from the first run."""
        detection = sum(e.detection_us for e in experiments) \
            / len(experiments)
        first = experiments[0]
        return cls(detection_us=detection, record=first.record,
                   per_port_us=first.per_port_us)

    def rows(self) -> List[Tuple[str, float, float]]:
        return [
            ("Fault Detection Time", self.detection_us,
             PAPER_TABLE3["Fault Detection Time"]),
            ("FTD Recovery Time", self.record.ftd_time,
             PAPER_TABLE3["FTD Recovery Time"]),
            ("Per-process Recovery Time", self.per_port_us,
             PAPER_TABLE3["Per-process Recovery Time"]),
        ]

    @property
    def total_us(self) -> float:
        return sum(measured for _, measured, _ in self.rows())

    def render(self) -> str:
        lines = [
            "Table 3. Components of the fault recovery time",
            "%-28s %14s %14s" % ("Component", "measured(us)", "paper(us)"),
        ]
        for name, measured, paper in self.rows():
            lines.append("%-28s %14.0f %14.0f" % (name, measured, paper))
        lines.append("%-28s %14.0f %14s"
                     % ("Total", self.total_us, "< 2 sec"))
        return "\n".join(lines)
