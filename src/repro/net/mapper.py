"""The GM mapper: network self-configuration.

GM configures a Myrinet by running a *mapper* program on one node: it
probes the fabric with scout packets, builds a map, computes a source
route between every pair of interfaces, and distributes per-interface
route tables.  The routing table it installs in each LANai is part of
the state the paper's FTD must restore after a NIC failure.

Protocol (one mapping round):

1. the mapper floods ``MAPPER_SCOUT`` packets (TTL-bounded; switches
   replicate them, stamping ingress and egress ports);
2. every interface that sees a scout answers ``MAPPER_REPLY`` carrying
   the scout's accumulated forward path (egress stamps) — the reply is
   source-routed back over the reversed ingress stamps;
3. the mapper derives a route for every ordered pair from the
   mapper-relative forward/reverse paths (:func:`derive_route`);
4. it unicasts each interface its table in ``MAPPER_CONFIG`` (retrying
   on timeout) and waits for ``MAPPER_DONE``.

The mapper can be re-run at any time (e.g. after links appear or
disappear); interfaces simply install the newest table.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..hw.nic import RECV_RING_SLOTS
from ..sim import Simulator, Store, Tracer
from .packet import Packet, PacketType

__all__ = ["derive_route", "NodeRoutes", "MapperAgent", "Mapper",
           "HierarchicalMapper", "make_mapper", "MappingFailed"]


class MappingFailed(RuntimeError):
    """A mapping round could not complete (unreachable interfaces)."""


def derive_route(forward_x: List[int], reverse_x: List[int],
                 forward_y: List[int]) -> List[int]:
    """Source route from interface X to interface Y.

    ``forward_x``/``forward_y`` are the mapper's routes to X and Y
    (egress-port bytes); ``reverse_x`` is the route from X back to the
    mapper (reversed ingress stamps).  The route climbs from X to the
    switch where the two mapper paths diverge, then follows the mapper's
    path down to Y.
    """
    if forward_x == forward_y:
        raise ValueError("X and Y are the same interface")
    if len(reverse_x) != len(forward_x):
        raise ValueError("forward/reverse length mismatch for X")
    common = 0
    for a, b in zip(forward_x, forward_y):
        if a != b:
            break
        common += 1
    k = len(forward_x)
    # Distinct interfaces cannot have one path be a prefix of the other
    # (paths terminate at NICs), so common < min(len(fx), len(fy)).
    if common >= k or common >= len(forward_y):
        raise ValueError("inconsistent mapper paths (prefix overlap)")
    return list(reverse_x[:k - common - 1]) + list(forward_y[common:])


@dataclass
class NodeRoutes:
    """What the mapper learned about one interface."""

    node_id: int
    forward: List[int]          # mapper -> node (egress stamps)
    reverse: List[int]          # node -> mapper (reversed ingress stamps)
    hops: int = field(init=False)

    def __post_init__(self):
        self.hops = len(self.forward)


class MapperAgent:
    """Per-node mapper protocol endpoint, driven by that node's MCP.

    ``send_raw(packet)`` must inject a packet onto the node's link
    (the MCP provides this).  ``install_routes`` is called with the
    node's new ``{dest_node: route_bytes}`` table when a CONFIG arrives.
    """

    def __init__(self, sim: Simulator, node_id: int,
                 send_raw: Callable[[Packet], None],
                 install_routes: Callable[[Dict[int, List[int]]], None],
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.node_id = node_id
        self.send_raw = send_raw
        self.install_routes = install_routes
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        # Inboxes read by a co-located Mapper, when one runs on this node.
        self.replies: Store = Store(sim)
        self.dones: Store = Store(sim)
        self.portinfos: Store = Store(sim)   # switch port-census answers
        self.scouts_seen = 0
        self.configs_installed = 0

    def handle(self, packet: Packet) -> bool:
        """Dispatch a MAPPER_* packet; returns False for other types."""
        if packet.ptype == PacketType.MAPPER_SCOUT:
            self.scouts_seen += 1
            reply = Packet(
                ptype=PacketType.MAPPER_REPLY,
                src_node=self.node_id,
                dest_node=packet.src_node,
                route=list(reversed(packet.ingress_ports)),
                control={
                    "node_id": self.node_id,
                    "forward": list(packet.egress_ports),
                    "reverse": list(reversed(packet.ingress_ports)),
                },
            )
            self.send_raw(reply)
            return True
        if packet.ptype == PacketType.MAPPER_REPLY:
            self.replies.put(packet.control)
            return True
        if packet.ptype == PacketType.MAPPER_CONFIG:
            table = {int(dest): list(route)
                     for dest, route in packet.control["routes"].items()}
            self.install_routes(table)
            self.configs_installed += 1
            done = Packet(
                ptype=PacketType.MAPPER_DONE,
                src_node=self.node_id,
                dest_node=packet.src_node,
                route=list(reversed(packet.ingress_ports)),
                control={"node_id": self.node_id},
            )
            self.send_raw(done)
            return True
        if packet.ptype == PacketType.MAPPER_DONE:
            self.dones.put(packet.control)
            return True
        if packet.ptype == PacketType.MAPPER_PORTINFO:
            self.portinfos.put(packet.control)
            return True
        return False


class Mapper:
    """The mapping program; runs on one node's agent."""

    SCOUT_TTL = 8
    SETTLE_US = 300.0        # silence window ending scout collection
    CONFIG_TIMEOUT_US = 500.0
    CONFIG_RETRIES = 3

    def __init__(self, agent: MapperAgent,
                 expected_nodes: Optional[int] = None,
                 strict: bool = True,
                 abort_on_empty: bool = False):
        self.agent = agent
        self.sim = agent.sim
        self.expected_nodes = expected_nodes
        # strict=False: a best-effort re-mapping round (the reroute
        # recovery path) — interfaces that never acknowledge their
        # CONFIG are recorded in ``unreached`` and skipped instead of
        # failing the whole round.
        self.strict = strict
        # abort_on_empty: fail instead of installing an *empty* table
        # when the scout flood finds nobody (e.g. our own cable is the
        # fault) — destroying a live table would only make things worse.
        self.abort_on_empty = abort_on_empty
        self.discovered: Dict[int, NodeRoutes] = {}
        self.tables: Dict[int, Dict[int, List[int]]] = {}
        self.unreached: List[int] = []
        self.config_retries = 0       # CONFIG resends after a lost round-trip
        self.phase_times: Dict[str, float] = {}

    # -- discovery ------------------------------------------------------------

    def run(self):
        """Process: one full mapping round.  Returns the node-id list."""
        yield from self._discover()
        self.phase_times["discovered"] = self.sim.now
        if self.abort_on_empty and not self.discovered:
            raise MappingFailed("scout flood found no interfaces")
        self._compute_tables()
        yield from self._distribute()
        self.phase_times["distributed"] = self.sim.now
        # Install the mapper's own table locally, no wire round-trip.
        self.agent.install_routes(self.tables[self.agent.node_id])
        reached = [x for x in sorted(self.discovered)
                   if x not in self.unreached]
        return reached + [self.agent.node_id]

    def _discover(self):
        scout = Packet(
            ptype=PacketType.MAPPER_SCOUT,
            src_node=self.agent.node_id,
            dest_node=-1,
            flood=True,
            ttl=self.SCOUT_TTL,
        )
        self.agent.send_raw(scout)
        deadline = self.sim.now + self.SETTLE_US
        while True:
            get = self.agent.replies.get()
            timeout = self.sim.timeout(max(deadline - self.sim.now, 0.0))
            fired = yield self.sim.any_of([get, timeout])
            if get in fired:
                info = fired[get]
                node_id = info["node_id"]
                if node_id == self.agent.node_id:
                    # On cyclic fabrics (ring) the flood loops back and
                    # we hear our own scout; a route to ourselves is not
                    # a discovery.
                    continue
                routes = NodeRoutes(node_id, info["forward"], info["reverse"])
                known = self.discovered.get(node_id)
                if known is None or routes.hops < known.hops:
                    self.discovered[node_id] = routes
                deadline = self.sim.now + self.SETTLE_US
                if (self.expected_nodes is not None
                        and len(self.discovered) >= self.expected_nodes - 1):
                    return
            else:
                self.agent.replies.cancel(get)
                if (self.expected_nodes is not None
                        and len(self.discovered) < self.expected_nodes - 1):
                    raise MappingFailed(
                        "found %d of %d expected interfaces"
                        % (len(self.discovered) + 1, self.expected_nodes))
                return

    # -- route computation --------------------------------------------------------

    def _compute_tables(self) -> None:
        me = self.agent.node_id
        nodes = self.discovered
        self.tables = {me: {x: list(r.forward) for x, r in nodes.items()}}
        for x, rx in nodes.items():
            table: Dict[int, List[int]] = {me: list(rx.reverse)}
            for y, ry in nodes.items():
                if y == x:
                    continue
                table[y] = derive_route(rx.forward, rx.reverse, ry.forward)
            self.tables[x] = table

    # -- distribution ---------------------------------------------------------------

    def _distribute(self):
        for x, rx in self.discovered.items():
            delivered = False
            for _attempt in range(self.CONFIG_RETRIES):
                config = Packet(
                    ptype=PacketType.MAPPER_CONFIG,
                    src_node=self.agent.node_id,
                    dest_node=x,
                    route=list(rx.forward),
                    control={"routes": self.tables[x]},
                )
                if _attempt > 0:
                    self.config_retries += 1
                self.agent.send_raw(config)
                get = self.agent.dones.get()
                timeout = self.sim.timeout(self.CONFIG_TIMEOUT_US)
                fired = yield self.sim.any_of([get, timeout])
                if get in fired:
                    if fired[get]["node_id"] == x:
                        delivered = True
                        break
                else:
                    self.agent.dones.cancel(get)
            if not delivered:
                if self.strict:
                    raise MappingFailed(
                        "node %d never acknowledged its routes" % x)
                self.unreached.append(x)


def _pair_hash(x: int, y: int) -> int:
    """Stable 32-bit mix of an ordered node pair (ECMP tie-breaking).

    Python's ``hash`` would do, but being explicit keeps route choice
    identical across interpreter versions and PYTHONHASHSEED settings.
    """
    h = (x * 0x9E3779B1 + y * 0x85EBCA77 + 0xC2B2AE35) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0x27D4EB2F) & 0xFFFFFFFF
    h ^= h >> 16
    return h


class HierarchicalMapper(Mapper):
    """Two-phase mapper for multi-tier (Clos / fat-tree) fabrics.

    The flat mapper's TTL-bounded flood visits every path between every
    switch pair — O(paths) scout copies, which on a fat-tree explodes
    combinatorially.  This variant maps hierarchically instead:

    1. **Switch survey** — breadth-first over the switch graph with
       unicast ``MAPPER_QUERY`` packets; each switch answers one
       ``MAPPER_PORTINFO`` census naming its neighbors.  O(switches)
       round-trips.  A query lost to a dead port or cut cable times out
       and the switch is retried over the next equal-cost path the BFS
       frontier discovers.
    2. **Per-leaf discovery** — one *directed* scout per host-bearing
       switch: the scout source-routes to that leaf and floods with
       TTL=1 only there, so each interface still proves liveness with a
       real scout/reply round-trip (a host that answers a census but
       whose NIC is wedged must not enter the tables).

    Route computation is equal-cost-aware: each ordered pair walks a
    shortest path over the surveyed graph, tie-breaking among
    equal-cost next hops with a stable hash of the pair so traffic
    spreads deterministically across the spine/core stage.

    The CONFIG distribution phase, strictness semantics and
    ``phase_times`` bookkeeping are inherited unchanged.
    """

    QUERY_TIMEOUT_US = 150.0
    QUERY_RETRIES = 2            # resends of one query over one path
    QUERY_PATHS = 2              # distinct paths tried per switch

    def __init__(self, agent: MapperAgent,
                 expected_nodes: Optional[int] = None,
                 strict: bool = True,
                 abort_on_empty: bool = False):
        super().__init__(agent, expected_nodes=expected_nodes,
                         strict=strict, abort_on_empty=abort_on_empty)
        self.switch_infos: Dict[int, dict] = {}    # id -> port census
        self.switch_routes: Dict[int, List[int]] = {}  # id -> route to it
        self.host_attach: Dict[int, Tuple[int, int]] = {}  # node -> (sw, port)
        self.unreached_switches: List[int] = []
        self.queries_sent = 0
        self.query_retries = 0

    # -- phase 1: switch survey ----------------------------------------------

    def _query_switch(self, route: List[int], expect: Optional[int]):
        """One port census over one path; ``None`` after all retries.

        ``expect`` filters stale answers (a reply from an earlier, timed
        out query of a *different* switch may still be sitting in the
        inbox); the very first query — our own leaf, id unknown —
        accepts any answer.
        """
        for attempt in range(self.QUERY_RETRIES):
            if attempt:
                self.query_retries += 1
            self.queries_sent += 1
            query = Packet(
                ptype=PacketType.MAPPER_QUERY,
                src_node=self.agent.node_id,
                dest_node=-1,
                route=list(route),
            )
            self.agent.send_raw(query)
            deadline = self.sim.now + self.QUERY_TIMEOUT_US
            while True:
                get = self.agent.portinfos.get()
                timeout = self.sim.timeout(max(deadline - self.sim.now, 0.0))
                fired = yield self.sim.any_of([get, timeout])
                if get in fired:
                    info = fired[get]
                    if expect is None or info["switch"] == expect:
                        return info
                    continue        # stale answer from another switch
                self.agent.portinfos.cancel(get)
                break
        return None

    @staticmethod
    def _switch_neighbors(info: dict) -> List[Tuple[int, int]]:
        """Live (local_port, far_switch_id) edges of one port census."""
        edges = []
        for port in sorted(info["ports"]):
            entry = info["ports"][port]
            if entry["kind"] == "switch" and entry["up"] \
                    and not entry["dead"]:
                edges.append((port, entry["switch"]))
        return edges

    def _survey_switches(self):
        first = yield from self._query_switch([], expect=None)
        if first is None:
            raise MappingFailed("own switch never answered its port census")
        root = first["switch"]
        self.switch_infos = {root: first}
        self.switch_routes = {root: []}
        failures: Dict[int, int] = {}   # switch id -> paths that timed out
        pending = deque([root])
        while pending:
            sid = pending.popleft()
            base = self.switch_routes[sid]
            for port, far in self._switch_neighbors(self.switch_infos[sid]):
                if far in self.switch_infos \
                        or failures.get(far, 0) >= self.QUERY_PATHS:
                    continue
                info = yield from self._query_switch(base + [port],
                                                     expect=far)
                if info is None:
                    # This path is broken; an equal-cost path through a
                    # different already-surveyed switch may still reach
                    # ``far`` when the BFS gets there.
                    failures[far] = failures.get(far, 0) + 1
                    continue
                self.switch_infos[far] = info
                self.switch_routes[far] = base + [port]
                pending.append(far)
        self.unreached_switches = sorted(
            far for far, count in failures.items()
            if far not in self.switch_infos)

    # -- phase 2: per-leaf host discovery -------------------------------------

    def _scout_leaf(self, sid: int) -> None:
        # Routed hops stamp ingress but not egress, so the forward path
        # carried by flood clones must be pre-seeded with the route.
        route = self.switch_routes[sid]
        scout = Packet(
            ptype=PacketType.MAPPER_SCOUT,
            src_node=self.agent.node_id,
            dest_node=-1,
            flood=True,
            ttl=1,
            route=list(route),
            egress_ports=list(route),
        )
        self.agent.send_raw(scout)

    def _leaf_waves(self, leaves: List[int]) -> List[List[int]]:
        """Split leaf scouts into waves the NIC receive ring can absorb.

        Every host of a scouted leaf replies within a handful of
        microseconds; a wave of more replies than ``RECV_RING_SLOTS``
        would overflow our own ring and silently drop interfaces.  Half
        the ring is a safe wave budget (the MCP drains concurrently, and
        stragglers from the previous wave may still be in flight).
        """
        budget = max(1, RECV_RING_SLOTS // 2)
        hosts_on = {sid: 0 for sid in leaves}
        for node, (sid, _port) in self.host_attach.items():
            if sid in hosts_on:
                hosts_on[sid] += 1
        waves: List[List[int]] = []
        batch: List[int] = []
        load = 0
        for sid in leaves:
            if batch and load + hosts_on[sid] > budget:
                waves.append(batch)
                batch, load = [], 0
            batch.append(sid)
            load += hosts_on[sid]
        if batch:
            waves.append(batch)
        return waves

    def _discover(self):
        yield from self._survey_switches()
        self.phase_times["surveyed"] = self.sim.now
        me = self.agent.node_id
        expected: Dict[int, int] = {}   # node id -> its switch
        for sid, info in self.switch_infos.items():
            for port in sorted(info["ports"]):
                entry = info["ports"][port]
                if entry["kind"] == "host" and entry["up"] \
                        and not entry["dead"]:
                    self.host_attach[entry["node"]] = (sid, port)
                    if entry["node"] != me:
                        expected[entry["node"]] = sid
        for _round in range(2):
            missing = sorted(n for n in expected
                             if n not in self.discovered)
            if not missing:
                break
            leaves = sorted({expected[n] for n in missing})
            for wave in self._leaf_waves(leaves):
                wanted = {n for n in expected if expected[n] in set(wave)}
                for sid in wave:
                    self._scout_leaf(sid)
                deadline = self.sim.now + self.SETTLE_US
                while any(n not in self.discovered for n in wanted):
                    get = self.agent.replies.get()
                    timeout = self.sim.timeout(
                        max(deadline - self.sim.now, 0.0))
                    fired = yield self.sim.any_of([get, timeout])
                    if get in fired:
                        info = fired[get]
                        node_id = info["node_id"]
                        if node_id == me:
                            continue
                        routes = NodeRoutes(node_id, info["forward"],
                                            info["reverse"])
                        known = self.discovered.get(node_id)
                        if known is None or routes.hops < known.hops:
                            self.discovered[node_id] = routes
                    else:
                        self.agent.replies.cancel(get)
                        break
        if (self.expected_nodes is not None
                and len(self.discovered) < self.expected_nodes - 1):
            raise MappingFailed(
                "found %d of %d expected interfaces"
                % (len(self.discovered) + 1, self.expected_nodes))

    # -- equal-cost route computation -----------------------------------------

    def _compute_tables(self) -> None:
        me = self.agent.node_id
        adjacency = {
            sid: [(port, far)
                  for port, far in self._switch_neighbors(info)
                  if far in self.switch_infos]
            for sid, info in self.switch_infos.items()
        }
        # Hop counts toward each destination leaf, computed once per
        # leaf and shared by every pair that lands there.
        dist_cache: Dict[int, Dict[int, int]] = {}
        # Equal-cost next hops per (here, destination leaf): every pair
        # landing on the same leaf walks the same candidate lists, so an
        # all-pairs table build does O(switches^2) list constructions
        # instead of O(pairs * hops).
        hop_cache: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

        def dist_toward(target: int) -> Dict[int, int]:
            dist = dist_cache.get(target)
            if dist is None:
                dist = {target: 0}
                frontier = deque([target])
                while frontier:
                    sid = frontier.popleft()
                    for _port, far in adjacency[sid]:
                        if far not in dist:
                            dist[far] = dist[sid] + 1
                            frontier.append(far)
                dist_cache[target] = dist
            return dist

        hop_get = hop_cache.get
        attach = self.host_attach

        def route_between(x: int, y: int) -> Optional[List[int]]:
            sx, _px = attach[x]
            sy, py = attach[y]
            if sx == sy:
                return [py]
            dist = dist_toward(sy)
            if sx not in dist:
                return None         # partitioned switch graph
            choice = _pair_hash(x, y)
            route = []
            sid = sx
            while sid != sy:
                key = (sid, sy)
                nearer = hop_get(key)
                if nearer is None:
                    want = dist[sid] - 1
                    absent = len(dist) + 1
                    nearer = [(port, far) for port, far in adjacency[sid]
                              if dist.get(far, absent) == want]
                    hop_cache[key] = nearer
                port, sid = nearer[choice % len(nearer)]
                route.append(port)
            return route + [py]

        self.tables = {}
        hosts = sorted(set(self.discovered) | {me})
        for x in hosts:
            table: Dict[int, List[int]] = {}
            if x in self.host_attach:
                for y in hosts:
                    if y == x or y not in self.host_attach:
                        continue
                    found = route_between(x, y)
                    if found is not None:
                        table[y] = found
            self.tables[x] = table


def make_mapper(agent: MapperAgent, hierarchical: bool = False,
                **kwargs) -> Mapper:
    """The mapping program suited to a fabric: flat flood or two-phase."""
    cls = HierarchicalMapper if hierarchical else Mapper
    return cls(agent, **kwargs)
