"""The GM mapper: network self-configuration.

GM configures a Myrinet by running a *mapper* program on one node: it
probes the fabric with scout packets, builds a map, computes a source
route between every pair of interfaces, and distributes per-interface
route tables.  The routing table it installs in each LANai is part of
the state the paper's FTD must restore after a NIC failure.

Protocol (one mapping round):

1. the mapper floods ``MAPPER_SCOUT`` packets (TTL-bounded; switches
   replicate them, stamping ingress and egress ports);
2. every interface that sees a scout answers ``MAPPER_REPLY`` carrying
   the scout's accumulated forward path (egress stamps) — the reply is
   source-routed back over the reversed ingress stamps;
3. the mapper derives a route for every ordered pair from the
   mapper-relative forward/reverse paths (:func:`derive_route`);
4. it unicasts each interface its table in ``MAPPER_CONFIG`` (retrying
   on timeout) and waits for ``MAPPER_DONE``.

The mapper can be re-run at any time (e.g. after links appear or
disappear); interfaces simply install the newest table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim import Simulator, Store, Tracer
from .packet import Packet, PacketType

__all__ = ["derive_route", "NodeRoutes", "MapperAgent", "Mapper",
           "MappingFailed"]


class MappingFailed(RuntimeError):
    """A mapping round could not complete (unreachable interfaces)."""


def derive_route(forward_x: List[int], reverse_x: List[int],
                 forward_y: List[int]) -> List[int]:
    """Source route from interface X to interface Y.

    ``forward_x``/``forward_y`` are the mapper's routes to X and Y
    (egress-port bytes); ``reverse_x`` is the route from X back to the
    mapper (reversed ingress stamps).  The route climbs from X to the
    switch where the two mapper paths diverge, then follows the mapper's
    path down to Y.
    """
    if forward_x == forward_y:
        raise ValueError("X and Y are the same interface")
    if len(reverse_x) != len(forward_x):
        raise ValueError("forward/reverse length mismatch for X")
    common = 0
    for a, b in zip(forward_x, forward_y):
        if a != b:
            break
        common += 1
    k = len(forward_x)
    # Distinct interfaces cannot have one path be a prefix of the other
    # (paths terminate at NICs), so common < min(len(fx), len(fy)).
    if common >= k or common >= len(forward_y):
        raise ValueError("inconsistent mapper paths (prefix overlap)")
    return list(reverse_x[:k - common - 1]) + list(forward_y[common:])


@dataclass
class NodeRoutes:
    """What the mapper learned about one interface."""

    node_id: int
    forward: List[int]          # mapper -> node (egress stamps)
    reverse: List[int]          # node -> mapper (reversed ingress stamps)
    hops: int = field(init=False)

    def __post_init__(self):
        self.hops = len(self.forward)


class MapperAgent:
    """Per-node mapper protocol endpoint, driven by that node's MCP.

    ``send_raw(packet)`` must inject a packet onto the node's link
    (the MCP provides this).  ``install_routes`` is called with the
    node's new ``{dest_node: route_bytes}`` table when a CONFIG arrives.
    """

    def __init__(self, sim: Simulator, node_id: int,
                 send_raw: Callable[[Packet], None],
                 install_routes: Callable[[Dict[int, List[int]]], None],
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.node_id = node_id
        self.send_raw = send_raw
        self.install_routes = install_routes
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        # Inboxes read by a co-located Mapper, when one runs on this node.
        self.replies: Store = Store(sim)
        self.dones: Store = Store(sim)
        self.scouts_seen = 0
        self.configs_installed = 0

    def handle(self, packet: Packet) -> bool:
        """Dispatch a MAPPER_* packet; returns False for other types."""
        if packet.ptype == PacketType.MAPPER_SCOUT:
            self.scouts_seen += 1
            reply = Packet(
                ptype=PacketType.MAPPER_REPLY,
                src_node=self.node_id,
                dest_node=packet.src_node,
                route=list(reversed(packet.ingress_ports)),
                control={
                    "node_id": self.node_id,
                    "forward": list(packet.egress_ports),
                    "reverse": list(reversed(packet.ingress_ports)),
                },
            )
            self.send_raw(reply)
            return True
        if packet.ptype == PacketType.MAPPER_REPLY:
            self.replies.put(packet.control)
            return True
        if packet.ptype == PacketType.MAPPER_CONFIG:
            table = {int(dest): list(route)
                     for dest, route in packet.control["routes"].items()}
            self.install_routes(table)
            self.configs_installed += 1
            done = Packet(
                ptype=PacketType.MAPPER_DONE,
                src_node=self.node_id,
                dest_node=packet.src_node,
                route=list(reversed(packet.ingress_ports)),
                control={"node_id": self.node_id},
            )
            self.send_raw(done)
            return True
        if packet.ptype == PacketType.MAPPER_DONE:
            self.dones.put(packet.control)
            return True
        return False


class Mapper:
    """The mapping program; runs on one node's agent."""

    SCOUT_TTL = 8
    SETTLE_US = 300.0        # silence window ending scout collection
    CONFIG_TIMEOUT_US = 500.0
    CONFIG_RETRIES = 3

    def __init__(self, agent: MapperAgent,
                 expected_nodes: Optional[int] = None,
                 strict: bool = True,
                 abort_on_empty: bool = False):
        self.agent = agent
        self.sim = agent.sim
        self.expected_nodes = expected_nodes
        # strict=False: a best-effort re-mapping round (the reroute
        # recovery path) — interfaces that never acknowledge their
        # CONFIG are recorded in ``unreached`` and skipped instead of
        # failing the whole round.
        self.strict = strict
        # abort_on_empty: fail instead of installing an *empty* table
        # when the scout flood finds nobody (e.g. our own cable is the
        # fault) — destroying a live table would only make things worse.
        self.abort_on_empty = abort_on_empty
        self.discovered: Dict[int, NodeRoutes] = {}
        self.tables: Dict[int, Dict[int, List[int]]] = {}
        self.unreached: List[int] = []
        self.config_retries = 0       # CONFIG resends after a lost round-trip
        self.phase_times: Dict[str, float] = {}

    # -- discovery ------------------------------------------------------------

    def run(self):
        """Process: one full mapping round.  Returns the node-id list."""
        yield from self._discover()
        self.phase_times["discovered"] = self.sim.now
        if self.abort_on_empty and not self.discovered:
            raise MappingFailed("scout flood found no interfaces")
        self._compute_tables()
        yield from self._distribute()
        self.phase_times["distributed"] = self.sim.now
        # Install the mapper's own table locally, no wire round-trip.
        self.agent.install_routes(self.tables[self.agent.node_id])
        reached = [x for x in sorted(self.discovered)
                   if x not in self.unreached]
        return reached + [self.agent.node_id]

    def _discover(self):
        scout = Packet(
            ptype=PacketType.MAPPER_SCOUT,
            src_node=self.agent.node_id,
            dest_node=-1,
            flood=True,
            ttl=self.SCOUT_TTL,
        )
        self.agent.send_raw(scout)
        deadline = self.sim.now + self.SETTLE_US
        while True:
            get = self.agent.replies.get()
            timeout = self.sim.timeout(max(deadline - self.sim.now, 0.0))
            fired = yield self.sim.any_of([get, timeout])
            if get in fired:
                info = fired[get]
                node_id = info["node_id"]
                if node_id == self.agent.node_id:
                    # On cyclic fabrics (ring) the flood loops back and
                    # we hear our own scout; a route to ourselves is not
                    # a discovery.
                    continue
                routes = NodeRoutes(node_id, info["forward"], info["reverse"])
                known = self.discovered.get(node_id)
                if known is None or routes.hops < known.hops:
                    self.discovered[node_id] = routes
                deadline = self.sim.now + self.SETTLE_US
                if (self.expected_nodes is not None
                        and len(self.discovered) >= self.expected_nodes - 1):
                    return
            else:
                self.agent.replies.cancel(get)
                if (self.expected_nodes is not None
                        and len(self.discovered) < self.expected_nodes - 1):
                    raise MappingFailed(
                        "found %d of %d expected interfaces"
                        % (len(self.discovered) + 1, self.expected_nodes))
                return

    # -- route computation --------------------------------------------------------

    def _compute_tables(self) -> None:
        me = self.agent.node_id
        nodes = self.discovered
        self.tables = {me: {x: list(r.forward) for x, r in nodes.items()}}
        for x, rx in nodes.items():
            table: Dict[int, List[int]] = {me: list(rx.reverse)}
            for y, ry in nodes.items():
                if y == x:
                    continue
                table[y] = derive_route(rx.forward, rx.reverse, ry.forward)
            self.tables[x] = table

    # -- distribution ---------------------------------------------------------------

    def _distribute(self):
        for x, rx in self.discovered.items():
            delivered = False
            for _attempt in range(self.CONFIG_RETRIES):
                config = Packet(
                    ptype=PacketType.MAPPER_CONFIG,
                    src_node=self.agent.node_id,
                    dest_node=x,
                    route=list(rx.forward),
                    control={"routes": self.tables[x]},
                )
                if _attempt > 0:
                    self.config_retries += 1
                self.agent.send_raw(config)
                get = self.agent.dones.get()
                timeout = self.sim.timeout(self.CONFIG_TIMEOUT_US)
                fired = yield self.sim.any_of([get, timeout])
                if get in fired:
                    if fired[get]["node_id"] == x:
                        delivered = True
                        break
                else:
                    self.agent.dones.cancel(get)
            if not delivered:
                if self.strict:
                    raise MappingFailed(
                        "node %d never acknowledged its routes" % x)
                self.unreached.append(x)
