"""Wormhole crossbar switches with source routing.

A Myrinet switch reads the leading route byte of an incoming packet,
strips it, and cuts the packet through to that output port; contention
for an output is resolved by blocking (backpressure), which we model by
queueing on the output link's directional pipe.  The M3M-SW8 used in the
paper is an 8-port crossbar.

Simplifications (documented in DESIGN.md):

* routing is at packet granularity (virtual cut-through) rather than
  flit-level wormhole — identical semantics for the paper's experiments,
  which never create multi-hop blocking chains;
* route bytes are absolute output-port numbers, not Myrinet's signed
  deltas;
* switches stamp the ingress port into mapper packets so scout replies
  can be source-routed back (GM's mapper achieves this with incremental
  map construction).
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Simulator, Tracer
from .packet import Packet, PacketType

__all__ = ["Switch", "SwitchPort", "SWITCH_LATENCY"]

SWITCH_LATENCY = 0.15  # us of cut-through routing delay per hop

_MAPPER_TYPES = (PacketType.MAPPER_SCOUT, PacketType.MAPPER_REPLY,
                 PacketType.MAPPER_CONFIG, PacketType.MAPPER_DONE,
                 PacketType.MAPPER_QUERY, PacketType.MAPPER_PORTINFO)


class SwitchPort:
    """One port of a switch; the endpoint object links attach to."""

    def __init__(self, switch: "Switch", index: int):
        self.switch = switch
        self.index = index
        self.link = None  # set when cabled
        self.name = "%s.p%d" % (switch.name, index)

    @property
    def wheel(self):
        """The event wheel this endpoint's deliveries must run on."""
        return self.switch.sim

    def deliver_packet(self, packet: Packet) -> bool:
        return self.switch._arrived(self.index, packet)

    def __repr__(self) -> str:
        return "<%s>" % self.name


class Switch:
    """An N-port source-routing crossbar."""

    def __init__(self, sim: Simulator, switch_id: int, nports: int = 8,
                 tracer: Optional[Tracer] = None):
        if nports < 2:
            raise ValueError("a switch needs at least 2 ports")
        self.sim = sim
        self.switch_id = switch_id
        self.name = "sw%d" % switch_id
        self.nports = nports
        self.ports: List[SwitchPort] = [SwitchPort(self, i)
                                        for i in range(nports)]
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.forwarded = 0
        self.absorbed = 0       # packets whose route ended here
        self.misrouted = 0      # invalid or uncabled output port
        self.dead_ports: set = set()   # killed ports (netfault injection)
        self.dead_port_drops = 0
        self.queries_answered = 0
        self.tier: Optional[str] = None  # set by Clos/fat-tree generators
        # Spawn names, formatted once: _arrived/_flood run per hop per
        # packet, and "%s.fwd" % name per spawn is measurable at
        # hundreds of thousands of forwards per storm.
        self._fwd_name = "%s.fwd" % self.name
        self._flood_name = "%s.flood" % self.name
        self._query_name = "%s.query" % self.name

    def port(self, index: int) -> SwitchPort:
        return self.ports[index]

    # -- fault injection hooks ------------------------------------------------

    def kill_port(self, index: int) -> None:
        """Disable a port: traffic in or out of it is silently dropped.

        Models a failed switch port / line card without touching the
        cable object — the attached link stays 'up' but nothing crosses
        the crossbar through this port any more.
        """
        if not 0 <= index < self.nports:
            raise ValueError("switch %s has no port %d" % (self.name, index))
        self.dead_ports.add(index)
        self.tracer.emit(self.sim.now, self.name, "switch_port_kill",
                         port=index)

    def revive_port(self, index: int) -> None:
        self.dead_ports.discard(index)
        self.tracer.emit(self.sim.now, self.name, "switch_port_revive",
                         port=index)

    def _arrived(self, in_port: int, packet: Packet) -> bool:
        if in_port in self.dead_ports:
            self.dead_port_drops += 1
            self.tracer.emit(self.sim.now, self.name, "switch_dead_port_drop",
                             port=in_port, packet=packet.describe())
            return False
        if packet.ptype == PacketType.MAPPER_SCOUT and packet.flood \
                and not packet.route:
            # A directed scout routes its prefix first (popping bytes
            # below) and floods only once the route is exhausted — the
            # hierarchical mapper's per-leaf discovery.
            return self._flood(in_port, packet)
        if not packet.route:
            if packet.ptype == PacketType.MAPPER_QUERY:
                return self._answer_query(in_port, packet)
            # Route exhausted inside the fabric: the packet dies here.
            # (Mapper scouts probing a switch-terminated route do this.)
            self.absorbed += 1
            self.tracer.emit(self.sim.now, self.name, "switch_absorb",
                             packet=packet.describe())
            return False
        out_index = packet.route.pop(0)
        if packet.ptype in _MAPPER_TYPES:
            packet.ingress_ports.append(in_port)
        if out_index in self.dead_ports:
            self.dead_port_drops += 1
            self.tracer.emit(self.sim.now, self.name, "switch_dead_port_drop",
                             port=out_index, packet=packet.describe())
            return False
        if not 0 <= out_index < self.nports \
                or self.ports[out_index].link is None \
                or out_index == in_port:
            self.misrouted += 1
            self.tracer.emit(self.sim.now, self.name, "switch_misroute",
                             out_port=out_index, packet=packet.describe())
            return False
        out_port = self.ports[out_index]
        self.sim.spawn(self._forward(out_port, packet),
                       name=self._fwd_name)
        return True

    def port_info(self) -> dict:
        """What management firmware can see of this switch's ports.

        For every cabled port: what hangs off the far end (a host NIC's
        node id, or a peer switch and its port), whether the cable is up
        and whether the local port is dead.  The hierarchical mapper
        builds its switch graph from these answers — the same mild
        idealization as replication-in-switch (DESIGN.md): real Myrinet
        management gets this from per-hop probe packets.
        """
        ports = {}
        for port in self.ports:
            if port.link is None:
                continue
            far = port.link.other(port)
            entry = {
                "up": port.link.up,
                "dead": port.index in self.dead_ports,
            }
            if isinstance(far, SwitchPort):
                entry["kind"] = "switch"
                entry["switch"] = far.switch.switch_id
                entry["port"] = far.index
            else:
                entry["kind"] = "host"
                entry["node"] = far.nic.node_id
            ports[port.index] = entry
        return {"switch": self.switch_id, "nports": self.nports,
                "ports": ports}

    def _answer_query(self, in_port: int, packet: Packet) -> bool:
        """Answer a mapper port-census query out the port it came in on.

        The reply is source-routed back over the reversed ingress stamps
        the query accumulated, exactly like a host's scout reply.
        """
        self.queries_answered += 1
        reply = Packet(PacketType.MAPPER_PORTINFO,
                       src_node=-1 - self.switch_id,
                       dest_node=packet.src_node,
                       route=list(reversed(packet.ingress_ports)),
                       control=self.port_info())
        self.tracer.emit(self.sim.now, self.name, "switch_query_answered",
                         to=packet.src_node)
        self.sim.spawn(self._forward(self.ports[in_port], reply),
                       name=self._query_name)
        return True

    def _forward(self, out_port: SwitchPort, packet: Packet):
        yield self.sim.timeout(SWITCH_LATENCY)
        # ``forwarded`` counts far-end acceptances; with delivery decoupled
        # from transmission (and possibly completing on another shard's
        # wheel) the link reports acceptance through a callback.
        yield from out_port.link.send(out_port, packet,
                                      on_accept=self._count_forward)

    def _count_forward(self) -> None:
        self.forwarded += 1

    def _flood(self, in_port: int, packet: Packet) -> bool:
        """Replicate a mapper scout out every cabled port except ingress.

        Real GM maps with waves of scout packets; replication-in-switch
        is our idealization of one wave (see DESIGN.md).  TTL bounds the
        flood on cyclic topologies.
        """
        if packet.ttl <= 0:
            self.absorbed += 1
            return False
        sent_any = False
        for out_port in self.ports:
            if out_port.index == in_port or out_port.link is None \
                    or out_port.index in self.dead_ports:
                continue
            copy = packet.clone_flood_copy(in_port, out_port.index)
            self.sim.spawn(self._forward(out_port, copy),
                           name=self._flood_name)
            sent_any = True
        return sent_any

    def ckpt_state(self) -> dict:
        """Snapshot contract: crossbar counters and injected port faults."""
        return {
            "name": self.name,
            "tier": self.tier,
            "nports": self.nports,
            "forwarded": self.forwarded,
            "absorbed": self.absorbed,
            "misrouted": self.misrouted,
            "dead_ports": sorted(self.dead_ports),
            "dead_port_drops": self.dead_port_drops,
            "queries_answered": self.queries_answered,
        }
