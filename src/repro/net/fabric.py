"""Topology construction: cables, switches and NIC attachment points.

A :class:`Fabric` owns the switches and links of one Myrinet network.
NICs attach through a :class:`NicPort` adapter that implements the link
endpoint protocol and hands arrivals to the NIC's receive ring.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hw.nic import Nic
from ..sim import Simulator, Tracer
from .link import Link
from .switch import Switch, SwitchPort

__all__ = ["Fabric", "NicPort"]


class NicPort:
    """Endpoint adapter binding a NIC's packet interface to a link."""

    def __init__(self, nic: Nic):
        self.nic = nic
        self.link: Optional[Link] = None
        self.name = "%s.port" % nic.name

    def deliver_packet(self, packet) -> bool:
        return self.nic.deliver_packet(packet)

    def send(self, packet):
        if self.link is None:
            raise RuntimeError("%s is not cabled" % self.name)
        return self.link.send(self, packet)


class Fabric:
    """The set of switches, links and NIC attachments of one network."""

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.switches: List[Switch] = []
        self.links: List[Link] = []
        self.nic_ports: Dict[int, NicPort] = {}

    def add_switch(self, nports: int = 8) -> Switch:
        switch = Switch(self.sim, len(self.switches), nports, self.tracer)
        self.switches.append(switch)
        return switch

    def attach_nic(self, nic: Nic) -> NicPort:
        """Create the NIC's fabric attachment point (its one link port)."""
        if nic.node_id in self.nic_ports:
            raise ValueError("node %d already attached" % nic.node_id)
        port = NicPort(nic)
        self.nic_ports[nic.node_id] = port
        # Give the NIC a handle for its packet interface sends.
        nic.link = port
        return port

    def connect(self, end_a, end_b, **link_kwargs) -> Link:
        """Cable two endpoints (NicPort or SwitchPort) together."""
        for end in (end_a, end_b):
            if getattr(end, "link", None) is not None:
                raise ValueError("%s is already cabled" % end.name)
        link = Link(self.sim, end_a, end_b, tracer=self.tracer, **link_kwargs)
        end_a.link = link
        end_b.link = link
        self.links.append(link)
        return link

    # -- convenience topologies ---------------------------------------------------

    def star(self, nics: List[Nic], nports: Optional[int] = None) -> Switch:
        """The paper's topology: every NIC cabled to one central switch.

        NIC for node ``i`` is cabled to switch port ``i``.
        """
        nports = nports or max(8, len(nics))
        switch = self.add_switch(nports)
        for index, nic in enumerate(nics):
            self.connect(self.attach_nic(nic), switch.port(index))
        return switch
