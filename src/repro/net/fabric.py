"""Topology construction: cables, switches and NIC attachment points.

A :class:`Fabric` owns the switches and links of one Myrinet network.
NICs attach through a :class:`NicPort` adapter that implements the link
endpoint protocol and hands arrivals to the NIC's receive ring.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hw.nic import Nic
from ..sim import Simulator, Tracer
from .link import Link
from .switch import Switch, SwitchPort

__all__ = ["Fabric", "NicPort"]


class NicPort:
    """Endpoint adapter binding a NIC's packet interface to a link."""

    def __init__(self, nic: Nic):
        self.nic = nic
        self.link: Optional[Link] = None
        self.name = "%s.port" % nic.name

    @property
    def wheel(self):
        """The event wheel this endpoint's deliveries must run on."""
        return self.nic.sim

    def deliver_packet(self, packet) -> bool:
        return self.nic.deliver_packet(packet)

    def send(self, packet, on_accept=None):
        if self.link is None:
            raise RuntimeError("%s is not cabled" % self.name)
        return self.link.send(self, packet, on_accept)


class Fabric:
    """The set of switches, links and NIC attachments of one network."""

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.switches: List[Switch] = []
        self.links: List[Link] = []
        self.nic_ports: Dict[int, NicPort] = {}

    def add_switch(self, nports: int = 8) -> Switch:
        switch = Switch(self.sim, len(self.switches), nports, self.tracer)
        self.switches.append(switch)
        return switch

    def attach_nic(self, nic: Nic) -> NicPort:
        """Create the NIC's fabric attachment point (its one link port)."""
        if nic.node_id in self.nic_ports:
            raise ValueError("node %d already attached" % nic.node_id)
        port = NicPort(nic)
        self.nic_ports[nic.node_id] = port
        # Give the NIC a handle for its packet interface sends.
        nic.link = port
        return port

    def connect(self, end_a, end_b, **link_kwargs) -> Link:
        """Cable two endpoints (NicPort or SwitchPort) together."""
        for end in (end_a, end_b):
            if getattr(end, "link", None) is not None:
                raise ValueError("%s is already cabled" % end.name)
        link = Link(self.sim, end_a, end_b, tracer=self.tracer, **link_kwargs)
        end_a.link = link
        end_b.link = link
        self.links.append(link)
        return link

    # -- convenience topologies ---------------------------------------------------

    def star(self, nics: List[Nic], nports: Optional[int] = None) -> Switch:
        """The paper's topology: every NIC cabled to one central switch.

        NIC for node ``i`` is cabled to switch port ``i``.
        """
        nports = nports or max(8, len(nics))
        switch = self.add_switch(nports)
        for index, nic in enumerate(nics):
            self.connect(self.attach_nic(nic), switch.port(index))
        return switch

    def _spread(self, nics: List[Nic], switches: List[Switch],
                slots: int) -> None:
        """Cable NICs over ``switches`` in balanced contiguous blocks.

        With ``per = ceil(len(nics) / len(switches))``, node ``i`` goes
        to switch ``i // per`` at port ``i % per`` — a deterministic
        placement every topology helper shares, and one that uses every
        switch (so even small clusters exercise inter-switch links).
        """
        per = (len(nics) + len(switches) - 1) // len(switches)
        if per > slots:
            raise ValueError(
                "%d NICs do not fit %d switches with %d NIC ports each"
                % (len(nics), len(switches), slots))
        for index, nic in enumerate(nics):
            switch = switches[index // per]
            self.connect(self.attach_nic(nic), switch.port(index % per))

    def ring(self, nics: List[Nic], n_switches: int = 2,
             nports: int = 8) -> List[Switch]:
        """A ring of M3M-SW8-like switches with NICs spread across them.

        Each switch reserves its two highest ports as uplinks: port
        ``nports-1`` cables to the *next* switch's port ``nports-2``
        (indices mod ``n_switches``).  A two-switch ring therefore has
        two independent inter-switch links — the smallest fabric with
        path redundancy, which is what the netfault reroute experiments
        need.  Returns the switches in ring order.
        """
        if n_switches < 2:
            raise ValueError("a ring needs at least 2 switches")
        slots = nports - 2  # uplinks occupy the top two ports
        switches = [self.add_switch(nports) for _ in range(n_switches)]
        self._spread(nics, switches, slots)
        for i, switch in enumerate(switches):
            nxt = switches[(i + 1) % n_switches]
            self.connect(switch.port(nports - 1), nxt.port(nports - 2))
        return switches

    def tree(self, nics: List[Nic], n_leaves: int = 2,
             nports: int = 8) -> List[Switch]:
        """A two-level tree: one root switch over ``n_leaves`` leaves.

        Leaf ``j`` uplinks from its port ``nports-1`` to root port ``j``;
        NICs are spread over the leaves' low ports.  No redundancy — a
        severed uplink genuinely partitions that leaf's nodes, the
        negative case for reroute recovery.  Returns ``[root, *leaves]``.
        """
        if n_leaves < 2:
            raise ValueError("a tree needs at least 2 leaf switches")
        if n_leaves > nports:
            raise ValueError("root switch has only %d ports" % nports)
        slots = nports - 1  # one uplink per leaf
        root = self.add_switch(nports)
        leaves = [self.add_switch(nports) for _ in range(n_leaves)]
        self._spread(nics, leaves, slots)
        for j, leaf in enumerate(leaves):
            self.connect(leaf.port(nports - 1), root.port(j))
        return [root] + leaves

    def inter_switch_links(self) -> List[Link]:
        """Links whose both ends are switch ports (fault-plane targets)."""
        return [link for link in self.links
                if isinstance(link.end_a, SwitchPort)
                and isinstance(link.end_b, SwitchPort)]
