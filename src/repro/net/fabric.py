"""Topology construction: cables, switches and NIC attachment points.

A :class:`Fabric` owns the switches and links of one Myrinet network.
NICs attach through a :class:`NicPort` adapter that implements the link
endpoint protocol and hands arrivals to the NIC's receive ring.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hw.nic import Nic
from ..sim import Simulator, Tracer
from .link import Link
from .switch import Switch, SwitchPort

__all__ = ["Fabric", "NicPort", "clos_dimensions", "fat_tree_dimensions"]


def clos_dimensions(n_nodes: int, n_spines: int = 2,
                    nports: int = 8) -> tuple:
    """Leaf-spine sizing shared by the generator and ``plan_shards``.

    Returns ``(hosts_per_leaf, n_leaves)``: node ``i`` lives on leaf
    ``i // hosts_per_leaf`` at port ``i % hosts_per_leaf``.
    """
    if not 1 <= n_spines <= nports - 1:
        raise ValueError("clos needs 1 <= n_spines < nports, got %d/%d"
                         % (n_spines, nports))
    hosts_per_leaf = nports - n_spines
    n_leaves = max(2, -(-n_nodes // hosts_per_leaf))
    return hosts_per_leaf, n_leaves


def fat_tree_dimensions(n_nodes: int, nports: int = 8) -> tuple:
    """3-tier fat-tree sizing shared by the generator and ``plan_shards``.

    A radix-``k`` fat-tree pod is ``k/2`` edge switches over ``k/2``
    hosts each; we build only as many pods as the host count needs (the
    ``(k/2)**2`` core switches always exist, so cross-pod multi-path is
    present even when the fabric is partially populated).  Returns
    ``(hosts_per_edge, n_pods)``: node ``i`` lives on edge switch
    ``i // hosts_per_edge`` at port ``i % hosts_per_edge``.
    """
    if nports < 4 or nports % 2:
        raise ValueError("fat-tree radix must be even and >= 4, got %d"
                         % nports)
    half = nports // 2
    hosts_per_pod = half * half
    n_pods = max(1, -(-n_nodes // hosts_per_pod))
    return half, n_pods


class NicPort:
    """Endpoint adapter binding a NIC's packet interface to a link."""

    def __init__(self, nic: Nic):
        self.nic = nic
        self.link: Optional[Link] = None
        self.name = "%s.port" % nic.name

    @property
    def wheel(self):
        """The event wheel this endpoint's deliveries must run on."""
        return self.nic.sim

    def deliver_packet(self, packet) -> bool:
        return self.nic.deliver_packet(packet)

    def send(self, packet, on_accept=None):
        if self.link is None:
            raise RuntimeError("%s is not cabled" % self.name)
        return self.link.send(self, packet, on_accept)


class Fabric:
    """The set of switches, links and NIC attachments of one network."""

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.switches: List[Switch] = []
        self.links: List[Link] = []
        self.nic_ports: Dict[int, NicPort] = {}

    def add_switch(self, nports: int = 8,
                   sim: Optional[Simulator] = None) -> Switch:
        """Add a switch, optionally on another shard's event wheel.

        The sharded builder places leaf/edge switches on the wheel of
        the hosts cabled to them (rack-local traffic then never crosses
        a shard boundary); spine/core switches stay on the fabric wheel.
        """
        switch = Switch(sim if sim is not None else self.sim,
                        len(self.switches), nports, self.tracer)
        self.switches.append(switch)
        return switch

    def attach_nic(self, nic: Nic) -> NicPort:
        """Create the NIC's fabric attachment point (its one link port)."""
        if nic.node_id in self.nic_ports:
            raise ValueError("node %d already attached" % nic.node_id)
        port = NicPort(nic)
        self.nic_ports[nic.node_id] = port
        # Give the NIC a handle for its packet interface sends.
        nic.link = port
        return port

    def connect(self, end_a, end_b, **link_kwargs) -> Link:
        """Cable two endpoints (NicPort or SwitchPort) together."""
        for end in (end_a, end_b):
            if getattr(end, "link", None) is not None:
                raise ValueError("%s is already cabled" % end.name)
        link = Link(self.sim, end_a, end_b, tracer=self.tracer, **link_kwargs)
        end_a.link = link
        end_b.link = link
        self.links.append(link)
        return link

    def sample_counters(self) -> Dict[str, int]:
        """Fabric-wide counter totals for the continuous sampler.

        Pure reads over live per-element counters — safe to call at any
        simulated instant, any number of times.
        """
        return {
            "link.packets_carried":
                sum(link.packets_carried for link in self.links),
            "link.packets_corrupted":
                sum(link.packets_corrupted for link in self.links),
            "switch.forwarded":
                sum(switch.forwarded for switch in self.switches),
        }

    # -- convenience topologies ---------------------------------------------------

    def star(self, nics: List[Nic], nports: Optional[int] = None) -> Switch:
        """The paper's topology: every NIC cabled to one central switch.

        NIC for node ``i`` is cabled to switch port ``i``.
        """
        nports = nports or max(8, len(nics))
        switch = self.add_switch(nports)
        for index, nic in enumerate(nics):
            self.connect(self.attach_nic(nic), switch.port(index))
        return switch

    def _spread(self, nics: List[Nic], switches: List[Switch],
                slots: int) -> None:
        """Cable NICs over ``switches`` in balanced contiguous blocks.

        With ``per = ceil(len(nics) / len(switches))``, node ``i`` goes
        to switch ``i // per`` at port ``i % per`` — a deterministic
        placement every topology helper shares, and one that uses every
        switch (so even small clusters exercise inter-switch links).
        """
        per = (len(nics) + len(switches) - 1) // len(switches)
        if per > slots:
            raise ValueError(
                "%d NICs do not fit %d switches with %d NIC ports each"
                % (len(nics), len(switches), slots))
        for index, nic in enumerate(nics):
            switch = switches[index // per]
            self.connect(self.attach_nic(nic), switch.port(index % per))

    def ring(self, nics: List[Nic], n_switches: int = 2,
             nports: int = 8) -> List[Switch]:
        """A ring of M3M-SW8-like switches with NICs spread across them.

        Each switch reserves its two highest ports as uplinks: port
        ``nports-1`` cables to the *next* switch's port ``nports-2``
        (indices mod ``n_switches``).  A two-switch ring therefore has
        two independent inter-switch links — the smallest fabric with
        path redundancy, which is what the netfault reroute experiments
        need.  Returns the switches in ring order.
        """
        if n_switches < 2:
            raise ValueError("a ring needs at least 2 switches")
        slots = nports - 2  # uplinks occupy the top two ports
        switches = [self.add_switch(nports) for _ in range(n_switches)]
        self._spread(nics, switches, slots)
        for i, switch in enumerate(switches):
            nxt = switches[(i + 1) % n_switches]
            self.connect(switch.port(nports - 1), nxt.port(nports - 2))
        return switches

    def tree(self, nics: List[Nic], n_leaves: int = 2,
             nports: int = 8) -> List[Switch]:
        """A two-level tree: one root switch over ``n_leaves`` leaves.

        Leaf ``j`` uplinks from its port ``nports-1`` to root port ``j``;
        NICs are spread over the leaves' low ports.  No redundancy — a
        severed uplink genuinely partitions that leaf's nodes, the
        negative case for reroute recovery.  Returns ``[root, *leaves]``.
        """
        if n_leaves < 2:
            raise ValueError("a tree needs at least 2 leaf switches")
        if n_leaves > nports:
            raise ValueError("root switch has only %d ports" % nports)
        slots = nports - 1  # one uplink per leaf
        root = self.add_switch(nports)
        leaves = [self.add_switch(nports) for _ in range(n_leaves)]
        self._spread(nics, leaves, slots)
        for j, leaf in enumerate(leaves):
            self.connect(leaf.port(nports - 1), root.port(j))
        return [root] + leaves

    def _rack_sim(self, nics: List[Nic]) -> Optional[Simulator]:
        """The shared wheel of a rack's NICs, if they all agree.

        Used to co-locate a leaf/edge switch with its hosts under
        sharding; racks that straddle shards (or are empty) fall back to
        the fabric wheel.
        """
        wheels = {id(nic.sim) for nic in nics}
        if len(wheels) == 1:
            return nics[0].sim
        return None

    def clos(self, nics: List[Nic], n_spines: int = 2,
             nports: int = 8) -> List[Switch]:
        """A two-tier leaf-spine Clos fabric.

        Each leaf reserves its top ``n_spines`` ports as uplinks: port
        ``nports-1-s`` cables to spine ``s`` (at the spine's port for
        this leaf), so every leaf pair has ``n_spines`` equal-cost
        two-hop paths — the ECMP redundancy the hierarchical mapper
        spreads routes over.  NICs pack leaves in contiguous blocks
        (node ``i`` on leaf ``i // hosts_per_leaf``), the same
        arithmetic ``plan_shards`` aligns shard boundaries to.  Returns
        ``[*leaves, *spines]``.
        """
        hosts_per_leaf, n_leaves = clos_dimensions(len(nics), n_spines,
                                                   nports)
        leaves = []
        for leaf_index in range(n_leaves):
            rack = nics[leaf_index * hosts_per_leaf:
                        (leaf_index + 1) * hosts_per_leaf]
            leaf = self.add_switch(nports, sim=self._rack_sim(rack))
            leaf.tier = "leaf"
            leaves.append(leaf)
        spines = []
        for _ in range(n_spines):
            spine = self.add_switch(max(2, n_leaves))
            spine.tier = "spine"
            spines.append(spine)
        for index, nic in enumerate(nics):
            leaf = leaves[index // hosts_per_leaf]
            self.connect(self.attach_nic(nic),
                         leaf.port(index % hosts_per_leaf))
        for leaf_index, leaf in enumerate(leaves):
            for s, spine in enumerate(spines):
                self.connect(leaf.port(nports - 1 - s),
                             spine.port(leaf_index))
        return leaves + spines

    def fat_tree(self, nics: List[Nic], nports: int = 8) -> List[Switch]:
        """A 3-tier radix-``k`` fat-tree (k = ``nports``).

        Pods of ``k/2`` edge and ``k/2`` aggregation switches, with
        ``(k/2)**2`` cores on top; only as many pods are built as the
        host count needs.  Wiring follows the classic k-ary scheme:

        * edge ``e`` of a pod: hosts on ports ``0..k/2-1``; uplink port
          ``k/2+j`` to the pod's agg ``j`` (at agg port ``e``);
        * agg ``j`` of pod ``p``: uplink port ``k/2+c`` to core
          ``j*(k/2)+c`` (at core port ``p``).

        Cross-pod host pairs therefore have ``(k/2)**2`` equal-cost
        five-hop paths and the edge-level min-cut is ``k/2``.  Returns
        ``[*edges, *aggs, *cores]`` (ids in that order).
        """
        half, n_pods = fat_tree_dimensions(len(nics), nports)
        n_edges = n_pods * half
        edges = []
        for edge_index in range(n_edges):
            rack = nics[edge_index * half:(edge_index + 1) * half]
            edge = self.add_switch(nports,
                                   sim=self._rack_sim(rack) if rack else None)
            edge.tier = "edge"
            edges.append(edge)
        aggs = []
        for _ in range(n_pods * half):
            agg = self.add_switch(nports)
            agg.tier = "agg"
            aggs.append(agg)
        cores = []
        for _ in range(half * half):
            core = self.add_switch(max(2, n_pods))
            core.tier = "core"
            cores.append(core)
        for index, nic in enumerate(nics):
            self.connect(self.attach_nic(nic),
                         edges[index // half].port(index % half))
        for edge_index, edge in enumerate(edges):
            pod = edge_index // half
            e = edge_index % half
            for j in range(half):
                self.connect(edge.port(half + j),
                             aggs[pod * half + j].port(e))
        for agg_index, agg in enumerate(aggs):
            pod = agg_index // half
            j = agg_index % half
            for c in range(half):
                self.connect(agg.port(half + c),
                             cores[j * half + c].port(pod))
        return edges + aggs + cores

    def inter_switch_links(self) -> List[Link]:
        """Links whose both ends are switch ports (fault-plane targets)."""
        return [link for link in self.links
                if isinstance(link.end_a, SwitchPort)
                and isinstance(link.end_b, SwitchPort)]
