"""CRC-32 (IEEE 802.3 polynomial), table-driven, hand-rolled.

Myrinet packets carry a CRC that the receiving interface checks; GM drops
bad-CRC packets and lets its Go-Back-N layer retransmit.  We implement
the standard reflected CRC-32 rather than calling :mod:`zlib` so the
substrate is self-contained and the algorithm is testable on its own
(zlib is used only as an independent oracle in the tests).
"""

from __future__ import annotations

from typing import List

__all__ = ["crc32", "crc32_words"]

_POLY = 0xEDB88320  # reflected form of 0x04C11DB7


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, seed: int = 0) -> int:
    """CRC-32 of ``data``; chainable via ``seed`` (pass a prior result)."""
    crc = seed ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc32_words(words: List[int], seed: int = 0) -> int:
    """CRC-32 over a list of 32-bit values, big-endian byte order."""
    data = b"".join((w & 0xFFFFFFFF).to_bytes(4, "big") for w in words)
    return crc32(data, seed)
