"""The Myrinet fabric: packets, CRC, links, switches, topology, mapper."""

from .crc import crc32, crc32_words
from .fabric import Fabric, NicPort
from .link import LINK_BANDWIDTH, LINK_LATENCY, Link
from .mapper import (HierarchicalMapper, Mapper, MapperAgent, MappingFailed,
                     NodeRoutes, derive_route, make_mapper)
from .packet import CRC_BYTES, GM_MTU, HEADER_BYTES, Packet, PacketType
from .switch import SWITCH_LATENCY, Switch, SwitchPort

__all__ = [
    "CRC_BYTES",
    "Fabric",
    "GM_MTU",
    "HEADER_BYTES",
    "HierarchicalMapper",
    "LINK_BANDWIDTH",
    "LINK_LATENCY",
    "Link",
    "Mapper",
    "MapperAgent",
    "MappingFailed",
    "NicPort",
    "NodeRoutes",
    "Packet",
    "PacketType",
    "SWITCH_LATENCY",
    "Switch",
    "SwitchPort",
    "crc32",
    "crc32_words",
    "derive_route",
    "make_mapper",
]
