"""Full-duplex Myrinet links.

A link connects two endpoints (a NIC's packet interface or a switch
port).  Each direction is an independent serialized pipe at Myrinet's
2 Gb/s (250 bytes/µs) plus a small fixed propagation/SERDES latency.
Transmission holds the directional pipe for the packet's wire time —
that is where link-level contention and therefore backpressure-at-the-
edge come from.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim import Pipe, Simulator, Tracer

__all__ = ["Link", "LINK_BANDWIDTH", "LINK_LATENCY"]

LINK_BANDWIDTH = 250.0  # bytes/us == 2 Gb/s
LINK_LATENCY = 0.4      # us per traversal (cable + SERDES)


class Link:
    """Two endpoints, one pipe per direction.

    Endpoints must expose ``deliver_packet(packet) -> bool`` (and, for
    tracing, a ``name`` attribute).  Use :meth:`send` from the endpoint
    that is transmitting.
    """

    def __init__(self, sim: Simulator, end_a, end_b,
                 bandwidth: float = LINK_BANDWIDTH,
                 latency: float = LINK_LATENCY,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.end_a = end_a
        self.end_b = end_b
        self.latency = latency
        self._pipes = {
            id(end_a): Pipe(sim, bandwidth),  # direction: a -> b
            id(end_b): Pipe(sim, bandwidth),  # direction: b -> a
        }
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.up = True
        self.packets_carried = 0
        self.packets_dropped = 0
        self.packets_duplicated = 0
        self.packets_corrupted = 0
        self.cuts = 0
        # Test/experiment hook: drop (True), corrupt ("corrupt") or
        # duplicate ("duplicate") packets.
        self.fault_filter = None  # callable(packet) -> False|True|"corrupt"|"duplicate"

    def other(self, endpoint):
        if endpoint is self.end_a:
            return self.end_b
        if endpoint is self.end_b:
            return self.end_a
        raise ValueError("%r is not attached to this link" % (endpoint,))

    def send(self, sender, packet) -> Generator:
        """Process: transmit ``packet`` from ``sender`` to the other end.

        Returns True if the far end accepted the packet (False on a cut
        link or a full receive ring — either way the sender's protocol
        layer must recover, which is exactly GM's job).
        """
        receiver = self.other(sender)
        pipe = self._pipes[id(sender)]
        yield from pipe.transfer(packet.wire_size)
        if not self.up:
            self.tracer.emit(self.sim.now, "link", "link_down_drop",
                             packet=packet.describe())
            return False
        duplicate = None
        if self.fault_filter is not None:
            verdict = self.fault_filter(packet)
            if verdict == "corrupt":
                # Wire bit-rot: the packet arrives but its CRC is stale.
                packet.corrupt_payload(bit=1)
                self.packets_corrupted += 1
            elif verdict == "duplicate":
                # A retransmission artefact / reflection: the far end sees
                # the packet twice.  Clone before delivery because switches
                # consume the route list in place.
                duplicate = packet.clone_for_retransmit()
                duplicate.ingress_ports = list(packet.ingress_ports)
            elif verdict:
                self.packets_dropped += 1
                self.tracer.emit(self.sim.now, "link", "fault_drop",
                                 packet=packet.describe())
                return False
        yield self.sim.timeout(self.latency)
        self.packets_carried += 1
        accepted = receiver.deliver_packet(packet)
        if duplicate is not None:
            self.packets_duplicated += 1
            self.tracer.emit(self.sim.now, "link", "fault_duplicate",
                             packet=duplicate.describe())
            receiver.deliver_packet(duplicate)
        return accepted

    def cut(self) -> None:
        """Take the link down (packets in flight are lost)."""
        if self.up:
            self.cuts += 1
            self.tracer.emit(self.sim.now, "link", "link_cut",
                             ends="%s<->%s" % (getattr(self.end_a, "name", "?"),
                                               getattr(self.end_b, "name", "?")))
        self.up = False

    def restore(self) -> None:
        if not self.up:
            self.tracer.emit(self.sim.now, "link", "link_restore",
                             ends="%s<->%s" % (getattr(self.end_a, "name", "?"),
                                               getattr(self.end_b, "name", "?")))
        self.up = True

    def describe_ends(self) -> str:
        """Stable human-readable identity, e.g. 'nic0.port<->sw0.p0'."""
        return "%s<->%s" % (getattr(self.end_a, "name", "?"),
                            getattr(self.end_b, "name", "?"))
