"""Full-duplex Myrinet links.

A link connects two endpoints (a NIC's packet interface or a switch
port).  Each direction is an independent serialized pipe at Myrinet's
2 Gb/s (250 bytes/µs) plus a small fixed propagation/SERDES latency.
Transmission holds the directional pipe for the packet's wire time —
that is where link-level contention and therefore backpressure-at-the-
edge come from.

Delivery is decoupled from transmission: once a packet clears the wire,
its arrival rides a per-direction :class:`_DeliveryQueue` — one armed
timer carrying a deque of in-flight packets instead of a heap entry per
packet, so back-to-back deliveries on a hot link coalesce.  The same
queue is the shard-boundary channel of the sharded simulator: when the
two endpoints live on different event wheels the arrival crosses through
a :class:`repro.sim.ShardChannel` instead of being armed directly.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from ..sim import Pipe, Simulator, Tracer

__all__ = ["Link", "LINK_BANDWIDTH", "LINK_LATENCY"]

LINK_BANDWIDTH = 250.0  # bytes/us == 2 Gb/s
LINK_LATENCY = 0.4      # us per traversal (cable + SERDES)


def _endpoint_sim(endpoint, default: Simulator) -> Simulator:
    """The event wheel an endpoint's events must run on.

    Serial simulation has one wheel, so this is the link's own sim; the
    sharded builder gives NIC ports and switch ports a ``wheel``
    attribute naming their shard's wheel.
    """
    wheel = getattr(endpoint, "wheel", None)
    return wheel if wheel is not None else default


class _DeliveryQueue:
    """In-flight packets of one link direction, one armed timer total.

    Arrivals are pushed in nondecreasing time order (the directional
    pipe serializes transmissions and the wire latency is constant), so
    a deque plus a single re-armed absolute timer replaces one heap
    entry per packet — and same-instant deliveries drain in one firing.
    """

    __slots__ = ("link", "receiver", "sim", "queue", "armed")

    def __init__(self, link: "Link", receiver, sim: Simulator):
        self.link = link
        self.receiver = receiver
        self.sim = sim
        self.queue: deque = deque()
        self.armed = None

    def push(self, when: float, packet, duplicate, on_accept) -> None:
        self.queue.append((when, packet, duplicate, on_accept))
        if self.armed is None:
            self._arm(when)

    def _arm(self, when: float) -> None:
        timer = self.sim.timeout_at(when)
        timer.callbacks.append(self._fire)
        self.armed = timer

    def _fire(self, _event) -> None:
        self.armed = None
        queue = self.queue
        now = self.sim._now
        deliver = self.link._deliver
        receiver = self.receiver
        while queue and queue[0][0] <= now:
            entry = queue.popleft()
            deliver(receiver, entry[1], entry[2], entry[3])
        if queue:
            self._arm(queue[0][0])

    def ckpt_state(self) -> dict:
        """Snapshot contract: in-flight arrivals of this direction."""
        return {
            "armed": self.armed is not None,
            "queue": [
                {
                    "when": when,
                    "packet": packet.ckpt_state(),
                    "duplicate": duplicate.ckpt_state()
                    if duplicate is not None else None,
                    "on_accept": on_accept is not None,
                }
                for when, packet, duplicate, on_accept in self.queue
            ],
        }


class Link:
    """Two endpoints, one pipe per direction.

    Endpoints must expose ``deliver_packet(packet) -> bool`` (and, for
    tracing, a ``name`` attribute).  Use :meth:`send` from the endpoint
    that is transmitting.
    """

    def __init__(self, sim: Simulator, end_a, end_b,
                 bandwidth: float = LINK_BANDWIDTH,
                 latency: float = LINK_LATENCY,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.end_a = end_a
        self.end_b = end_b
        self.latency = latency
        sim_a = _endpoint_sim(end_a, sim)
        sim_b = _endpoint_sim(end_b, sim)
        self._sims = {id(end_a): sim_a, id(end_b): sim_b}
        self._pipes = {
            id(end_a): Pipe(sim_a, bandwidth),  # direction: a -> b
            id(end_b): Pipe(sim_b, bandwidth),  # direction: b -> a
        }
        # Arrivals land on the *receiver's* wheel.
        self._delivery = {
            id(end_a): _DeliveryQueue(self, end_b, sim_b),
            id(end_b): _DeliveryQueue(self, end_a, sim_a),
        }
        # Cross-shard directions route through ShardChannels; filled in
        # by _bind_shards() when the endpoint wheels differ.
        self._channels = {}
        if sim_a is not sim_b:
            self._bind_shards(sim_a, sim_b)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.up = True
        self.packets_carried = 0
        self.packets_dropped = 0
        self.packets_duplicated = 0
        self.packets_corrupted = 0
        self.cuts = 0
        # Test/experiment hook: drop (True), corrupt ("corrupt") or
        # duplicate ("duplicate") packets.
        self.fault_filter = None  # callable(packet) -> False|True|"corrupt"|"duplicate"

    def _bind_shards(self, sim_a: Simulator, sim_b: Simulator) -> None:
        from ..sim import LookaheadError, ShardChannel
        scheduler = getattr(sim_a, "scheduler", None)
        if scheduler is None or getattr(sim_b, "scheduler", None) is not scheduler:
            raise ValueError(
                "link %s spans two unrelated simulators"
                % self.describe_ends())
        if self.latency <= 0.0:
            raise LookaheadError(
                "link %s crosses shards with zero wire latency; the "
                "conservative protocol needs positive lookahead — give the "
                "link latency or co-locate both endpoints on one shard"
                % self.describe_ends())
        self._channels = {
            id(self.end_a): ShardChannel(scheduler, sim_a, sim_b,
                                         self.latency,
                                         self._delivery[id(self.end_a)]),
            id(self.end_b): ShardChannel(scheduler, sim_b, sim_a,
                                         self.latency,
                                         self._delivery[id(self.end_b)]),
        }

    def other(self, endpoint):
        if endpoint is self.end_a:
            return self.end_b
        if endpoint is self.end_b:
            return self.end_a
        raise ValueError("%r is not attached to this link" % (endpoint,))

    def send(self, sender, packet, on_accept=None) -> Generator:
        """Process: transmit ``packet`` from ``sender`` to the other end.

        Returns True once the packet has cleared the wire toward the far
        end (False on a cut link or a fault-filter drop — either way the
        sender's protocol layer must recover, which is exactly GM's job).
        Delivery itself completes one wire latency later on the
        receiver's wheel; ``on_accept`` is called then if the far end
        accepted the packet.
        """
        sim = self._sims[id(sender)]
        pipe = self._pipes[id(sender)]
        yield from pipe.transfer(packet.wire_size)
        if not self.up:
            self.tracer.emit(sim.now, "link", "link_down_drop",
                             packet=packet.describe())
            return False
        duplicate = None
        if self.fault_filter is not None:
            verdict = self.fault_filter(packet)
            if verdict == "corrupt":
                # Wire bit-rot: the packet arrives but its CRC is stale.
                packet.corrupt_payload(bit=1)
                self.packets_corrupted += 1
            elif verdict == "duplicate":
                # A retransmission artefact / reflection: the far end sees
                # the packet twice.  Clone before delivery because switches
                # consume the route list in place.
                duplicate = packet.clone_for_retransmit()
                duplicate.ingress_ports = list(packet.ingress_ports)
            elif verdict:
                self.packets_dropped += 1
                self.tracer.emit(sim.now, "link", "fault_drop",
                                 packet=packet.describe())
                return False
        when = sim._now + self.latency
        channel = self._channels.get(id(sender))
        if channel is not None:
            channel.post(when, packet, duplicate, on_accept)
        else:
            self._delivery[id(sender)].push(when, packet, duplicate, on_accept)
        return True

    def _deliver(self, receiver, packet, duplicate, on_accept) -> None:
        """Complete one arrival (runs on the receiver's wheel)."""
        self.packets_carried += 1
        accepted = receiver.deliver_packet(packet)
        if duplicate is not None:
            self.packets_duplicated += 1
            self.tracer.emit(self._sims[id(receiver)].now, "link",
                             "fault_duplicate", packet=duplicate.describe())
            receiver.deliver_packet(duplicate)
        if accepted and on_accept is not None:
            on_accept()

    def cut(self) -> None:
        """Take the link down (packets in flight are lost)."""
        if self.up:
            self.cuts += 1
            self.tracer.emit(self.sim.now, "link", "link_cut",
                             ends="%s<->%s" % (getattr(self.end_a, "name", "?"),
                                               getattr(self.end_b, "name", "?")))
        self.up = False

    def restore(self) -> None:
        if not self.up:
            self.tracer.emit(self.sim.now, "link", "link_restore",
                             ends="%s<->%s" % (getattr(self.end_a, "name", "?"),
                                               getattr(self.end_b, "name", "?")))
        self.up = True

    def describe_ends(self) -> str:
        """Stable human-readable identity, e.g. 'nic0.port<->sw0.p0'."""
        return "%s<->%s" % (getattr(self.end_a, "name", "?"),
                            getattr(self.end_b, "name", "?"))

    def ckpt_state(self) -> dict:
        """Snapshot contract: direction pipes, in-flight queues, faults."""
        ka, kb = id(self.end_a), id(self.end_b)
        return {
            "ends": self.describe_ends(),
            "up": self.up,
            "latency": self.latency,
            "carried": self.packets_carried,
            "dropped": self.packets_dropped,
            "duplicated": self.packets_duplicated,
            "corrupted": self.packets_corrupted,
            "cuts": self.cuts,
            "fault_filter": self.fault_filter is not None,
            "pipes": [self._pipes[ka].ckpt_state(),
                      self._pipes[kb].ckpt_state()],
            "delivery": [self._delivery[ka].ckpt_state(),
                         self._delivery[kb].ckpt_state()],
            "channels": [self._channels[k].ckpt_state()
                         for k in (ka, kb) if k in self._channels],
        }
