"""Myrinet packets as GM builds them.

A wire packet carries a **source route** (one output-port byte per switch
hop, consumed as it travels), a GM header, a payload and a CRC.  GM
multiplexes all traffic between two nodes over one *connection*; the
header identifies the connection (by sender node), the ports, the packet
type and the Go-Back-N sequence number.

FTGM's deviation from stock GM lives in how the *values* in these fields
are chosen (host-generated per-(port, node) sequence streams; ACKs keyed
by (connection, port)) — the paper stresses that the packet format itself
is unchanged ("there is absolutely no change in the packet header"), and
we keep that property: both stacks use this same class.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..payload import Payload
from .crc import crc32_words

__all__ = ["PacketType", "Packet", "GM_MTU", "HEADER_BYTES", "CRC_BYTES"]

GM_MTU = 4096       # GM fragments messages into packets of at most 4 KB
HEADER_BYTES = 16   # modelled header size on the wire
CRC_BYTES = 4

_packet_ids = itertools.count(1)


class PacketType:
    """GM wire packet types (plus the mapper's control types)."""

    DATA = 1
    ACK = 2
    NACK = 3
    MAPPER_SCOUT = 4      # mapper probe: "any interface out there?"
    MAPPER_REPLY = 5      # interface's answer to a scout
    MAPPER_CONFIG = 6     # mapper installs a route table
    MAPPER_DONE = 7       # interface acknowledges configuration
    HEARTBEAT = 8         # peer-watchdog liveness probe (extension)
    HEARTBEAT_REPLY = 9
    MAPPER_QUERY = 10     # hierarchical mapper: "describe your ports"
    MAPPER_PORTINFO = 11  # switch's answer to a query

    NAMES = {
        DATA: "DATA", ACK: "ACK", NACK: "NACK",
        MAPPER_SCOUT: "SCOUT", MAPPER_REPLY: "REPLY",
        MAPPER_CONFIG: "CONFIG", MAPPER_DONE: "DONE",
        HEARTBEAT: "HB", HEARTBEAT_REPLY: "HB-RE",
        MAPPER_QUERY: "QUERY", MAPPER_PORTINFO: "PORTINFO",
    }


@dataclass
class Packet:
    """One wire packet.

    ``route`` is consumed in place by switches; ``ingress_ports`` is the
    reverse-route accumulator that switches stamp into mapper packets
    (see DESIGN.md for why this mild idealization is acceptable).
    """

    ptype: int
    src_node: int
    dest_node: int
    route: List[int] = field(default_factory=list)
    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack_seq: int = 0
    # Fragmentation: byte offset of this fragment and total message size.
    msg_id: int = 0
    frag_offset: int = 0
    msg_total: int = 0
    declared_len: int = -1   # length the sender's firmware *claims*; -1 = unset
    priority: int = 0
    payload: Payload = field(default_factory=lambda: Payload.from_bytes(b""))
    hdr_csum: int = 0           # firmware-computed header checksum
    crc: int = 0
    ingress_ports: List[int] = field(default_factory=list)
    egress_ports: List[int] = field(default_factory=list)
    flood: bool = False         # mapper scouts flood instead of routing
    ttl: int = 0                # hop budget for flooded scouts
    control: Optional[object] = None  # mapper control data (not on GM path)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def clone_flood_copy(self, in_port: int, out_port: int) -> "Packet":
        """A replica of a flooded scout exiting ``out_port``.

        Hand-rolled field copy: ``dataclasses.replace`` re-runs the full
        generated ``__init__`` per clone and flood fan-out makes this the
        busiest allocation in a mapping wave.  There is no
        ``__post_init__``, so a dict copy is behaviour-identical.
        """
        clone = Packet.__new__(Packet)
        d = clone.__dict__
        d.update(self.__dict__)
        d["packet_id"] = next(_packet_ids)
        d["route"] = []
        d["ttl"] = self.ttl - 1
        d["ingress_ports"] = self.ingress_ports + [in_port]
        d["egress_ports"] = self.egress_ports + [out_port]
        return clone

    # -- wire properties ---------------------------------------------------------

    @property
    def wire_size(self) -> int:
        """Bytes occupying a link: route + header + payload + CRC."""
        return len(self.route) + HEADER_BYTES + self.payload.size + CRC_BYTES

    def header_words(self) -> List[int]:
        return [
            self.ptype, self.src_node, self.dest_node,
            (self.src_port << 8) | self.dst_port,
            self.seq & 0xFFFFFFFF, self.ack_seq & 0xFFFFFFFF,
            self.msg_id & 0xFFFFFFFF, self.frag_offset, self.msg_total,
            self.effective_len() & 0xFFFFFFFF, self.priority,
            self.hdr_csum & 0xFFFFFFFF,
        ]

    def compute_crc(self) -> int:
        words = self.header_words() + [
            self.payload.size,
            self.payload.fingerprint & 0xFFFFFFFF,
            (self.payload.fingerprint >> 32) & 0xFFFFFFFF,
        ]
        return crc32_words(words)

    def seal(self) -> "Packet":
        """Stamp the CRC (done by sending hardware after payload DMA)."""
        self.crc = self.compute_crc()
        return self

    def crc_ok(self) -> bool:
        return self.crc == self.compute_crc()

    def header_checksum(self) -> int:
        """The checksum ``send_chunk`` computes over its token block.

        Covers the wire-visible token words in firmware order; the
        receiving MCP recomputes this from header fields and drops
        mismatches (which is how post-checksum firmware corruption of a
        header field becomes a detected drop rather than a delivery).
        """
        total = (self.effective_len() + self.dest_node + self.seq
                 + ((self.src_port << 8) | self.dst_port) + self.ptype
                 + self.msg_id + self.frag_offset + self.msg_total)
        return total & 0xFFFFFFFF

    def effective_len(self) -> int:
        return self.payload.size if self.declared_len < 0 else self.declared_len

    def corrupt_payload(self, bit: int = 0) -> None:
        """Flip a payload bit *without* fixing the CRC (wire corruption)."""
        self.payload = self.payload.corrupt(bit)

    def clone_for_retransmit(self) -> "Packet":
        """Fresh copy with a new packet id and un-consumed route."""
        clone = Packet.__new__(Packet)
        d = clone.__dict__
        d.update(self.__dict__)
        d["packet_id"] = next(_packet_ids)
        d["route"] = list(self.route)
        d["ingress_ports"] = []
        return clone

    def ckpt_state(self) -> dict:
        """Snapshot contract: every wire-visible field.

        ``packet_id`` is deliberately absent — it comes from a
        process-global diagnostic counter (see ckpt.capture's exclusion
        list) and never influences simulated behaviour.
        """
        return {
            "ptype": self.ptype,
            "src_node": self.src_node,
            "dest_node": self.dest_node,
            "route": list(self.route),
            "src_port": self.src_port,
            "dst_port": self.dst_port,
            "seq": self.seq,
            "ack_seq": self.ack_seq,
            "msg_id": self.msg_id,
            "frag_offset": self.frag_offset,
            "msg_total": self.msg_total,
            "declared_len": self.declared_len,
            "priority": self.priority,
            "payload_size": self.payload.size,
            "payload_fp": self.payload.fingerprint,
            "hdr_csum": self.hdr_csum,
            "crc": self.crc,
            "ingress_ports": list(self.ingress_ports),
            "egress_ports": list(self.egress_ports),
            "flood": self.flood,
            "ttl": self.ttl,
        }

    def describe(self) -> str:
        return "%s %d->%d port %d->%d seq=%d frag@%d/%d (%dB)" % (
            PacketType.NAMES.get(self.ptype, "?"), self.src_node,
            self.dest_node, self.src_port, self.dst_port, self.seq,
            self.frag_offset, self.msg_total, self.payload.size)
