"""Topology inspection: summarize and plot a fabric without booting it.

``repro topo <shape>`` answers the questions that come up before
committing to a hundreds-of-nodes campaign — how many switches does a
256-node radix-8 fat-tree need, how wide is the spine cross-section a
``rack-loss`` scenario has to sever, what does the wiring actually look
like — without paying for NICs, SRAM images or a boot (a 256-node
cluster holds half a gigabyte of SRAM; the graph alone is free).

The graph is built by the *same* :class:`~repro.net.fabric.Fabric`
generators the cluster builder uses, cabled to stub NICs, so the
summary can never drift from the simulated wiring.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, List, Optional, Set, Tuple

from ..sim import Simulator
from .fabric import Fabric
from .switch import SwitchPort

__all__ = ["build_graph", "summarize", "min_cut", "to_dot"]


class _StubNic:
    """Just enough NIC for :meth:`Fabric.attach_nic` to cable a host."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.name = "nic%d" % node_id
        self.link = None
        self.sim = None


def build_graph(n_nodes: int, topology: str = "fat-tree",
                n_switches: Optional[int] = None,
                radix: Optional[int] = None) -> Fabric:
    """The fabric graph a :func:`repro.cluster.build_cluster` call with
    the same shape parameters would cable — switches and links only."""
    if n_nodes < 2:
        raise ValueError("a fabric needs at least 2 nodes")
    fabric = Fabric(Simulator())
    nics = [_StubNic(i) for i in range(n_nodes)]
    if topology == "star":
        fabric.star(nics)
    elif topology == "ring":
        fabric.ring(nics, n_switches=n_switches or 2)
    elif topology == "tree":
        fabric.tree(nics, n_leaves=n_switches or 2)
    elif topology == "clos":
        fabric.clos(nics, n_spines=n_switches or 2, nports=radix or 8)
    elif topology == "fat-tree":
        fabric.fat_tree(nics, nports=radix or 8)
    else:
        raise ValueError("unknown topology %r (use star, ring, tree, "
                         "clos or fat-tree)" % (topology,))
    return fabric


def _capacities(fabric: Fabric) -> Tuple[Dict[int, Set[int]],
                                         Dict[Tuple[int, int], int]]:
    """Switch-graph adjacency plus per-edge capacities.

    Parallel cables count: a 2-switch ring carries two inter-switch
    links, and its min-cut is 2, not 1.
    """
    adj: Dict[int, Set[int]] = {s.switch_id: set() for s in fabric.switches}
    capacity: Dict[Tuple[int, int], int] = {}
    for link in fabric.inter_switch_links():
        a = link.end_a.switch.switch_id
        b = link.end_b.switch.switch_id
        adj[a].add(b)
        adj[b].add(a)
        capacity[(a, b)] = capacity.get((a, b), 0) + 1
        capacity[(b, a)] = capacity.get((b, a), 0) + 1
    return adj, capacity


def _edge_switch_of(fabric: Fabric, node_id: int):
    port = fabric.nic_ports[node_id]
    return port.link.other(port).switch


def min_cut(fabric: Fabric, src_switch: int, dst_switch: int) -> int:
    """Link-disjoint path count between two switches (Edmonds-Karp on
    the unit-capacity inter-switch graph) — the number of simultaneous
    link failures a flow between their racks survives."""
    if src_switch == dst_switch:
        return 0
    adj, residual = _capacities(fabric)
    flow = 0
    while True:
        parent = {src_switch: None}
        queue = deque([src_switch])
        while queue and dst_switch not in parent:
            here = queue.popleft()
            for there in adj[here]:
                if there not in parent and residual.get((here, there), 0) > 0:
                    parent[there] = here
                    queue.append(there)
        if dst_switch not in parent:
            return flow
        node = dst_switch
        while parent[node] is not None:
            prev = parent[node]
            residual[(prev, node)] -= 1
            residual[(node, prev)] = residual.get((node, prev), 0) + 1
            node = prev
        flow += 1


def summarize(n_nodes: int, topology: str = "fat-tree",
              n_switches: Optional[int] = None,
              radix: Optional[int] = None) -> str:
    """A text summary of the fabric's shape, wiring and redundancy."""
    fabric = build_graph(n_nodes, topology, n_switches, radix)
    tiers: "OrderedDict[str, int]" = OrderedDict()
    for switch in fabric.switches:
        tier = getattr(switch, "tier", None) or "switch"
        tiers[tier] = tiers.get(tier, 0) + 1
    uplinks = fabric.inter_switch_links()
    host_links = len(fabric.links) - len(uplinks)

    lines = ["%s fabric: %d hosts, %d switches, %d links"
             % (topology, n_nodes, len(fabric.switches), len(fabric.links))]
    lines.append("  tiers:      " + ", ".join(
        "%d %s" % (count, tier) for tier, count in tiers.items()))
    lines.append("  links:      %d host, %d inter-switch"
                 % (host_links, len(uplinks)))
    # A host link occupies one switch port, an inter-switch link two.
    ports_used = host_links + 2 * len(uplinks)
    ports_total = sum(s.nports for s in fabric.switches)
    lines.append("  ports:      %d of %d in use" % (ports_used, ports_total))

    # Redundancy: link-disjoint paths between the first same-rack,
    # adjacent-rack and cross-fabric host pairs that exist.
    first_edge = _edge_switch_of(fabric, 0)
    cross: List[Tuple[str, int]] = []
    seen: Set[int] = set()
    for other in range(1, n_nodes):
        edge = _edge_switch_of(fabric, other)
        if edge.switch_id == first_edge.switch_id or edge.switch_id in seen:
            continue
        seen.add(edge.switch_id)
        cross.append(("host0 %s <-> host%d %s"
                      % (first_edge.name, other, edge.name),
                      min_cut(fabric, first_edge.switch_id,
                              edge.switch_id)))
        if len(cross) >= 2:
            break
    if cross:
        lines.append("  redundancy (link-disjoint switch paths):")
        for label, width in cross:
            lines.append("    %-34s %d" % (label, width))
    else:
        lines.append("  redundancy: single switch, no inter-switch paths")
    return "\n".join(lines)


_TIER_RANK = {"edge": 0, "leaf": 0, "agg": 1, "spine": 1, "core": 2,
              "switch": 1}


def to_dot(n_nodes: int, topology: str = "fat-tree",
           n_switches: Optional[int] = None,
           radix: Optional[int] = None) -> str:
    """Graphviz DOT of the fabric: hosts bottom, tiers ranked upward."""
    fabric = build_graph(n_nodes, topology, n_switches, radix)
    lines = ["graph fabric {", "  rankdir=BT;",
             '  node [shape=box, fontsize=9];']
    ranks: Dict[int, List[str]] = {}
    for switch in fabric.switches:
        tier = getattr(switch, "tier", None) or "switch"
        label = "%s\\n(%s)" % (switch.name, tier)
        lines.append('  "%s" [label="%s"];' % (switch.name, label))
        ranks.setdefault(_TIER_RANK.get(tier, 1), []).append(switch.name)
    for node_id in sorted(fabric.nic_ports):
        lines.append('  "host%d" [shape=ellipse, fontsize=8];' % node_id)
    ranks.setdefault(-1, []).extend(
        "host%d" % node_id for node_id in sorted(fabric.nic_ports))
    for link in fabric.links:
        names = []
        for end in (link.end_a, link.end_b):
            if isinstance(end, SwitchPort):
                names.append(end.switch.name)
            else:
                names.append("host%d" % end.nic.node_id)
        lines.append('  "%s" -- "%s";' % tuple(names))
    for rank in sorted(ranks):
        members = "; ".join('"%s"' % name for name in ranks[rank])
        lines.append("  { rank=same; %s }" % members)
    lines.append("}")
    return "\n".join(lines)
