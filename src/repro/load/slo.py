"""The frozen SLO specification a chaos campaign is graded against.

An :class:`SloSpec` is pure data with a lossless dict/JSON round-trip
and a canonical :attr:`~SloSpec.spec_hash`, exactly like the experiment
specs in :mod:`repro.exp.spec` — a verdict document always names the
hash of the SLO it was graded against, so two campaigns are comparable
only when their hashes agree.

Latency bounds are on *delivery latency*: scheduled (open-loop) send
time to first receiver delivery, so client-side queueing and
fault-recovery stalls both count against the SLO — the coordinated-
omission-free measurement SHIFT-style evaluations use.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping

__all__ = ["SloSpec", "DEFAULT_SLO"]


@dataclass(frozen=True)
class SloSpec:
    """Per-stage service-level objectives for one load run.

    * ``p50_us``/``p99_us``/``p999_us`` — delivery-latency percentile
      bounds (µs, scheduled send → first delivery);
    * ``availability_min`` — floor on completed/offered per stage;
    * ``max_lost`` — accepted-but-never-delivered budget per stage;
    * ``max_duplicated`` — duplicate-delivery budget per stage.
    """

    p50_us: float = 5_000.0
    p99_us: float = 50_000.0
    p999_us: float = 200_000.0
    availability_min: float = 0.95
    max_lost: int = 0
    max_duplicated: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "availability_min": self.availability_min,
            "max_lost": self.max_lost,
            "max_duplicated": self.max_duplicated,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SloSpec":
        defaults = cls()
        return cls(
            p50_us=data.get("p50_us", defaults.p50_us),
            p99_us=data.get("p99_us", defaults.p99_us),
            p999_us=data.get("p999_us", defaults.p999_us),
            availability_min=data.get("availability_min",
                                      defaults.availability_min),
            max_lost=data.get("max_lost", defaults.max_lost),
            max_duplicated=data.get("max_duplicated",
                                    defaults.max_duplicated),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) \
            + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SloSpec":
        return cls.from_dict(json.loads(text))

    @property
    def spec_hash(self) -> str:
        """Stable 16-hex-digit digest of the canonical SLO JSON."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


#: The stock objectives ``slo-chaos`` grades against when the spec does
#: not override them.  Calibrated so a fault-free FTGM run passes every
#: stage with headroom, leaving latency/loss breaches attributable to
#: the injected faults.
DEFAULT_SLO = SloSpec()
