"""Production-traffic load plane: open-loop generation + SLO verdicts.

The load plane is the subsystem that retells the paper's low-overhead
story the way a production operator would ask it: *does the cluster hold
its SLOs while the fault plane is tearing links out from under live
traffic?*  It has three parts:

* :mod:`repro.load.profiles` — the staged-load profile DSL (warmup →
  ramp → plateau → spike → cooldown), pure stage arithmetic;
* :mod:`repro.load.generator` — a deterministic open-loop client
  population driving GM ports: per-client seeded arrival streams, mixed
  message sizes, connection churn and fan-in hotspots;
* :mod:`repro.load.slo` / :mod:`repro.load.verdict` — the frozen
  :class:`SloSpec` (latency percentile bounds, availability floor, loss
  budgets) and the per-stage PASS/FAIL grading engine;
* :mod:`repro.load.chaos` — the ``slo-chaos`` experiment overlaying the
  netfaults plane on live load, fault tolerance on vs off.

Everything upstream of the simulator (schedules, specs, grading) is
pure data + seeded RNG, so ``slo-chaos`` result documents are
byte-identical at equal seeds across serial, pool, fork-server and
sharded execution, telemetry on or off.
"""

from .chaos import (
    SloChaosCampaignResult,
    SloChaosConfig,
    SloChaosOutcome,
    run_slo_chaos,
)
from .generator import LoadConfig, LoadRunResult, Schedule, SendOp, build_schedule, run_load
from .profiles import PROFILE_NAMES, LoadProfile, Stage, make_profile
from .slo import SloSpec
from .verdict import SloVerdict, StageVerdict, grade_stages

__all__ = [
    "Stage",
    "LoadProfile",
    "PROFILE_NAMES",
    "make_profile",
    "SloSpec",
    "StageVerdict",
    "SloVerdict",
    "grade_stages",
    "LoadConfig",
    "SendOp",
    "Schedule",
    "LoadRunResult",
    "build_schedule",
    "run_load",
    "SloChaosConfig",
    "SloChaosOutcome",
    "SloChaosCampaignResult",
    "run_slo_chaos",
]
