"""The ``slo-chaos`` experiment: netfaults overlaid on live load.

One run: build a multi-switch cluster (FTGM or plain GM), start the
open-loop load plane (:mod:`repro.load.generator`), arm the netfaults
plane, land one fault scenario mid-profile — by default during the
plateau — and grade the whole run against a frozen
:class:`~repro.load.slo.SloSpec`.  The campaign sweeps every scenario
with fault tolerance **on** (``ftgm`` + path detectors) and **off**
(plain ``gm``), so the paper's Table 2/3 overhead story is retold as SLO
headroom: the baseline shows what fault tolerance costs under load, the
fault cells show what it buys.

Every run builds its own simulator from its own seed (the netfaults
pattern), so the campaign fans out through
:func:`repro.exp.runner.run_many` — serial, pool, fork-server or
sharded — and same-seed campaigns render byte-identical verdicts.
Grading happens on the generator's own deterministic accounting;
telemetry only ever receives a read-only harvest afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster import build_cluster
from ..netfaults.campaign import NET_SCENARIOS, inject_scenario
from ..netfaults.detector import arm_detectors
from ..netfaults.plane import NetworkFaultPlane
from ..obs.harvest import harvest_cluster, harvest_load
from ..sim import SeededRng
from .generator import LoadConfig, build_schedule, run_load
from .slo import SloSpec
from .verdict import SloVerdict, grade_stages, observe_stages

__all__ = [
    "SLO_SCENARIOS",
    "SloChaosConfig",
    "SloChaosOutcome",
    "SloChaosCampaignResult",
    "boot_slo_chaos",
    "resume_slo_chaos",
    "slo_chaos_family",
    "run_slo_chaos",
]

#: The sweep: a fault-free control cell plus every netfaults scenario.
SLO_SCENARIOS = ["baseline"] + list(NET_SCENARIOS)


@dataclass
class SloChaosConfig:
    """Parameters of one SLO-graded chaos run."""

    run_id: int
    seed: int
    scenario: str                    # "baseline" or one of NET_SCENARIOS
    flavor: str                      # "gm" | "ftgm"
    n_nodes: int = 4
    topology: str = "ring"
    n_switches: int = 2
    clients: int = 8
    profile: str = "staged-ramp"
    peak_rate: float = 1_500.0
    duration_us: float = 400_000.0
    drain_us: float = 400_000.0
    fault_frac: float = 0.45         # fault lands this far into the profile
    flap_down_us: float = 12_000.0
    corrupt_rate: float = 0.25
    slo: SloSpec = field(default_factory=SloSpec)

    def load_config(self) -> LoadConfig:
        return LoadConfig(seed=self.seed, n_nodes=self.n_nodes,
                          clients=self.clients, profile=self.profile,
                          peak_rate=self.peak_rate,
                          duration_us=self.duration_us,
                          drain_us=self.drain_us)


@dataclass
class SloChaosOutcome:
    """One run's verdict plus the whole-run accounting behind it."""

    run_id: int
    scenario: str
    flavor: str
    fault_at: float                  # relative to load start; -1 = no fault
    offered: int
    accepted: int
    rejected: int
    completed: int
    lost: int
    duplicated: int
    sends_ok: int
    sends_errored: int
    churn_executed: int
    verdict: SloVerdict

    @property
    def cell(self) -> str:
        return "%s/%s" % (self.scenario, self.flavor)


def slo_chaos_family(config: SloChaosConfig):
    """Fork-server boot family: all runs sharing a fabric + flavor."""
    return (config.flavor, config.n_nodes, config.topology,
            config.n_switches)


def boot_slo_chaos(config: SloChaosConfig):
    """Build and boot the shared pre-fault prefix (seed-independent)."""
    return build_cluster(config.n_nodes, flavor=config.flavor,
                         seed=config.seed, topology=config.topology,
                         n_switches=config.n_switches)


def run_slo_chaos(config: SloChaosConfig) -> SloChaosOutcome:
    """Run one SLO-graded chaos cell from scratch."""
    return resume_slo_chaos(boot_slo_chaos(config), config)


def resume_slo_chaos(cluster, config: SloChaosConfig, pause_at=None):
    """Overlay fault + load on a booted cluster, grade against the SLO.

    ``pause_at`` parks the run at a simulated instant and returns a
    :class:`repro.ckpt.PausedRun` instead of an outcome (snapshot /
    time-travel support); the chaos plane is seed-dependent from t=0, so
    slo-chaos pauses but never branch-shares a prefix.
    """
    rng = SeededRng(config.seed, "slo-chaos/%d" % config.run_id)
    sim = cluster.sim
    load_config = config.load_config()
    schedule = build_schedule(load_config)

    fault_at = -1.0
    plane = None
    if config.scenario != "baseline":
        plane = NetworkFaultPlane(cluster.fabric_sim, cluster.fabric,
                                  rng.spawn("plane"),
                                  tracer=cluster.tracer)
        fault_at = config.fault_frac * schedule.profile.total_duration_us
        inject_scenario(plane, cluster, rng.spawn("target"),
                        sim.now + fault_at, config.scenario,
                        n_nodes=config.n_nodes,
                        flap_down_us=config.flap_down_us,
                        corrupt_rate=config.corrupt_rate)
    if config.flavor == "ftgm":
        # Path detectors drive reroute recovery; plain GM runs without
        # them — that asymmetry *is* the experiment.
        arm_detectors(cluster)

    def grade(result) -> SloChaosOutcome:
        observations = observe_stages(result)
        verdict = grade_stages(config.slo, observations)

        harvest_cluster(cluster,
                        fault_at=result.started_at + fault_at
                        if fault_at >= 0 else None)
        harvest_load(result, observations)

        return SloChaosOutcome(
            run_id=config.run_id,
            scenario=config.scenario,
            flavor=config.flavor,
            fault_at=fault_at,
            offered=sum(obs.offered for obs in observations),
            accepted=sum(obs.accepted for obs in observations),
            rejected=sum(obs.rejected for obs in observations),
            completed=sum(obs.completed for obs in observations),
            lost=sum(obs.lost for obs in observations),
            duplicated=sum(obs.duplicated for obs in observations),
            sends_ok=result.sends_ok,
            sends_errored=result.sends_errored,
            churn_executed=result.churn_executed,
            verdict=verdict,
        )

    if pause_at is not None:
        _partial, finish_load = run_load(cluster, load_config, schedule,
                                         pause_at=pause_at)
        from ..ckpt.pause import PausedRun
        extras = {"plane": plane} if plane is not None else None
        return PausedRun(cluster, config, extras,
                         lambda: grade(finish_load()))
    return grade(run_load(cluster, load_config, schedule))


# -- the campaign --------------------------------------------------------------


@dataclass
class SloChaosCampaignResult:
    """Aggregate of one slo-chaos campaign: the FT on/off verdict matrix."""

    seed: int
    outcomes: List[SloChaosOutcome]
    by_cell: Dict[str, List[SloChaosOutcome]] = field(init=False)

    def __post_init__(self) -> None:
        self.by_cell = {}
        for outcome in self.outcomes:
            self.by_cell.setdefault(outcome.cell, []).append(outcome)

    def scenarios(self) -> List[str]:
        seen = {outcome.scenario for outcome in self.outcomes}
        return [s for s in SLO_SCENARIOS if s in seen] + \
            sorted(s for s in seen if s not in SLO_SCENARIOS)

    def cell_verdict(self, scenario: str, flavor: str) -> Optional[str]:
        """"pass" only if every run of the cell passed; None if absent."""
        runs = self.by_cell.get("%s/%s" % (scenario, flavor))
        if not runs:
            return None
        return "pass" if all(r.verdict.passed for r in runs) else "fail"

    def render(self) -> str:
        slo_hashes = sorted({outcome.verdict.slo_hash
                             for outcome in self.outcomes})
        lines = [
            "SLO chaos campaign (seed=%d, %d runs, slo=%s)"
            % (self.seed, len(self.outcomes), ",".join(slo_hashes) or "-"),
            "%-18s %-6s %-8s %10s %10s %6s %6s  %s"
            % ("Scenario", "flavor", "verdict", "avail", "worst-p99",
               "lost", "dup", "breached stages"),
        ]
        for scenario in self.scenarios():
            for flavor in ("ftgm", "gm"):
                runs = self.by_cell.get("%s/%s" % (scenario, flavor))
                if not runs:
                    continue
                stages = [s for r in runs for s in r.verdict.stages]
                avail = min((s.availability for s in stages), default=1.0)
                p99s = [s.p99_us for s in stages if s.p99_us is not None]
                worst_p99 = max(p99s) if p99s else None
                breached = sorted({s.stage for r in runs
                                   for s in r.verdict.failed_stages()})
                lines.append("%-18s %-6s %-8s %10.4f %10s %6d %6d  %s" % (
                    scenario, flavor,
                    self.cell_verdict(scenario, flavor),
                    avail,
                    "%.1fms" % (worst_p99 / 1_000.0)
                    if worst_p99 is not None else "-",
                    sum(r.lost for r in runs),
                    sum(r.duplicated for r in runs),
                    ",".join(breached) if breached else "-"))
        lines.append("")
        lines.append("Verdict matrix (fault tolerance on vs off):")
        for scenario in self.scenarios():
            on = self.cell_verdict(scenario, "ftgm") or "-"
            off = self.cell_verdict(scenario, "gm") or "-"
            lines.append("  %-18s FT on: %-4s   FT off: %-4s"
                         % (scenario, on, off))
        return "\n".join(lines)
