"""The SLO verdict engine: stage observations in, PASS/FAIL out.

Grading is two steps, both deterministic and simulator-free:

1. :func:`observe_stages` folds a :class:`~repro.load.generator.
   LoadRunResult` into one :class:`StageObservation` per profile stage —
   offered/accepted/completed/lost/duplicated counts plus a
   delivery-latency :class:`~repro.obs.metrics.Histogram` on the
   fine-grained ``LATENCY_BUCKETS`` edges.
2. :func:`grade_stages` checks each observation against a frozen
   :class:`~repro.load.slo.SloSpec` and emits a :class:`SloVerdict` —
   overall ``"pass"``/``"fail"`` with per-stage breach strings naming
   the objective violated and the measured value.

The histograms here are plain local data structures, *not* the telemetry
registry — verdicts must be byte-identical with telemetry on or off, so
the registry only ever receives a read-only copy of these observations
(see :func:`repro.obs.harvest.harvest_load`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs.metrics import LATENCY_BUCKETS, Histogram
from .slo import SloSpec

__all__ = [
    "StageObservation",
    "StageVerdict",
    "SloVerdict",
    "observe_stages",
    "grade_stages",
]


@dataclass
class StageObservation:
    """Raw per-stage accounting of one load run.

    * ``offered`` — sends scheduled during the stage (open-loop arrivals);
    * ``accepted`` — offered sends the port actually took;
    * ``rejected`` — offered − accepted (token exhaustion, closed port);
    * ``completed`` — accepted sends delivered at least once;
    * ``lost`` — accepted − completed;
    * ``duplicated`` — deliveries beyond the first, summed;
    * ``latency`` — first-delivery latency from the *scheduled* send
      time, in µs.
    """

    name: str
    offered: int = 0
    accepted: int = 0
    completed: int = 0
    duplicated: int = 0
    latency: Histogram = field(
        default_factory=lambda: Histogram(edges=LATENCY_BUCKETS))

    @property
    def rejected(self) -> int:
        return self.offered - self.accepted

    @property
    def lost(self) -> int:
        return self.accepted - self.completed

    @property
    def availability(self) -> float:
        """Completed fraction of offered load (1.0 on an idle stage)."""
        if self.offered == 0:
            return 1.0
        return self.completed / self.offered


@dataclass
class StageVerdict:
    """One stage graded against the SLO; part of the result document."""

    stage: str
    verdict: str                       # "pass" | "fail"
    breaches: List[str]
    offered: int
    accepted: int
    rejected: int
    completed: int
    lost: int
    duplicated: int
    availability: float
    p50_us: Optional[float]
    p99_us: Optional[float]
    p999_us: Optional[float]


@dataclass
class SloVerdict:
    """The whole run graded: fails if any stage fails."""

    verdict: str                       # "pass" | "fail"
    slo_hash: str
    stages: List[StageVerdict]

    @property
    def passed(self) -> bool:
        return self.verdict == "pass"

    def failed_stages(self) -> List[StageVerdict]:
        return [stage for stage in self.stages if stage.verdict != "pass"]


def observe_stages(result) -> List[StageObservation]:
    """Fold a :class:`LoadRunResult` into per-stage observations."""
    profile = result.schedule.profile
    observations = [StageObservation(name=stage.name)
                    for stage in profile.stages]
    for op in result.schedule.ops:
        obs = observations[op.stage]
        obs.offered += 1
        if result.accepted.get(op.index):
            obs.accepted += 1
        count = result.deliveries.get(op.index, 0)
        if count > 0:
            obs.completed += 1
            obs.duplicated += count - 1
            latency = result.latency_of(op)
            if latency is not None:
                obs.latency.observe(latency)
    return observations


def _grade_one(spec: SloSpec, obs: StageObservation) -> StageVerdict:
    breaches: List[str] = []
    bounds: Tuple[Tuple[str, float, Optional[float]], ...] = (
        ("p50", spec.p50_us, obs.latency.percentile(50.0)),
        ("p99", spec.p99_us, obs.latency.percentile(99.0)),
        ("p999", spec.p999_us, obs.latency.percentile(99.9)),
    )
    for label, bound, measured in bounds:
        if measured is not None and measured > bound:
            breaches.append("%s %.1fus > %.1fus" % (label, measured, bound))
    if obs.availability < spec.availability_min:
        breaches.append("availability %.4f < %.4f"
                        % (obs.availability, spec.availability_min))
    if obs.lost > spec.max_lost:
        breaches.append("lost %d > %d" % (obs.lost, spec.max_lost))
    if obs.duplicated > spec.max_duplicated:
        breaches.append("duplicated %d > %d"
                        % (obs.duplicated, spec.max_duplicated))
    return StageVerdict(
        stage=obs.name,
        verdict="pass" if not breaches else "fail",
        breaches=breaches,
        offered=obs.offered,
        accepted=obs.accepted,
        rejected=obs.rejected,
        completed=obs.completed,
        lost=obs.lost,
        duplicated=obs.duplicated,
        availability=obs.availability,
        p50_us=obs.latency.percentile(50.0),
        p99_us=obs.latency.percentile(99.0),
        p999_us=obs.latency.percentile(99.9),
    )


def grade_stages(spec: SloSpec,
                 observations: List[StageObservation]) -> SloVerdict:
    """Grade every stage; the run passes only if every stage does."""
    stages = [_grade_one(spec, obs) for obs in observations]
    verdict = "pass" if all(s.verdict == "pass" for s in stages) else "fail"
    return SloVerdict(verdict=verdict, slo_hash=spec.spec_hash,
                      stages=stages)
