"""The staged-load profile DSL: pure stage arithmetic, no simulator.

A :class:`LoadProfile` is a sequence of :class:`Stage` segments, each
holding an offered-rate ramp (messages/second of simulated time across
the whole client population) over a duration.  The shapes mirror k6's
staged load tests — warmup, ramp, plateau, spike, cooldown — so a chaos
campaign grades recovery under the same traffic envelope a production
soak test would use.

Everything here is frozen data and closed-form arithmetic
(:meth:`Stage.rate_at` is a linear interpolation,
:meth:`Stage.expected_messages` the trapezoid integral), which is what
lets the SLO verdict engine attribute every message to a stage without
consulting the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

__all__ = ["Stage", "LoadProfile", "PROFILE_NAMES", "make_profile"]


@dataclass(frozen=True)
class Stage:
    """One profile segment: a linear offered-rate ramp over a duration.

    ``start_rate``/``end_rate`` are offered messages per second of
    simulated time, summed over the entire client population.
    """

    name: str
    duration_us: float
    start_rate: float
    end_rate: float

    def rate_at(self, dt_us: float) -> float:
        """Offered rate ``dt_us`` microseconds into the stage."""
        if self.duration_us <= 0.0:
            return self.end_rate
        frac = min(max(dt_us / self.duration_us, 0.0), 1.0)
        return self.start_rate + (self.end_rate - self.start_rate) * frac

    def expected_messages(self) -> float:
        """Trapezoid integral: mean rate x duration (messages offered)."""
        return (self.start_rate + self.end_rate) / 2.0 \
            * (self.duration_us / 1_000_000.0)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "duration_us": self.duration_us,
                "start_rate": self.start_rate, "end_rate": self.end_rate}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Stage":
        return cls(name=data["name"], duration_us=data["duration_us"],
                   start_rate=data["start_rate"], end_rate=data["end_rate"])


@dataclass(frozen=True)
class LoadProfile:
    """A named sequence of stages; times are relative to profile start."""

    name: str
    stages: Tuple[Stage, ...]

    @property
    def total_duration_us(self) -> float:
        return sum(stage.duration_us for stage in self.stages)

    def stage_bounds(self) -> List[Tuple[float, float]]:
        """Per-stage ``[start, end)`` windows relative to profile start."""
        bounds = []
        at = 0.0
        for stage in self.stages:
            bounds.append((at, at + stage.duration_us))
            at += stage.duration_us
        return bounds

    def stage_index_at(self, t_us: float) -> int:
        """Index of the stage owning relative time ``t_us``.

        Times at or past the profile end belong to the last stage (the
        drain window inherits the final stage's accounting).
        """
        at = 0.0
        for index, stage in enumerate(self.stages):
            at += stage.duration_us
            if t_us < at:
                return index
        return len(self.stages) - 1

    def rate_at(self, t_us: float) -> float:
        """Offered rate at relative time ``t_us`` (0 past the end)."""
        at = 0.0
        for stage in self.stages:
            if t_us < at + stage.duration_us:
                return stage.rate_at(t_us - at)
            at += stage.duration_us
        return 0.0

    def expected_messages(self) -> float:
        return sum(stage.expected_messages() for stage in self.stages)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name,
                "stages": [stage.to_dict() for stage in self.stages]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LoadProfile":
        return cls(name=data["name"],
                   stages=tuple(Stage.from_dict(s)
                                for s in data["stages"]))


# -- built-in shapes -----------------------------------------------------------
#
# Fractions follow the k6 staged-load chaos test shape: a gentle warmup,
# a linear ramp to the plateau, a sustained plateau carrying most of the
# traffic, a short 2x spike, and a cooldown ramp back down.  ``peak_rate``
# and ``duration_us`` scale the whole envelope without changing its shape.


def _staged_ramp(peak_rate: float, duration_us: float) -> LoadProfile:
    return LoadProfile("staged-ramp", (
        Stage("warmup", 0.15 * duration_us, 0.2 * peak_rate, 0.2 * peak_rate),
        Stage("ramp", 0.20 * duration_us, 0.2 * peak_rate, peak_rate),
        Stage("plateau", 0.40 * duration_us, peak_rate, peak_rate),
        Stage("spike", 0.10 * duration_us, 2.0 * peak_rate, 2.0 * peak_rate),
        Stage("cooldown", 0.15 * duration_us, peak_rate, 0.2 * peak_rate),
    ))


def _steady(peak_rate: float, duration_us: float) -> LoadProfile:
    return LoadProfile("steady", (
        Stage("plateau", duration_us, peak_rate, peak_rate),
    ))


def _spike_train(peak_rate: float, duration_us: float) -> LoadProfile:
    """Alternating calm/spike segments — flapping-load worst case."""
    segment = duration_us / 6.0
    stages = []
    for i in range(3):
        stages.append(Stage("calm%d" % i, segment,
                            0.3 * peak_rate, 0.3 * peak_rate))
        stages.append(Stage("spike%d" % i, segment,
                            2.0 * peak_rate, 2.0 * peak_rate))
    return LoadProfile("spike-train", tuple(stages))


_BUILDERS = {
    "staged-ramp": _staged_ramp,
    "steady": _steady,
    "spike-train": _spike_train,
}

PROFILE_NAMES: Tuple[str, ...] = tuple(_BUILDERS)


def make_profile(name: str, peak_rate: float,
                 duration_us: float) -> LoadProfile:
    """Instantiate a built-in profile shape at a rate/duration scale."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError("unknown load profile %r (have: %s)"
                         % (name, ", ".join(PROFILE_NAMES)))
    if peak_rate <= 0.0:
        raise ValueError("peak_rate must be positive, got %r" % (peak_rate,))
    if duration_us <= 0.0:
        raise ValueError("duration_us must be positive, got %r"
                         % (duration_us,))
    return builder(peak_rate, duration_us)
