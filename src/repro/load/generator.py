"""Deterministic open-loop load generation over GM ports.

The generator has two halves, split so determinism is easy to audit:

1. :func:`build_schedule` is **pure**: it expands a :class:`LoadConfig`
   into a fully materialized per-run schedule — every send's arrival
   time, source client, destination node, size and payload fingerprint,
   plus every connection-churn event — using one :class:`SeededRng`
   stream *per client* (and per churn lane), so adding clients or
   reordering generation can never perturb an existing client's
   arrivals.  Equal configs produce equal schedules in every process.

2. :func:`run_load` **drives** a schedule against a booted cluster:
   one sender process per node multiplexes that node's clients onto a
   GM port open-loop (arrivals never wait for completions; a dry send
   token is a *rejected* send, not a stall), receivers match deliveries
   back to schedule entries by payload fingerprint, and churn events
   close/reopen the node's send port mid-traffic.

Delivery latency is measured from the **scheduled** arrival time, not
the moment the send finally got posted — the open-loop convention that
makes queueing delay and recovery stalls visible instead of silently
self-throttling around them (no coordinated omission).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import GmError, GmNoTokens
from ..payload import Payload
from ..sim import SeededRng
from ..workloads.pair import check_nodes
from .profiles import LoadProfile, make_profile

__all__ = [
    "SEND_PORT",
    "SEND_PORTS",
    "RECV_PORT",
    "LoadConfig",
    "SendOp",
    "ChurnOp",
    "Schedule",
    "LoadRunResult",
    "build_schedule",
    "run_load",
]

#: Send ports, cycled through by connection churn.  Under FTGM a
#: sequence-number stream is keyed by (remote node, local port) and the
#: numbers are host-generated per port — reopening the *same* port id
#: would restart its stream at 0 and the receiver's Go-Back-N state
#: would discard the restarted stream as stale.  A churned connection
#: therefore reopens on a fresh port id (a reconnecting client gets a
#: new port), which also bounds churn events per node to
#: ``len(SEND_PORTS) - 1``.
SEND_PORTS = (3, 5, 6, 7)
SEND_PORT = SEND_PORTS[0]
RECV_PORT = 4

#: Default mixed message-size distribution: mostly small control-sized
#: messages, some mid-sized, a tail of full-chunk payloads.
DEFAULT_SIZE_MIX: Tuple[Tuple[int, float], ...] = (
    (64, 0.55), (512, 0.30), (4096, 0.15),
)


@dataclass(frozen=True)
class LoadConfig:
    """Everything that determines one load run's schedule."""

    seed: int
    n_nodes: int
    clients: int
    profile: str = "staged-ramp"
    peak_rate: float = 2_000.0          # offered msgs/s, whole population
    duration_us: float = 1_000_000.0    # profile envelope length
    size_mix: Tuple[Tuple[int, float], ...] = DEFAULT_SIZE_MIX
    hotspot_node: int = 0               # fan-in target
    hotspot_weight: float = 0.25        # fraction of traffic aimed at it
    churn_per_node: int = 1             # port close/reopen events per node
    churn_down_us: float = 4_000.0      # reconnect downtime
    drain_us: float = 250_000.0         # post-profile settle window

    def make_profile(self) -> LoadProfile:
        return make_profile(self.profile, self.peak_rate, self.duration_us)


@dataclass(frozen=True)
class SendOp:
    """One scheduled open-loop send (times relative to run start)."""

    index: int          # global, unique: doubles as the payload tag
    at_us: float
    client: int
    src: int
    dst: int
    size: int
    stage: int


@dataclass(frozen=True)
class ChurnOp:
    """One scheduled connection churn: close the node's send port,
    stay down for ``down_us``, reopen."""

    at_us: float
    node: int
    down_us: float


@dataclass
class Schedule:
    """A materialized load schedule, ready to drive (or to analyze)."""

    config: LoadConfig
    profile: LoadProfile
    ops: List[SendOp]                       # sorted by (at_us, index)
    churn: List[ChurnOp]
    by_src: Dict[int, List[SendOp]] = field(init=False)
    by_dst: Dict[int, Dict[int, SendOp]] = field(init=False)

    def __post_init__(self) -> None:
        self.by_src = {}
        self.by_dst = {}
        for op in self.ops:
            self.by_src.setdefault(op.src, []).append(op)
            self.by_dst.setdefault(op.dst, {})[
                Payload.phantom(op.size, tag=_payload_tag(op.index))
                .fingerprint] = op

    def max_size(self) -> int:
        return max((op.size for op in self.ops), default=1)


def _payload_tag(index: int) -> int:
    """Payload tag for schedule entry ``index``.

    Offset past the small tag space other workloads use (ping 0xA,
    pong 0xB, pattern seeds...) so load fingerprints cannot collide
    with concurrent non-load traffic.
    """
    return 0x10AD_0000 + index


def op_payload(op: SendOp) -> Payload:
    """The (phantom) payload of a schedule entry."""
    return Payload.phantom(op.size, tag=_payload_tag(op.index))


def _pick_size(rng: SeededRng,
               mix: Tuple[Tuple[int, float], ...]) -> int:
    total = sum(weight for _size, weight in mix)
    draw = rng.random() * total
    acc = 0.0
    for size, weight in mix:
        acc += weight
        if draw < acc:
            return size
    return mix[-1][0]


def _pick_dst(rng: SeededRng, src: int, config: LoadConfig) -> int:
    """Fan-in hotspot targeting: ``hotspot_weight`` of traffic converges
    on ``hotspot_node``; the rest spreads uniformly over other nodes."""
    hotspot = config.hotspot_node
    if src != hotspot and rng.random() < config.hotspot_weight:
        return hotspot
    dst = rng.randrange(config.n_nodes - 1)
    if dst >= src:
        dst += 1
    return dst


def _client_arrivals(rng: SeededRng, profile: LoadProfile,
                     share: float) -> List[float]:
    """Open-loop Poisson arrival times for one client.

    ``share`` is the client's fraction of the population rate.  The
    inter-arrival draw uses the instantaneous profile rate, so ramps
    thin/thicken the stream stage by stage.
    """
    times: List[float] = []
    now = 0.0
    end = profile.total_duration_us
    while now < end:
        rate = profile.rate_at(now) * share       # msgs per second
        if rate <= 0.0:
            now += 1_000.0                         # idle hop past a gap
            continue
        now += rng.expovariate(rate) * 1_000_000.0
        if now < end:
            times.append(now)
    return times


def build_schedule(config: LoadConfig) -> Schedule:
    """Expand a config into the full deterministic schedule (pure)."""
    if config.n_nodes < 2:
        raise ValueError("load plane needs >= 2 nodes, got %d"
                         % config.n_nodes)
    check_nodes(range(config.n_nodes), [config.hotspot_node])
    if config.clients < 1:
        raise ValueError("need at least one client, got %d"
                         % config.clients)
    if config.churn_per_node > len(SEND_PORTS) - 1:
        raise ValueError(
            "churn_per_node %d exceeds the %d reconnect port ids"
            % (config.churn_per_node, len(SEND_PORTS) - 1))
    if not config.size_mix:
        raise ValueError("size_mix must not be empty")
    profile = config.make_profile()
    share = 1.0 / config.clients

    # Per-client streams: arrival times first, then per-arrival draws
    # (destination, size) from the same stream — one client's schedule
    # never depends on another client's.
    entries: List[Tuple[float, int, int, int, int]] = []
    for client in range(config.clients):
        rng = SeededRng(config.seed, "load/client/%d" % client)
        src = client % config.n_nodes
        for at in _client_arrivals(rng, profile, share):
            dst = _pick_dst(rng, src, config)
            size = _pick_size(rng, config.size_mix)
            entries.append((at, client, src, dst, size))
    entries.sort(key=lambda e: (e[0], e[1]))
    ops = [SendOp(index=index, at_us=at, client=client, src=src, dst=dst,
                  size=size, stage=profile.stage_index_at(at))
           for index, (at, client, src, dst, size) in enumerate(entries)]

    churn: List[ChurnOp] = []
    if config.churn_per_node > 0:
        for node in range(config.n_nodes):
            rng = SeededRng(config.seed, "load/churn/%d" % node)
            window = profile.total_duration_us
            for _ in range(config.churn_per_node):
                at = rng.uniform(0.2 * window, 0.85 * window)
                churn.append(ChurnOp(at_us=at, node=node,
                                     down_us=config.churn_down_us))
        churn.sort(key=lambda c: (c.at_us, c.node))

    return Schedule(config=config, profile=profile, ops=ops, churn=churn)


@dataclass
class LoadRunResult:
    """Everything observed while driving one schedule."""

    schedule: Schedule
    started_at: float                    # absolute sim time of t=0
    horizon: float                       # absolute end of observation
    accepted: Dict[int, bool] = field(default_factory=dict)
    deliveries: Dict[int, int] = field(default_factory=dict)
    first_delivery: Dict[int, float] = field(default_factory=dict)
    sends_ok: int = 0
    sends_errored: int = 0
    rejected: int = 0
    unknown_deliveries: int = 0
    churn_executed: int = 0

    def latency_of(self, op: SendOp) -> Optional[float]:
        """First-delivery latency from the *scheduled* send time."""
        at = self.first_delivery.get(op.index)
        if at is None:
            return None
        return at - (self.started_at + op.at_us)


def run_load(cluster, config: LoadConfig,
             schedule: Optional[Schedule] = None,
             pause_at: Optional[float] = None):
    """Drive one load schedule against a booted cluster.

    The caller may pass a prebuilt ``schedule`` (the chaos runner does,
    so it can aim faults at scheduled hotspots); otherwise one is built
    from the config.  Runs the simulator up to profile end + drain and
    returns the raw observations — grading lives in
    :mod:`repro.load.verdict`.

    With ``pause_at`` (an absolute simulated instant), the run stops at
    that time instead and a ``(result, finish)`` pair comes back:
    ``result`` is the accounting-so-far (still mutating) and ``finish()``
    drives the remaining schedule to the horizon and returns it settled —
    the split behind ``repro snapshot`` for load-plane runs.
    """
    if len(cluster) != config.n_nodes:
        raise ValueError("config says %d nodes but cluster has %d"
                         % (config.n_nodes, len(cluster)))
    if schedule is None:
        schedule = build_schedule(config)
    sim = cluster.sim
    start = sim.now
    horizon = start + schedule.profile.total_duration_us + config.drain_us
    result = LoadRunResult(schedule=schedule, started_at=start,
                           horizon=horizon)
    sampler = getattr(cluster, "sampler", None)
    if sampler is not None:
        from ..obs.timeseries import register_load_tracks
        register_load_tracks(sampler, result)
    max_size = schedule.max_size()

    def _sent_cb(outcome) -> None:
        if outcome.ok:
            result.sends_ok += 1
        else:
            result.sends_errored += 1

    def sender(node):
        # This node's merged op stream: scheduled sends plus churn
        # events, in time order (churn ties sort before the send they
        # would have raced — the send then goes out on the fresh port).
        ops: List[Tuple[float, int, object]] = \
            [(op.at_us, 1, op) for op in schedule.by_src.get(node.node_id, [])]
        ops += [(c.at_us, 0, c) for c in schedule.churn
                if c.node == node.node_id]
        ops.sort(key=lambda item: (item[0], item[1]))
        port_index = 0
        port = yield from node.driver.open_port(SEND_PORTS[port_index])
        for at, _kind, op in ops:
            due = start + at
            # Pace open-loop: pump port events (completions, recovery
            # notifications) while waiting — receive() returns on every
            # event, so loop until the arrival is actually due.
            while sim.now < due:
                if port is not None and port.open:
                    yield from port.receive(timeout=due - sim.now)
                else:
                    yield sim.timeout(due - sim.now)
            if isinstance(op, ChurnOp):
                if port is not None and port.open:
                    yield from port.close()
                down_until = sim.now + op.down_us
                while sim.now < down_until:
                    yield sim.timeout(down_until - sim.now)
                port_index += 1
                port = yield from node.driver.open_port(
                    SEND_PORTS[port_index])
                result.churn_executed += 1
                continue
            try:
                yield from port.send(op_payload(op), op.dst, RECV_PORT,
                                     callback=_sent_cb, context=op.index)
                result.accepted[op.index] = True
            except (GmNoTokens, GmError):
                # Open-loop overload shedding: the arrival happened, the
                # client got turned away.  Counts against availability.
                result.rejected += 1
                result.accepted[op.index] = False
        # Schedule exhausted: keep pumping completions until the horizon
        # so callbacks and recovery events are processed.
        while sim.now < horizon:
            if port is not None and port.open:
                yield from port.receive(timeout=horizon - sim.now)
            else:
                yield sim.timeout(horizon - sim.now)

    def receiver(node):
        expected = schedule.by_dst.get(node.node_id, {})
        port = yield from node.driver.open_port(RECV_PORT)
        outstanding = min(8, max(len(expected), 1))
        for _ in range(outstanding):
            yield from port.provide_receive_buffer(max_size)
        while sim.now < horizon:
            event = yield from port.receive_message(
                timeout=horizon - sim.now)
            if event is None:
                continue
            fingerprint = event.payload.fingerprint \
                if event.payload is not None else None
            op = expected.get(fingerprint)
            if op is None:
                result.unknown_deliveries += 1
            else:
                count = result.deliveries.get(op.index, 0)
                result.deliveries[op.index] = count + 1
                if count == 0:
                    result.first_delivery[op.index] = sim.now
            yield from port.provide_receive_buffer(max_size)

    for node in cluster.nodes:
        node.host.spawn(receiver(node), "load-rcv%d" % node.node_id)
    for node in cluster.nodes:
        node.host.spawn(sender(node), "load-snd%d" % node.node_id)

    def drive(limit: float) -> None:
        while True:
            next_at = sim.peek()
            if next_at > limit:
                break
            sim.run(until=min(next_at + 10_000.0, limit))

    if pause_at is not None:
        limit = min(pause_at, horizon)
        drive(limit)
        sim.run(until=limit)

        def finish() -> LoadRunResult:
            drive(horizon)
            return result

        return result, finish
    drive(horizon)
    return result
