"""Snapshot files: versioned logical checkpoints of a paused run.

A snapshot file (format v1) is canonical JSON holding the boot recipe
(experiment name + full spec), the run index within the expanded spec,
the pause instant, and the complete per-layer state capture sealed with
its ``state_hash``::

    {"snapshot": 1, "experiment": ..., "spec": {...}, "run_index": N,
     "at_us": t, "capture": {"state": ..., "state_hash": ...}}

Nothing in the file depends on wall-clock time or the writing process,
so snapshot -> restore -> snapshot reproduces the file byte for byte.
Restore rebuilds the cluster from the recipe, replays the deterministic
prefix to ``at_us``, re-captures, and refuses (:class:`SnapshotMismatch`)
if the hashes differ — which is exactly what makes a snapshot safe to
ship to another machine: the receiving side proves it reconstructed the
same simulated instant before trusting it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from .capture import canonical_json
from .pause import PausedRun

__all__ = [
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotMismatch",
    "take_snapshot",
    "write_snapshot",
    "load_snapshot",
    "restore_snapshot",
    "restore_and_step",
]

SNAPSHOT_VERSION = 1


class SnapshotMismatch(ValueError):
    """A snapshot does not match what this tree reconstructs."""


@dataclass
class Snapshot:
    """One logical checkpoint; see module docstring for the file form."""

    experiment: str
    spec: Dict[str, Any]
    run_index: int
    at_us: float
    capture: Dict[str, Any]

    @property
    def state_hash(self) -> str:
        return self.capture["state_hash"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "snapshot": SNAPSHOT_VERSION,
            "experiment": self.experiment,
            "spec": self.spec,
            "run_index": self.run_index,
            "at_us": self.at_us,
            "capture": self.capture,
        }


def _pause_run(spec, run_index: int, at_us: float) -> PausedRun:
    """Boot the run's family and replay its prefix to ``at_us``."""
    from ..exp.registry import get_experiment

    experiment = get_experiment(spec.experiment)
    if experiment.boot is None or experiment.resume is None \
            or experiment.pause is None:
        raise SnapshotMismatch(
            "experiment %r does not support snapshots (no pauseable "
            "boot/resume split)" % spec.experiment)
    configs = experiment.expand(spec)
    if not 0 <= run_index < len(configs):
        raise SnapshotMismatch(
            "run index %d outside the spec's %d runs"
            % (run_index, len(configs)))
    config = configs[run_index]
    state = experiment.boot(config)
    return experiment.pause(state, config, at_us)


def take_snapshot(spec, at_us: float, run_index: int = 0) -> Snapshot:
    """Capture run ``run_index`` of ``spec`` at simulated time ``at_us``."""
    paused = _pause_run(spec, run_index, at_us)
    return Snapshot(experiment=spec.experiment, spec=spec.to_dict(),
                    run_index=run_index, at_us=paused.now,
                    capture=paused.capture())


def write_snapshot(snapshot: Snapshot, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(canonical_json(snapshot.to_dict()) + "\n")


def load_snapshot(path: str) -> Snapshot:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("snapshot") != SNAPSHOT_VERSION:
        raise SnapshotMismatch(
            "%s has snapshot version %r, want %d"
            % (path, data.get("snapshot"), SNAPSHOT_VERSION))
    return Snapshot(experiment=data["experiment"], spec=data["spec"],
                    run_index=data["run_index"], at_us=data["at_us"],
                    capture=data["capture"])


def _spec_of(snapshot: Snapshot):
    from ..exp.spec import ExperimentSpec

    return ExperimentSpec.from_dict(snapshot.spec)


def restore_snapshot(snapshot: Union[Snapshot, str],
                     verify: bool = True) -> PausedRun:
    """Rebuild the snapshot's simulated instant; verify the state hash.

    Returns the live :class:`PausedRun`.  With ``verify`` (the default)
    the restored instant is re-captured and its ``state_hash`` compared
    against the snapshot's — a mismatch means the tree, spec, or replay
    no longer reproduces the checkpointed state, and restoring would
    silently diverge.
    """
    if isinstance(snapshot, str):
        snapshot = load_snapshot(snapshot)
    spec = _spec_of(snapshot)
    paused = _pause_run(spec, snapshot.run_index, snapshot.at_us)
    if verify:
        capture = paused.capture()
        if capture["state_hash"] != snapshot.state_hash:
            raise SnapshotMismatch(
                "restored state hash %s != snapshot %s — the replay no "
                "longer reproduces the checkpointed instant"
                % (capture["state_hash"], snapshot.state_hash))
    return paused


def restore_and_step(snapshot: Union[Snapshot, str],
                     step_us: float = 0.0,
                     verify: bool = True) -> PausedRun:
    """Time-travel entry point: restore, then advance ``step_us``.

    The returned :class:`PausedRun` is live — inspect the cluster, step
    again, or ``finish()`` it to get the run's classified outcome
    without ever re-running the prefix from zero.
    """
    paused = restore_snapshot(snapshot, verify=verify)
    if step_us > 0:
        paused.step(step_us)
    return paused
