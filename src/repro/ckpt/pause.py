"""Paused runs: the live handle behind snapshots and time-travel debug.

A resume function invoked with ``pause_at=<t_us>`` drives its workload
up to simulated time ``t`` and hands back a :class:`PausedRun` instead
of an outcome: the cluster is live, every process is parked exactly
where the event wheel left it, and the caller can inspect state, step
the clock forward, capture a snapshot, or finish the run.  This is the
"re-enter a failed run just before the fault" workflow from
docs/CHECKPOINT.md — no re-run from zero.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .capture import capture_state

__all__ = ["PausedRun"]


class PausedRun:
    """A run paused mid-flight at a simulated instant.

    ``extras`` carries the run-scoped stateful objects that live outside
    the cluster (the netfaults plane, armed detectors) so captures see
    them; ``finish()`` resumes the run's own drive loop and returns the
    classified outcome.
    """

    def __init__(self, cluster, config, extras: Optional[Dict[str, Any]],
                 finish: Callable[[], Any]):
        self.cluster = cluster
        self.config = config
        self.extras = extras or {}
        self._finish = finish
        self.finished = False

    @property
    def now(self) -> float:
        return self.cluster.sim.now

    def step(self, dt_us: float) -> float:
        """Advance the simulation by ``dt_us``; returns the new clock."""
        return self.run_until(self.cluster.sim.now + dt_us)

    def run_until(self, at_us: float) -> float:
        """Advance the simulation to absolute time ``at_us``."""
        if self.finished:
            raise RuntimeError("run already finished")
        self.cluster.sim.run(until=at_us)
        return self.cluster.sim.now

    def capture(self) -> Dict[str, Any]:
        """Canonical state capture of this instant (see ckpt.capture)."""
        return capture_state(self.cluster, self.extras)

    def finish(self) -> Any:
        """Drive the run to completion and classify; returns the outcome."""
        if self.finished:
            raise RuntimeError("run already finished")
        self.finished = True
        return self._finish()
