"""Versioned, deterministic serialization of complete simulator state.

The ROADMAP's checkpoint/restart item, following Transparent
Checkpoint-Restart over InfiniBand (arXiv:1312.3938), calls for snapshot
-> disk -> resume/branch of a whole simulated cluster.  CPython cannot
pickle live generator frames, so a snapshot here is a **logical
checkpoint**: the boot recipe (experiment + spec), the pause point, and
a canonical capture of every stateful layer's declared snapshot state,
sealed with a ``state_hash``.  Restore rebuilds the cluster from the
recipe, replays the deterministic prefix to the pause point, and proves
equivalence by re-capturing and comparing hashes — snapshot -> restore
-> snapshot is byte-identical by construction.  docs/CHECKPOINT.md
documents the format and every layer's contract.
"""

from .capture import capture_state, state_hash
from .snapshot import (
    Snapshot,
    SnapshotMismatch,
    load_snapshot,
    restore_and_step,
    restore_snapshot,
    take_snapshot,
    write_snapshot,
)

__all__ = [
    "capture_state",
    "state_hash",
    "Snapshot",
    "SnapshotMismatch",
    "take_snapshot",
    "write_snapshot",
    "load_snapshot",
    "restore_snapshot",
    "restore_and_step",
]
