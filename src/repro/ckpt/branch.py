"""Branch-at-injection: fork per-run branches from a shared live prefix.

The fork-server (PR 4) amortizes the *boot*; this layer amortizes the
whole **pre-injection window**.  A branch group's parent process boots
the scenario family once and runs the shared, seed-independent prefix of
the workload.  At each divergence gate — the message index an injection
lands on, or the simulated instant a network fault fires — the parent
``os.fork()``\\ s one copy-on-write child per run branching there.  The
child adopts its run's resolved parameters, continues the simulation
naturally to classification, spools its outcome frame, and exits; the
parent never injects anything and keeps streaming to serve later gates.

Byte-identity argument (docs/CHECKPOINT.md has the long form): the
parent's trajectory up to a gate is exactly the trajectory every cold
run of the family executes up to that gate — boot and workload prefix
are seed-independent, per-run RNG draws are pure (no simulation side
effects), and gates are synchronous calls invisible to the event wheel.
A forked child therefore holds, bit for bit, the state a cold run holds
at its own injection point: every tie-break counter, heap entry, RNG
stream and SRAM byte.  Time-keyed gates additionally require that the
per-run fault arming consumed its wheel ids in the shared prefix — the
netfaults plane arms *placeholder* waiters there and the child rewrites
their wheel entries to the run's true fire times (same entries, same
tie-break seqs, true ``when``), which :mod:`repro.netfaults.plane`
implements.

Outcome frames use the fork-server's wire format and travel through
per-run spool files (atomic rename), so arbitrarily large frames —
telemetry envelopes included — never deadlock against a parent that is
deep inside the simulation when the child finishes.
"""

from __future__ import annotations

import os
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["BranchPlan", "Brancher", "BranchController",
           "branching_available", "frame_bytes"]


def branching_available() -> bool:
    """Branch execution needs POSIX fork (and honors the fork-server
    escape hatches, since a branch *is* a fork-server refinement)."""
    if os.environ.get("REPRO_FORKSERVER", "1") == "0":
        return False
    if os.environ.get("REPRO_MP_START_METHOD", "fork") != "fork":
        return False
    return hasattr(os, "fork")


def frame_bytes(obj: Any) -> bytes:
    """One outcome frame, in the fork-server's length-prefixed format."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return struct.pack("!I", len(payload)) + payload


class BranchPlan:
    """One run's branch point within its group.

    ``key`` orders and addresses the gate: the message index for
    injection experiments, the absolute fault time for netfault
    experiments.  ``config`` is the fully resolved per-run config (all
    lazily-drawn parameters materialized by the planner, in cold draw
    order) that the forked child adopts.
    """

    __slots__ = ("index", "config", "key")

    def __init__(self, index: int, config: Any, key: Any):
        self.index = index
        self.config = config
        self.key = key


@dataclass
class Brancher:
    """An experiment's branch protocol (registry field ``brancher``).

    ``group(config)`` keys the runs that can share one live prefix —
    everything but the per-run seed and draws must match within a group.
    ``plan(state, items)`` resolves each pending ``(index, config)``
    into a :class:`BranchPlan` against the booted ``state``.
    ``parent(state, config, controller)`` runs the gated resume: in the
    parent it returns a discarded clean-run outcome after serving every
    gate; in each forked child it returns that run's real outcome.
    """

    group: Callable[[Any], Any]
    plan: Callable[[Any, List[Tuple[int, Any]]], List[BranchPlan]]
    parent: Callable[[Any, Any, "BranchController"], Any]


class BranchController:
    """Fork bookkeeping shared by the gated resume functions.

    Injection-style resumes call :meth:`gate` at each candidate index;
    time-keyed resumes hand the wheel to :meth:`serve_time_gates`.
    ``on_frame`` (set by the executor) receives each reaped child's
    spooled frame bytes, in completion order, from the parent process.
    """

    def __init__(self, plans: List[BranchPlan], workers: int,
                 spool_dir: str):
        self.workers = max(1, workers)
        self.spool_dir = spool_dir
        self.child_plan: Optional[BranchPlan] = None
        self.on_frame: Optional[Callable[[bytes], None]] = None
        self._by_key: Dict[Any, List[BranchPlan]] = {}
        for plan in plans:
            self._by_key.setdefault(plan.key, []).append(plan)
        self._ordered = sorted(plans, key=lambda p: (p.key, p.index))
        self._live: Dict[int, Tuple[int, str]] = {}   # pid -> (index, path)

    # -- child side ------------------------------------------------------------

    def spool_path(self, plan: BranchPlan) -> str:
        return os.path.join(self.spool_dir, "run%d.frame" % plan.index)

    def ship_and_exit(self, tag: str, payload: Any) -> None:
        """Child epilogue: spool this run's frame atomically, exit hard."""
        plan = self.child_plan
        path = self.spool_path(plan)
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(frame_bytes((plan.index, tag, payload)))
            os.replace(tmp, path)
        finally:
            os._exit(0)

    # -- parent side -----------------------------------------------------------

    def _fork(self, plan: BranchPlan) -> bool:
        """Fork one child for ``plan``; True in the child."""
        while len(self._live) >= self.workers:
            self._reap_one()
        pid = os.fork()
        if pid == 0:
            self._live = {}
            self._by_key = {}
            self.child_plan = plan
            return True
        self._live[pid] = (plan.index, self.spool_path(plan))
        return False

    def _reap_one(self) -> None:
        pid, status = os.wait()
        index, path = self._live.pop(pid)
        data = None
        if os.path.exists(path):
            with open(path, "rb") as fh:
                data = fh.read()
            os.unlink(path)
        if not data:
            data = frame_bytes((index, "err",
                                "branch child for run %d died without "
                                "reporting an outcome (status %d)"
                                % (index, status)))
        if self.on_frame is not None:
            self.on_frame(data)

    def drain(self) -> None:
        """Reap every outstanding child and relay its frame."""
        while self._live:
            self._reap_one()

    # -- gates -----------------------------------------------------------------

    def gate(self, key: Any) -> Optional[BranchPlan]:
        """Index-keyed gate: fork every run branching at ``key``.

        Called synchronously from inside the workload (no yield, no
        event, no RNG — invisible to the simulation).  Returns the
        adopted plan in a freshly forked child, None in the parent and
        in children revisiting later gates.
        """
        if self.child_plan is not None:
            return None
        for plan in self._by_key.pop(key, ()):
            if self._fork(plan):
                return plan
        return None

    def serve_time_gates(self, sim, adopt: Callable[[BranchPlan], Any]
                         ) -> Optional[Tuple[BranchPlan, Any]]:
        """Time-keyed gates: advance, fork, and adopt at each fault time.

        For each plan in ascending key order the parent drives the
        wheel through every event *strictly before* the fault instant
        (``run_before`` — the same pops a cold run performs), forks the
        child, and moves on.  In the child, ``adopt(plan)`` rebinds the
        placeholder arms to the run's true schedule before anything at
        or after the fault instant executes; its result is returned with
        the plan.  The parent returns None after the last gate.
        """
        if self.child_plan is not None:
            return None
        for plan in self._ordered:
            sim.run_before(plan.key)
            if self._fork(plan):
                return plan, adopt(plan)
        return None
