"""Canonical capture of a cluster's simulator state.

Every stateful layer declares its snapshot contract as a ``ckpt_state()``
method returning a JSON-able dict of exactly the state that must survive
a checkpoint: event wheels with their heap order and tie-break counters,
SRAM bytes (as a digest — decode/block caches are dropped and rebuilt
lazily on resume), MCP/FTGM register and protocol state, links'
in-flight delivery queues, shard channels, RNG streams, busy trackers
and netfaults plane schedules.  :func:`capture_state` walks the cluster
through those contracts and :func:`state_hash` seals the result.

What is deliberately **excluded** from the hashed state:

- The observability plane (tracer, metrics collectors).  Telemetry is a
  pure execution mode — results are byte-identical with it on or off —
  so two captures of the same simulated instant must hash equally
  regardless of telemetry flags.  Observability facts travel in the
  capture's separate ``observability`` section, outside the hash.
- The process-global packet-id counter.  Packet ids are diagnostic
  labels that never influence simulated behavior or outcomes, and a
  restore performed in a long-lived process would see an advanced
  counter; hashing it would make restores spuriously unequal.

Float canonicalization relies on CPython's shortest-roundtrip ``repr``
(what ``json`` emits), which is deterministic across runs and machines
for equal IEEE-754 doubles.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Any, Dict, Optional

__all__ = ["capture_state", "state_hash", "count_position",
           "canonical_json", "stable_value"]

FORMAT_VERSION = 1

_COUNT_RE = re.compile(r"count\((-?\d+)")


def count_position(counter) -> int:
    """Next value an ``itertools.count`` will yield, without consuming it.

    ``repr(count(n))`` is ``"count(n)"`` on every CPython we support;
    the wheels share their tie-break ``seq`` and model-id counters this
    way, and a checkpoint must record their positions exactly.
    """
    match = _COUNT_RE.search(repr(counter))
    if not match:
        raise ValueError("cannot read position of %r" % (counter,))
    return int(match.group(1))


def canonical_json(state: Any) -> str:
    """The canonical byte form every hash and snapshot file uses."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def state_hash(state: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON of a captured ``state`` section."""
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


def stable_value(item: Any) -> Any:
    """A process-independent, JSON-able stand-in for a queued model object.

    Containers recurse; objects with a ``ckpt_state()`` contract use it;
    anything else collapses to its type name.  ``repr`` is deliberately
    NOT used as a fallback — default reprs embed memory addresses, which
    would make two captures of the same simulated instant hash unequal
    across processes.
    """
    if item is None or isinstance(item, (bool, int, float, str)):
        return item
    if isinstance(item, (list, tuple)):
        return [stable_value(v) for v in item]
    if isinstance(item, dict):
        return {str(k): stable_value(v) for k, v in item.items()}
    method = getattr(item, "ckpt_state", None)
    if method is not None:
        return method()
    return "<%s>" % type(item).__name__


def _state_of(obj) -> Optional[Dict[str, Any]]:
    """An object's declared snapshot state, or None when it has none."""
    if obj is None:
        return None
    method = getattr(obj, "ckpt_state", None)
    if method is None:
        return None
    return method()


def _node_state(node) -> Dict[str, Any]:
    driver = getattr(node, "driver", None)
    return {
        "node": node.node_id,
        "host": _state_of(node.host),
        "nic": _state_of(node.nic),
        "mcp": _state_of(getattr(driver, "mcp", None)
                         or getattr(node, "mcp", None)),
        "driver": _state_of(driver),
    }


def capture_state(cluster, extras: Optional[Dict[str, Any]] = None
                  ) -> Dict[str, Any]:
    """Capture every layer's declared state at the current instant.

    ``extras`` adds run-scoped stateful objects that are not reachable
    from the cluster itself (the netfaults plane, a load plane, armed
    detectors): each value is asked for its ``ckpt_state()`` and stored
    under its key.  Returns ``{"state": ..., "state_hash": ...,
    "observability": ...}`` — the hash covers the ``state`` section
    only.
    """
    sim = cluster.sim
    fabric = cluster.fabric
    state: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "sim": _state_of(sim),
        "nodes": [_node_state(node) for node in cluster.nodes],
        "fabric": {
            "switches": [_state_of(s) for s in fabric.switches],
            "links": [_state_of(link) for link in fabric.links],
        },
        "flavor": cluster.flavor,
        "topology": cluster.topology,
    }
    if extras:
        state["extras"] = {key: _state_of(value)
                           for key, value in sorted(extras.items())}
    tracer = getattr(cluster, "tracer", None)
    sampler = getattr(cluster, "sampler", None)
    flight = getattr(cluster, "flight", None)
    observability = {
        "tracer": _state_of(tracer) if tracer is not None
        else None,
        # The continuous plane stays outside the hash like the tracer:
        # the sampler's tracks and the recorder's ring describe how the
        # run was *watched*, not what the simulation *is*.
        "sampler": {"every_us": sampler.every_us,
                    "samples": len(sampler.times)}
        if sampler is not None else None,
        "flight": {"ring": len(flight.ring)} if flight is not None
        else None,
    }
    return {
        "state": state,
        "state_hash": state_hash(state),
        "observability": observability,
    }
