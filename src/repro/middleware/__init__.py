"""Middleware built on GM/FTGM: the mini-MPI of the paper's motivation."""

from .mpi import ANY_SOURCE, ANY_TAG, MPI_PORT, MpiProcess, mpi_world

__all__ = ["ANY_SOURCE", "ANY_TAG", "MPI_PORT", "MpiProcess", "mpi_world"]
