"""A miniature MPI over GM — the middleware of the paper's motivation.

"Middleware, such as MPI, built on top of GM, consider GM send errors to
be fatal and exit when they encounter such errors.  This can cause a
distributed application using MPI to come to a grinding halt if proper
fault tolerance is not implemented."

This layer is deliberately identical for GM and FTGM — point-to-point
send/recv with tag matching, plus barrier / bcast / reduce / allreduce
built on them — and it treats any GM send error as fatal, exactly like
MPICH-over-GM.  Run it over plain GM and a NIC hang kills the job; run
it over FTGM and the same application code sails through recovery,
because the library underneath never surfaces an error.  No MPI-level
code changes: that is the transparency claim, demonstrated.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..cluster import MyrinetCluster
from ..errors import GmSendError, MpiFatalError
from ..payload import Payload

__all__ = ["MpiProcess", "mpi_world", "ANY_SOURCE", "ANY_TAG", "MPI_PORT"]

ANY_SOURCE = -1
ANY_TAG = -1
MPI_PORT = 4          # every rank talks MPI on this GM port
_HEADER = struct.Struct(">iii")   # tag, source rank, payload length
MAX_MSG_BYTES = 256 * 1024


class MpiProcess:
    """One rank's MPI endpoint.

    All methods are simulation processes (``yield from`` them from app
    code).  ``init`` must complete before any communication.
    """

    def __init__(self, cluster: MyrinetCluster, rank: int,
                 recv_window: int = 8):
        self.cluster = cluster
        self.rank = rank
        self.size = len(cluster)
        self.recv_window = recv_window
        self.port = None
        self._unexpected: List[Tuple[int, int, bytes]] = []
        self.finalized = False

    # -- lifecycle ---------------------------------------------------------------

    def init(self) -> Generator:
        """MPI_Init: open the port, pre-provide receive buffers."""
        self.port = yield from \
            self.cluster[self.rank].driver.open_port(MPI_PORT)
        for _ in range(self.recv_window):
            yield from self.port.provide_receive_buffer(MAX_MSG_BYTES)

    def finalize(self) -> Generator:
        self.finalized = True
        yield from self.port.close()

    def abort(self, reason: str) -> None:
        """MPI_Abort: the fatal-error path of MPI-over-GM."""
        raise MpiFatalError("rank %d aborted: %s" % (self.rank, reason))

    # -- point to point -------------------------------------------------------------

    def send(self, dest: int, data: bytes, tag: int = 0) -> Generator:
        """MPI_Send (blocking until the GM send completes)."""
        if not isinstance(data, bytes):
            raise TypeError("mini-MPI sends bytes; got %r" % type(data))
        framed = _HEADER.pack(tag, self.rank, len(data)) + data
        try:
            yield from self.port.send_and_wait(
                Payload.from_bytes(framed), dest, MPI_PORT)
        except GmSendError as exc:
            # The documented MPICH-over-GM behaviour: fatal.
            self.abort("GM send error: %s" % exc)

    def recv(self, source: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Generator:
        """MPI_Recv: returns (source, tag, data)."""
        match = self._match(source, tag)
        if match is not None:
            return match
        while True:
            event = yield from self.port.receive_message()
            if event is None:
                continue
            got_tag, got_src, length = _HEADER.unpack(
                event.payload.data[:_HEADER.size])
            data = event.payload.data[_HEADER.size:_HEADER.size + length]
            yield from self.port.provide_receive_buffer(MAX_MSG_BYTES)
            if (source in (ANY_SOURCE, got_src)
                    and tag in (ANY_TAG, got_tag)):
                return got_src, got_tag, data
            self._unexpected.append((got_src, got_tag, data))

    def _match(self, source: int, tag: int):
        for i, (src, got_tag, data) in enumerate(self._unexpected):
            if (source in (ANY_SOURCE, src)
                    and tag in (ANY_TAG, got_tag)):
                del self._unexpected[i]
                return src, got_tag, data
        return None

    def sendrecv(self, dest: int, data: bytes, source: int,
                 tag: int = 0) -> Generator:
        yield from self.send(dest, data, tag)
        result = yield from self.recv(source, tag)
        return result

    # -- nonblocking operations ---------------------------------------------------

    def isend(self, dest: int, data: bytes, tag: int = 0) -> Generator:
        """MPI_Isend: post without waiting for completion.

        Returns a request handle for :meth:`wait` / :meth:`waitall`.
        The GM send itself is posted here (costing only the library's
        sub-microsecond overhead); completion is the GM callback.
        """
        if not isinstance(data, bytes):
            raise TypeError("mini-MPI sends bytes; got %r" % type(data))
        framed = _HEADER.pack(tag, self.rank, len(data)) + data
        request = {"done": False, "error": None}

        def callback(outcome):
            request["done"] = True
            if not outcome.ok:
                request["error"] = outcome.error or "send failed"

        yield from self.port.send(Payload.from_bytes(framed), dest,
                                  MPI_PORT, callback=callback)
        return request

    def wait(self, request) -> Generator:
        """MPI_Wait: drive the progress engine until a request resolves.

        RECEIVED events observed while waiting are re-framed and stashed
        on the unexpected queue so later ``recv`` calls see them.
        """
        while not request["done"]:
            event = yield from self.port.receive()
            if event is not None and event.etype == "received":
                got_tag, got_src, length = _HEADER.unpack(
                    event.payload.data[:_HEADER.size])
                data = event.payload.data[
                    _HEADER.size:_HEADER.size + length]
                self._unexpected.append((got_src, got_tag, data))
                yield from self.port.provide_receive_buffer(MAX_MSG_BYTES)
        if request["error"] is not None:
            self.abort("GM send error: %s" % request["error"])

    def waitall(self, requests) -> Generator:
        for request in requests:
            yield from self.wait(request)

    # -- collectives -------------------------------------------------------------------

    _TAG_BARRIER = 1 << 20
    _TAG_BCAST = 1 << 21
    _TAG_REDUCE = 1 << 22

    def barrier(self) -> Generator:
        """Linear barrier: gather-to-0 then broadcast."""
        if self.rank == 0:
            for _ in range(self.size - 1):
                yield from self.recv(ANY_SOURCE, self._TAG_BARRIER)
            for peer in range(1, self.size):
                yield from self.send(peer, b"", self._TAG_BARRIER)
        else:
            yield from self.send(0, b"", self._TAG_BARRIER)
            yield from self.recv(0, self._TAG_BARRIER)

    def bcast(self, data: Optional[bytes], root: int = 0) -> Generator:
        """MPI_Bcast (linear)."""
        if self.rank == root:
            for peer in range(self.size):
                if peer != root:
                    yield from self.send(peer, data, self._TAG_BCAST)
            return data
        _, _, data = yield from self.recv(root, self._TAG_BCAST)
        return data

    def reduce(self, value: float, op: Callable[[float, float], float],
               root: int = 0) -> Generator:
        """MPI_Reduce on a single float."""
        if self.rank == root:
            accumulator = value
            for _ in range(self.size - 1):
                _, _, data = yield from self.recv(ANY_SOURCE,
                                                  self._TAG_REDUCE)
                accumulator = op(accumulator,
                                 struct.unpack(">d", data)[0])
            return accumulator
        yield from self.send(root, struct.pack(">d", value),
                             self._TAG_REDUCE)
        return None

    def allreduce(self, value: float,
                  op: Callable[[float, float], float]) -> Generator:
        total = yield from self.reduce(value, op, root=0)
        if self.rank == 0:
            data = yield from self.bcast(struct.pack(">d", total), root=0)
        else:
            data = yield from self.bcast(None, root=0)
        return struct.unpack(">d", data)[0]

    def gather(self, data: bytes, root: int = 0) -> Generator:
        """MPI_Gather: returns the rank-ordered list at root, else None."""
        tag = self._TAG_REDUCE + 1
        if self.rank == root:
            parts: Dict[int, bytes] = {root: data}
            for _ in range(self.size - 1):
                src, _, chunk = yield from self.recv(ANY_SOURCE, tag)
                parts[src] = chunk
            return [parts[r] for r in range(self.size)]
        yield from self.send(root, data, tag)
        return None


def mpi_world(cluster: MyrinetCluster) -> List[MpiProcess]:
    """One MpiProcess per cluster node (call init on each, in-process)."""
    return [MpiProcess(cluster, rank) for rank in range(len(cluster))]
