"""Events the MCP posts into a port's receive queue.

GM's asynchronous model funnels everything through the per-port receive
queue: message arrivals, send completions, alarms, and — in FTGM — the
``FAULT_DETECTED`` event the FTD posts after reloading the MCP.  Events
the application does not recognise must be passed to ``gm_unknown()``,
which is precisely the hook FTGM uses to make recovery transparent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..payload import Payload

__all__ = ["GmEvent", "EventType"]


class EventType:
    RECEIVED = "received"            # a message landed in a receive buffer
    SENT = "sent"                    # a send completed; token returns
    SEND_ERROR = "send_error"        # retransmit budget exhausted, no route…
    ALARM = "alarm"
    FAULT_DETECTED = "fault_detected"  # FTD: the NIC was reloaded
    ROUTE_CHANGED = "route_changed"    # netfaults: fresh routes installed
    PORT_CLOSED = "port_closed"

    # Types handled inside gm_unknown() rather than by applications.
    INTERNAL = (FAULT_DETECTED, ROUTE_CHANGED, PORT_CLOSED)


@dataclass
class GmEvent:
    """One record in a port's receive queue."""

    etype: str
    port: int
    # RECEIVED fields
    sender_node: Optional[int] = None
    sender_port: Optional[int] = None
    payload: Optional[Payload] = None
    size: int = 0
    region_id: Optional[int] = None
    recv_token_id: Optional[int] = None
    seq: Optional[int] = None        # FTGM: last-ACKed seq for this message
    # SENT / SEND_ERROR fields
    msg_id: Optional[int] = None
    error: Optional[str] = None
    # ALARM
    context: object = None
    posted_at: float = field(default=0.0)

    def __str__(self) -> str:
        return "GmEvent(%s port=%d%s)" % (
            self.etype, self.port,
            ", %dB from %s:%s" % (self.size, self.sender_node,
                                  self.sender_port)
            if self.etype == EventType.RECEIVED else "")
