"""Protocol parameters and calibrated timing constants.

Timing values are calibrated so the *baseline GM* stack matches the
paper's Table 2 on its own testbed (Pentium III, 33 MHz PCI, LANai9,
GM-1.5.1): ~11.5 µs small-message half-RTT, ~92 MB/s bidirectional
asymptote, 0.30/0.75 µs host CPU per send/receive, ~6 µs LANai occupancy
per small message.  FTGM's extra costs are *not* constants in this file —
they are charged by the FTGM code paths themselves (token copies, extra
hash updates, sequence bookkeeping), so the ~1.5 µs latency delta of the
paper is an emergent property of the mechanism.

All times are microseconds; all sizes bytes.
"""

from __future__ import annotations

from ..net.packet import GM_MTU  # noqa: F401  (re-exported for convenience)

# -- GM structural parameters (from the paper / GM documentation) -----------

NUM_PORTS = 8                 # "GM allows only 8 ports per node"
SEND_TOKENS_PER_PORT = 16     # tokens a process starts out with
RECV_TOKENS_PER_PORT = 16
NUM_PRIORITIES = 2            # two non-preemptive priority levels

# -- Go-Back-N ---------------------------------------------------------------

GBN_WINDOW = 8                # packets in flight per stream
RETRANSMIT_TIMEOUT_US = 1000.0
RETRANSMIT_BACKOFF = 2.0      # exponential; GM backs off on repeated loss
RETRANSMIT_TIMEOUT_CAP_US = 200_000.0
# GM's resend budget is time-based: a stream whose receiver makes no
# forward progress for this long fails its sends (the GM send error
# MPI-over-GM treats as fatal).  It must comfortably exceed the ~2.6 s
# worst-case FTGM recovery so senders ride out a peer's reload.
SEND_STALL_TIMEOUT_US = 7_000_000.0
# Receivers emit at most one NACK per stream per this interval; a sender
# spraying bad sequence numbers (e.g. corrupted firmware) otherwise
# creates a NACK/rewind storm at wire rate.
NACK_MIN_INTERVAL_US = 50.0

# -- host-side costs (GM baseline; Table 2 "Host util.") --------------------

HOST_SEND_OVERHEAD_US = 0.30
HOST_RECV_OVERHEAD_US = 0.75

# -- LANai-side costs (native-mode MCP; Table 2 "LANai util.") ---------------

LANAI_SEND_PER_PACKET_US = 2.85  # token parse, DMA programming, header build
LANAI_RECV_PER_PACKET_US = 2.80  # CRC/seq check, DMA programming, bookkeeping
LANAI_ACK_PROCESS_US = 0.35      # handling an ACK/NACK at the sender
LANAI_EVENT_POST_US = 0.25       # building the event record
EVENT_RECORD_BYTES = 32          # DMAed into the host receive queue

# -- timers (paper §4.2) ------------------------------------------------------

L_TIMER_INTERVAL_US = 400.0
# "the maximum time between these timer routine invocations during normal
# operation is around 800us" — dispatch serialization stretches the gap.
MAX_L_TIMER_GAP_US = 800.0
# IT1 is initialized "to a value just slightly greater than 800us".
WATCHDOG_INTERVAL_US = 1000.0

# -- recovery costs (paper §5.2, Table 3) -------------------------------------

MCP_RELOAD_US = 500_000.0        # "~500000us being spent in reloading the MCP"
# The remaining ~265000us of the paper's ~765000us FTD time, split over
# its phases (the paper reports only the total and the reload share):
FTD_RESET_CLEAR_US = 80_000.0     # card reset settle + SRAM clear
FTD_TABLE_RESTORE_US = 150_000.0  # page hash table + mapping/routing tables
FTD_EVENT_POST_US = 34_000.0      # FAULT_DETECTED into each port's queue
PER_PORT_RECOVERY_US = 900_000.0  # FAULT_DETECTED handler per open port
MAGIC_WORD_SETTLE_US = 1_000.0    # FTD waits this long after writing the
                                  # magic word before concluding a hang
FTD_WAKEUP_US = 13.0              # interrupt latency to daemon wakeup (~13us)

# -- memory footprints (paper §5) ---------------------------------------------

EXTRA_LANAI_MEMORY_BYTES = 100 * 1024   # FTGM static SRAM overhead
EXTRA_HOST_MEMORY_BYTES = 20 * 1024     # FTGM per-process virtual memory
